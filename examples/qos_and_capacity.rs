//! The optional-module and future-release features around the federation
//! paper, end to end:
//!
//! - the **Application Kernel module** (§I-E): nightly benchmark kernels
//!   with control-chart QoS monitoring catching an injected interconnect
//!   regression;
//! - **cloud reservation tracking** (§III-B future release): comparing
//!   capacity purchased against capacity actually used, per project;
//! - **SUPReMM summary federation** (§II-C5 subsequent release):
//!   replicating the small monthly performance summary while the heavy
//!   raw realm stays local.
//!
//! ```text
//! cargo run --example qos_and_capacity
//! ```

use xdmod::appkernels::{analyze, default_suite, ControlConfig};
use xdmod::appkernels::simulate::{campaign_log, InjectedRegression};
use xdmod::appkernels::ingest::{load_runs, parse_log, series};
use xdmod::core::{Federation, FederationConfig, FederationHub, XdmodInstance};
use xdmod::realms::cloud::capacity_utilization;
use xdmod::realms::RealmKind;
use xdmod::sim::{CloudSim, ClusterSim, ResourceProfile};
use xdmod::warehouse::{AggFn, Aggregate, Query};

fn main() {
    // --- Application kernels: catch a silent performance regression ----
    println!("== Application Kernel QoS monitoring ==");
    let regression = InjectedRegression {
        start_run: 40,
        length: 15,
        severity: 0.3,
    };
    let log = campaign_log("rush", 60, Some(("ior_write", regression)), 99);
    let runs = parse_log(&log).expect("launcher log parses");
    let mut akdb = xdmod::warehouse::Database::new();
    load_runs(&mut akdb, "appkernels", &runs).expect("load");

    for kernel in default_suite() {
        let values = series(&akdb, "appkernels", &kernel.id, "rush", 4).expect("series");
        let report = analyze(&kernel, &values, ControlConfig::default());
        match report.events.iter().find(|e| e.regression) {
            Some(e) => println!(
                "  {:<16} REGRESSION at run {} ({:+.1}% vs baseline)",
                kernel.id,
                e.start_index,
                e.relative_change() * 100.0
            ),
            None => println!("  {:<16} in control", kernel.id),
        }
    }

    // --- Cloud reservations: purchased vs used capacity ----------------
    println!("\n== Cloud capacity: purchased vs used (per project) ==");
    let mut ccr = XdmodInstance::new("ccr");
    let sim = CloudSim::new("ccr-cloud", 25, 42);
    ccr.ingest_cloud_feed(&sim.event_feed(2017), CloudSim::horizon(2017))
        .expect("event feed");
    ccr.ingest_cloud_reservations(&sim.reservation_feed(2017))
        .expect("reservation feed");

    let purchased = ccr
        .query_reservations(
            &Query::new()
                .group_by_column("project")
                .aggregate(Aggregate::of(
                    AggFn::Sum,
                    "core_hours_purchased",
                    "core_hours_purchased",
                )),
        )
        .expect("purchased query");
    let used = ccr
        .query(
            RealmKind::Cloud,
            &Query::new()
                .group_by_column("project")
                .aggregate(Aggregate::of(AggFn::Sum, "core_hours", "total_core_hours")),
        )
        .expect("used query");
    for row in capacity_utilization(&purchased, &used, "project").expect("join") {
        println!(
            "  {:<12} purchased {:>9.0}  used {:>9.0}  utilization {:>5.1}%{}",
            row.key,
            row.purchased,
            row.used,
            row.fraction() * 100.0,
            if row.over_provisioned() { "  (over-provisioned)" } else { "" }
        );
    }

    // --- SUPReMM summaries federate; raw data does not -----------------
    println!("\n== SUPReMM summary federation ==");
    let mut site = XdmodInstance::new("site");
    let hpc = ClusterSim::new(ResourceProfile::generic("rush", 128, 24.0, 1.0), 3);
    let jobs = hpc.jobs(2017, 1..=2);
    site.ingest_sacct("rush", &hpc.sacct_log(2017, 1..=2))
        .expect("sacct");
    site.ingest_pcp(&hpc.pcp_archive(&jobs[..25.min(jobs.len())]))
        .expect("pcp");
    site.aggregate().expect("aggregate");

    let mut fed = Federation::new(FederationHub::new("hub"));
    fed.join_tight(&site, FederationConfig::default().with_supremm_summaries())
        .expect("join");
    fed.sync().expect("sync");

    let hub_db = fed.hub().database();
    let hub = hub_db.read();
    let schema = FederationHub::schema_for("site");
    let summary = hub
        .table(&schema, "supremm_summary_by_month")
        .expect("summary crossed");
    println!(
        "  hub holds {} monthly performance summary rows",
        summary.len()
    );
    assert!(hub.table(&schema, "supremm_timeseries").is_err());
    println!("  raw per-job timeseries stayed on the satellite (as designed)");
}

//! Section III of the paper: federations of heterogeneous resources.
//! Three sites — an HPC center, a storage-heavy center, and a research
//! cloud (the Aristotle scenario: CCR + Cornell + UCSB) — federate HPC
//! Jobs, Storage, and Cloud realms into one hub, and the hub renders the
//! paper's Fig. 6 and Fig. 7 style charts across the whole enterprise.
//!
//! ```text
//! cargo run --example heterogeneous_realms
//! ```

use xdmod::chart::{ascii_bars, ascii_chart, Dataset};
use xdmod::core::{Federation, FederationConfig, FederationHub, XdmodInstance};
use xdmod::realms::cloud::avg_core_hours_per_vm;
use xdmod::realms::levels::{fig7_vm_memory_levels, AggregationLevelsConfig, DIM_VM_MEMORY};
use xdmod::realms::RealmKind;
use xdmod::sim::{CloudSim, ClusterSim, ResourceProfile, StorageSim};
use xdmod::warehouse::{AggFn, Aggregate, GroupKey, Period, Query};

fn main() {
    // --- Site 1: CCR — HPC plus storage plus a research cloud ---------
    let mut ccr = XdmodInstance::new("ccr");
    let hpc = ClusterSim::new(ResourceProfile::generic("rush", 512, 48.0, 1.2), 11);
    ccr.ingest_sacct("rush", &hpc.sacct_log(2017, 1..=12))
        .expect("sacct");
    let storage = StorageSim::ccr(11);
    for doc in storage.year_documents(2017) {
        ccr.ingest_storage_json(&doc).expect("storage json");
    }
    let cloud = CloudSim::new("ccr-cloud", 25, 11);
    ccr.ingest_cloud_feed(&cloud.event_feed(2017), CloudSim::horizon(2017))
        .expect("cloud feed");

    // --- Site 2: Cornell — cloud only ---------------------------------
    let mut cornell = XdmodInstance::new("cornell");
    let cloud2 = CloudSim::new("redcloud", 18, 22);
    cornell
        .ingest_cloud_feed(&cloud2.event_feed(2017), CloudSim::horizon(2017))
        .expect("cloud feed");

    // --- Site 3: UCSB — cloud only -------------------------------------
    let mut ucsb = XdmodInstance::new("ucsb");
    let cloud3 = CloudSim::new("aristotle-ucsb", 12, 33);
    ucsb.ingest_cloud_feed(&cloud3.event_feed(2017), CloudSim::horizon(2017))
        .expect("cloud feed");

    // --- Federate all realms (Jobs + Storage + Cloud; SUPReMM stays
    //     local per §II-C5) ---------------------------------------------
    let mut hub = FederationHub::new("aristotle-hub");
    let mut levels = AggregationLevelsConfig::new();
    levels.set(DIM_VM_MEMORY, fig7_vm_memory_levels());
    hub.set_levels(levels);
    let mut fed = Federation::new(hub);
    for inst in [&ccr, &cornell, &ucsb] {
        fed.join_tight(inst, FederationConfig::default_realms())
            .expect("join");
    }
    fed.sync_and_aggregate().expect("sync");

    // --- Fig. 6 style: storage growth by month ------------------------
    let rs = fed
        .hub()
        .federated_query(
            RealmKind::Storage,
            &Query::new()
                .group_by_period("ts", Period::Month)
                .aggregate(Aggregate::of(AggFn::Sum, "file_count", "file_count"))
                .aggregate(Aggregate::of(
                    AggFn::Sum,
                    "physical_usage_gb",
                    "physical_usage",
                )),
        )
        .expect("storage query");
    let files = Dataset::timeseries(
        "File count, federated storage, 2017",
        "files",
        &rs,
        Period::Month,
        "ts_month",
        None,
        "file_count",
    )
    .expect("dataset");
    println!("{}", ascii_chart(&files, 10));

    // --- Fig. 7 style: avg core hours per VM by memory size -----------
    let bins = {
        let mut cfg = AggregationLevelsConfig::new();
        cfg.set(DIM_VM_MEMORY, fig7_vm_memory_levels());
        cfg.bins_for(DIM_VM_MEMORY).expect("bins compile")
    };
    let rs = fed
        .hub()
        .federated_query(
            RealmKind::Cloud,
            &Query::new()
                .group(GroupKey::Binned("memory_gb".into(), bins))
                .aggregate(Aggregate::of(AggFn::Sum, "core_hours", "total_core_hours"))
                .aggregate(Aggregate::of(AggFn::CountDistinct, "vm_id", "num_vms")),
        )
        .expect("cloud query");
    let avg = avg_core_hours_per_vm(&rs).expect("ratio");
    let mut ds = Dataset::new(
        "Average core hours per VM, by VM memory size (federated clouds)",
        "core hours",
    );
    ds.labels = rs
        .rows
        .iter()
        .map(|r| r[0].to_string())
        .collect();
    ds.push_series("avg core hours / VM", avg.into_iter().map(Some).collect())
        .expect("series");
    println!("{}", ascii_bars(&ds, 40));

    // --- The SUPReMM realm did NOT federate ---------------------------
    assert_eq!(fed.hub().federated_fact_rows(RealmKind::Supremm), 0);
    println!("SUPReMM (heavy per-job performance data) stayed on the satellites.");
}

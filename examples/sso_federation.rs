//! The paper's Figures 4 and 5: authentication into an SSO-enabled
//! XDMoD federation.
//!
//! - Fig. 4: one instance, two user groups — Group R signs on with local
//!   XDMoD passwords, Group S through web SSO (Shibboleth-style SAML).
//! - Fig. 5: a federation where satellites use different IdPs, the hub
//!   accepts multiple SSO sources, and one satellite delegates
//!   authentication to the hub entirely.
//! - §II-D4: the same human appears as different users on different
//!   instances; the hub's identity map de-duplicates them.
//!
//! ```text
//! cargo run --example sso_federation
//! ```

use std::collections::BTreeMap;
use xdmod::auth::{
    AuthMode, GlobusIdp, IdentityProvider, InstanceAuth, LdapIdp, Role, ShibbolethIdp, User,
};
use xdmod::core::FederationHub;

fn main() {
    let now = 1_500_000_000;

    // ---- Figure 4: two auth paths into one instance -------------------
    let mut ccr = InstanceAuth::new("ccr-xdmod", AuthMode::ServiceProvider, false);
    // Group R: local accounts.
    ccr.enroll(
        User::member("ruth", "ruth@buffalo.edu", "buffalo.edu").with_role(Role::Pi),
        Some("ruths-password"),
    );
    // Group S: SSO via the campus Shibboleth IdP.
    let mut shib = ShibbolethIdp::new("shibboleth.buffalo.edu", "deployment-secret");
    shib.enroll(
        "sam",
        "sams-password",
        BTreeMap::from([
            ("email".to_owned(), "sam@buffalo.edu".to_owned()),
            ("department".to_owned(), "chemistry".to_owned()),
        ]),
    );
    ccr.trust_idp(&shib).expect("single SSO source allowed");

    let r_session = ccr
        .login_local("ruth", "ruths-password", now)
        .expect("local sign-on");
    println!("Group R: {} signed on via {:?}", r_session.username, r_session.method);

    let assertion = shib
        .authenticate("sam", "sams-password", "ccr-xdmod", now)
        .expect("IdP authenticates");
    let s_session = ccr.login_sso(&assertion, now + 5).expect("SSO sign-on");
    println!(
        "Group S: {} signed on via {:?} (auto-provisioned, org={})",
        s_session.username,
        s_session.method,
        ccr.users().get("sam").expect("provisioned").organization
    );

    // ---- Figure 5: federation-wide authentication ---------------------
    // Satellite instances use different IdPs; the hub trusts them all.
    let mut globus = GlobusIdp::new("auth.globus.org", "xsede-secret");
    globus.register("sam.globus", "globus-pw");
    globus.link("sam.globus", "xsede_sam"); // account linking prerequisite
    let mut ldap = LdapIdp::new("ldap.cornell.edu", "cornell-secret");
    ldap.add_entry("sjones", "ldap-pw");

    let mut hub = FederationHub::new("federation-hub");
    hub.auth_mut().trust_idp(&shib).expect("multi-source hub");
    hub.auth_mut().trust_idp(&globus).expect("multi-source hub");
    hub.auth_mut().trust_idp(&ldap).expect("multi-source hub");
    println!("\nhub trusts 3 IdPs (multi-source SSO, §II-D3)");

    let a = globus
        .authenticate("sam.globus", "globus-pw", "federation-hub", now)
        .expect("globus auth");
    let hub_session = hub.auth_mut().login_sso(&a, now + 2).expect("hub SSO");
    println!(
        "federated user signed onto the hub as {} (subject is the linked XSEDE identity)",
        hub_session.username
    );

    // A satellite in delegated mode honors the hub's session.
    let mut delegated = InstanceAuth::new("ucsb-xdmod", AuthMode::IdentityProviderDelegated, false);
    delegated.enroll(User::member("xsede_sam", "sam@buffalo.edu", "buffalo.edu"), None);
    let sat_session = delegated
        .login_delegated(&hub_session, now + 10)
        .expect("delegated sign-on");
    println!(
        "delegated satellite {} accepted the hub-authenticated user {}",
        sat_session.instance, sat_session.username
    );

    // ---- §II-D4: identity mapping across instances --------------------
    // The same human holds accounts on CCR and XSEDE; without mapping the
    // federation sees two users.
    let ids = hub.identity_map_mut();
    ids.register("ccr-xdmod", &User::member("sam", "sam@buffalo.edu", "buffalo.edu"));
    ids.register(
        "xsede-xdmod",
        &User::member("xsede_sam", "sam@buffalo.edu", "buffalo.edu"),
    );
    println!(
        "\nbefore identity mapping: {} persons in the federation",
        ids.person_count()
    );
    let proposals = ids.propose_merges();
    for p in &proposals {
        println!("  merge proposal: {:?} <- {:?} ({})", p.keep, p.merge, p.evidence);
    }
    let merged = ids.auto_deduplicate();
    println!(
        "after identity mapping: {} person ({merged} merge applied)",
        ids.person_count()
    );
    assert_eq!(ids.person_count(), 1);
}

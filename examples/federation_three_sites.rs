//! The paper's Figure 2 and Figure 3, end to end: three satellite XDMoD
//! instances (X, Y, Z) monitoring resources L, M, N fan in to a central
//! federation hub; instance Y monitors two resources, one of which is
//! excluded from federation by a routing filter (Fig. 3's
//! Resource-B/Resource-D scenario).
//!
//! ```text
//! cargo run --example federation_three_sites
//! ```

use xdmod::core::{Federation, FederationConfig, FederationHub, XdmodInstance};
use xdmod::realms::levels::{
    hub_walltime, instance_a_walltime, instance_b_walltime, AggregationLevelsConfig,
    DIM_WALL_TIME,
};
use xdmod::realms::RealmKind;
use xdmod::sim::hpc::{ClusterSim, ResourceProfile};
use xdmod::warehouse::{AggFn, Aggregate, Query};

fn satellite(name: &str, resource: &str, seed: u64, walltime: Vec<xdmod::realms::LevelSpec>) -> XdmodInstance {
    let mut inst = XdmodInstance::new(name);
    let sim = ClusterSim::new(ResourceProfile::generic(resource, 256, 48.0, 1.0), seed);
    inst.ingest_sacct(resource, &sim.sacct_log(2017, 1..=2))
        .expect("simulated log parses");
    let mut levels = AggregationLevelsConfig::new();
    levels.set(DIM_WALL_TIME, walltime);
    inst.set_levels(levels);
    inst.aggregate().expect("satellite aggregation");
    inst
}

fn main() {
    // --- Figure 2: three satellites, one hub --------------------------
    let x = satellite("instance-x", "resource-l", 1, instance_a_walltime());
    let mut y = satellite("instance-y", "resource-m", 2, instance_b_walltime());
    let z = satellite("instance-z", "resource-n", 3, instance_b_walltime());

    // Figure 3: instance Y also monitors a sensitive resource that must
    // never reach the hub.
    let sim = ClusterSim::new(ResourceProfile::generic("resource-secret", 64, 48.0, 1.0), 9);
    y.ingest_sacct("resource-secret", &sim.sacct_log(2017, 1..=1))
        .expect("simulated log parses");

    // The hub defines its own aggregation levels (Table I's third
    // column) spanning everything its members produce.
    let mut hub = FederationHub::new("federation-hub");
    let mut hub_levels = AggregationLevelsConfig::new();
    hub_levels.set(DIM_WALL_TIME, hub_walltime());
    hub.set_levels(hub_levels);

    let mut federation = Federation::new(hub);
    federation
        .join_tight(&x, FederationConfig::default())
        .expect("x joins");
    federation
        .join_tight(&y, FederationConfig::default().exclude("resource-secret"))
        .expect("y joins");
    federation
        .join_loose(&z, FederationConfig::default()) // heterogeneous: z is loose
        .expect("z joins");

    // One federation cycle: replicate everything, aggregate at the hub.
    let applied = federation.sync_and_aggregate().expect("sync");
    println!("replication applied {applied} events at the hub");
    println!(
        "members: {:?}",
        federation
            .members()
            .iter()
            .map(|(n, m)| format!("{n} ({m:?})"))
            .collect::<Vec<_>>()
    );

    // --- The hub's unified view ---------------------------------------
    let rs = federation
        .hub()
        .federated_query(
            RealmKind::Jobs,
            &Query::new()
                .group_by_column("resource")
                .aggregate(Aggregate::count("jobs"))
                .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "cpu_hours")),
        )
        .expect("federated query");
    println!("\nFederated view (jobs by resource):");
    for row in &rs.rows {
        println!("  {:<16} {:>6} jobs  {:>12.0} CPU hours", row[0], row[1], row[2]);
    }
    assert!(
        !rs.rows.iter().any(|r| r[0].to_string() == "resource-secret"),
        "routing filter must keep the sensitive resource local"
    );
    println!("\n(resource-secret stayed on instance-y, as configured)");

    // Consistency: raw data replicated unaltered.
    assert!(federation.verify_member(&x).expect("verify"));
    println!("checksum verification: instance-x data identical on the hub");

    // --- Backup use case (§II-E4): regenerate a satellite -------------
    let before = x.fact_rows(RealmKind::Jobs).expect("rows");
    let mut x = x;
    federation.restore_member(&mut x).expect("restore");
    assert_eq!(x.fact_rows(RealmKind::Jobs).expect("rows"), before);
    println!("instance-x regenerated from the hub: {before} job records restored");
}

//! Quickstart: stand up one XDMoD instance, ingest a simulated month of
//! SLURM accounting data, aggregate, and chart a metric.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use xdmod::chart::{ascii_chart, to_csv, Dataset};
use xdmod::core::XdmodInstance;
use xdmod::realms::levels::{instance_a_walltime, AggregationLevelsConfig, DIM_WALL_TIME};
use xdmod::realms::RealmKind;
use xdmod::sim::hpc::{ClusterSim, ResourceProfile};
use xdmod::warehouse::{AggFn, Aggregate, Period, Query};

fn main() {
    // 1. Simulate three months of jobs on a modest cluster ("rush").
    //    In production this would be your scheduler's sacct output.
    let profile = ResourceProfile::generic("rush", 512, 48.0, 1.3);
    let sim = ClusterSim::new(profile, 2024);
    let sacct_log = sim.sacct_log(2017, 1..=3);
    println!(
        "simulated sacct log: {} lines",
        sacct_log.lines().count() - 1
    );

    // 2. Stand up an instance, register the resource's HPL-derived XD SU
    //    conversion factor, and configure wall-time aggregation levels.
    let mut instance = XdmodInstance::new("campus-xdmod");
    instance.set_su_factor("rush", 1.3);
    let mut levels = AggregationLevelsConfig::new();
    levels.set(DIM_WALL_TIME, instance_a_walltime());
    instance.set_levels(levels);

    // 3. Ingest and aggregate (the paper's daily aggregation run).
    let report = instance
        .ingest_sacct("rush", &sacct_log)
        .expect("well-formed log");
    println!(
        "ingested {} jobs ({} skipped)",
        report.ingested, report.skipped
    );
    instance.aggregate().expect("aggregation succeeds");

    // 4. Query: monthly CPU hours and job counts.
    let rs = instance
        .query(
            RealmKind::Jobs,
            &Query::new()
                .group_by_period("end_time", Period::Month)
                .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total_cpu_hours"))
                .aggregate(Aggregate::count("jobs")),
        )
        .expect("query succeeds");

    // 5. Chart it like the XDMoD usage tab would.
    let dataset = Dataset::timeseries(
        "CPU Hours: Total — rush",
        "CPU hours",
        &rs,
        Period::Month,
        "end_time_month",
        None,
        "total_cpu_hours",
    )
    .expect("chartable");
    println!("\n{}", ascii_chart(&dataset, 12));

    // 6. Export, as the web UI's export button would.
    println!("CSV export:\n{}", to_csv(&dataset));
}

//! # Federated XDMoD (Rust)
//!
//! A from-scratch Rust reproduction of *"Federating XDMoD to Monitor
//! Affiliated Computing Resources"* (Sperhac et al., HPCMASPA @ IEEE
//! CLUSTER 2018).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`warehouse`] — embeddable analytic data warehouse with a binary log,
//!   materialized aggregation tables, and a group-by/filter query engine.
//! - [`ingest`] — ETL shredders for SLURM `sacct` logs, PCP-style
//!   performance archives, storage JSON documents, and cloud event feeds.
//! - [`realms`] — the four XDMoD data realms (Jobs, SUPReMM, Storage,
//!   Cloud), configurable aggregation levels, and XDSU standardization.
//! - [`replication`] — a Tungsten-like binlog replicator with schema
//!   renaming, selective replication, and fan-in topology.
//! - [`auth`] — local-password and SSO (SAML-style) authentication, with
//!   federated identity mapping.
//! - [`appkernels`] — the Application Kernel QoS module: periodic
//!   benchmark kernels and control-chart regression detection.
//! - [`sim`] — deterministic synthetic workload generators standing in for
//!   XSEDE/CCR production data.
//! - [`chart`] — the chart/report layer (timeseries + aggregate datasets,
//!   ASCII/SVG rendering, CSV/JSON export).
//! - [`chaos`] — the deterministic fault-injection substrate: seeded
//!   [`chaos::FaultPlan`]s injecting transient errors, stalls, binlog
//!   corruption, and permanent link loss into the warehouse and
//!   replication layers, reproducibly.
//! - [`alerts`] — the alert-lifecycle engine: fault fingerprints become
//!   stable alert identities walking `firing → acknowledged → resolved →
//!   stale`, with flap damping and token-bucket-gated notification
//!   dispatch; the federation supervisor feeds it and the gateway serves
//!   it at `/alerts`.
//! - [`telemetry`] — the self-monitoring substrate: counters, gauges,
//!   log-bucketed latency histograms, RAII span timers, a bounded event
//!   ring, and Prometheus-text/JSON exposition. The warehouse,
//!   replicator, shredders, and hub all report here; the hub's
//!   `ops_report()` turns it into a dashboard.
//! - [`core`] — the paper's contribution: [`core::XdmodInstance`],
//!   [`core::FederationHub`], and [`core::Federation`].
//! - [`gateway`] — the serving tier: a concurrent HTTP/1.1 gateway over
//!   the hub with session auth, per-role realm authorization, token-bucket
//!   rate limiting, admission control, graceful drain, and
//!   `ETag`/`If-None-Match` revalidation keyed to replication watermarks.
//!
//! ## Quickstart
//!
//! ```
//! use xdmod::core::XdmodInstance;
//! use xdmod::sim::hpc::{ClusterSim, ResourceProfile};
//!
//! // Simulate one month of jobs on a small cluster and ingest them into a
//! // standalone XDMoD instance.
//! let profile = ResourceProfile::generic("rush", 512, 12.0, 1.0);
//! let sim = ClusterSim::new(profile, 42);
//! let log = sim.sacct_log(2017, 1..=1);
//!
//! let mut instance = XdmodInstance::new("ccr-xdmod");
//! instance.ingest_sacct("rush", &log).unwrap();
//! instance.aggregate().unwrap();
//! ```
//!
//! See `examples/` for complete federation scenarios.

pub use xdmod_alerts as alerts;
pub use xdmod_appkernels as appkernels;
pub use xdmod_auth as auth;
pub use xdmod_chaos as chaos;
pub use xdmod_chart as chart;
pub use xdmod_core as core;
pub use xdmod_gateway as gateway;
pub use xdmod_ingest as ingest;
pub use xdmod_realms as realms;
pub use xdmod_replication as replication;
pub use xdmod_sim as sim;
pub use xdmod_telemetry as telemetry;
pub use xdmod_warehouse as warehouse;

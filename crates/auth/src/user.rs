//! Users, roles, and per-instance directories.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// XDMoD's stakeholder roles (§I-A lists the audiences; XDMoD's ACL model
/// maps them to these roles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Role {
    /// End user: sees their own jobs and public metrics.
    User,
    /// Principal investigator: sees their group's jobs.
    Pi,
    /// Center operations staff: sees all metrics on their instance.
    CenterStaff,
    /// Center management: staff view plus reporting.
    CenterDirector,
    /// Instance administrator.
    Admin,
}

impl Role {
    /// Whether this role may view data belonging to `owner` (a username).
    pub fn may_view_user(self, me: &str, owner: &str) -> bool {
        match self {
            Role::User => me == owner,
            // PI group membership is checked by the caller against the
            // directory; the role alone grants nothing more than self.
            Role::Pi => me == owner,
            Role::CenterStaff | Role::CenterDirector | Role::Admin => true,
        }
    }
}

/// A user record in an instance's directory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct User {
    /// Login name, unique per instance.
    pub username: String,
    /// Display name.
    pub display_name: String,
    /// Email (the natural join key for federated identity mapping).
    pub email: String,
    /// Home organization (e.g. `buffalo.edu`).
    pub organization: String,
    /// Role on this instance.
    pub role: Role,
    /// PI group, when the user belongs to one.
    pub pi_group: Option<String>,
}

impl User {
    /// A plain end user.
    pub fn member(username: &str, email: &str, organization: &str) -> Self {
        User {
            username: username.to_owned(),
            display_name: username.to_owned(),
            email: email.to_owned(),
            organization: organization.to_owned(),
            role: Role::User,
            pi_group: None,
        }
    }

    /// Builder: set the role.
    pub fn with_role(mut self, role: Role) -> Self {
        self.role = role;
        self
    }

    /// Builder: set the PI group.
    pub fn in_group(mut self, group: &str) -> Self {
        self.pi_group = Some(group.to_owned());
        self
    }
}

/// Per-instance user directory.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UserStore {
    users: BTreeMap<String, User>,
}

impl UserStore {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add or replace a user.
    pub fn upsert(&mut self, user: User) {
        self.users.insert(user.username.clone(), user);
    }

    /// Look up a user.
    pub fn get(&self, username: &str) -> Option<&User> {
        self.users.get(username)
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Iterate all users.
    pub fn iter(&self) -> impl Iterator<Item = &User> {
        self.users.values()
    }

    /// Users sharing an email address (candidate duplicates across
    /// instances).
    pub fn by_email(&self, email: &str) -> Vec<&User> {
        self.users.values().filter(|u| u.email == email).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_visibility() {
        assert!(Role::User.may_view_user("alice", "alice"));
        assert!(!Role::User.may_view_user("alice", "bob"));
        assert!(Role::CenterStaff.may_view_user("staff", "bob"));
        assert!(Role::Admin.may_view_user("root", "bob"));
    }

    #[test]
    fn store_upsert_and_lookup() {
        let mut store = UserStore::new();
        store.upsert(User::member("alice", "alice@buffalo.edu", "buffalo.edu"));
        store.upsert(User::member("alice", "alice@buffalo.edu", "buffalo.edu").with_role(Role::Pi));
        assert_eq!(store.len(), 1);
        assert_eq!(store.get("alice").unwrap().role, Role::Pi);
        assert!(store.get("bob").is_none());
    }

    #[test]
    fn email_lookup_finds_duplicates() {
        let mut store = UserStore::new();
        store.upsert(User::member("alice", "a@x.edu", "x.edu"));
        store.upsert(User::member("asmith", "a@x.edu", "x.edu"));
        store.upsert(User::member("bob", "b@x.edu", "x.edu"));
        assert_eq!(store.by_email("a@x.edu").len(), 2);
    }
}

//! Instance sign-on: the front door combining local passwords and SSO.
//!
//! "Users can sign onto an SSO-enabled XDMoD instance using either their
//! local XDMoD password, or their SSO credentials." (§II-D) — this module
//! is that front door (Fig. 4's two arrows into the instance), plus
//! session issuance and the identity-/service-provider mode switch of
//! §II-D3 ("authentication responsibility may rest with the federation
//! hub or with the satellite instances").

use crate::hashing::{keyed_digest, mix_hash, Digest};
use crate::local::LocalAuthenticator;
use crate::saml::Assertion;
use crate::sso::SsoGateway;
use crate::user::{User, UserStore};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a session was established.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuthMethod {
    /// Local XDMoD password (the paper's User Group R).
    Local,
    /// SSO via the named IdP (User Group S).
    Sso {
        /// Issuer entity id.
        idp: String,
    },
}

/// An authenticated session on one instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Session {
    /// Opaque token (keyed digest).
    pub token: Digest,
    /// Authenticated username (instance-local).
    pub username: String,
    /// Instance that issued the session.
    pub instance: String,
    /// How the user signed on.
    pub method: AuthMethod,
    /// Issue time, epoch seconds.
    pub issued_at: i64,
    /// Expiry, epoch seconds.
    pub expires_at: i64,
}

impl Session {
    /// The token as it travels in a cookie: 16 lowercase hex digits.
    pub fn cookie_value(&self) -> String {
        format!("{:016x}", self.token)
    }
}

/// Parse a cookie value minted by [`Session::cookie_value`] back into a
/// token. `None` for anything that is not plain hex — a garbage cookie is
/// an anonymous request, never an error.
pub fn parse_token(cookie: &str) -> Option<Digest> {
    if cookie.is_empty() || cookie.len() > 16 || !cookie.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    Digest::from_str_radix(cookie, 16).ok()
}

/// Session lifetime.
pub const SESSION_TTL_SECS: i64 = 8 * 3600;

/// Where authentication responsibility rests (§II-D3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuthMode {
    /// This instance validates SSO assertions itself.
    ServiceProvider,
    /// A federation hub authenticates on behalf of this instance.
    IdentityProviderDelegated,
}

/// The authentication front door of one XDMoD instance.
pub struct InstanceAuth {
    instance: String,
    mode: AuthMode,
    users: UserStore,
    local: LocalAuthenticator,
    sso: SsoGateway,
    session_key: Digest,
    sessions: BTreeMap<Digest, Session>,
}

impl InstanceAuth {
    /// New front door in the given mode. `multi_sso` lifts the
    /// single-SSO-source restriction (§II-D3's flexible configuration).
    pub fn new(instance: &str, mode: AuthMode, multi_sso: bool) -> Self {
        InstanceAuth {
            instance: instance.to_owned(),
            mode,
            users: UserStore::new(),
            local: LocalAuthenticator::new(),
            sso: if multi_sso {
                SsoGateway::multi(instance)
            } else {
                SsoGateway::single(instance)
            },
            session_key: mix_hash(format!("session:{instance}").as_bytes()),
            sessions: BTreeMap::new(),
        }
    }

    /// This instance's id (the audience SSO assertions must name).
    pub fn instance(&self) -> &str {
        &self.instance
    }

    /// The configured mode.
    pub fn mode(&self) -> AuthMode {
        self.mode
    }

    /// The user directory.
    pub fn users(&self) -> &UserStore {
        &self.users
    }

    /// Enroll a user, optionally with a local password.
    pub fn enroll(&mut self, user: User, password: Option<&str>) {
        if let Some(pw) = password {
            self.local.set_password(&user.username, pw);
        }
        self.users.upsert(user);
    }

    /// Trust an SSO IdP.
    pub fn trust_idp(&mut self, idp: &dyn crate::sso::IdentityProvider) -> Result<(), String> {
        self.sso.trust(idp)
    }

    /// Sign on with the local XDMoD password.
    pub fn login_local(&mut self, username: &str, password: &str, now: i64) -> Option<Session> {
        if !self.local.verify(username, password) {
            return None;
        }
        self.users.get(username)?;
        Some(self.issue(username, AuthMethod::Local, now))
    }

    /// Sign on with an SSO assertion. In
    /// [`AuthMode::IdentityProviderDelegated`] the instance refuses to
    /// validate assertions itself — the hub must do it (see
    /// [`InstanceAuth::login_delegated`]).
    pub fn login_sso(&mut self, assertion: &Assertion, now: i64) -> Option<Session> {
        if self.mode == AuthMode::IdentityProviderDelegated {
            return None;
        }
        let subject = self.sso.validate(assertion, now).ok()?;
        // Unknown SSO subjects are auto-provisioned from assertion
        // attributes — the paper's "more customized user experience for
        // first-time XDMoD users" via Shibboleth metadata.
        if self.users.get(&subject).is_none() {
            let email = assertion
                .attributes
                .get("email")
                .cloned()
                .unwrap_or_default();
            let org = email.split('@').nth(1).unwrap_or("unknown").to_owned();
            self.users.upsert(User::member(&subject, &email, &org));
        }
        Some(self.issue(
            &subject,
            AuthMethod::Sso {
                idp: assertion.issuer.clone(),
            },
            now,
        ))
    }

    /// Accept a session established by a trusted federation hub on this
    /// instance's behalf (delegated mode). The hub passes the username it
    /// authenticated; the instance only checks the user exists locally.
    pub fn login_delegated(&mut self, hub_session: &Session, now: i64) -> Option<Session> {
        if self.mode != AuthMode::IdentityProviderDelegated {
            return None;
        }
        if hub_session.expires_at < now {
            return None;
        }
        self.users.get(&hub_session.username)?;
        let method = hub_session.method.clone();
        Some(self.issue(&hub_session.username, method, now))
    }

    fn issue(&mut self, username: &str, method: AuthMethod, now: i64) -> Session {
        let token = keyed_digest(
            self.session_key,
            format!("{username}:{now}:{}", self.sessions.len()).as_bytes(),
        );
        let session = Session {
            token,
            username: username.to_owned(),
            instance: self.instance.clone(),
            method,
            issued_at: now,
            expires_at: now + SESSION_TTL_SECS,
        };
        self.sessions.insert(token, session.clone());
        session
    }

    /// Validate a presented token at time `now`.
    pub fn validate_session(&self, token: Digest, now: i64) -> Option<&Session> {
        self.sessions
            .get(&token)
            .filter(|s| now <= s.expires_at && now >= s.issued_at)
    }

    /// Revoke a session.
    pub fn logout(&mut self, token: Digest) -> bool {
        self.sessions.remove(&token).is_some()
    }

    /// Live sessions currently on the books (expired ones included until
    /// purged).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Drop every session already expired at `now`; returns how many. A
    /// long-lived serving tier calls this periodically so the session map
    /// tracks live users, not login history.
    pub fn purge_expired(&mut self, now: i64) -> usize {
        let before = self.sessions.len();
        self.sessions.retain(|_, s| s.expires_at >= now);
        before - self.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sso::{IdentityProvider, ShibbolethIdp};

    fn instance() -> InstanceAuth {
        let mut auth = InstanceAuth::new("ccr-xdmod", AuthMode::ServiceProvider, false);
        auth.enroll(
            User::member("alice", "alice@buffalo.edu", "buffalo.edu"),
            Some("local-pw"),
        );
        auth
    }

    fn idp() -> ShibbolethIdp {
        let mut idp = ShibbolethIdp::new("shibboleth.buffalo.edu", "s");
        idp.enroll(
            "alice",
            "sso-pw",
            BTreeMap::from([("email".to_owned(), "alice@buffalo.edu".to_owned())]),
        );
        idp.enroll(
            "carol",
            "sso-pw-c",
            BTreeMap::from([("email".to_owned(), "carol@buffalo.edu".to_owned())]),
        );
        idp
    }

    #[test]
    fn fig4_both_paths_reach_the_same_instance() {
        // User Group R: local password. User Group S: SSO.
        let mut auth = instance();
        let idp = idp();
        auth.trust_idp(&idp).unwrap();

        let local = auth.login_local("alice", "local-pw", 100).unwrap();
        assert_eq!(local.method, AuthMethod::Local);

        let assertion = idp
            .authenticate("alice", "sso-pw", "ccr-xdmod", 100)
            .unwrap();
        let sso = auth.login_sso(&assertion, 110).unwrap();
        assert_eq!(
            sso.method,
            AuthMethod::Sso {
                idp: "shibboleth.buffalo.edu".into()
            }
        );
        assert_eq!(local.username, sso.username);
        assert_ne!(local.token, sso.token);
    }

    #[test]
    fn wrong_local_password_fails() {
        let mut auth = instance();
        assert!(auth.login_local("alice", "nope", 100).is_none());
        assert!(auth.login_local("mallory", "local-pw", 100).is_none());
    }

    #[test]
    fn sso_auto_provisions_first_time_users() {
        let mut auth = instance();
        let idp = idp();
        auth.trust_idp(&idp).unwrap();
        assert!(auth.users().get("carol").is_none());
        let assertion = idp
            .authenticate("carol", "sso-pw-c", "ccr-xdmod", 100)
            .unwrap();
        let session = auth.login_sso(&assertion, 105).unwrap();
        assert_eq!(session.username, "carol");
        // Pre-populated from assertion metadata.
        let carol = auth.users().get("carol").unwrap();
        assert_eq!(carol.email, "carol@buffalo.edu");
        assert_eq!(carol.organization, "buffalo.edu");
    }

    #[test]
    fn session_tokens_validate_and_expire() {
        let mut auth = instance();
        let s = auth.login_local("alice", "local-pw", 1_000).unwrap();
        assert!(auth.validate_session(s.token, 1_000 + 60).is_some());
        assert!(auth
            .validate_session(s.token, 1_000 + SESSION_TTL_SECS + 1)
            .is_none());
        assert!(auth.validate_session(12345, 1_001).is_none());
    }

    #[test]
    fn logout_revokes() {
        let mut auth = instance();
        let s = auth.login_local("alice", "local-pw", 1_000).unwrap();
        assert!(auth.logout(s.token));
        assert!(auth.validate_session(s.token, 1_001).is_none());
        assert!(!auth.logout(s.token));
    }

    #[test]
    fn cookie_values_round_trip_and_garbage_is_anonymous() {
        let mut auth = instance();
        let s = auth.login_local("alice", "local-pw", 1_000).unwrap();
        let cookie = s.cookie_value();
        assert_eq!(cookie.len(), 16);
        assert_eq!(parse_token(&cookie), Some(s.token));
        assert!(auth
            .validate_session(parse_token(&cookie).unwrap(), 1_001)
            .is_some());

        for garbage in ["", "zz", "+ff", "deadbeefdeadbeef0", "12 34"] {
            assert_eq!(parse_token(garbage), None, "{garbage:?}");
        }
    }

    #[test]
    fn purge_drops_only_expired_sessions() {
        let mut auth = instance();
        let old = auth.login_local("alice", "local-pw", 0).unwrap();
        let fresh = auth
            .login_local("alice", "local-pw", SESSION_TTL_SECS + 100)
            .unwrap();
        assert_eq!(auth.session_count(), 2);
        assert_eq!(auth.purge_expired(SESSION_TTL_SECS + 50), 1);
        assert_eq!(auth.session_count(), 1);
        assert!(auth
            .validate_session(old.token, SESSION_TTL_SECS + 50)
            .is_none());
        assert!(auth
            .validate_session(fresh.token, SESSION_TTL_SECS + 200)
            .is_some());
        assert_eq!(auth.purge_expired(SESSION_TTL_SECS + 50), 0);
    }

    #[test]
    fn delegated_mode_refuses_direct_sso_but_accepts_hub_sessions() {
        let idp = idp();
        // Hub validates SSO; satellite is in delegated mode.
        let mut hub = InstanceAuth::new("federation-hub", AuthMode::ServiceProvider, true);
        hub.trust_idp(&idp).unwrap();
        let mut sat = InstanceAuth::new("ccr-xdmod", AuthMode::IdentityProviderDelegated, false);
        sat.enroll(
            User::member("alice", "alice@buffalo.edu", "buffalo.edu"),
            None,
        );

        let assertion = idp
            .authenticate("alice", "sso-pw", "federation-hub", 100)
            .unwrap();
        let hub_session = hub.login_sso(&assertion, 110).unwrap();

        // Direct SSO at the satellite is refused in this mode...
        let sat_assertion = idp
            .authenticate("alice", "sso-pw", "ccr-xdmod", 100)
            .unwrap();
        assert!(sat.login_sso(&sat_assertion, 110).is_none());
        // ...but the hub's session is honored.
        let sat_session = sat.login_delegated(&hub_session, 120).unwrap();
        assert_eq!(sat_session.username, "alice");
        assert_eq!(sat_session.instance, "ccr-xdmod");
    }

    #[test]
    fn delegated_login_requires_known_user_and_fresh_session() {
        let mut sat = InstanceAuth::new("ccr-xdmod", AuthMode::IdentityProviderDelegated, false);
        sat.enroll(User::member("alice", "a@b.edu", "b.edu"), None);
        let stale = Session {
            token: 1,
            username: "alice".into(),
            instance: "federation-hub".into(),
            method: AuthMethod::Local,
            issued_at: 0,
            expires_at: 10,
        };
        assert!(sat.login_delegated(&stale, 1_000).is_none()); // expired
        let unknown = Session {
            username: "mallory".into(),
            expires_at: 2_000,
            ..stale
        };
        assert!(sat.login_delegated(&unknown, 1_000).is_none());
    }
}

//! From-scratch hashing primitives for the authentication **simulation**.
//!
//! ⚠️ **Not cryptography.** The paper's §II-D is about authentication
//! *architecture* — SSO flows, identity/service-provider modes, SAML
//! assertion exchange — not cipher strength. This workspace reproduces
//! the architecture; the primitives below (an FNV-1a-based mixing hash,
//! an iterated salted KDF, and an HMAC-shaped keyed digest) are
//! structurally faithful stand-ins and must never guard real secrets.

/// 64-bit digest produced by [`mix_hash`].
pub type Digest = u64;

/// FNV-1a with extra avalanche mixing (splitmix64 finalizer).
pub fn mix_hash(data: &[u8]) -> Digest {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Finalize.
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Iterated, salted password digest (KDF-shaped).
pub fn kdf(password: &str, salt: u64, iterations: u32) -> Digest {
    let mut state = salt ^ 0xA076_1D64_78BD_642F;
    for round in 0..iterations.max(1) {
        let mut buf = Vec::with_capacity(password.len() + 16);
        buf.extend_from_slice(&state.to_le_bytes());
        buf.extend_from_slice(password.as_bytes());
        buf.extend_from_slice(&round.to_le_bytes());
        state = mix_hash(&buf);
    }
    state
}

/// HMAC-shaped keyed digest: `H((key ^ opad) || H((key ^ ipad) || msg))`.
pub fn keyed_digest(key: u64, message: &[u8]) -> Digest {
    const IPAD: u64 = 0x3636_3636_3636_3636;
    const OPAD: u64 = 0x5C5C_5C5C_5C5C_5C5C;
    let mut inner = Vec::with_capacity(message.len() + 8);
    inner.extend_from_slice(&(key ^ IPAD).to_le_bytes());
    inner.extend_from_slice(message);
    let inner_digest = mix_hash(&inner);
    let mut outer = Vec::with_capacity(16);
    outer.extend_from_slice(&(key ^ OPAD).to_le_bytes());
    outer.extend_from_slice(&inner_digest.to_le_bytes());
    mix_hash(&outer)
}

/// Fixed-time digest comparison (branchless XOR fold), shaped like a
/// constant-time equality check.
pub fn digests_equal(a: Digest, b: Digest) -> bool {
    (a ^ b) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_input_sensitive() {
        assert_eq!(mix_hash(b"alice"), mix_hash(b"alice"));
        assert_ne!(mix_hash(b"alice"), mix_hash(b"alicf"));
        assert_ne!(mix_hash(b""), mix_hash(b"\0"));
    }

    #[test]
    fn kdf_depends_on_salt_and_iterations() {
        let d = kdf("hunter2", 1, 100);
        assert_eq!(d, kdf("hunter2", 1, 100));
        assert_ne!(d, kdf("hunter2", 2, 100));
        assert_ne!(d, kdf("hunter2", 1, 101));
        assert_ne!(d, kdf("hunter3", 1, 100));
    }

    #[test]
    fn zero_iterations_clamped_to_one() {
        assert_eq!(kdf("pw", 7, 0), kdf("pw", 7, 1));
    }

    #[test]
    fn keyed_digest_depends_on_key_and_message() {
        let d = keyed_digest(42, b"assertion");
        assert_eq!(d, keyed_digest(42, b"assertion"));
        assert_ne!(d, keyed_digest(43, b"assertion"));
        assert_ne!(d, keyed_digest(42, b"assertioN"));
    }

    #[test]
    fn digest_comparison() {
        assert!(digests_equal(5, 5));
        assert!(!digests_equal(5, 6));
    }

    #[test]
    fn avalanche_flips_many_bits() {
        let a = mix_hash(b"federation0");
        let b = mix_hash(b"federation1");
        let differing = (a ^ b).count_ones();
        assert!(differing > 16, "only {differing} bits differ");
    }
}

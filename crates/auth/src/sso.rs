//! Identity providers and the per-instance SSO gateway.
//!
//! The paper names the IdP technologies in production use: "we have
//! employed two different approaches, Globus for XSEDE XDMoD, Shibboleth
//! for Open XDMoD ... In addition to Shibboleth and Globus, we support
//! other SSO mechanisms, such as institutional LDAP" and "identity
//! providers such as Keycloak, LDAP, and Shibboleth" (§II-D). Each is
//! modeled here with its distinguishing behaviour:
//!
//! - [`ShibbolethIdp`] — institutional credentials, rich **attribute
//!   metadata** ("enabling Open XDMoD to pre-populate some filters and
//!   fields");
//! - [`GlobusIdp`] — requires users to **link** their institutional
//!   identity to a Globus account before SSO works ("XSEDE users must
//!   simply link their Globus account with their XSEDE credentials");
//! - [`LdapIdp`] — plain directory bind, minimal attributes (also used
//!   for Keycloak-style deployments).
//!
//! [`SsoGateway`] is the instance side: it trusts one or more IdPs
//! (multiple sources being §II-D3's planned "flexible configuration",
//! implemented here) and validates their assertions as a SAML service
//! provider.

use crate::hashing::{mix_hash, Digest};
use crate::saml::{Assertion, SamlError};
use std::collections::{BTreeMap, BTreeSet};

/// Assertion lifetime issued by the IdPs here.
pub const ASSERTION_TTL_SECS: i64 = 300;

/// Common IdP interface: authenticate a user and, on success, issue a
/// signed assertion addressed to a service provider.
pub trait IdentityProvider {
    /// Entity id (issuer string in assertions).
    fn entity_id(&self) -> &str;

    /// Signing key shared with service providers that trust this IdP.
    fn signing_key(&self) -> Digest;

    /// Authenticate `username`/`password` and issue an assertion for
    /// `audience` at time `now`. `None` on failure.
    fn authenticate(
        &self,
        username: &str,
        password: &str,
        audience: &str,
        now: i64,
    ) -> Option<Assertion>;
}

/// A Shibboleth-style institutional IdP with attribute metadata.
#[derive(Debug, Clone)]
pub struct ShibbolethIdp {
    entity_id: String,
    key: Digest,
    /// username → (password, attribute map).
    directory: BTreeMap<String, (String, BTreeMap<String, String>)>,
}

impl ShibbolethIdp {
    /// New IdP; the signing key is derived from the entity id and a
    /// deployment secret.
    pub fn new(entity_id: &str, deployment_secret: &str) -> Self {
        ShibbolethIdp {
            entity_id: entity_id.to_owned(),
            key: mix_hash(format!("shib:{entity_id}:{deployment_secret}").as_bytes()),
            directory: BTreeMap::new(),
        }
    }

    /// Enroll a user with institutional attributes.
    pub fn enroll(&mut self, username: &str, password: &str, attributes: BTreeMap<String, String>) {
        self.directory
            .insert(username.to_owned(), (password.to_owned(), attributes));
    }
}

impl IdentityProvider for ShibbolethIdp {
    fn entity_id(&self) -> &str {
        &self.entity_id
    }

    fn signing_key(&self) -> Digest {
        self.key
    }

    fn authenticate(
        &self,
        username: &str,
        password: &str,
        audience: &str,
        now: i64,
    ) -> Option<Assertion> {
        let (stored, attrs) = self.directory.get(username)?;
        if stored != password {
            return None;
        }
        Some(Assertion::issue(
            &self.entity_id,
            username,
            audience,
            attrs.clone(),
            now,
            ASSERTION_TTL_SECS,
            self.key,
        ))
    }
}

/// A Globus-style IdP: institutional login plus an explicit
/// account-linking step before SSO is possible.
#[derive(Debug, Clone)]
pub struct GlobusIdp {
    entity_id: String,
    key: Digest,
    /// Globus account → password.
    accounts: BTreeMap<String, String>,
    /// Globus account → linked institutional identity (e.g. XSEDE
    /// username).
    links: BTreeMap<String, String>,
}

impl GlobusIdp {
    /// New Globus-style IdP.
    pub fn new(entity_id: &str, deployment_secret: &str) -> Self {
        GlobusIdp {
            entity_id: entity_id.to_owned(),
            key: mix_hash(format!("globus:{entity_id}:{deployment_secret}").as_bytes()),
            accounts: BTreeMap::new(),
            links: BTreeMap::new(),
        }
    }

    /// Create a Globus account.
    pub fn register(&mut self, account: &str, password: &str) {
        self.accounts
            .insert(account.to_owned(), password.to_owned());
    }

    /// Link a Globus account to an institutional identity — the paper's
    /// prerequisite step ("before they can utilize SSO, XSEDE users must
    /// simply link their Globus account with their XSEDE credentials").
    pub fn link(&mut self, account: &str, institutional_identity: &str) -> bool {
        if !self.accounts.contains_key(account) {
            return false;
        }
        self.links
            .insert(account.to_owned(), institutional_identity.to_owned());
        true
    }
}

impl IdentityProvider for GlobusIdp {
    fn entity_id(&self) -> &str {
        &self.entity_id
    }

    fn signing_key(&self) -> Digest {
        self.key
    }

    fn authenticate(
        &self,
        username: &str,
        password: &str,
        audience: &str,
        now: i64,
    ) -> Option<Assertion> {
        if self.accounts.get(username)? != password {
            return None;
        }
        // No link, no SSO.
        let linked = self.links.get(username)?;
        let attrs = BTreeMap::from([("globus_account".to_owned(), username.to_owned())]);
        Some(Assertion::issue(
            &self.entity_id,
            linked, // subject is the *institutional* identity
            audience,
            attrs,
            now,
            ASSERTION_TTL_SECS,
            self.key,
        ))
    }
}

/// An LDAP/Keycloak-style directory bind IdP.
#[derive(Debug, Clone)]
pub struct LdapIdp {
    entity_id: String,
    key: Digest,
    binds: BTreeMap<String, String>,
}

impl LdapIdp {
    /// New LDAP-style IdP.
    pub fn new(entity_id: &str, deployment_secret: &str) -> Self {
        LdapIdp {
            entity_id: entity_id.to_owned(),
            key: mix_hash(format!("ldap:{entity_id}:{deployment_secret}").as_bytes()),
            binds: BTreeMap::new(),
        }
    }

    /// Add a directory entry.
    pub fn add_entry(&mut self, username: &str, password: &str) {
        self.binds.insert(username.to_owned(), password.to_owned());
    }
}

impl IdentityProvider for LdapIdp {
    fn entity_id(&self) -> &str {
        &self.entity_id
    }

    fn signing_key(&self) -> Digest {
        self.key
    }

    fn authenticate(
        &self,
        username: &str,
        password: &str,
        audience: &str,
        now: i64,
    ) -> Option<Assertion> {
        if self.binds.get(username)? != password {
            return None;
        }
        Some(Assertion::issue(
            &self.entity_id,
            username,
            audience,
            BTreeMap::new(),
            now,
            ASSERTION_TTL_SECS,
            self.key,
        ))
    }
}

/// The service-provider side of SSO on one XDMoD instance (or hub).
///
/// Production XDMoD today allows "only a single SSO authentication
/// source" (§II-D2); the planned flexible configuration (§II-D3) allows
/// several. [`SsoGateway`] supports both: `single_source` enforces the
/// current restriction when set.
#[derive(Debug, Clone)]
pub struct SsoGateway {
    /// This instance's entity id (the audience it accepts).
    audience: String,
    /// Trusted issuer → signing key.
    trusted: BTreeMap<String, Digest>,
    /// Enforce the single-SSO-source restriction.
    single_source: bool,
    /// Issuers seen (diagnostics).
    issuers_seen: BTreeSet<String>,
}

impl SsoGateway {
    /// Gateway for an instance, enforcing the single-source restriction.
    pub fn single(audience: &str) -> Self {
        SsoGateway {
            audience: audience.to_owned(),
            trusted: BTreeMap::new(),
            single_source: true,
            issuers_seen: BTreeSet::new(),
        }
    }

    /// Gateway allowing multiple SSO sources (§II-D3's future flexible
    /// configuration, implemented).
    pub fn multi(audience: &str) -> Self {
        SsoGateway {
            single_source: false,
            ..SsoGateway::single(audience)
        }
    }

    /// The audience this gateway accepts assertions for.
    pub fn audience(&self) -> &str {
        &self.audience
    }

    /// Trust an IdP. Errors (with a message) if the single-source
    /// restriction would be violated.
    pub fn trust(&mut self, idp: &dyn IdentityProvider) -> Result<(), String> {
        if self.single_source
            && !self.trusted.is_empty()
            && !self.trusted.contains_key(idp.entity_id())
        {
            return Err(format!(
                "instance {} is configured for a single SSO source ({}); \
                 enable multi-source mode to add {}",
                self.audience,
                self.trusted.keys().next().expect("non-empty"), // xc-allow: guarded by the non-empty single-source check above
                idp.entity_id()
            ));
        }
        self.trusted
            .insert(idp.entity_id().to_owned(), idp.signing_key());
        Ok(())
    }

    /// Validate an incoming assertion. On success returns the subject
    /// (who the user is) — the caller maps it into its user directory.
    pub fn validate(&mut self, assertion: &Assertion, now: i64) -> Result<String, SamlError> {
        let key = self
            .trusted
            .get(&assertion.issuer)
            .copied()
            .ok_or_else(|| SamlError::UnknownIssuer(assertion.issuer.clone()))?;
        assertion.validate(key, &self.audience, now)?;
        self.issuers_seen.insert(assertion.issuer.clone());
        Ok(assertion.subject.clone())
    }

    /// Issuers that have successfully authenticated users here.
    pub fn issuers_seen(&self) -> impl Iterator<Item = &str> {
        self.issuers_seen.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shib() -> ShibbolethIdp {
        let mut idp = ShibbolethIdp::new("shibboleth.buffalo.edu", "s3cret");
        idp.enroll(
            "alice",
            "pw-a",
            BTreeMap::from([
                ("email".to_owned(), "alice@buffalo.edu".to_owned()),
                ("department".to_owned(), "physics".to_owned()),
            ]),
        );
        idp
    }

    #[test]
    fn shibboleth_flow_with_attributes() {
        let idp = shib();
        let mut gw = SsoGateway::single("ccr-xdmod");
        gw.trust(&idp).unwrap();
        let assertion = idp.authenticate("alice", "pw-a", "ccr-xdmod", 100).unwrap();
        // Metadata attributes travel with the assertion.
        assert_eq!(
            assertion.attributes.get("department").map(String::as_str),
            Some("physics")
        );
        assert_eq!(gw.validate(&assertion, 120).unwrap(), "alice");
    }

    #[test]
    fn wrong_password_yields_no_assertion() {
        let idp = shib();
        assert!(idp
            .authenticate("alice", "nope", "ccr-xdmod", 100)
            .is_none());
        assert!(idp.authenticate("bob", "pw-a", "ccr-xdmod", 100).is_none());
    }

    #[test]
    fn globus_requires_account_linking() {
        let mut idp = GlobusIdp::new("auth.globus.org", "gsecret");
        idp.register("alice.globus", "pw");
        // Unlinked: SSO refused.
        assert!(idp
            .authenticate("alice.globus", "pw", "xsede-xdmod", 100)
            .is_none());
        // Linking an unknown account fails.
        assert!(!idp.link("nobody", "xsede_alice"));
        // After linking, the assertion's subject is the *institutional*
        // identity.
        assert!(idp.link("alice.globus", "xsede_alice"));
        let a = idp
            .authenticate("alice.globus", "pw", "xsede-xdmod", 100)
            .unwrap();
        assert_eq!(a.subject, "xsede_alice");
        assert_eq!(
            a.attributes.get("globus_account").map(String::as_str),
            Some("alice.globus")
        );
    }

    #[test]
    fn ldap_bind_flow() {
        let mut idp = LdapIdp::new("ldap.example.edu", "lsecret");
        idp.add_entry("bob", "pw-b");
        let mut gw = SsoGateway::single("dept-xdmod");
        gw.trust(&idp).unwrap();
        let a = idp.authenticate("bob", "pw-b", "dept-xdmod", 50).unwrap();
        assert_eq!(gw.validate(&a, 60).unwrap(), "bob");
    }

    #[test]
    fn single_source_restriction_enforced() {
        let shib = shib();
        let ldap = LdapIdp::new("ldap.example.edu", "x");
        let mut gw = SsoGateway::single("ccr-xdmod");
        gw.trust(&shib).unwrap();
        let err = gw.trust(&ldap).unwrap_err();
        assert!(err.contains("single SSO source"));
        // Re-trusting the same IdP is fine (key rotation).
        gw.trust(&shib).unwrap();
    }

    #[test]
    fn multi_source_gateway_accepts_several_idps() {
        let shib = shib();
        let mut ldap = LdapIdp::new("ldap.example.edu", "x");
        ldap.add_entry("bob", "pw-b");
        let mut gw = SsoGateway::multi("federation-hub");
        gw.trust(&shib).unwrap();
        gw.trust(&ldap).unwrap();
        let a1 = shib
            .authenticate("alice", "pw-a", "federation-hub", 10)
            .unwrap();
        let a2 = ldap
            .authenticate("bob", "pw-b", "federation-hub", 10)
            .unwrap();
        assert_eq!(gw.validate(&a1, 20).unwrap(), "alice");
        assert_eq!(gw.validate(&a2, 20).unwrap(), "bob");
        let seen: Vec<&str> = gw.issuers_seen().collect();
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn untrusted_issuer_rejected() {
        let idp = shib();
        let mut gw = SsoGateway::single("ccr-xdmod");
        // Gateway never trusted the IdP.
        let a = idp.authenticate("alice", "pw-a", "ccr-xdmod", 10).unwrap();
        assert!(matches!(
            gw.validate(&a, 20),
            Err(SamlError::UnknownIssuer(_))
        ));
    }

    #[test]
    fn assertion_for_another_instance_rejected() {
        let idp = shib();
        let mut gw = SsoGateway::single("ccr-xdmod");
        gw.trust(&idp).unwrap();
        let a = idp
            .authenticate("alice", "pw-a", "other-instance", 10)
            .unwrap();
        assert!(matches!(
            gw.validate(&a, 20),
            Err(SamlError::WrongAudience { .. })
        ));
    }
}

//! SAML-shaped assertions.
//!
//! "We have enabled web-browser Single-Sign On (SSO) for XDMoD by means
//! of Security Assertion Markup Language (SAML), a common standard for
//! exchanging user authentication and authorization data on the web."
//! (§II-D)
//!
//! An [`Assertion`] carries the SAML trio — issuer, subject, audience —
//! plus attribute statements (the metadata Shibboleth-style IdPs provide,
//! used to "pre-populate some filters and fields"), a validity window,
//! and a keyed signature over the canonical byte encoding. Signing uses
//! the workspace's simulated HMAC (see [`crate::hashing`]); the
//! *validation logic* — signature, audience restriction, expiry, clock
//! skew — mirrors a real SAML service provider's.

use crate::hashing::{digests_equal, keyed_digest, Digest};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Why an assertion was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamlError {
    /// Signature did not verify under the expected IdP key.
    BadSignature,
    /// Assertion expired (or is not yet valid beyond allowed skew).
    Expired,
    /// Audience restriction names a different service provider.
    WrongAudience {
        /// Audience the assertion was issued for.
        expected: String,
        /// Audience we are.
        got: String,
    },
    /// Assertion issued by an IdP this SP does not trust.
    UnknownIssuer(String),
}

impl std::fmt::Display for SamlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamlError::BadSignature => f.write_str("assertion signature invalid"),
            SamlError::Expired => f.write_str("assertion outside its validity window"),
            SamlError::WrongAudience { expected, got } => {
                write!(f, "assertion for audience {expected}, not {got}")
            }
            SamlError::UnknownIssuer(i) => write!(f, "untrusted issuer {i}"),
        }
    }
}

impl std::error::Error for SamlError {}

/// A signed authentication assertion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assertion {
    /// IdP entity id (e.g. `shibboleth.buffalo.edu`).
    pub issuer: String,
    /// Authenticated subject (username at the IdP).
    pub subject: String,
    /// Service provider the assertion is addressed to (an XDMoD instance
    /// or federation hub id).
    pub audience: String,
    /// Attribute statements (email, department, role, ...).
    pub attributes: BTreeMap<String, String>,
    /// Issue time, epoch seconds.
    pub issued_at: i64,
    /// Expiry, epoch seconds.
    pub expires_at: i64,
    /// Keyed digest over the canonical encoding.
    pub signature: Digest,
}

/// Allowed clock skew between IdP and SP, seconds.
pub const CLOCK_SKEW_SECS: i64 = 60;

impl Assertion {
    /// Canonical byte encoding covered by the signature.
    fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for field in [&self.issuer, &self.subject, &self.audience] {
            out.extend_from_slice(field.as_bytes());
            out.push(0x1F);
        }
        for (k, v) in &self.attributes {
            out.extend_from_slice(k.as_bytes());
            out.push(0x1E);
            out.extend_from_slice(v.as_bytes());
            out.push(0x1F);
        }
        out.extend_from_slice(&self.issued_at.to_le_bytes());
        out.extend_from_slice(&self.expires_at.to_le_bytes());
        out
    }

    /// Build and sign an assertion with the IdP's key.
    #[allow(clippy::too_many_arguments)]
    pub fn issue(
        issuer: &str,
        subject: &str,
        audience: &str,
        attributes: BTreeMap<String, String>,
        issued_at: i64,
        ttl_secs: i64,
        idp_key: Digest,
    ) -> Assertion {
        let mut a = Assertion {
            issuer: issuer.to_owned(),
            subject: subject.to_owned(),
            audience: audience.to_owned(),
            attributes,
            issued_at,
            expires_at: issued_at + ttl_secs,
            signature: 0,
        };
        a.signature = keyed_digest(idp_key, &a.canonical_bytes());
        a
    }

    /// Validate as a service provider: signature under `idp_key`,
    /// audience equals `expected_audience`, and `now` within the validity
    /// window (± [`CLOCK_SKEW_SECS`]).
    pub fn validate(
        &self,
        idp_key: Digest,
        expected_audience: &str,
        now: i64,
    ) -> Result<(), SamlError> {
        if !digests_equal(
            self.signature,
            keyed_digest(idp_key, &self.canonical_bytes()),
        ) {
            return Err(SamlError::BadSignature);
        }
        if self.audience != expected_audience {
            return Err(SamlError::WrongAudience {
                expected: self.audience.clone(),
                got: expected_audience.to_owned(),
            });
        }
        if now + CLOCK_SKEW_SECS < self.issued_at || now - CLOCK_SKEW_SECS > self.expires_at {
            return Err(SamlError::Expired);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs() -> BTreeMap<String, String> {
        BTreeMap::from([
            ("email".to_owned(), "alice@buffalo.edu".to_owned()),
            ("department".to_owned(), "physics".to_owned()),
        ])
    }

    fn sample(key: Digest) -> Assertion {
        Assertion::issue(
            "shibboleth.buffalo.edu",
            "alice",
            "ccr-xdmod",
            attrs(),
            1_000_000,
            300,
            key,
        )
    }

    #[test]
    fn valid_assertion_passes() {
        let a = sample(42);
        a.validate(42, "ccr-xdmod", 1_000_100).unwrap();
    }

    #[test]
    fn wrong_key_fails_signature() {
        let a = sample(42);
        assert_eq!(
            a.validate(43, "ccr-xdmod", 1_000_100),
            Err(SamlError::BadSignature)
        );
    }

    #[test]
    fn tampered_fields_fail_signature() {
        let mut a = sample(42);
        a.subject = "mallory".into();
        assert_eq!(
            a.validate(42, "ccr-xdmod", 1_000_100),
            Err(SamlError::BadSignature)
        );
        let mut a = sample(42);
        a.attributes.insert("role".into(), "admin".into());
        assert_eq!(
            a.validate(42, "ccr-xdmod", 1_000_100),
            Err(SamlError::BadSignature)
        );
        let mut a = sample(42);
        a.expires_at += 1_000_000; // extend validity
        assert_eq!(
            a.validate(42, "ccr-xdmod", 1_000_100),
            Err(SamlError::BadSignature)
        );
    }

    #[test]
    fn audience_restriction_enforced() {
        let a = sample(42);
        match a.validate(42, "other-xdmod", 1_000_100) {
            Err(SamlError::WrongAudience { expected, got }) => {
                assert_eq!(expected, "ccr-xdmod");
                assert_eq!(got, "other-xdmod");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn expiry_and_skew() {
        let a = sample(42);
        // Just past expiry but within skew: ok.
        a.validate(42, "ccr-xdmod", 1_000_300 + CLOCK_SKEW_SECS)
            .unwrap();
        // Beyond skew: rejected.
        assert_eq!(
            a.validate(42, "ccr-xdmod", 1_000_300 + CLOCK_SKEW_SECS + 1),
            Err(SamlError::Expired)
        );
        // Before issuance beyond skew: rejected.
        assert_eq!(
            a.validate(42, "ccr-xdmod", 1_000_000 - CLOCK_SKEW_SECS - 1),
            Err(SamlError::Expired)
        );
    }

    #[test]
    fn serde_round_trip_preserves_signature_validity() {
        let a = sample(7);
        let json = serde_json::to_string(&a).unwrap();
        let back: Assertion = serde_json::from_str(&json).unwrap();
        back.validate(7, "ccr-xdmod", 1_000_050).unwrap();
    }
}

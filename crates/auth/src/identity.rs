//! Federated identity mapping — the paper's acknowledged gap, implemented.
//!
//! "We do not yet offer any automated means of mapping or de-duplicating
//! users from different XDMoD satellite instances in the federated master
//! hub. For example: consider a CCR user who also has an XSEDE
//! allocation. ... At this time, the user would appear twice in the
//! federation; once as the CCR user, once as the XSEDE user. The work
//! necessary to federate such user identities must be performed
//! separately on the federation database; it is not yet handled by the
//! Federation module, though this is a goal for a future release."
//! (§II-D4)
//!
//! [`IdentityMap`] implements that future release: it assigns each
//! `(instance, username)` pair to a federation-wide person, proposes
//! merges automatically by matching email addresses, and supports manual
//! unification for the cases heuristics can't see.

use crate::user::User;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A federation-wide person identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PersonId(pub u64);

/// One instance-local identity: where the account lives and what it's
/// called there.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocalIdentity {
    /// Instance name (e.g. `ccr-xdmod`, `xsede-xdmod`).
    pub instance: String,
    /// Username on that instance.
    pub username: String,
}

impl LocalIdentity {
    /// Construct from instance and username.
    pub fn new(instance: &str, username: &str) -> Self {
        LocalIdentity {
            instance: instance.to_owned(),
            username: username.to_owned(),
        }
    }
}

/// A proposed merge of two persons, with the evidence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergeProposal {
    /// Person to keep.
    pub keep: PersonId,
    /// Person to fold into `keep`.
    pub merge: PersonId,
    /// Why (e.g. `email:alice@buffalo.edu`).
    pub evidence: String,
}

/// The hub-side identity map.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IdentityMap {
    next_id: u64,
    /// Local identity → person.
    assignments: BTreeMap<LocalIdentity, PersonId>,
    /// Known emails per person (merge evidence).
    emails: BTreeMap<PersonId, Vec<String>>,
}

impl IdentityMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a user observed on an instance. Without merging, each
    /// local identity is its own person — exactly the paper's "appears
    /// twice" behaviour.
    pub fn register(&mut self, instance: &str, user: &User) -> PersonId {
        let key = LocalIdentity::new(instance, &user.username);
        if let Some(&pid) = self.assignments.get(&key) {
            return pid;
        }
        let pid = PersonId(self.next_id);
        self.next_id += 1;
        self.assignments.insert(key, pid);
        if !user.email.is_empty() {
            self.emails.entry(pid).or_default().push(user.email.clone());
        }
        pid
    }

    /// The person behind a local identity, if registered.
    pub fn person_of(&self, instance: &str, username: &str) -> Option<PersonId> {
        self.assignments
            .get(&LocalIdentity::new(instance, username))
            .copied()
    }

    /// All local identities of a person, across every instance.
    pub fn identities_of(&self, person: PersonId) -> Vec<&LocalIdentity> {
        self.assignments
            .iter()
            .filter(|(_, &p)| p == person)
            .map(|(k, _)| k)
            .collect()
    }

    /// Number of distinct persons currently known.
    pub fn person_count(&self) -> usize {
        let mut ids: Vec<PersonId> = self.assignments.values().copied().collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Propose merges: persons sharing an email address are probably the
    /// same human. Proposals are deterministic (lowest id kept) and
    /// require explicit application — automated evidence, human decision.
    pub fn propose_merges(&self) -> Vec<MergeProposal> {
        let mut by_email: BTreeMap<&str, Vec<PersonId>> = BTreeMap::new();
        for (pid, emails) in &self.emails {
            for e in emails {
                by_email.entry(e.as_str()).or_default().push(*pid);
            }
        }
        let mut proposals = Vec::new();
        for (email, mut pids) in by_email {
            pids.sort_unstable();
            pids.dedup();
            if pids.len() < 2 {
                continue;
            }
            let keep = pids[0];
            for &merge in &pids[1..] {
                proposals.push(MergeProposal {
                    keep,
                    merge,
                    evidence: format!("email:{email}"),
                });
            }
        }
        proposals
    }

    /// Apply a merge: every identity of `merge` now belongs to `keep`.
    pub fn unify(&mut self, keep: PersonId, merge: PersonId) {
        if keep == merge {
            return;
        }
        for pid in self.assignments.values_mut() {
            if *pid == merge {
                *pid = keep;
            }
        }
        if let Some(mut emails) = self.emails.remove(&merge) {
            self.emails.entry(keep).or_default().append(&mut emails);
        }
    }

    /// Apply every proposal from [`propose_merges`](Self::propose_merges)
    /// — the fully automated mode. Returns how many merges ran.
    pub fn auto_deduplicate(&mut self) -> usize {
        // Proposals may chain (A<-B, B<-C); iterate to a fixed point.
        let mut total = 0;
        loop {
            let proposals = self.propose_merges();
            if proposals.is_empty() {
                return total;
            }
            for p in proposals {
                self.unify(p.keep, p.merge);
                total += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alice_ccr() -> User {
        User::member("alice", "alice@buffalo.edu", "buffalo.edu")
    }

    fn alice_xsede() -> User {
        User::member("asmith42", "alice@buffalo.edu", "buffalo.edu")
    }

    #[test]
    fn unmerged_user_appears_twice_like_the_paper_says() {
        let mut map = IdentityMap::new();
        let p1 = map.register("ccr-xdmod", &alice_ccr());
        let p2 = map.register("xsede-xdmod", &alice_xsede());
        assert_ne!(p1, p2);
        assert_eq!(map.person_count(), 2);
    }

    #[test]
    fn registration_is_idempotent() {
        let mut map = IdentityMap::new();
        let p1 = map.register("ccr-xdmod", &alice_ccr());
        let p2 = map.register("ccr-xdmod", &alice_ccr());
        assert_eq!(p1, p2);
        assert_eq!(map.person_count(), 1);
    }

    #[test]
    fn email_evidence_proposes_the_merge() {
        let mut map = IdentityMap::new();
        map.register("ccr-xdmod", &alice_ccr());
        map.register("xsede-xdmod", &alice_xsede());
        map.register(
            "ccr-xdmod",
            &User::member("bob", "bob@buffalo.edu", "buffalo.edu"),
        );
        let proposals = map.propose_merges();
        assert_eq!(proposals.len(), 1);
        assert!(proposals[0].evidence.contains("alice@buffalo.edu"));
    }

    #[test]
    fn unify_joins_identities_across_instances() {
        let mut map = IdentityMap::new();
        let p1 = map.register("ccr-xdmod", &alice_ccr());
        let p2 = map.register("xsede-xdmod", &alice_xsede());
        map.unify(p1, p2);
        assert_eq!(map.person_count(), 1);
        let ids = map.identities_of(p1);
        assert_eq!(ids.len(), 2);
        assert_eq!(map.person_of("xsede-xdmod", "asmith42"), Some(p1));
    }

    #[test]
    fn auto_deduplicate_reaches_fixed_point() {
        let mut map = IdentityMap::new();
        map.register("a-xdmod", &User::member("u1", "same@x.edu", "x.edu"));
        map.register("b-xdmod", &User::member("u2", "same@x.edu", "x.edu"));
        map.register("c-xdmod", &User::member("u3", "same@x.edu", "x.edu"));
        let merges = map.auto_deduplicate();
        assert_eq!(merges, 2);
        assert_eq!(map.person_count(), 1);
        assert!(map.propose_merges().is_empty());
    }

    #[test]
    fn distinct_people_are_never_proposed() {
        let mut map = IdentityMap::new();
        map.register("a-xdmod", &User::member("u1", "one@x.edu", "x.edu"));
        map.register("b-xdmod", &User::member("u2", "two@x.edu", "x.edu"));
        assert!(map.propose_merges().is_empty());
        assert_eq!(map.auto_deduplicate(), 0);
    }

    #[test]
    fn self_unify_is_a_no_op() {
        let mut map = IdentityMap::new();
        let p = map.register("a-xdmod", &alice_ccr());
        map.unify(p, p);
        assert_eq!(map.person_count(), 1);
    }

    #[test]
    fn empty_email_is_not_evidence() {
        let mut map = IdentityMap::new();
        map.register("a-xdmod", &User::member("u1", "", "x.edu"));
        map.register("b-xdmod", &User::member("u2", "", "x.edu"));
        assert!(map.propose_merges().is_empty());
    }
}

//! Local-password authentication.
//!
//! "Users retain the ability to authenticate directly on the XDMoD
//! instance" (§II-D) — User Group R in the paper's Fig. 4. Passwords are
//! stored as salted, iterated digests (simulated KDF; see
//! [`crate::hashing`]).

use crate::hashing::{digests_equal, kdf, mix_hash, Digest};
use std::collections::BTreeMap;

/// Iterations of the (simulated) KDF.
const KDF_ITERATIONS: u32 = 64;

/// Stored credential: salt + digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StoredCredential {
    salt: u64,
    digest: Digest,
}

/// Local password database for one XDMoD instance.
#[derive(Debug, Clone, Default)]
pub struct LocalAuthenticator {
    credentials: BTreeMap<String, StoredCredential>,
}

impl LocalAuthenticator {
    /// Empty password store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or reset) a user's password. The salt is derived from
    /// the username so the store is deterministic for tests; every user
    /// still gets a distinct salt.
    pub fn set_password(&mut self, username: &str, password: &str) {
        let salt = mix_hash(format!("salt:{username}").as_bytes());
        let digest = kdf(password, salt, KDF_ITERATIONS);
        self.credentials
            .insert(username.to_owned(), StoredCredential { salt, digest });
    }

    /// Verify a password. Unknown users and wrong passwords are
    /// indistinguishable to the caller.
    pub fn verify(&self, username: &str, password: &str) -> bool {
        match self.credentials.get(username) {
            Some(cred) => digests_equal(kdf(password, cred.salt, KDF_ITERATIONS), cred.digest),
            None => {
                // Burn the same work for unknown users (timing-shape
                // parity with the real thing).
                let _ = kdf(password, 0, KDF_ITERATIONS);
                false
            }
        }
    }

    /// Whether a user has a local credential.
    pub fn has_user(&self, username: &str) -> bool {
        self.credentials.contains_key(username)
    }

    /// Remove a user's credential.
    pub fn remove(&mut self, username: &str) -> bool {
        self.credentials.remove(username).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_password_verifies() {
        let mut auth = LocalAuthenticator::new();
        auth.set_password("alice", "correct horse");
        assert!(auth.verify("alice", "correct horse"));
        assert!(!auth.verify("alice", "wrong horse"));
        assert!(!auth.verify("bob", "correct horse"));
    }

    #[test]
    fn password_reset_invalidates_old() {
        let mut auth = LocalAuthenticator::new();
        auth.set_password("alice", "first");
        auth.set_password("alice", "second");
        assert!(!auth.verify("alice", "first"));
        assert!(auth.verify("alice", "second"));
    }

    #[test]
    fn salts_differ_per_user() {
        let mut auth = LocalAuthenticator::new();
        auth.set_password("alice", "same");
        auth.set_password("bob", "same");
        let a = auth.credentials.get("alice").unwrap();
        let b = auth.credentials.get("bob").unwrap();
        assert_ne!(a.salt, b.salt);
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn remove_revokes_access() {
        let mut auth = LocalAuthenticator::new();
        auth.set_password("alice", "pw");
        assert!(auth.remove("alice"));
        assert!(!auth.verify("alice", "pw"));
        assert!(!auth.remove("alice"));
    }

    #[test]
    fn empty_password_is_a_credential_like_any_other() {
        let mut auth = LocalAuthenticator::new();
        auth.set_password("alice", "");
        assert!(auth.verify("alice", ""));
        assert!(!auth.verify("alice", " "));
    }
}

//! # xdmod-auth
//!
//! Authentication for XDMoD instances and federations (paper §II-D):
//! local passwords, SAML-style SSO with Shibboleth/Globus/LDAP-shaped
//! identity providers, single- and multi-source SSO configuration,
//! service-provider vs. delegated (hub-authenticates) modes, and the
//! federated identity mapping the paper lists as future work.
//!
//! ⚠️ The cryptographic primitives are **simulations** (see
//! [`hashing`]): structurally faithful, deliberately not secure. The
//! authentication *architecture* — flows, trust relationships, validity
//! checking — is the reproduction target.

#![warn(missing_docs)]

pub mod hashing;
pub mod identity;
pub mod local;
pub mod saml;
pub mod session;
pub mod sso;
pub mod user;

pub use identity::{IdentityMap, LocalIdentity, MergeProposal, PersonId};
pub use local::LocalAuthenticator;
pub use saml::{Assertion, SamlError};
pub use session::{parse_token, AuthMethod, AuthMode, InstanceAuth, Session, SESSION_TTL_SECS};
pub use sso::{GlobusIdp, IdentityProvider, LdapIdp, ShibbolethIdp, SsoGateway};
pub use user::{Role, User, UserStore};

//! Realm model: XDMoD's grouping of metrics by the kind of information
//! they measure.
//!
//! "The metrics collected by XDMoD are assembled into groups called
//! realms, based on the type of information they measure." (§I-D). This
//! workspace implements the four realms the paper discusses: **HPC Jobs**,
//! **SUPReMM** (job-level performance), **Storage**, and **Cloud**.

use serde::{Deserialize, Serialize};
use xdmod_warehouse::{Aggregate, AggregationSpec, TableSchema};

/// The realms implemented in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RealmKind {
    /// Aggregate usage gleaned largely from job accounting data.
    Jobs,
    /// Individual job-level performance data from hardware counters.
    Supremm,
    /// Storage utilization, quotas, and (eventually) metadata rates.
    Storage,
    /// VM-centric metrics for cloud resources.
    Cloud,
}

impl RealmKind {
    /// All realms.
    pub const ALL: [RealmKind; 4] = [
        RealmKind::Jobs,
        RealmKind::Supremm,
        RealmKind::Storage,
        RealmKind::Cloud,
    ];

    /// Stable identifier used in table names and configs.
    pub fn ident(self) -> &'static str {
        match self {
            RealmKind::Jobs => "jobs",
            RealmKind::Supremm => "supremm",
            RealmKind::Storage => "storage",
            RealmKind::Cloud => "cloud",
        }
    }

    /// Display name as the paper uses it.
    pub fn display_name(self) -> &'static str {
        match self {
            RealmKind::Jobs => "HPC Jobs",
            RealmKind::Supremm => "SUPReMM",
            RealmKind::Storage => "Storage",
            RealmKind::Cloud => "Cloud",
        }
    }

    /// Whether this realm's raw data is replicated to a federation hub in
    /// the initial federation release.
    ///
    /// "The initial release of the federation module replicates only the
    /// HPC Jobs realm data to the XDMoD federation hub. Performance data
    /// is not yet incorporated in federation." (§II-C5). Storage and Cloud
    /// join federations in the Aristotle deployment (§III-B), so they
    /// default to federated here as well.
    pub fn federated_by_default(self) -> bool {
        !matches!(self, RealmKind::Supremm)
    }
}

/// A metric: something XDMoD can chart, with its aggregate definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDef {
    /// Stable identifier (e.g. `total_su`).
    pub id: String,
    /// Display label (e.g. `"SUs Charged: Total"`).
    pub label: String,
    /// Unit shown on chart axes (e.g. `"XD SU"`).
    pub unit: String,
    /// How the metric is computed from the realm's fact table.
    pub aggregate: Aggregate,
}

/// A dimension: something metrics can be grouped or drilled down by.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimensionDef {
    /// Stable identifier (e.g. `resource`).
    pub id: String,
    /// Display label.
    pub label: String,
    /// Fact-table column this dimension reads.
    pub column: String,
    /// Whether the dimension is numeric and therefore subject to
    /// configurable aggregation levels (§II-C3: "aggregation levels ...
    /// apply only to numeric dimensions").
    pub numeric: bool,
}

/// A fully-described realm: fact schema plus metric/dimension catalogs and
/// the default aggregation pipeline.
#[derive(Debug, Clone)]
pub struct Realm {
    /// Which realm this is.
    pub kind: RealmKind,
    /// Schema of the realm's primary fact table.
    pub fact_schema: TableSchema,
    /// Auxiliary tables (e.g. SUPReMM per-job timeseries, job scripts).
    pub aux_schemas: Vec<TableSchema>,
    /// Chartable metrics.
    pub metrics: Vec<MetricDef>,
    /// Group-by/drill-down dimensions.
    pub dimensions: Vec<DimensionDef>,
    /// Default aggregation pipeline (periods × dims × measures).
    pub default_aggregation: AggregationSpec,
}

impl Realm {
    /// Find a metric by id.
    pub fn metric(&self, id: &str) -> Option<&MetricDef> {
        self.metrics.iter().find(|m| m.id == id)
    }

    /// Find a dimension by id.
    pub fn dimension(&self, id: &str) -> Option<&DimensionDef> {
        self.dimensions.iter().find(|d| d.id == id)
    }

    /// Numeric dimensions — the ones aggregation levels apply to.
    pub fn numeric_dimensions(&self) -> impl Iterator<Item = &DimensionDef> {
        self.dimensions.iter().filter(|d| d.numeric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_are_stable_and_distinct() {
        let ids: Vec<&str> = RealmKind::ALL.iter().map(|r| r.ident()).collect();
        assert_eq!(ids, vec!["jobs", "supremm", "storage", "cloud"]);
    }

    #[test]
    fn only_supremm_is_excluded_from_federation() {
        assert!(RealmKind::Jobs.federated_by_default());
        assert!(!RealmKind::Supremm.federated_by_default());
        assert!(RealmKind::Storage.federated_by_default());
        assert!(RealmKind::Cloud.federated_by_default());
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(RealmKind::Jobs.display_name(), "HPC Jobs");
        assert_eq!(RealmKind::Supremm.display_name(), "SUPReMM");
    }
}

//! The Cloud Metrics realm (§III-B) — in development in the paper,
//! implemented here.
//!
//! Cloud facts are **VM sessions**: intervals during which a VM was
//! running with a fixed configuration. Because "VMs can also be stopped,
//! restarted, and paused" and "allocated memory can even be changed
//! during the life of the VM", one VM contributes multiple session rows;
//! the `vm_id` ties them together and `state_changes` counts lifecycle
//! transitions inside the session's span.
//!
//! The initial metric set from the paper: Average Cores per VM; Average
//! Cores/Disk/Memory Reserved (weighted by Wall Hours); Core or Wall
//! Hours: Total; Cores: Total; Number of VMs Ended/Running/Started.
//! Dimensions: Instance Type; Project; Resource; Submission Venue; User;
//! VM Size (Cores or Memory). Fig. 7 (average core-hours per VM by VM
//! memory size) is a chart over this realm.

use crate::levels::{AggregationLevelsConfig, DIM_VM_MEMORY};
use crate::realm::{DimensionDef, MetricDef, Realm, RealmKind};
use xdmod_warehouse::{
    AggFn, Aggregate, AggregationSpec, ColumnType, DimSpec, Period, ResultSet, SchemaBuilder,
    TableSchema, Value,
};

/// Name of the Cloud realm fact table.
pub const FACT_TABLE: &str = "cloudfact";

/// Schema of the `cloudfact` table: one row per VM session interval.
pub fn fact_schema() -> TableSchema {
    SchemaBuilder::new(FACT_TABLE)
        .required("vm_id", ColumnType::Str)
        .required("resource", ColumnType::Str)
        .required("project", ColumnType::Str)
        .required("user", ColumnType::Str)
        .required("instance_type", ColumnType::Str)
        .required("submission_venue", ColumnType::Str)
        .required("cores", ColumnType::Int)
        .required("memory_gb", ColumnType::Float)
        .required("disk_gb", ColumnType::Float)
        .required("start_time", ColumnType::Time)
        .required("end_time", ColumnType::Time)
        .required("wall_hours", ColumnType::Float)
        .required("core_hours", ColumnType::Float)
        .required("started", ColumnType::Bool) // session begins with VM creation
        .required("ended", ColumnType::Bool) // session ends with VM termination
        .required("state_changes", ColumnType::Int)
        .build()
        .expect("cloud fact schema is valid") // xc-allow: static schema literal, valid by construction
}

/// The initial Cloud metric set from the paper.
pub fn metrics() -> Vec<MetricDef> {
    vec![
        MetricDef {
            id: "avg_cores_per_vm".into(),
            label: "Average Cores per VM".into(),
            unit: "cores".into(),
            aggregate: Aggregate::weighted_avg("cores", "wall_hours", "avg_cores_per_vm"),
        },
        MetricDef {
            id: "avg_memory_reserved".into(),
            label: "Average Memory Reserved (weighted by Wall Hours)".into(),
            unit: "GB".into(),
            aggregate: Aggregate::weighted_avg("memory_gb", "wall_hours", "avg_memory_reserved"),
        },
        MetricDef {
            id: "avg_disk_reserved".into(),
            label: "Average Disk Reserved (weighted by Wall Hours)".into(),
            unit: "GB".into(),
            aggregate: Aggregate::weighted_avg("disk_gb", "wall_hours", "avg_disk_reserved"),
        },
        MetricDef {
            id: "total_core_hours".into(),
            label: "Core Hours: Total".into(),
            unit: "core hours".into(),
            aggregate: Aggregate::of(AggFn::Sum, "core_hours", "total_core_hours"),
        },
        MetricDef {
            id: "total_wall_hours".into(),
            label: "Wall Hours: Total".into(),
            unit: "hours".into(),
            aggregate: Aggregate::of(AggFn::Sum, "wall_hours", "total_wall_hours"),
        },
        MetricDef {
            id: "total_cores".into(),
            label: "Cores: Total".into(),
            unit: "cores".into(),
            aggregate: Aggregate::of(AggFn::Sum, "cores", "total_cores"),
        },
        MetricDef {
            id: "vms_started".into(),
            label: "Number of VMs Started".into(),
            unit: "VMs".into(),
            aggregate: Aggregate::of(AggFn::Sum, "started", "vms_started"),
        },
        MetricDef {
            id: "vms_ended".into(),
            label: "Number of VMs Ended".into(),
            unit: "VMs".into(),
            aggregate: Aggregate::of(AggFn::Sum, "ended", "vms_ended"),
        },
        MetricDef {
            id: "vms_running".into(),
            label: "Number of VMs Running".into(),
            unit: "VMs".into(),
            aggregate: Aggregate::of(AggFn::CountDistinct, "vm_id", "vms_running"),
        },
        MetricDef {
            id: "state_changes".into(),
            label: "Count of State Changes".into(),
            unit: "events".into(),
            aggregate: Aggregate::of(AggFn::Sum, "state_changes", "state_changes"),
        },
    ]
}

/// The drill-down dimensions from the paper.
pub fn dimensions() -> Vec<DimensionDef> {
    vec![
        DimensionDef {
            id: "instance_type".into(),
            label: "Instance Type".into(),
            column: "instance_type".into(),
            numeric: false,
        },
        DimensionDef {
            id: "project".into(),
            label: "Project".into(),
            column: "project".into(),
            numeric: false,
        },
        DimensionDef {
            id: "resource".into(),
            label: "Resource".into(),
            column: "resource".into(),
            numeric: false,
        },
        DimensionDef {
            id: "submission_venue".into(),
            label: "Submission Venue".into(),
            column: "submission_venue".into(),
            numeric: false,
        },
        DimensionDef {
            id: "user".into(),
            label: "User".into(),
            column: "user".into(),
            numeric: false,
        },
        DimensionDef {
            id: DIM_VM_MEMORY.into(),
            label: "VM Size: Memory".into(),
            column: "memory_gb".into(),
            numeric: true,
        },
        DimensionDef {
            id: "vm_cores".into(),
            label: "VM Size: Cores".into(),
            column: "cores".into(),
            numeric: true,
        },
    ]
}

/// Default aggregation pipeline; adds a binned VM-memory dimension when
/// the instance configures levels for it (Fig. 7's grouping).
pub fn aggregation_spec(levels: &AggregationLevelsConfig) -> AggregationSpec {
    let mut dims = vec![
        DimSpec::Column("resource".into()),
        DimSpec::Column("project".into()),
    ];
    if let Ok(bins) = levels.bins_for(DIM_VM_MEMORY) {
        dims.push(DimSpec::Binned {
            column: "memory_gb".into(),
            bins,
        });
    }
    AggregationSpec {
        fact_table: FACT_TABLE.into(),
        time_column: "end_time".into(),
        dims,
        measures: vec![
            Aggregate::count("sessions"),
            Aggregate::of(AggFn::Sum, "core_hours", "total_core_hours"),
            Aggregate::of(AggFn::Sum, "wall_hours", "total_wall_hours"),
            Aggregate::of(AggFn::CountDistinct, "vm_id", "num_vms"),
            Aggregate::weighted_avg("cores", "wall_hours", "avg_cores_per_vm"),
        ],
        periods: Period::ALL.to_vec(),
        table_prefix: None,
    }
}

/// The complete Cloud realm description.
pub fn realm(levels: &AggregationLevelsConfig) -> Realm {
    Realm {
        kind: RealmKind::Cloud,
        fact_schema: fact_schema(),
        aux_schemas: vec![],
        metrics: metrics(),
        dimensions: dimensions(),
        default_aggregation: aggregation_spec(levels),
    }
}

/// Derive "average core hours per VM" (Fig. 7's y-axis) from a result set
/// carrying `total_core_hours` and `num_vms` columns. This is a ratio of
/// two aggregates, computed at presentation time like XDMoD does.
pub fn avg_core_hours_per_vm(rs: &ResultSet) -> Option<Vec<f64>> {
    let ch = rs.column_index("total_core_hours")?;
    let nv = rs.column_index("num_vms")?;
    Some(
        rs.rows
            .iter()
            .map(|row| {
                let hours = row[ch].as_f64().unwrap_or(0.0);
                let vms = row[nv].as_f64().unwrap_or(0.0);
                if vms > 0.0 {
                    hours / vms
                } else {
                    0.0
                }
            })
            .collect(),
    )
}

/// Convenience: the `Value` boolean `true`, used when building session
/// rows by hand in tests and simulators.
pub fn flag(b: bool) -> Value {
    Value::Bool(b)
}

// ---------------------------------------------------------------------
// Reservations (the paper's "future release" §III-B, implemented)
// ---------------------------------------------------------------------

/// Name of the VM reservation/payment table.
///
/// "First, the XDMoD cloud realm will track VM reservation, or payment,
/// information. This piece of the puzzle will enable centers to evaluate
/// whether users purchase more capacity than they use." (§III-B)
pub const RESERVATION_TABLE: &str = "cloud_reservation";

/// Schema of the `cloud_reservation` table: one row per purchased
/// capacity block.
pub fn reservation_schema() -> TableSchema {
    SchemaBuilder::new(RESERVATION_TABLE)
        .required("reservation_id", ColumnType::Str)
        .required("resource", ColumnType::Str)
        .required("project", ColumnType::Str)
        .required("user", ColumnType::Str)
        .required("cores", ColumnType::Int)
        .required("memory_gb", ColumnType::Float)
        .required("start_time", ColumnType::Time)
        .required("end_time", ColumnType::Time)
        .required("core_hours_purchased", ColumnType::Float)
        .build()
        .expect("reservation schema is valid") // xc-allow: static schema literal, valid by construction
}

/// One row of the purchased-vs-used comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityUtilization {
    /// Grouping key (typically the project).
    pub key: String,
    /// Core-hours purchased across reservations.
    pub purchased: f64,
    /// Core-hours actually consumed by VM sessions.
    pub used: f64,
}

impl CapacityUtilization {
    /// Used / purchased (0 when nothing was purchased).
    pub fn fraction(&self) -> f64 {
        if self.purchased > 0.0 {
            self.used / self.purchased
        } else {
            0.0
        }
    }

    /// Whether the project bought more than it used — the question the
    /// paper says this data answers.
    pub fn over_provisioned(&self) -> bool {
        self.purchased > self.used
    }
}

/// Join reserved capacity against actual usage, both grouped by the same
/// key column (e.g. `project`). `purchased_rs` must carry
/// `core_hours_purchased`; `used_rs` must carry `total_core_hours`.
pub fn capacity_utilization(
    purchased_rs: &ResultSet,
    used_rs: &ResultSet,
    key_column: &str,
) -> Option<Vec<CapacityUtilization>> {
    let pk = purchased_rs.column_index(key_column)?;
    let pv = purchased_rs.column_index("core_hours_purchased")?;
    let uk = used_rs.column_index(key_column)?;
    let uv = used_rs.column_index("total_core_hours")?;
    let mut merged: std::collections::BTreeMap<String, CapacityUtilization> =
        std::collections::BTreeMap::new();
    for row in &purchased_rs.rows {
        let key = row[pk].to_string();
        merged
            .entry(key.clone())
            .or_insert(CapacityUtilization {
                key,
                purchased: 0.0,
                used: 0.0,
            })
            .purchased += row[pv].as_f64().unwrap_or(0.0);
    }
    for row in &used_rs.rows {
        let key = row[uk].to_string();
        merged
            .entry(key.clone())
            .or_insert(CapacityUtilization {
                key,
                purchased: 0.0,
                used: 0.0,
            })
            .used += row[uv].as_f64().unwrap_or(0.0);
    }
    Some(merged.into_values().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::fig7_vm_memory_levels;

    #[test]
    fn paper_metric_set_is_present() {
        let ids: Vec<String> = metrics().into_iter().map(|m| m.id).collect();
        for want in [
            "avg_cores_per_vm",
            "avg_memory_reserved",
            "avg_disk_reserved",
            "total_core_hours",
            "total_wall_hours",
            "total_cores",
            "vms_started",
            "vms_ended",
            "vms_running",
        ] {
            assert!(ids.contains(&want.to_owned()), "missing metric {want}");
        }
    }

    #[test]
    fn paper_dimension_set_is_present() {
        let ids: Vec<String> = dimensions().into_iter().map(|d| d.id).collect();
        for want in [
            "instance_type",
            "project",
            "resource",
            "submission_venue",
            "user",
            "memory_gb",
            "vm_cores",
        ] {
            assert!(ids.contains(&want.to_owned()), "missing dimension {want}");
        }
    }

    #[test]
    fn weighted_metrics_use_wall_hours() {
        for id in ["avg_cores_per_vm", "avg_memory_reserved", "avg_disk_reserved"] {
            let m = metrics().into_iter().find(|m| m.id == id).unwrap();
            assert_eq!(m.aggregate.weight.as_deref(), Some("wall_hours"));
        }
    }

    #[test]
    fn spec_with_fig7_levels_bins_memory() {
        let mut cfg = AggregationLevelsConfig::new();
        cfg.set(DIM_VM_MEMORY, fig7_vm_memory_levels());
        let spec = aggregation_spec(&cfg);
        assert!(spec
            .dims
            .iter()
            .any(|d| matches!(d, DimSpec::Binned { column, .. } if column == "memory_gb")));
    }

    #[test]
    fn avg_core_hours_per_vm_divides() {
        let rs = ResultSet {
            columns: vec![
                "memory_gb_bin".into(),
                "total_core_hours".into(),
                "num_vms".into(),
            ],
            rows: vec![
                vec![Value::Str("<1 GB".into()), Value::Float(100.0), Value::Int(4)],
                vec![Value::Str("1-2 GB".into()), Value::Float(90.0), Value::Int(3)],
                vec![Value::Str("empty".into()), Value::Float(0.0), Value::Int(0)],
            ],
        };
        let v = avg_core_hours_per_vm(&rs).unwrap();
        assert_eq!(v, vec![25.0, 30.0, 0.0]);
    }

    #[test]
    fn reservation_schema_is_valid_and_distinct() {
        let s = reservation_schema();
        assert_eq!(s.name, RESERVATION_TABLE);
        assert_ne!(s.name, FACT_TABLE);
        assert!(s.column_index("core_hours_purchased").is_ok());
    }

    #[test]
    fn capacity_utilization_joins_purchased_and_used() {
        let purchased = ResultSet {
            columns: vec!["project".into(), "core_hours_purchased".into()],
            rows: vec![
                vec![Value::Str("genomics".into()), Value::Float(1000.0)],
                vec![Value::Str("teaching".into()), Value::Float(100.0)],
            ],
        };
        let used = ResultSet {
            columns: vec!["project".into(), "total_core_hours".into()],
            rows: vec![
                vec![Value::Str("genomics".into()), Value::Float(250.0)],
                vec![Value::Str("hydrology".into()), Value::Float(40.0)],
            ],
        };
        let rows = capacity_utilization(&purchased, &used, "project").unwrap();
        assert_eq!(rows.len(), 3);
        let genomics = rows.iter().find(|r| r.key == "genomics").unwrap();
        assert_eq!(genomics.fraction(), 0.25);
        assert!(genomics.over_provisioned());
        let hydro = rows.iter().find(|r| r.key == "hydrology").unwrap();
        assert_eq!(hydro.purchased, 0.0);
        assert_eq!(hydro.fraction(), 0.0); // unpurchased usage
        assert!(!hydro.over_provisioned());
    }

    #[test]
    fn capacity_utilization_requires_expected_columns() {
        let empty = ResultSet {
            columns: vec!["project".into()],
            rows: vec![],
        };
        assert!(capacity_utilization(&empty, &empty, "project").is_none());
    }

    #[test]
    fn avg_core_hours_requires_both_columns() {
        let rs = ResultSet {
            columns: vec!["total_core_hours".into()],
            rows: vec![],
        };
        assert!(avg_core_hours_per_vm(&rs).is_none());
    }
}

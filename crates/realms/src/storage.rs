//! The Storage realm (§III-A) — in development in the paper, implemented
//! here.
//!
//! "The initial set of Storage realm metrics includes: File Count;
//! Logical and Physical Usage; Hard and Soft Quota Thresholds; Logical
//! Quota Utilization; User Count. Supported dimensions for drill-down on
//! these metrics are Resource (Filesystem), Mountpoint, Resource Type,
//! User, PI, and System Username."
//!
//! Facts are periodic samples of per-user, per-filesystem usage, ingested
//! from JSON documents validated against the provided schema (see
//! `xdmod-ingest::storage_json`). Fig. 6 (monthly file count + physical
//! usage) is a chart over this realm.

use crate::realm::{DimensionDef, MetricDef, Realm, RealmKind};
use xdmod_warehouse::{
    AggFn, Aggregate, AggregationSpec, ColumnType, DimSpec, Period, SchemaBuilder, TableSchema,
};

/// Name of the Storage realm fact table.
pub const FACT_TABLE: &str = "storagefact";

/// Schema of the `storagefact` table: one row per (sample time,
/// filesystem, user).
pub fn fact_schema() -> TableSchema {
    SchemaBuilder::new(FACT_TABLE)
        .required("ts", ColumnType::Time)
        .required("filesystem", ColumnType::Str) // "Resource (Filesystem)"
        .required("mountpoint", ColumnType::Str)
        .required("resource_type", ColumnType::Str) // persistent | scratch
        .required("user", ColumnType::Str)
        .required("pi", ColumnType::Str)
        .required("system_username", ColumnType::Str)
        .required("file_count", ColumnType::Int)
        .required("logical_usage_gb", ColumnType::Float)
        .required("physical_usage_gb", ColumnType::Float)
        .nullable("soft_quota_gb", ColumnType::Float)
        .nullable("hard_quota_gb", ColumnType::Float)
        .nullable("quota_utilization", ColumnType::Float) // logical/soft, 0..
        .build()
        .expect("storage fact schema is valid") // xc-allow: static schema literal, valid by construction
}

/// The initial Storage metric set from the paper.
pub fn metrics() -> Vec<MetricDef> {
    vec![
        MetricDef {
            id: "file_count".into(),
            label: "File Count".into(),
            unit: "files".into(),
            aggregate: Aggregate::of(AggFn::Sum, "file_count", "file_count"),
        },
        MetricDef {
            id: "logical_usage".into(),
            label: "Logical Usage".into(),
            unit: "GB".into(),
            aggregate: Aggregate::of(AggFn::Sum, "logical_usage_gb", "logical_usage"),
        },
        MetricDef {
            id: "physical_usage".into(),
            label: "Physical Usage".into(),
            unit: "GB".into(),
            aggregate: Aggregate::of(AggFn::Sum, "physical_usage_gb", "physical_usage"),
        },
        MetricDef {
            id: "soft_quota".into(),
            label: "Soft Quota Threshold".into(),
            unit: "GB".into(),
            aggregate: Aggregate::of(AggFn::Sum, "soft_quota_gb", "soft_quota"),
        },
        MetricDef {
            id: "hard_quota".into(),
            label: "Hard Quota Threshold".into(),
            unit: "GB".into(),
            aggregate: Aggregate::of(AggFn::Sum, "hard_quota_gb", "hard_quota"),
        },
        MetricDef {
            id: "quota_utilization".into(),
            label: "Logical Quota Utilization".into(),
            unit: "fraction".into(),
            aggregate: Aggregate::of(AggFn::Avg, "quota_utilization", "quota_utilization"),
        },
        MetricDef {
            id: "user_count".into(),
            label: "User Count".into(),
            unit: "users".into(),
            aggregate: Aggregate::of(AggFn::CountDistinct, "user", "user_count"),
        },
    ]
}

/// The drill-down dimensions from the paper.
pub fn dimensions() -> Vec<DimensionDef> {
    vec![
        DimensionDef {
            id: "filesystem".into(),
            label: "Resource (Filesystem)".into(),
            column: "filesystem".into(),
            numeric: false,
        },
        DimensionDef {
            id: "mountpoint".into(),
            label: "Mountpoint".into(),
            column: "mountpoint".into(),
            numeric: false,
        },
        DimensionDef {
            id: "resource_type".into(),
            label: "Resource Type".into(),
            column: "resource_type".into(),
            numeric: false,
        },
        DimensionDef {
            id: "user".into(),
            label: "User".into(),
            column: "user".into(),
            numeric: false,
        },
        DimensionDef {
            id: "pi".into(),
            label: "PI".into(),
            column: "pi".into(),
            numeric: false,
        },
        DimensionDef {
            id: "system_username".into(),
            label: "System Username".into(),
            column: "system_username".into(),
            numeric: false,
        },
        DimensionDef {
            id: "physical_usage_gb".into(),
            label: "Physical Usage".into(),
            column: "physical_usage_gb".into(),
            numeric: true,
        },
    ]
}

/// Default aggregation pipeline for storage samples.
pub fn aggregation_spec() -> AggregationSpec {
    AggregationSpec {
        fact_table: FACT_TABLE.into(),
        time_column: "ts".into(),
        dims: vec![
            DimSpec::Column("filesystem".into()),
            DimSpec::Column("resource_type".into()),
        ],
        measures: vec![
            Aggregate::of(AggFn::Sum, "file_count", "file_count"),
            Aggregate::of(AggFn::Sum, "logical_usage_gb", "logical_usage"),
            Aggregate::of(AggFn::Sum, "physical_usage_gb", "physical_usage"),
            Aggregate::of(AggFn::Avg, "quota_utilization", "quota_utilization"),
            Aggregate::of(AggFn::CountDistinct, "user", "user_count"),
        ],
        periods: Period::ALL.to_vec(),
        table_prefix: None,
    }
}

/// The complete Storage realm description.
pub fn realm() -> Realm {
    Realm {
        kind: RealmKind::Storage,
        fact_schema: fact_schema(),
        aux_schemas: vec![],
        metrics: metrics(),
        dimensions: dimensions(),
        default_aggregation: aggregation_spec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_metric_set_is_present() {
        let ids: Vec<String> = metrics().into_iter().map(|m| m.id).collect();
        for want in [
            "file_count",
            "logical_usage",
            "physical_usage",
            "soft_quota",
            "hard_quota",
            "quota_utilization",
            "user_count",
        ] {
            assert!(ids.contains(&want.to_owned()), "missing metric {want}");
        }
    }

    #[test]
    fn paper_dimension_set_is_present() {
        let ids: Vec<String> = dimensions().into_iter().map(|d| d.id).collect();
        for want in [
            "filesystem",
            "mountpoint",
            "resource_type",
            "user",
            "pi",
            "system_username",
        ] {
            assert!(ids.contains(&want.to_owned()), "missing dimension {want}");
        }
    }

    #[test]
    fn metric_and_dimension_columns_exist() {
        let s = fact_schema();
        for m in metrics() {
            if let Some(c) = &m.aggregate.column {
                assert!(s.column_index(c).is_ok());
            }
        }
        for d in dimensions() {
            assert!(s.column_index(&d.column).is_ok());
        }
    }

    #[test]
    fn quota_columns_are_nullable() {
        // Scratch filesystems often carry no quota.
        let s = fact_schema();
        assert!(s.column("soft_quota_gb").unwrap().nullable);
        assert!(s.column("hard_quota_gb").unwrap().nullable);
        assert!(s.column("quota_utilization").unwrap().nullable);
    }
}

//! Data-dictionary generation.
//!
//! Open XDMoD ships documentation of every realm's metrics and
//! dimensions; this module generates that dictionary from the live
//! catalogs, so docs cannot drift from code. Output is Markdown.

use crate::levels::AggregationLevelsConfig;
use crate::{all_realms, Realm};

/// Render one realm's section.
fn realm_section(realm: &Realm, levels: &AggregationLevelsConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "## {} (`{}`)\n\n",
        realm.kind.display_name(),
        realm.kind.ident()
    ));
    out.push_str(&format!(
        "Fact table: `{}` ({} columns). Federated by default: {}.\n\n",
        realm.fact_schema.name,
        realm.fact_schema.arity(),
        if realm.kind.federated_by_default() {
            "yes"
        } else {
            "no (storage-intensive; summaries only)"
        }
    ));
    if !realm.aux_schemas.is_empty() {
        let names: Vec<&str> = realm.aux_schemas.iter().map(|s| s.name.as_str()).collect();
        out.push_str(&format!("Auxiliary tables: `{}`.\n\n", names.join("`, `")));
    }
    out.push_str("### Metrics\n\n| id | label | unit |\n|---|---|---|\n");
    for m in &realm.metrics {
        out.push_str(&format!("| `{}` | {} | {} |\n", m.id, m.label, m.unit));
    }
    out.push_str("\n### Dimensions\n\n| id | label | kind |\n|---|---|---|\n");
    for d in &realm.dimensions {
        let kind = if d.numeric {
            match levels.get(&d.id) {
                Some(l) => format!("numeric, {} configured levels", l.len()),
                None => "numeric, no levels configured".to_owned(),
            }
        } else {
            "categorical".to_owned()
        };
        out.push_str(&format!("| `{}` | {} | {} |\n", d.id, d.label, kind));
    }
    out.push('\n');
    out
}

/// Generate the full Markdown data dictionary for an instance's
/// configuration.
pub fn data_dictionary(levels: &AggregationLevelsConfig) -> String {
    let mut out = String::from(
        "# XDMoD data dictionary\n\nGenerated from the realm catalogs; \
         metrics and dimensions below are exactly what the usage explorer \
         accepts.\n\n",
    );
    for realm in all_realms(levels) {
        out.push_str(&realm_section(&realm, levels));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::{instance_a_walltime, DIM_WALL_TIME};

    #[test]
    fn dictionary_covers_every_realm_metric_and_dimension() {
        let levels = AggregationLevelsConfig::new();
        let doc = data_dictionary(&levels);
        for realm in all_realms(&levels) {
            assert!(doc.contains(realm.kind.display_name()));
            for m in &realm.metrics {
                assert!(doc.contains(&format!("`{}`", m.id)), "missing metric {}", m.id);
            }
            for d in &realm.dimensions {
                assert!(doc.contains(&d.label), "missing dimension {}", d.id);
            }
        }
    }

    #[test]
    fn configured_levels_are_reflected() {
        let mut levels = AggregationLevelsConfig::new();
        levels.set(DIM_WALL_TIME, instance_a_walltime());
        let doc = data_dictionary(&levels);
        assert!(doc.contains("numeric, 3 configured levels"));
        assert!(doc.contains("numeric, no levels configured"));
    }

    #[test]
    fn supremm_marked_non_federated() {
        let doc = data_dictionary(&AggregationLevelsConfig::new());
        assert!(doc.contains("no (storage-intensive; summaries only)"));
    }
}

//! XDSU standardization across heterogeneous resources.
//!
//! "XSEDE has benchmarked disparate systems and then derived appropriate
//! conversion factors, so that the resources consumed on different
//! systems can be compared to one another. ... This converted data is
//! represented in standardized units called XSEDE Service Units (XDSUs)."
//! (§II-C6). "An XD SU is defined as one CPU-hour on a Phase-1 DTF
//! cluster; a Phase-1 DTF SU is equal to 21.576 NUs." (footnote 2)
//!
//! A [`SuConverter`] holds per-resource conversion factors derived from
//! HPL benchmark results and converts raw CPU-hours into XD SUs (and NUs)
//! so federation metrics "make valid comparisons".

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// NUs per XD SU (paper footnote 2).
pub const NUS_PER_XDSU: f64 = 21.576;

/// Per-core HPL throughput of the reference Phase-1 DTF cluster, in
/// GFLOP/s. The absolute value is a calibration constant; only ratios
/// matter for conversion factors.
pub const DTF_REFERENCE_GFLOPS_PER_CORE: f64 = 1.0;

/// An HPL benchmark result for one resource.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HplResult {
    /// Measured HPL throughput per core, GFLOP/s.
    pub gflops_per_core: f64,
}

impl HplResult {
    /// Conversion factor relative to the Phase-1 DTF reference: XD SUs
    /// charged per CPU-hour consumed on this resource.
    pub fn conversion_factor(self) -> f64 {
        self.gflops_per_core / DTF_REFERENCE_GFLOPS_PER_CORE
    }
}

/// Converts raw per-resource CPU-hours into standardized XD SUs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SuConverter {
    factors: BTreeMap<String, f64>,
}

impl SuConverter {
    /// Empty converter (unknown resources fall back to factor 1.0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a resource's factor directly.
    pub fn set_factor(&mut self, resource: &str, factor: f64) -> &mut Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "conversion factor must be positive and finite"
        );
        self.factors.insert(resource.to_owned(), factor);
        self
    }

    /// Register a resource from its HPL benchmark, deriving the factor.
    pub fn set_from_hpl(&mut self, resource: &str, hpl: HplResult) -> &mut Self {
        self.set_factor(resource, hpl.conversion_factor())
    }

    /// The conversion factor for a resource; 1.0 when unbenchmarked.
    ///
    /// Falling back to 1.0 mirrors an unconfigured Open XDMoD install,
    /// where raw CPU-hours are reported unconverted — the paper's warning
    /// that "similar care must be taken so that federation metrics make
    /// valid comparisons".
    pub fn factor(&self, resource: &str) -> f64 {
        self.factors.get(resource).copied().unwrap_or(1.0)
    }

    /// Whether a resource has a configured (benchmarked) factor.
    pub fn is_benchmarked(&self, resource: &str) -> bool {
        self.factors.contains_key(resource)
    }

    /// Convert raw CPU-hours on `resource` into XD SUs.
    pub fn xdsu(&self, resource: &str, cpu_hours: f64) -> f64 {
        cpu_hours * self.factor(resource)
    }

    /// Convert raw CPU-hours on `resource` into NUs.
    pub fn nu(&self, resource: &str, cpu_hours: f64) -> f64 {
        self.xdsu(resource, cpu_hours) * NUS_PER_XDSU
    }

    /// All configured resources with factors, sorted by name.
    pub fn resources(&self) -> impl Iterator<Item = (&str, f64)> {
        self.factors.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_derived_from_hpl_ratio() {
        let hpl = HplResult {
            gflops_per_core: 2.5,
        };
        assert_eq!(hpl.conversion_factor(), 2.5);
    }

    #[test]
    fn xdsu_scales_cpu_hours() {
        let mut c = SuConverter::new();
        c.set_factor("comet", 2.0).set_factor("stampede", 0.5);
        assert_eq!(c.xdsu("comet", 10.0), 20.0);
        assert_eq!(c.xdsu("stampede", 10.0), 5.0);
    }

    #[test]
    fn unknown_resource_defaults_to_raw_hours() {
        let c = SuConverter::new();
        assert_eq!(c.factor("mystery"), 1.0);
        assert!(!c.is_benchmarked("mystery"));
        assert_eq!(c.xdsu("mystery", 7.0), 7.0);
    }

    #[test]
    fn nu_conversion_uses_published_constant() {
        let mut c = SuConverter::new();
        c.set_factor("dtf", 1.0);
        assert!((c.nu("dtf", 1.0) - 21.576).abs() < 1e-12);
    }

    #[test]
    fn standardization_makes_disparate_resources_comparable() {
        // Two resources doing the same "science" (same FLOP count) should
        // charge the same XD SUs even though their CPU-hour counts differ.
        let fast = HplResult {
            gflops_per_core: 4.0,
        };
        let slow = HplResult {
            gflops_per_core: 1.0,
        };
        let mut c = SuConverter::new();
        c.set_from_hpl("fast", fast).set_from_hpl("slow", slow);
        let flops_needed = 400.0; // arbitrary units
        let fast_hours = flops_needed / fast.gflops_per_core;
        let slow_hours = flops_needed / slow.gflops_per_core;
        assert!((c.xdsu("fast", fast_hours) - c.xdsu("slow", slow_hours)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_factor_panics() {
        SuConverter::new().set_factor("bad", 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let mut c = SuConverter::new();
        c.set_factor("comet", 1.9).set_factor("stampede2", 2.4);
        let json = serde_json::to_string(&c).unwrap();
        let back: SuConverter = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}

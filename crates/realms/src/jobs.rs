//! The HPC Jobs realm.
//!
//! "The HPC Jobs realm metrics, describing aggregate usage, consist of
//! measures that are gleaned largely from job accounting data." (§I-D)
//! This is the realm the initial federation release replicates to the
//! hub, and the realm behind Fig. 1 (top resources by total XD SUs) and
//! Table I (wall-time aggregation levels).

use crate::levels::{AggregationLevelsConfig, DIM_JOB_SIZE, DIM_WALL_TIME};
use crate::realm::{DimensionDef, MetricDef, Realm, RealmKind};
use xdmod_warehouse::{
    AggFn, Aggregate, AggregationSpec, ColumnType, DimSpec, Period, SchemaBuilder,
};

/// Name of the Jobs realm fact table.
pub const FACT_TABLE: &str = "jobfact";

/// Schema of the `jobfact` table: one row per completed job, as shredded
/// from resource-manager accounting logs.
pub fn fact_schema() -> xdmod_warehouse::TableSchema {
    SchemaBuilder::new(FACT_TABLE)
        .required("job_id", ColumnType::Int)
        .required("resource", ColumnType::Str)
        .required("user", ColumnType::Str)
        .required("pi", ColumnType::Str)
        .required("queue", ColumnType::Str)
        .required("nodes", ColumnType::Int)
        .required("cores", ColumnType::Int)
        .required("submit_time", ColumnType::Time)
        .required("start_time", ColumnType::Time)
        .required("end_time", ColumnType::Time)
        .required("wall_hours", ColumnType::Float)
        .required("wait_hours", ColumnType::Float)
        .required("cpu_hours", ColumnType::Float)
        .required("su_charged", ColumnType::Float)
        .required("exit_status", ColumnType::Str)
        .nullable("gpu_count", ColumnType::Int)
        .build()
        .expect("jobfact schema is valid") // xc-allow: static schema literal, valid by construction
}

/// Chartable metrics of the Jobs realm.
pub fn metrics() -> Vec<MetricDef> {
    vec![
        MetricDef {
            id: "job_count".into(),
            label: "Number of Jobs Ended".into(),
            unit: "jobs".into(),
            aggregate: Aggregate::count("job_count"),
        },
        MetricDef {
            id: "total_cpu_hours".into(),
            label: "CPU Hours: Total".into(),
            unit: "CPU hours".into(),
            aggregate: Aggregate::of(AggFn::Sum, "cpu_hours", "total_cpu_hours"),
        },
        MetricDef {
            id: "total_su".into(),
            label: "SUs Charged: Total".into(),
            unit: "XD SU".into(),
            aggregate: Aggregate::of(AggFn::Sum, "su_charged", "total_su"),
        },
        MetricDef {
            id: "total_wall_hours".into(),
            label: "Wall Hours: Total".into(),
            unit: "hours".into(),
            aggregate: Aggregate::of(AggFn::Sum, "wall_hours", "total_wall_hours"),
        },
        MetricDef {
            id: "avg_wall_hours".into(),
            label: "Wall Hours: Per Job".into(),
            unit: "hours".into(),
            aggregate: Aggregate::of(AggFn::Avg, "wall_hours", "avg_wall_hours"),
        },
        MetricDef {
            id: "avg_wait_hours".into(),
            label: "Wait Hours: Per Job".into(),
            unit: "hours".into(),
            aggregate: Aggregate::of(AggFn::Avg, "wait_hours", "avg_wait_hours"),
        },
        MetricDef {
            id: "avg_cores".into(),
            label: "Job Size: Per Job".into(),
            unit: "cores".into(),
            aggregate: Aggregate::of(AggFn::Avg, "cores", "avg_cores"),
        },
        MetricDef {
            id: "max_cores".into(),
            label: "Job Size: Max".into(),
            unit: "cores".into(),
            aggregate: Aggregate::of(AggFn::Max, "cores", "max_cores"),
        },
        MetricDef {
            id: "num_users".into(),
            label: "Number of Users: Active".into(),
            unit: "users".into(),
            aggregate: Aggregate::of(AggFn::CountDistinct, "user", "num_users"),
        },
    ]
}

/// Group-by/drill-down dimensions of the Jobs realm.
pub fn dimensions() -> Vec<DimensionDef> {
    vec![
        DimensionDef {
            id: "resource".into(),
            label: "Resource".into(),
            column: "resource".into(),
            numeric: false,
        },
        DimensionDef {
            id: "user".into(),
            label: "User".into(),
            column: "user".into(),
            numeric: false,
        },
        DimensionDef {
            id: "pi".into(),
            label: "PI".into(),
            column: "pi".into(),
            numeric: false,
        },
        DimensionDef {
            id: "queue".into(),
            label: "Queue".into(),
            column: "queue".into(),
            numeric: false,
        },
        DimensionDef {
            id: DIM_WALL_TIME.into(),
            label: "Job Wall Time".into(),
            column: "wall_hours".into(),
            numeric: true,
        },
        DimensionDef {
            id: DIM_JOB_SIZE.into(),
            label: "Job Size".into(),
            column: "cores".into(),
            numeric: true,
        },
    ]
}

/// Default aggregation pipeline: per period, grouped by resource, queue,
/// and — when the instance has levels configured — binned wall time and
/// job size.
pub fn aggregation_spec(levels: &AggregationLevelsConfig) -> AggregationSpec {
    let mut dims = vec![
        DimSpec::Column("resource".into()),
        DimSpec::Column("queue".into()),
    ];
    if let Ok(bins) = levels.bins_for(DIM_WALL_TIME) {
        dims.push(DimSpec::Binned {
            column: "wall_hours".into(),
            bins,
        });
    }
    if let Ok(bins) = levels.bins_for(DIM_JOB_SIZE) {
        dims.push(DimSpec::Binned {
            column: "cores".into(),
            bins,
        });
    }
    AggregationSpec {
        fact_table: FACT_TABLE.into(),
        time_column: "end_time".into(),
        dims,
        measures: vec![
            Aggregate::count("job_count"),
            Aggregate::of(AggFn::Sum, "cpu_hours", "total_cpu_hours"),
            Aggregate::of(AggFn::Sum, "su_charged", "total_su"),
            Aggregate::of(AggFn::Sum, "wall_hours", "total_wall_hours"),
            Aggregate::of(AggFn::Avg, "wait_hours", "avg_wait_hours"),
            Aggregate::of(AggFn::CountDistinct, "user", "num_users"),
        ],
        periods: Period::ALL.to_vec(),
        table_prefix: None,
    }
}

/// The complete Jobs realm description.
pub fn realm(levels: &AggregationLevelsConfig) -> Realm {
    Realm {
        kind: RealmKind::Jobs,
        fact_schema: fact_schema(),
        aux_schemas: vec![],
        metrics: metrics(),
        dimensions: dimensions(),
        default_aggregation: aggregation_spec(levels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::instance_a_walltime;

    #[test]
    fn fact_schema_has_expected_columns() {
        let s = fact_schema();
        for col in [
            "job_id",
            "resource",
            "user",
            "cores",
            "wall_hours",
            "cpu_hours",
            "su_charged",
            "end_time",
        ] {
            assert!(s.column_index(col).is_ok(), "missing column {col}");
        }
        assert!(s.column("gpu_count").unwrap().nullable);
    }

    #[test]
    fn metric_ids_unique() {
        let m = metrics();
        for (i, a) in m.iter().enumerate() {
            assert!(
                !m[..i].iter().any(|b| b.id == a.id),
                "duplicate metric id {}",
                a.id
            );
        }
    }

    #[test]
    fn metric_columns_exist_in_fact_schema() {
        let s = fact_schema();
        for m in metrics() {
            if let Some(c) = &m.aggregate.column {
                assert!(s.column_index(c).is_ok(), "metric {} reads missing {c}", m.id);
            }
        }
    }

    #[test]
    fn dimension_columns_exist_in_fact_schema() {
        let s = fact_schema();
        for d in dimensions() {
            assert!(s.column_index(&d.column).is_ok());
        }
    }

    #[test]
    fn spec_without_levels_has_no_binned_dims() {
        let spec = aggregation_spec(&AggregationLevelsConfig::new());
        assert!(spec
            .dims
            .iter()
            .all(|d| matches!(d, DimSpec::Column(_))));
    }

    #[test]
    fn spec_with_levels_adds_binned_wall_time() {
        let mut cfg = AggregationLevelsConfig::new();
        cfg.set(DIM_WALL_TIME, instance_a_walltime());
        let spec = aggregation_spec(&cfg);
        assert!(spec
            .dims
            .iter()
            .any(|d| matches!(d, DimSpec::Binned { column, .. } if column == "wall_hours")));
    }

    #[test]
    fn realm_lookup_helpers() {
        let r = realm(&AggregationLevelsConfig::new());
        assert_eq!(r.kind, RealmKind::Jobs);
        assert!(r.metric("total_su").is_some());
        assert!(r.metric("bogus").is_none());
        assert!(r.dimension("resource").is_some());
        assert_eq!(r.numeric_dimensions().count(), 2);
    }
}

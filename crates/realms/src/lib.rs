//! # xdmod-realms
//!
//! XDMoD's data realms — "groups [of metrics], based on the type of
//! information they measure" (§I-D) — plus the two cross-cutting
//! standardization mechanisms the federation paper depends on:
//!
//! - [`levels`]: JSON-configured **aggregation levels** for numeric
//!   dimensions (Table I), compiled into warehouse bins.
//! - [`su`]: **XDSU standardization** via HPL-derived per-resource
//!   conversion factors (§II-C6), so federated metrics compare fairly
//!   across differently-provisioned systems.
//!
//! Realms implemented: [`jobs`] (HPC Jobs), [`supremm`] (job-level
//! performance, deliberately too heavy to federate), [`storage`]
//! (§III-A), and [`cloud`] (§III-B).

#![warn(missing_docs)]

pub mod cloud;
pub mod docs;
pub mod jobs;
pub mod levels;
pub mod realm;
pub mod storage;
pub mod su;
pub mod supremm;

pub use levels::{AggregationLevelsConfig, LevelSpec};
pub use realm::{DimensionDef, MetricDef, Realm, RealmKind};
pub use su::{HplResult, SuConverter, NUS_PER_XDSU};

/// All realm descriptions for an instance with the given level config.
pub fn all_realms(levels: &AggregationLevelsConfig) -> Vec<Realm> {
    vec![
        jobs::realm(levels),
        supremm::realm(),
        storage::realm(),
        cloud::realm(levels),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_realms_covers_every_kind() {
        let realms = all_realms(&AggregationLevelsConfig::new());
        let kinds: Vec<RealmKind> = realms.iter().map(|r| r.kind).collect();
        assert_eq!(kinds, RealmKind::ALL.to_vec());
    }

    #[test]
    fn fact_tables_have_distinct_names() {
        let realms = all_realms(&AggregationLevelsConfig::new());
        let mut names: Vec<&str> = realms.iter().map(|r| r.fact_schema.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), realms.len());
    }
}

//! JSON-configured aggregation levels (Table I).
//!
//! "Aggregation levels, which are managed by JSON configuration files,
//! apply only to numeric dimensions, such as job wall time, job size
//! (core count), CPU User value, and peak memory usage. Deciding on the
//! aggregation levels that best suit an XDMoD instance is a task for the
//! system administrator at installation time; aggregation levels are
//! fully configurable on each instance and on the federation hub."
//! (§II-C3)
//!
//! An [`AggregationLevelsConfig`] maps numeric dimension ids to ordered
//! bin lists. The presets reproduce Table I: Instance A (5-hour wall
//! limit), Instance B (50-hour limit), and the federation hub spanning
//! both.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use xdmod_warehouse::{Bin, Bins};

/// One configured level: a labeled `[lo, hi)` range in the dimension's
/// native unit (hours for wall time, cores for job size, GB for memory).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelSpec {
    /// Display label (e.g. `"1-5 hours"`).
    pub label: String,
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge.
    pub hi: f64,
}

impl LevelSpec {
    /// Construct a level.
    pub fn new(label: &str, lo: f64, hi: f64) -> Self {
        LevelSpec {
            label: label.to_owned(),
            lo,
            hi,
        }
    }
}

/// The per-instance aggregation-levels configuration file.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AggregationLevelsConfig {
    /// Dimension id → ordered levels.
    pub dimensions: BTreeMap<String, Vec<LevelSpec>>,
}

impl AggregationLevelsConfig {
    /// Empty config.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the levels for a dimension, replacing any previous setting.
    pub fn set(&mut self, dimension: &str, levels: Vec<LevelSpec>) -> &mut Self {
        self.dimensions.insert(dimension.to_owned(), levels);
        self
    }

    /// The levels configured for a dimension.
    pub fn get(&self, dimension: &str) -> Option<&[LevelSpec]> {
        self.dimensions.get(dimension).map(Vec::as_slice)
    }

    /// Compile a dimension's levels into warehouse [`Bins`]. Errors with a
    /// human-readable message if levels are missing, empty, or overlap.
    pub fn bins_for(&self, dimension: &str) -> Result<Bins, String> {
        let levels = self
            .dimensions
            .get(dimension)
            .ok_or_else(|| format!("no aggregation levels configured for dimension {dimension}"))?;
        Bins::new(
            levels
                .iter()
                .map(|l| Bin::new(&l.label, l.lo, l.hi))
                .collect(),
        )
        .map_err(|e| format!("invalid levels for {dimension}: {e}"))
    }

    /// Serialize to the JSON configuration-file format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes") // xc-allow: levels config is plain data; serialization cannot fail
    }

    /// Parse a JSON configuration file, validating every dimension's bins.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let cfg: AggregationLevelsConfig =
            serde_json::from_str(json).map_err(|e| format!("bad levels config: {e}"))?;
        for dim in cfg.dimensions.keys() {
            cfg.bins_for(dim)?;
        }
        Ok(cfg)
    }
}

/// Dimension id used for job wall time throughout the workspace.
pub const DIM_WALL_TIME: &str = "wall_hours";

/// Dimension id used for job size (core count).
pub const DIM_JOB_SIZE: &str = "cores";

/// Dimension id used for VM memory size (Cloud realm, Fig. 7).
pub const DIM_VM_MEMORY: &str = "memory_gb";

/// Table I, "Instance A": resources with a 5-hour wall-time limit.
/// Levels: 1-60 seconds; 1-60 minutes; 1-5 hours.
pub fn instance_a_walltime() -> Vec<LevelSpec> {
    vec![
        LevelSpec::new("1-60 seconds", 1.0 / 3600.0, 60.0 / 3600.0),
        LevelSpec::new("1-60 minutes", 60.0 / 3600.0, 1.0),
        LevelSpec::new("1-5 hours", 1.0, 5.0),
    ]
}

/// Table I, "Instance B": resources with a 50-hour wall-time limit.
/// Levels: 1-10 hours; 10-20 hours; 20-50 hours.
pub fn instance_b_walltime() -> Vec<LevelSpec> {
    vec![
        LevelSpec::new("1-10 hours", 1.0, 10.0),
        LevelSpec::new("10-20 hours", 10.0, 20.0),
        LevelSpec::new("20-50 hours", 20.0, 50.0),
    ]
}

/// Table I, "Federation Hub": levels spanning all member instances.
/// Levels: 0-60 minutes; 1-5 hours; 5-10 hours; 10-20 hours; 20-50 hours.
pub fn hub_walltime() -> Vec<LevelSpec> {
    vec![
        LevelSpec::new("0-60 minutes", 0.0, 1.0),
        LevelSpec::new("1-5 hours", 1.0, 5.0),
        LevelSpec::new("5-10 hours", 5.0, 10.0),
        LevelSpec::new("10-20 hours", 10.0, 20.0),
        LevelSpec::new("20-50 hours", 20.0, 50.0),
    ]
}

/// Default job-size (core count) levels used by example instances.
pub fn default_job_size_levels() -> Vec<LevelSpec> {
    vec![
        LevelSpec::new("1 core", 1.0, 2.0),
        LevelSpec::new("2-32 cores", 2.0, 33.0),
        LevelSpec::new("33-256 cores", 33.0, 257.0),
        LevelSpec::new("257-1k cores", 257.0, 1025.0),
        // JSON cannot carry IEEE infinity, so open-ended top levels use
        // f64::MAX as the exclusive upper edge.
        LevelSpec::new(">1k cores", 1025.0, f64::MAX),
    ]
}

/// VM memory-size levels matching Fig. 7: `<1 GB`, `1-2 GB`, `2-4 GB`,
/// `4-8 GB`.
pub fn fig7_vm_memory_levels() -> Vec<LevelSpec> {
    vec![
        LevelSpec::new("<1 GB", 0.0, 1.0),
        LevelSpec::new("1-2 GB", 1.0, 2.0),
        LevelSpec::new("2-4 GB", 2.0, 4.0),
        LevelSpec::new("4-8 GB", 4.0, 8.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets_compile_to_bins() {
        for levels in [instance_a_walltime(), instance_b_walltime(), hub_walltime()] {
            let mut cfg = AggregationLevelsConfig::new();
            cfg.set(DIM_WALL_TIME, levels);
            let bins = cfg.bins_for(DIM_WALL_TIME).unwrap();
            assert!(!bins.is_empty());
        }
    }

    #[test]
    fn table1_instance_a_binning() {
        let mut cfg = AggregationLevelsConfig::new();
        cfg.set(DIM_WALL_TIME, instance_a_walltime());
        let bins = cfg.bins_for(DIM_WALL_TIME).unwrap();
        assert_eq!(bins.label_of(30.0 / 3600.0), "1-60 seconds");
        assert_eq!(bins.label_of(0.25), "1-60 minutes");
        assert_eq!(bins.label_of(4.0), "1-5 hours");
        // A 12-hour job exceeds Instance A's 5-hour limit entirely.
        assert_eq!(bins.label_of(12.0), "other");
    }

    #[test]
    fn table1_hub_covers_both_instances() {
        let mut cfg = AggregationLevelsConfig::new();
        cfg.set(DIM_WALL_TIME, hub_walltime());
        let bins = cfg.bins_for(DIM_WALL_TIME).unwrap();
        // Everything Instance A could produce...
        assert_eq!(bins.label_of(0.01), "0-60 minutes");
        assert_eq!(bins.label_of(3.0), "1-5 hours");
        // ...and everything Instance B could produce.
        assert_eq!(bins.label_of(7.5), "5-10 hours");
        assert_eq!(bins.label_of(15.0), "10-20 hours");
        assert_eq!(bins.label_of(45.0), "20-50 hours");
    }

    #[test]
    fn json_round_trip() {
        let mut cfg = AggregationLevelsConfig::new();
        cfg.set(DIM_WALL_TIME, hub_walltime());
        cfg.set(DIM_JOB_SIZE, default_job_size_levels());
        let json = cfg.to_json();
        let back = AggregationLevelsConfig::from_json(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn from_json_rejects_overlapping_levels() {
        let json = r#"{
            "dimensions": {
                "wall_hours": [
                    {"label": "a", "lo": 0.0, "hi": 2.0},
                    {"label": "b", "lo": 1.0, "hi": 3.0}
                ]
            }
        }"#;
        let err = AggregationLevelsConfig::from_json(json).unwrap_err();
        assert!(err.contains("overlap"));
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(AggregationLevelsConfig::from_json("not json").is_err());
        assert!(AggregationLevelsConfig::from_json("{\"dimensions\": 3}").is_err());
    }

    #[test]
    fn missing_dimension_reports_name() {
        let cfg = AggregationLevelsConfig::new();
        let err = cfg.bins_for("peak_memory").unwrap_err();
        assert!(err.contains("peak_memory"));
    }

    #[test]
    fn unbounded_top_level_accepts_huge_jobs() {
        let mut cfg = AggregationLevelsConfig::new();
        cfg.set(DIM_JOB_SIZE, default_job_size_levels());
        let bins = cfg.bins_for(DIM_JOB_SIZE).unwrap();
        assert_eq!(bins.label_of(500_000.0), ">1k cores");
    }

    #[test]
    fn fig7_memory_levels_cover_paper_bins() {
        let mut cfg = AggregationLevelsConfig::new();
        cfg.set(DIM_VM_MEMORY, fig7_vm_memory_levels());
        let bins = cfg.bins_for(DIM_VM_MEMORY).unwrap();
        assert_eq!(bins.label_of(0.5), "<1 GB");
        assert_eq!(bins.label_of(1.0), "1-2 GB");
        assert_eq!(bins.label_of(3.9), "2-4 GB");
        assert_eq!(bins.label_of(8.0), "other"); // beyond paper's largest bin
    }
}

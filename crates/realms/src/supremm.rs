//! The SUPReMM (job-level performance) realm.
//!
//! "The SUPReMM realm ... contributes metrics describing individual
//! job-level performance data, such as total memory, CPU usage, memory
//! bandwidth, I/O bandwidth, block read and block write rates." (§I-D)
//!
//! The paper is explicit that this realm is **storage-intensive**:
//! per-job data includes "timeseries plots of nine individual job metrics
//! over the life of the job ... and the job script for each job"
//! (§II-C5) — which is exactly why the initial federation release does
//! *not* replicate it. This module therefore defines the aggregate fact
//! table **plus** the two heavyweight auxiliary tables (timeseries and
//! job scripts), so the "too heavy to federate" design point is real in
//! this reproduction, and a [`summary_spec`] for the summarized
//! replication planned "in a subsequent release".

use crate::realm::{DimensionDef, MetricDef, Realm, RealmKind};
use xdmod_warehouse::{
    AggFn, Aggregate, AggregationSpec, ColumnType, DimSpec, Period, SchemaBuilder, TableSchema,
};

/// Name of the SUPReMM fact table (one row per job).
pub const FACT_TABLE: &str = "supremm_jobfact";

/// Name of the per-job timeseries table (many rows per job).
pub const TIMESERIES_TABLE: &str = "supremm_timeseries";

/// Name of the job-script table (one row per job).
pub const JOBSCRIPT_TABLE: &str = "supremm_jobscript";

/// The nine per-job timeseries metrics the paper cites (§II-C5 mentions
/// "nine individual job metrics ... such as CPU user and memory
/// bandwidth"; this is the canonical SUPReMM set).
pub const TIMESERIES_METRICS: [&str; 9] = [
    "cpu_user",
    "flops",
    "memory_used",
    "memory_bandwidth",
    "io_read",
    "io_write",
    "block_read",
    "block_write",
    "parallel_fs",
];

/// Schema of the per-job summary fact table.
pub fn fact_schema() -> TableSchema {
    SchemaBuilder::new(FACT_TABLE)
        .required("job_id", ColumnType::Int)
        .required("resource", ColumnType::Str)
        .required("user", ColumnType::Str)
        .required("end_time", ColumnType::Time)
        .required("cpu_user", ColumnType::Float) // mean fraction, 0..1
        .required("flops_gf", ColumnType::Float)
        .required("memory_gb", ColumnType::Float)
        .required("membw_gbs", ColumnType::Float)
        .required("io_read_gbs", ColumnType::Float)
        .required("io_write_gbs", ColumnType::Float)
        .required("block_read_gbs", ColumnType::Float)
        .required("block_write_gbs", ColumnType::Float)
        .build()
        .expect("supremm fact schema is valid") // xc-allow: static schema literal, valid by construction
}

/// Schema of the heavyweight per-job timeseries table.
pub fn timeseries_schema() -> TableSchema {
    SchemaBuilder::new(TIMESERIES_TABLE)
        .required("job_id", ColumnType::Int)
        .required("ts", ColumnType::Time)
        .required("metric", ColumnType::Str)
        .required("value", ColumnType::Float)
        .build()
        .expect("supremm timeseries schema is valid") // xc-allow: static schema literal, valid by construction
}

/// Schema of the job-script table.
pub fn jobscript_schema() -> TableSchema {
    SchemaBuilder::new(JOBSCRIPT_TABLE)
        .required("job_id", ColumnType::Int)
        .required("script", ColumnType::Str)
        .build()
        .expect("supremm jobscript schema is valid") // xc-allow: static schema literal, valid by construction
}

/// Chartable metrics of the SUPReMM realm (aggregate view).
pub fn metrics() -> Vec<MetricDef> {
    vec![
        MetricDef {
            id: "avg_cpu_user".into(),
            label: "Avg CPU User".into(),
            unit: "fraction".into(),
            aggregate: Aggregate::of(AggFn::Avg, "cpu_user", "avg_cpu_user"),
        },
        MetricDef {
            id: "avg_flops".into(),
            label: "Avg FLOPS".into(),
            unit: "GFLOP/s".into(),
            aggregate: Aggregate::of(AggFn::Avg, "flops_gf", "avg_flops"),
        },
        MetricDef {
            id: "avg_memory".into(),
            label: "Avg Memory Used".into(),
            unit: "GB".into(),
            aggregate: Aggregate::of(AggFn::Avg, "memory_gb", "avg_memory"),
        },
        MetricDef {
            id: "avg_membw".into(),
            label: "Avg Memory Bandwidth".into(),
            unit: "GB/s".into(),
            aggregate: Aggregate::of(AggFn::Avg, "membw_gbs", "avg_membw"),
        },
        MetricDef {
            id: "total_block_read".into(),
            label: "Block Read: Total".into(),
            unit: "GB".into(),
            aggregate: Aggregate::of(AggFn::Sum, "block_read_gbs", "total_block_read"),
        },
        MetricDef {
            id: "total_block_write".into(),
            label: "Block Write: Total".into(),
            unit: "GB".into(),
            aggregate: Aggregate::of(AggFn::Sum, "block_write_gbs", "total_block_write"),
        },
    ]
}

/// Dimensions of the SUPReMM realm.
pub fn dimensions() -> Vec<DimensionDef> {
    vec![
        DimensionDef {
            id: "resource".into(),
            label: "Resource".into(),
            column: "resource".into(),
            numeric: false,
        },
        DimensionDef {
            id: "user".into(),
            label: "User".into(),
            column: "user".into(),
            numeric: false,
        },
        DimensionDef {
            id: "cpu_user".into(),
            label: "CPU User Value".into(),
            column: "cpu_user".into(),
            numeric: true,
        },
        DimensionDef {
            id: "memory_gb".into(),
            label: "Peak Memory Usage".into(),
            column: "memory_gb".into(),
            numeric: true,
        },
    ]
}

/// Default aggregation pipeline for the fact table.
pub fn aggregation_spec() -> AggregationSpec {
    AggregationSpec {
        fact_table: FACT_TABLE.into(),
        time_column: "end_time".into(),
        dims: vec![DimSpec::Column("resource".into())],
        measures: vec![
            Aggregate::count("job_count"),
            Aggregate::of(AggFn::Avg, "cpu_user", "avg_cpu_user"),
            Aggregate::of(AggFn::Avg, "memory_gb", "avg_memory"),
            Aggregate::of(AggFn::Avg, "membw_gbs", "avg_membw"),
            Aggregate::of(AggFn::Sum, "block_read_gbs", "total_block_read"),
            Aggregate::of(AggFn::Sum, "block_write_gbs", "total_block_write"),
        ],
        periods: Period::ALL.to_vec(),
        table_prefix: None,
    }
}

/// The *summarized* performance aggregation planned for federation in "a
/// subsequent release" (§II-C5): monthly per-resource summaries only — no
/// per-job rows, no timeseries, no scripts — small enough to replicate.
pub fn summary_spec() -> AggregationSpec {
    AggregationSpec {
        fact_table: FACT_TABLE.into(),
        time_column: "end_time".into(),
        dims: vec![DimSpec::Column("resource".into())],
        measures: vec![
            Aggregate::count("job_count"),
            Aggregate::of(AggFn::Avg, "cpu_user", "avg_cpu_user"),
            Aggregate::of(AggFn::Avg, "memory_gb", "avg_memory"),
        ],
        periods: vec![Period::Month],
        table_prefix: Some("supremm_summary".into()),
    }
}

/// The complete SUPReMM realm description.
pub fn realm() -> Realm {
    Realm {
        kind: RealmKind::Supremm,
        fact_schema: fact_schema(),
        aux_schemas: vec![timeseries_schema(), jobscript_schema()],
        metrics: metrics(),
        dimensions: dimensions(),
        default_aggregation: aggregation_spec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_timeseries_metrics() {
        assert_eq!(TIMESERIES_METRICS.len(), 9);
        let mut sorted = TIMESERIES_METRICS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 9, "timeseries metric names must be unique");
    }

    #[test]
    fn realm_carries_heavyweight_aux_tables() {
        let r = realm();
        let names: Vec<&str> = r.aux_schemas.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec![TIMESERIES_TABLE, JOBSCRIPT_TABLE]);
    }

    #[test]
    fn metric_columns_exist() {
        let s = fact_schema();
        for m in metrics() {
            if let Some(c) = &m.aggregate.column {
                assert!(s.column_index(c).is_ok(), "{} missing", c);
            }
        }
    }

    #[test]
    fn summary_spec_is_month_only_and_small() {
        let spec = summary_spec();
        assert_eq!(spec.periods, vec![Period::Month]);
        assert_eq!(spec.dims.len(), 1);
    }

    #[test]
    fn supremm_not_federated_by_default() {
        assert!(!realm().kind.federated_by_default());
    }
}

//! Exposition formats: Prometheus-style text and JSON.
//!
//! Both renderings are **deterministic**: metrics sort by `(name, labels)`
//! and floats print with Rust's shortest-round-trip formatting, so test
//! suites can snapshot the output byte-for-byte.

use crate::histogram::HistogramSnapshot;
use crate::registry::{MetricId, MetricsRegistry, RegistrySnapshot};
use std::fmt::Write as _;

/// Escape a label value for the text exposition (`\\`, `\"`, `\n`).
pub(crate) fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Escape a string for JSON output.
fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a float deterministically; non-finite values (which no
/// instrument should produce) render as 0 so the output stays parseable.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

fn render_with_extra_label(id: &MetricId, suffix: &str, extra: Option<(&str, &str)>) -> String {
    let mut labels: Vec<String> = id
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        labels.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if labels.is_empty() {
        format!("{}{}", id.name, suffix)
    } else {
        format!("{}{}{{{}}}", id.name, suffix, labels.join(","))
    }
}

fn write_histogram(out: &mut String, id: &MetricId, h: &HistogramSnapshot) {
    for (upper, cum) in h.cumulative_buckets() {
        let _ = writeln!(
            out,
            "{} {cum}",
            render_with_extra_label(id, "_bucket", Some(("le", &fmt_f64(upper))))
        );
    }
    let _ = writeln!(
        out,
        "{} {}",
        render_with_extra_label(id, "_bucket", Some(("le", "+Inf"))),
        h.count
    );
    let _ = writeln!(out, "{} {}", render_with_extra_label(id, "_sum", None), fmt_f64(h.sum));
    let _ = writeln!(out, "{} {}", render_with_extra_label(id, "_count", None), h.count);
}

impl MetricsRegistry {
    /// Prometheus-style text exposition of every registered metric.
    ///
    /// Counters and gauges render one sample per label set; histograms
    /// render cumulative `_bucket{le=...}` samples up to their highest
    /// non-empty bucket plus `+Inf`, then `_sum` and `_count`. A `# TYPE`
    /// comment precedes each metric family. Output is empty for a
    /// disabled registry.
    pub fn prometheus_text(&self) -> String {
        self.snapshot().prometheus_text()
    }

    /// JSON exposition: `{"counters": [...], "gauges": [...],
    /// "histograms": [...], "events": [...]}` with deterministic ordering.
    pub fn json(&self) -> String {
        self.snapshot().json()
    }
}

impl RegistrySnapshot {
    /// See [`MetricsRegistry::prometheus_text`].
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            if last_family != name {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_family = name.to_owned();
            }
        };
        for (id, v) in &self.counters {
            type_line(&mut out, &id.name, "counter");
            let _ = writeln!(out, "{} {v}", id.render());
        }
        for (id, v) in &self.gauges {
            type_line(&mut out, &id.name, "gauge");
            let _ = writeln!(out, "{} {}", id.render(), fmt_f64(*v));
        }
        for (id, h) in &self.histograms {
            type_line(&mut out, &id.name, "histogram");
            write_histogram(&mut out, id, h);
        }
        out
    }

    /// See [`MetricsRegistry::json`].
    pub fn json(&self) -> String {
        let mut out = String::from("{\"counters\":[");
        for (i, (id, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",", escape_json(&id.name));
            write_json_labels(&mut out, id);
            let _ = write!(out, ",\"value\":{v}}}");
        }
        out.push_str("],\"gauges\":[");
        for (i, (id, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",", escape_json(&id.name));
            write_json_labels(&mut out, id);
            let _ = write!(out, ",\"value\":{}}}", fmt_f64(*v));
        }
        out.push_str("],\"histograms\":[");
        for (i, (id, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",", escape_json(&id.name));
            write_json_labels(&mut out, id);
            let _ = write!(
                out,
                ",\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count,
                fmt_f64(h.sum),
                fmt_f64(h.max),
                json_opt(h.p50()),
                json_opt(h.p95()),
                json_opt(h.p99()),
            );
        }
        out.push_str("],\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"elapsed_ms\":{},\"kind\":\"{}\",\"message\":\"{}\",\"fields\":{{",
                e.seq,
                e.elapsed_ms,
                escape_json(&e.kind),
                escape_json(&e.message)
            );
            for (j, (k, v)) in e.fields.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", escape_json(k), fmt_f64(*v));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => fmt_f64(v),
        None => "null".to_owned(),
    }
}

fn write_json_labels(out: &mut String, id: &MetricId) {
    out.push_str("\"labels\":{");
    for (i, (k, v)) in id.labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("events_applied_total", &[("link", "x")]).add(7);
        reg.counter("events_applied_total", &[("link", "y")]).add(3);
        reg.gauge("replication_lag_seconds", &[("link", "x")]).set(0.5);
        let h = reg.histogram("query_seconds", &[("table", "jobfact")]);
        h.observe(0.5e-9); // bucket 0 (le 1e-9)
        h.observe(1.5e-9); // bucket 1 (le 2e-9)
        h.observe(3.0e-9); // bucket 2 (le 4e-9)
        reg
    }

    #[test]
    fn prometheus_text_snapshot_is_stable() {
        let expected = "\
# TYPE events_applied_total counter
events_applied_total{link=\"x\"} 7
events_applied_total{link=\"y\"} 3
# TYPE replication_lag_seconds gauge
replication_lag_seconds{link=\"x\"} 0.5
# TYPE query_seconds histogram
query_seconds_bucket{table=\"jobfact\",le=\"0.000000001\"} 1
query_seconds_bucket{table=\"jobfact\",le=\"0.000000002\"} 2
query_seconds_bucket{table=\"jobfact\",le=\"0.000000004\"} 3
query_seconds_bucket{table=\"jobfact\",le=\"+Inf\"} 3
query_seconds_sum{table=\"jobfact\"} 0.000000005
query_seconds_count{table=\"jobfact\"} 3
";
        assert_eq!(sample_registry().prometheus_text(), expected);
        // And it is idempotent: rendering twice gives the same bytes.
        let reg = sample_registry();
        assert_eq!(reg.prometheus_text(), reg.prometheus_text());
    }

    #[test]
    fn disabled_registry_renders_empty() {
        let reg = MetricsRegistry::disabled();
        assert_eq!(reg.prometheus_text(), "");
        assert_eq!(
            reg.json(),
            "{\"counters\":[],\"gauges\":[],\"histograms\":[],\"events\":[]}"
        );
    }

    #[test]
    fn json_contains_every_section_and_escapes() {
        let reg = sample_registry();
        reg.event_with("replication.error", "link \"x\"\nbroke", &[("attempt", 2.0)]);
        let json = reg.json();
        assert!(json.starts_with("{\"counters\":["));
        assert!(json.contains("\"name\":\"events_applied_total\""));
        assert!(json.contains("\"labels\":{\"link\":\"x\"}"));
        assert!(json.contains("\"p50\":"));
        assert!(json.contains("link \\\"x\\\"\\nbroke"));
        assert!(json.contains("\"attempt\":2"));
        assert!(json.ends_with("]}"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_enabled_registry_renders_empty_sections() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.prometheus_text(), "");
        assert_eq!(
            reg.json(),
            "{\"counters\":[],\"gauges\":[],\"histograms\":[],\"events\":[]}"
        );
    }

    #[test]
    fn escape_label_handles_specials() {
        assert_eq!(escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }
}

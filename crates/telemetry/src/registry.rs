//! The metric registry and its scalar instruments.

use crate::event::{Event, EventRing};
use crate::histogram::{Histogram, HistogramCore, HistogramSnapshot};
use crate::span::Span;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Default bound of the event ring buffer.
const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// Identity of one metric: a name plus sorted label pairs.
///
/// Two instruments with the same id share state, so a component may
/// re-request a handle instead of caching it (caching is still cheaper —
/// re-requests take the registry lock).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// Metric name, e.g. `replication_events_applied_total`.
    pub name: String,
    /// Label pairs, sorted by key for a canonical identity.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// Build an id with canonically sorted labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_owned(),
            labels,
        }
    }

    /// Value of one label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Render as `name{k="v",...}` (or bare `name` without labels).
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", crate::export::escape_label(v)))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// A monotonically increasing counter. Cloning shares state; a handle
/// from a disabled registry is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// A no-op counter.
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for no-op handles).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// An instantaneous `f64` gauge (stored as bits in an `AtomicU64`).
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// A no-op gauge.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Add a delta (CAS loop).
    pub fn add(&self, delta: f64) {
        if let Some(cell) = &self.0 {
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                let new = (f64::from_bits(cur) + delta).to_bits();
                match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Current value (0.0 for no-op handles).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

#[derive(Debug)]
struct Inner {
    start: Instant,
    counters: Mutex<BTreeMap<MetricId, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<MetricId, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<MetricId, Arc<HistogramCore>>>,
    events: Mutex<EventRing>,
}

/// The metric registry: a cheaply cloneable, global-free handle that owns
/// every instrument of one observed system (an instance, a hub, a test).
///
/// `Default` is **disabled** so that embedding a registry into another
/// struct (e.g. the warehouse `Database`) costs nothing until an owner
/// explicitly attaches an enabled one.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<Inner>>,
}

impl MetricsRegistry {
    /// An enabled registry with the default event-ring capacity.
    pub fn new() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled registry with a custom event-ring capacity.
    pub fn with_event_capacity(capacity: usize) -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                events: Mutex::new(EventRing::new(capacity)),
            })),
        }
    }

    /// The no-op registry: hands out no-op instruments, records nothing.
    pub fn disabled() -> Self {
        MetricsRegistry { inner: None }
    }

    /// True when this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True when two handles share the same underlying registry (or both
    /// are disabled).
    pub fn same_registry(&self, other: &MetricsRegistry) -> bool {
        match (&self.inner, &other.inner) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// Milliseconds since this registry was created (0 when disabled).
    pub fn elapsed_ms(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.start.elapsed().as_millis() as u64)
    }

    // Lock policy: instrument maps are touched on every poll tick, so a
    // panic while holding one (poisoning) must not cascade into every
    // later metric emission — recover the guard with
    // `unwrap_or_else(PoisonError::into_inner)`; the maps hold only
    // Arc'd cells and stay structurally valid across an interrupted
    // insert. Enforced by `xtask lint` rule `hot-path-lock`.

    /// Register (or fetch) a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.inner {
            None => Counter::noop(),
            Some(inner) => {
                let id = MetricId::new(name, labels);
                let mut map = inner.counters.lock().unwrap_or_else(PoisonError::into_inner);
                Counter(Some(Arc::clone(
                    map.entry(id).or_insert_with(|| Arc::new(AtomicU64::new(0))),
                )))
            }
        }
    }

    /// Register (or fetch) a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match &self.inner {
            None => Gauge::noop(),
            Some(inner) => {
                let id = MetricId::new(name, labels);
                let mut map = inner.gauges.lock().unwrap_or_else(PoisonError::into_inner);
                Gauge(Some(Arc::clone(map.entry(id).or_insert_with(|| {
                    Arc::new(AtomicU64::new(0f64.to_bits()))
                }))))
            }
        }
    }

    /// Register (or fetch) a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match &self.inner {
            None => Histogram::noop(),
            Some(inner) => {
                let id = MetricId::new(name, labels);
                let mut map = inner.histograms.lock().unwrap_or_else(PoisonError::into_inner);
                Histogram(Some(Arc::clone(
                    map.entry(id).or_insert_with(|| Arc::new(HistogramCore::new())),
                )))
            }
        }
    }

    /// Start an RAII timer that observes its elapsed seconds into the
    /// named histogram when dropped. Disabled registries return an inert
    /// span that never reads the clock.
    pub fn span(&self, histogram_name: &str, labels: &[(&str, &str)]) -> Span {
        Span::starting(self.histogram(histogram_name, labels))
    }

    /// Record a structured event.
    pub fn event(&self, kind: &str, message: &str) {
        self.event_with(kind, message, &[]);
    }

    /// Record a structured event with numeric fields.
    pub fn event_with(&self, kind: &str, message: &str, fields: &[(&str, f64)]) {
        if let Some(inner) = &self.inner {
            let elapsed = inner.start.elapsed().as_millis() as u64;
            inner
                .events
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(elapsed, kind, message, fields);
        }
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.events.lock().unwrap_or_else(PoisonError::into_inner).all()
        })
    }

    /// Retained events of one kind, oldest first.
    pub fn events_of_kind(&self, kind: &str) -> Vec<Event> {
        self.events().into_iter().filter(|e| e.kind == kind).collect()
    }

    /// Total events ever emitted (including ones evicted from the ring).
    pub fn events_emitted(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            i.events.lock().unwrap_or_else(PoisonError::into_inner).total_emitted()
        })
    }

    /// Events evicted from the ring before any consumer read them.
    pub fn events_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            i.events.lock().unwrap_or_else(PoisonError::into_inner).total_dropped()
        })
    }

    /// Point-in-time copy of every instrument and the event ring.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let Some(inner) = &self.inner else {
            return RegistrySnapshot::default();
        };
        let mut counters: Vec<(MetricId, u64)> = inner
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(id, cell)| (id.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        // Ring overflow is the one telemetry loss telemetry itself would
        // otherwise hide; surface it as a synthetic counter so every
        // exporter (Prometheus text, JSON, `counter()`) sees it. Only
        // materialized once loss has actually happened, so overflow-free
        // registries snapshot exactly what they registered.
        let dropped = self.events_dropped();
        if dropped > 0 {
            let id = MetricId::new("telemetry_events_dropped_total", &[]);
            match counters.binary_search_by(|(i, _)| i.cmp(&id)) {
                Ok(at) => counters[at].1 += dropped,
                Err(at) => counters.insert(at, (id, dropped)),
            }
        }
        let gauges = inner
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(id, cell)| (id.clone(), f64::from_bits(cell.load(Ordering::Relaxed))))
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(id, core)| (id.clone(), core.snapshot()))
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
            events: self.events(),
        }
    }
}

/// A deterministic, ordered copy of a registry's state (metric ids sort
/// by name, then labels).
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Counters and their values.
    pub counters: Vec<(MetricId, u64)>,
    /// Gauges and their values.
    pub gauges: Vec<(MetricId, f64)>,
    /// Histograms and their distributions.
    pub histograms: Vec<(MetricId, HistogramSnapshot)>,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
}

impl RegistrySnapshot {
    /// Value of one counter, if registered.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let id = MetricId::new(name, labels);
        self.counters.iter().find(|(i, _)| *i == id).map(|(_, v)| *v)
    }

    /// Sum of a counter across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(i, _)| i.name == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Value of one gauge, if registered.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let id = MetricId::new(name, labels);
        self.gauges.iter().find(|(i, _)| *i == id).map(|(_, v)| *v)
    }

    /// One histogram's distribution, if registered.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        let id = MetricId::new(name, labels);
        self.histograms.iter().find(|(i, _)| *i == id).map(|(_, h)| h)
    }

    /// All histograms sharing a metric name, with their ids.
    pub fn histograms_named(&self, name: &str) -> Vec<(&MetricId, &HistogramSnapshot)> {
        self.histograms
            .iter()
            .filter(|(i, _)| i.name == name)
            .map(|(i, h)| (i, h))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_state_by_id() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("events_total", &[("link", "x")]);
        let b = reg.counter("events_total", &[("link", "x")]);
        let other = reg.counter("events_total", &[("link", "y")]);
        a.inc();
        b.add(2);
        other.add(10);
        assert_eq!(a.get(), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("events_total", &[("link", "x")]), Some(3));
        assert_eq!(snap.counter_total("events_total"), 13);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = MetricsRegistry::new();
        reg.counter("m", &[("a", "1"), ("b", "2")]).inc();
        reg.counter("m", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(reg.snapshot().counters.len(), 1);
        assert_eq!(reg.snapshot().counter_total("m"), 2);
    }

    #[test]
    fn gauges_set_add_get() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("lag_seconds", &[("link", "x")]);
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
        assert_eq!(reg.snapshot().gauge("lag_seconds", &[("link", "x")]), Some(1.5));
    }

    #[test]
    fn disabled_registry_is_inert_everywhere() {
        let reg = MetricsRegistry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("c", &[]);
        let g = reg.gauge("g", &[]);
        let h = reg.histogram("h", &[]);
        c.inc();
        g.set(1.0);
        h.observe(1.0);
        reg.event("k", "m");
        drop(reg.span("h", &[]));
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.events.is_empty());
        assert_eq!(reg.events_emitted(), 0);
    }

    #[test]
    fn default_is_disabled_and_clone_shares() {
        assert!(!MetricsRegistry::default().is_enabled());
        let reg = MetricsRegistry::new();
        let clone = reg.clone();
        assert!(reg.same_registry(&clone));
        clone.counter("c", &[]).inc();
        assert_eq!(reg.snapshot().counter_total("c"), 1);
        assert!(!reg.same_registry(&MetricsRegistry::new()));
    }

    #[test]
    fn events_round_trip_through_registry() {
        let reg = MetricsRegistry::with_event_capacity(2);
        reg.event("a.start", "one");
        reg.event_with("a.lag", "link-x", &[("lag", 3.0)]);
        reg.event("a.stop", "three");
        let all = reg.events();
        assert_eq!(all.len(), 2); // capacity bound
        assert_eq!(reg.events_emitted(), 3);
        let lags = reg.events_of_kind("a.lag");
        assert_eq!(lags.len(), 1);
        assert_eq!(lags[0].field("lag"), Some(3.0));
    }

    #[test]
    fn ring_overflow_surfaces_as_dropped_counter() {
        let reg = MetricsRegistry::with_event_capacity(2);
        reg.event("a", "1");
        reg.event("b", "2");
        // No overflow yet: the synthetic counter must not exist.
        assert_eq!(reg.events_dropped(), 0);
        assert_eq!(
            reg.snapshot().counter("telemetry_events_dropped_total", &[]),
            None
        );
        reg.event("c", "3");
        reg.event("d", "4");
        assert_eq!(reg.events_dropped(), 2);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("telemetry_events_dropped_total", &[]),
            Some(2)
        );
        // The synthetic entry keeps snapshot ordering canonical.
        let names: Vec<&str> = snap.counters.iter().map(|(i, _)| i.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn snapshot_ids_are_sorted_deterministically() {
        let reg = MetricsRegistry::new();
        reg.counter("z_total", &[]).inc();
        reg.counter("a_total", &[("k", "2")]).inc();
        reg.counter("a_total", &[("k", "1")]).inc();
        let names: Vec<String> = reg
            .snapshot()
            .counters
            .iter()
            .map(|(id, _)| id.render())
            .collect();
        assert_eq!(names, vec!["a_total{k=\"1\"}", "a_total{k=\"2\"}", "z_total"]);
    }

    #[test]
    fn metric_id_render_escapes_labels() {
        let id = MetricId::new("m", &[("path", "a\"b\\c\n")]);
        assert_eq!(id.render(), "m{path=\"a\\\"b\\\\c\\n\"}");
    }

    #[test]
    fn span_observes_into_histogram_on_drop() {
        let reg = MetricsRegistry::new();
        {
            let _span = reg.span("op_seconds", &[("op", "test")]);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = reg.snapshot();
        let h = snap.histogram("op_seconds", &[("op", "test")]).unwrap();
        assert_eq!(h.count, 1);
        assert!(h.max >= 0.002, "span recorded {}", h.max);
    }
}

//! A bounded ring buffer of structured events.
//!
//! Events are the registry's trace substrate: replication errors, lag
//! samples, lifecycle notes. The buffer is bounded (oldest dropped first)
//! so an instrumented component can emit freely without unbounded memory
//! growth; sequence numbers stay monotone across drops so consumers can
//! detect loss.

use std::collections::VecDeque;

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotone sequence number (1-based; survives ring eviction).
    pub seq: u64,
    /// Milliseconds since the owning registry was created.
    pub elapsed_ms: u64,
    /// Dotted event kind, e.g. `replication.lag` or `replication.error`.
    pub kind: String,
    /// Free-form context (for link-scoped events, the link name).
    pub message: String,
    /// Structured numeric payload.
    pub fields: Vec<(String, f64)>,
}

impl Event {
    /// Value of a named field, if present.
    pub fn field(&self, name: &str) -> Option<f64> {
        self.fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }
}

/// Fixed-capacity event ring.
#[derive(Debug)]
pub(crate) struct EventRing {
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    events: VecDeque<Event>,
}

impl EventRing {
    pub(crate) fn new(capacity: usize) -> Self {
        EventRing {
            capacity: capacity.max(1),
            next_seq: 1,
            dropped: 0,
            events: VecDeque::new(),
        }
    }

    pub(crate) fn push(
        &mut self,
        elapsed_ms: u64,
        kind: &str,
        message: &str,
        fields: &[(&str, f64)],
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Event {
            seq,
            elapsed_ms,
            kind: kind.to_owned(),
            message: message.to_owned(),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
        });
        seq
    }

    pub(crate) fn all(&self) -> Vec<Event> {
        self.events.iter().cloned().collect()
    }

    pub(crate) fn total_emitted(&self) -> u64 {
        self.next_seq - 1
    }

    /// Events evicted before anyone could read them. Ring overflow
    /// would otherwise be the one telemetry loss telemetry can't see —
    /// the registry surfaces this as `telemetry_events_dropped_total`.
    pub(crate) fn total_dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_but_keeps_sequence() {
        let mut ring = EventRing::new(3);
        for i in 0..5 {
            ring.push(i, "k", "m", &[]);
        }
        let events = ring.all();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(ring.total_emitted(), 5);
        assert_eq!(ring.total_dropped(), 2);
    }

    #[test]
    fn dropped_stays_zero_until_overflow() {
        let mut ring = EventRing::new(2);
        ring.push(0, "a", "", &[]);
        ring.push(0, "b", "", &[]);
        assert_eq!(ring.total_dropped(), 0);
        ring.push(0, "c", "", &[]);
        assert_eq!(ring.total_dropped(), 1);
    }

    #[test]
    fn fields_are_preserved_and_queryable() {
        let mut ring = EventRing::new(8);
        ring.push(7, "replication.lag", "link-x", &[("lag_events", 4.0)]);
        let e = &ring.all()[0];
        assert_eq!(e.kind, "replication.lag");
        assert_eq!(e.message, "link-x");
        assert_eq!(e.field("lag_events"), Some(4.0));
        assert_eq!(e.field("absent"), None);
        assert_eq!(e.elapsed_ms, 7);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ring = EventRing::new(0);
        ring.push(0, "a", "", &[]);
        ring.push(0, "b", "", &[]);
        assert_eq!(ring.all().len(), 1);
        assert_eq!(ring.all()[0].kind, "b");
    }
}

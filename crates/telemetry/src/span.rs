//! RAII timing spans.

use crate::histogram::Histogram;
use std::time::Instant;

/// An RAII timer: created via [`crate::MetricsRegistry::span`], it
/// observes its elapsed wall-clock seconds into a histogram when dropped
/// (or earlier via [`Span::finish`]).
///
/// Spans from a disabled registry never read the clock, so an
/// instrumented scope costs one branch when telemetry is off.
#[derive(Debug)]
pub struct Span {
    hist: Histogram,
    /// `None` when telemetry is disabled or the span already finished.
    start: Option<Instant>,
}

impl Span {
    pub(crate) fn starting(hist: Histogram) -> Self {
        let start = hist.is_enabled().then(Instant::now);
        Span { hist, start }
    }

    /// An inert span (used by callers that hold an optional span).
    pub fn noop() -> Self {
        Span {
            hist: Histogram::noop(),
            start: None,
        }
    }

    /// Seconds elapsed so far (0.0 for inert spans).
    pub fn elapsed_secs(&self) -> f64 {
        self.start.map_or(0.0, |s| s.elapsed().as_secs_f64())
    }

    /// Observe now and return the elapsed seconds; the drop becomes a
    /// no-op. Useful when the caller also wants the measured value.
    pub fn finish(mut self) -> f64 {
        self.finish_inner()
    }

    fn finish_inner(&mut self) -> f64 {
        match self.start.take() {
            Some(start) => {
                let secs = start.elapsed().as_secs_f64();
                self.hist.observe(secs);
                secs
            }
            None => 0.0,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn finish_observes_once() {
        let reg = MetricsRegistry::new();
        let span = reg.span("op_seconds", &[]);
        let secs = span.finish();
        assert!(secs >= 0.0);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("op_seconds", &[]).unwrap().count, 1);
    }

    #[test]
    fn noop_span_is_inert() {
        let span = Span::noop();
        assert_eq!(span.elapsed_secs(), 0.0);
        assert_eq!(span.finish(), 0.0);
    }

    #[test]
    fn elapsed_is_monotone_while_running() {
        let reg = MetricsRegistry::new();
        let span = reg.span("op_seconds", &[]);
        let a = span.elapsed_secs();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let b = span.elapsed_secs();
        assert!(b >= a);
    }
}

//! Log₂-bucketed histograms with quantile estimation.
//!
//! Latencies span many orders of magnitude (a cached counter read is
//! nanoseconds; a federation-wide re-aggregation is seconds), so buckets
//! grow geometrically: bucket `i` covers `(MIN_BOUND·2^(i-1), MIN_BOUND·2^i]`
//! with `MIN_BOUND` = 1 ns expressed in seconds. 64 buckets reach ~9×10⁹
//! seconds, far past anything observable. Quantiles are estimated by
//! linear interpolation inside the selected bucket, which keeps the
//! estimate within one bucket width (≤2×) of truth and much closer for
//! smooth distributions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log₂ buckets.
pub const BUCKETS: usize = 64;

/// Upper bound of bucket 0, in the histogram's native unit (seconds for
/// timers): one nanosecond.
pub const MIN_BOUND: f64 = 1e-9;

/// Upper bound of bucket `i`.
#[inline]
pub fn bucket_upper(i: usize) -> f64 {
    MIN_BOUND * 2f64.powi(i.min(BUCKETS - 1) as i32)
}

/// Shared histogram state. All fields are atomics; `observe` is lock-free.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Sum of observed values, stored as `f64` bits and updated by CAS.
    sum_bits: AtomicU64,
    /// Maximum observed value, stored as `f64` bits. Non-negative `f64`
    /// bit patterns order like the floats themselves, so `fetch_max`-style
    /// CAS on the bits is correct for our (non-negative) observations.
    max_bits: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            max_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    fn bucket_index(v: f64) -> usize {
        if !(v > MIN_BOUND) {
            // NaN, negative, zero, and sub-nanosecond all land in bucket 0.
            return 0;
        }
        let idx = (v / MIN_BOUND).log2().ceil() as i64;
        idx.clamp(0, (BUCKETS - 1) as i64) as usize
    }

    pub(crate) fn observe(&self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS loops for the float fields.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut cur = self.max_bits.load(Ordering::Relaxed);
        while f64::from_bits(cur) < v {
            match self
                .max_bits
                .compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
        }
    }
}

/// A handle to one histogram. Cheap to clone; `None` inside means the
/// owning registry is disabled and every operation is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// A no-op histogram (what a disabled registry hands out).
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// True when observations are actually recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record one observation (negative/NaN values count as 0).
    #[inline]
    pub fn observe(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.observe(v);
        }
    }

    /// Consistent point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            Some(core) => core.snapshot(),
            None => HistogramSnapshot::default(),
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.snapshot().count
    }
}

/// An immutable copy of a histogram's state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (not cumulative).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Largest observation.
    pub max: f64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the selected log bucket; clamped to the observed maximum.
    /// Returns `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cum + n;
            if (next as f64) >= rank {
                let lower = if i == 0 { 0.0 } else { bucket_upper(i - 1) };
                let upper = bucket_upper(i);
                let frac = ((rank - cum as f64) / n as f64).clamp(0.0, 1.0);
                let est = lower + frac * (upper - lower);
                return Some(est.min(self.max));
            }
            cum = next;
        }
        Some(self.max)
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Cumulative count at or below each bucket upper bound, as
    /// `(upper_bound, cumulative)` pairs ending at the highest non-empty
    /// bucket. Empty histograms yield an empty vector.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let last = match (0..BUCKETS).rev().find(|&i| self.buckets[i] > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut cum = 0u64;
        (0..=last)
            .map(|i| {
                cum += self.buckets[i];
                (bucket_upper(i), cum)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: impl IntoIterator<Item = f64>) -> HistogramSnapshot {
        let core = HistogramCore::new();
        for v in values {
            core.observe(v);
        }
        core.snapshot()
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let snap = filled([]);
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.count, 0);
        assert!(snap.cumulative_buckets().is_empty());
    }

    #[test]
    fn quantiles_of_known_uniform_distribution() {
        // 1..=1000 uniform: true p50=500, p95=950, p99=990, max=1000.
        let snap = filled((1..=1000).map(f64::from));
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.max, 1000.0);
        assert!((snap.sum - 500_500.0).abs() < 1e-6);
        let p50 = snap.p50().unwrap();
        let p95 = snap.p95().unwrap();
        let p99 = snap.p99().unwrap();
        assert!((p50 - 500.0).abs() / 500.0 < 0.10, "p50 estimate {p50}");
        assert!((p95 - 950.0).abs() / 950.0 < 0.15, "p95 estimate {p95}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.15, "p99 estimate {p99}");
        // Quantiles are monotone and capped at the max.
        assert!(p50 <= p95 && p95 <= p99 && p99 <= 1000.0);
    }

    #[test]
    fn quantiles_of_point_mass() {
        let snap = filled(std::iter::repeat(0.25).take(100));
        // Everything sits in one bucket whose bounds bracket 0.25.
        let p50 = snap.p50().unwrap();
        assert!(p50 <= 0.25 && p50 > 0.125 / 2.0, "p50 {p50}");
        assert_eq!(snap.quantile(1.0), Some(0.25));
        assert_eq!(snap.max, 0.25);
    }

    #[test]
    fn pathological_values_are_tolerated() {
        let snap = filled([-1.0, 0.0, f64::NAN, f64::INFINITY, 1e-12]);
        assert_eq!(snap.count, 5);
        // Negative/NaN/∞ sanitize to 0; sub-nanosecond positives survive.
        assert_eq!(snap.max, 1e-12);
        assert_eq!(snap.buckets[0], 5);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_end_at_count() {
        let snap = filled([1e-9, 1e-6, 1e-3, 1.0, 2.5]);
        let cum = snap.cumulative_buckets();
        assert!(!cum.is_empty());
        assert!(cum.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0));
        assert_eq!(cum.last().unwrap().1, snap.count);
    }

    #[test]
    fn noop_histogram_records_nothing() {
        let h = Histogram::noop();
        h.observe(1.0);
        assert_eq!(h.count(), 0);
        assert!(!h.is_enabled());
    }

    #[test]
    fn concurrent_observations_are_all_counted() {
        let h = Histogram(Some(Arc::new(HistogramCore::new())));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 1..=1000 {
                        h.observe(f64::from(i) * 1e-6);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000);
        assert!((snap.max - 1e-3).abs() < 1e-12);
    }
}

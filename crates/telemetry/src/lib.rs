//! # xdmod-telemetry
//!
//! The self-monitoring substrate of the federated-XDMoD workspace. XDMoD's
//! whole purpose is "providing detailed information on utilization,
//! quality of service, and performance" of computing resources (paper §I)
//! — this crate turns that lens back on the system itself, so replication
//! lag, query latency, aggregation cost, and ingest throughput are
//! observable rather than inferred.
//!
//! Design constraints, in order:
//!
//! 1. **Zero dependencies.** The registry sits underneath the warehouse at
//!    the very bottom of the workspace dependency graph, so it uses only
//!    `std` (atomics, `Mutex`, `Instant`).
//! 2. **Global-free.** There is no process-wide singleton; a
//!    [`MetricsRegistry`] is an explicit, cheaply cloneable handle that
//!    owners thread into the components they want observed. Tests get
//!    isolated registries for free.
//! 3. **Free when off.** [`MetricsRegistry::disabled()`] hands out no-op
//!    instruments: a disabled [`Counter::inc`] is a single branch on an
//!    always-`None` `Option` (sub-nanosecond; see `benches/overhead.rs`),
//!    and disabled spans never even read the clock.
//! 4. **Lock-free hot path.** Instruments are `Arc`'d atomics; the
//!    registry's `Mutex` is only taken at registration and export time.
//!
//! The four instrument kinds:
//!
//! - [`Counter`] — monotonically increasing `u64` (events applied, bytes
//!   appended, rows scanned).
//! - [`Gauge`] — instantaneous `f64` (replication lag, queue depths).
//! - [`Histogram`] — log₂-bucketed distribution with `p50/p95/p99/max`
//!   estimation (query and aggregation latencies).
//! - [`Span`] — RAII timer that observes its elapsed time into a
//!   histogram on drop.
//!
//! Plus a bounded ring buffer of structured [`Event`]s (errors, lag
//! samples, lifecycle notes) and two exposition formats: Prometheus-style
//! text ([`MetricsRegistry::prometheus_text`]) and JSON
//! ([`MetricsRegistry::json`]), both deterministic for snapshot testing.

#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod histogram;
pub mod registry;
pub mod span;

pub use event::Event;
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, MetricId, MetricsRegistry, RegistrySnapshot};
pub use span::Span;

//! Criterion benches: instrumentation overhead.
//!
//! The substrate's contract is that telemetry is (a) cheap when enabled —
//! one relaxed atomic RMW per counter hit, lock-free histogram inserts —
//! and (b) nearly free when disabled: handles from a disabled registry
//! are a single `Option` branch, and spans never read the clock. These
//! benches pin both claims so regressions show up as numbers, not vibes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xdmod_telemetry::{Counter, Histogram, MetricsRegistry, Span};

fn bench_counter(c: &mut Criterion) {
    let mut g = c.benchmark_group("counter_inc");
    let enabled = MetricsRegistry::new();
    let on: Counter = enabled.counter("bench_hits_total", &[("path", "hot")]);
    g.bench_function("enabled", |b| b.iter(|| black_box(&on).inc()));

    let disabled = MetricsRegistry::disabled();
    let off: Counter = disabled.counter("bench_hits_total", &[("path", "hot")]);
    g.bench_function("disabled", |b| b.iter(|| black_box(&off).inc()));
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram_observe");
    let enabled = MetricsRegistry::new();
    let on: Histogram = enabled.histogram("bench_seconds", &[]);
    g.bench_function("enabled", |b| b.iter(|| black_box(&on).observe(1.25e-4)));

    let off = Histogram::noop();
    g.bench_function("disabled", |b| b.iter(|| black_box(&off).observe(1.25e-4)));
    g.finish();
}

fn bench_span(c: &mut Criterion) {
    let mut g = c.benchmark_group("span_lifecycle");
    let enabled = MetricsRegistry::new();
    g.bench_function("enabled", |b| {
        b.iter(|| drop(black_box(enabled.span("bench_span_seconds", &[]))))
    });
    let disabled = MetricsRegistry::disabled();
    g.bench_function("disabled", |b| {
        b.iter(|| drop(black_box(disabled.span("bench_span_seconds", &[]))))
    });
    g.bench_function("noop", |b| b.iter(|| drop(black_box(Span::noop()))));
    g.finish();
}

fn bench_handle_lookup(c: &mut Criterion) {
    // Looking a handle up by (name, labels) takes the registry mutex — the
    // bench documents why hot paths should cache handles instead.
    let mut g = c.benchmark_group("handle_lookup");
    let reg = MetricsRegistry::new();
    reg.counter("bench_lookup_total", &[("k", "v")]);
    g.bench_function("counter_by_name", |b| {
        b.iter(|| black_box(reg.counter("bench_lookup_total", &[("k", "v")])))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_counter,
    bench_histogram,
    bench_span,
    bench_handle_lookup
);
criterion_main!(benches);

//! Chart datasets: named series over shared category labels.
//!
//! Every XDMoD figure in the paper is one of two shapes: a **timeseries**
//! (Fig. 1: monthly XD SUs per resource; Fig. 6: monthly file count and
//! usage) or an **aggregate** grouped by a dimension (Fig. 7: core hours
//! per VM by memory bin). [`Dataset`] models both: shared x-axis labels,
//! one or more named series of numeric points (with `None` for absent
//! values — a resource that didn't exist yet plots as a gap, exactly like
//! Stampede2's early 2017).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use xdmod_warehouse::{Period, ResultSet, Value};

/// One named series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// One value per x label; `None` plots as a gap.
    pub values: Vec<Option<f64>>,
}

/// A chartable dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Chart title.
    pub title: String,
    /// Y-axis unit.
    pub unit: String,
    /// Shared x-axis labels.
    pub labels: Vec<String>,
    /// The series.
    pub series: Vec<Series>,
}

impl Dataset {
    /// Empty dataset.
    pub fn new(title: &str, unit: &str) -> Self {
        Dataset {
            title: title.to_owned(),
            unit: unit.to_owned(),
            labels: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Number of x positions.
    pub fn width(&self) -> usize {
        self.labels.len()
    }

    /// Find a series by name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Total of a series, ignoring gaps.
    pub fn series_total(&self, name: &str) -> Option<f64> {
        Some(
            self.series_named(name)?
                .values
                .iter()
                .flatten()
                .sum::<f64>(),
        )
    }

    /// Greatest finite value across all series (used for axis scaling).
    pub fn max_value(&self) -> f64 {
        self.series
            .iter()
            .flat_map(|s| s.values.iter().flatten())
            .fold(0.0f64, |a, &b| a.max(b))
    }

    /// Build a **timeseries dataset** from a query result grouped by
    /// `(period bucket, series dimension)`.
    ///
    /// * `bucket_col` — output column holding period bucket ids
    ///   (`Value::Int`), as produced by `group_by_period`;
    /// * `series_col` — optional output column naming the series (e.g.
    ///   `resource`); `None` produces a single series named `metric_col`;
    /// * `metric_col` — the aggregate to plot.
    ///
    /// Buckets are densified: every period between the first and last
    /// observed bucket gets a label, and series missing a bucket get a
    /// gap.
    pub fn timeseries(
        title: &str,
        unit: &str,
        rs: &ResultSet,
        period: Period,
        bucket_col: &str,
        series_col: Option<&str>,
        metric_col: &str,
    ) -> Result<Dataset, String> {
        let b_idx = rs
            .column_index(bucket_col)
            .ok_or_else(|| format!("no column {bucket_col}"))?;
        let m_idx = rs
            .column_index(metric_col)
            .ok_or_else(|| format!("no column {metric_col}"))?;
        let s_idx = match series_col {
            Some(c) => Some(rs.column_index(c).ok_or_else(|| format!("no column {c}"))?),
            None => None,
        };
        if rs.rows.is_empty() {
            return Ok(Dataset::new(title, unit));
        }
        let buckets: Vec<i64> = rs
            .rows
            .iter()
            .map(|r| r[b_idx].as_i64().ok_or_else(|| "NULL bucket".to_owned()))
            .collect::<Result<_, _>>()?;
        let lo = *buckets.iter().min().expect("non-empty"); // xc-allow: empty row set returned early above
        let hi = *buckets.iter().max().expect("non-empty"); // xc-allow: empty row set returned early above
        let n = usize::try_from(hi - lo + 1).map_err(|_| "bucket range overflow".to_owned())?;
        if n > 100_000 {
            return Err(format!("bucket range too wide: {n}"));
        }
        let labels: Vec<String> = (lo..=hi).map(|b| period.bucket_label(b)).collect();

        let mut series: BTreeMap<String, Vec<Option<f64>>> = BTreeMap::new();
        for (row, bucket) in rs.rows.iter().zip(&buckets) {
            let name = match s_idx {
                Some(i) => match &row[i] {
                    Value::Null => "(null)".to_owned(),
                    v => v.to_string(),
                },
                None => metric_col.to_owned(),
            };
            let slot = series.entry(name).or_insert_with(|| vec![None; n]);
            let pos = usize::try_from(bucket - lo).expect("in range"); // xc-allow: bucket >= lo by min() above
            slot[pos] = row[m_idx].as_f64();
        }
        Ok(Dataset {
            title: title.to_owned(),
            unit: unit.to_owned(),
            labels,
            series: series
                .into_iter()
                .map(|(name, values)| Series { name, values })
                .collect(),
        })
    }

    /// Build an **aggregate dataset** (one series) from a query result
    /// grouped by a categorical column: each group is an x label.
    pub fn aggregate(
        title: &str,
        unit: &str,
        rs: &ResultSet,
        label_col: &str,
        metric_col: &str,
    ) -> Result<Dataset, String> {
        let l_idx = rs
            .column_index(label_col)
            .ok_or_else(|| format!("no column {label_col}"))?;
        let m_idx = rs
            .column_index(metric_col)
            .ok_or_else(|| format!("no column {metric_col}"))?;
        let mut labels = Vec::with_capacity(rs.rows.len());
        let mut values = Vec::with_capacity(rs.rows.len());
        for row in &rs.rows {
            labels.push(row[l_idx].to_string());
            values.push(row[m_idx].as_f64());
        }
        Ok(Dataset {
            title: title.to_owned(),
            unit: unit.to_owned(),
            labels,
            series: vec![Series {
                name: metric_col.to_owned(),
                values,
            }],
        })
    }

    /// Add a series by hand (lengths must match the label count).
    pub fn push_series(&mut self, name: &str, values: Vec<Option<f64>>) -> Result<(), String> {
        if values.len() != self.labels.len() {
            return Err(format!(
                "series {name} has {} values for {} labels",
                values.len(),
                self.labels.len()
            ));
        }
        self.series.push(Series {
            name: name.to_owned(),
            values,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdmod_warehouse::{
        AggFn, Aggregate, ColumnType, Query, SchemaBuilder, Table, CivilDate,
    };

    fn monthly_result() -> ResultSet {
        let mut t = Table::new(
            SchemaBuilder::new("f")
                .required("resource", ColumnType::Str)
                .required("su", ColumnType::Float)
                .required("end_time", ColumnType::Time)
                .build()
                .unwrap(),
        );
        let mk = |res: &str, su: f64, month: u8| {
            vec![
                Value::Str(res.into()),
                Value::Float(su),
                Value::Time(CivilDate::new(2017, month, 10).to_epoch()),
            ]
        };
        t.insert_batch(vec![
            mk("comet", 10.0, 1),
            mk("comet", 20.0, 3),
            mk("stampede2", 5.0, 3),
        ])
        .unwrap();
        Query::new()
            .group_by_period("end_time", Period::Month)
            .group_by_column("resource")
            .aggregate(Aggregate::of(AggFn::Sum, "su", "total_su"))
            .run(&t)
            .unwrap()
    }

    #[test]
    fn timeseries_densifies_buckets_and_gaps() {
        let rs = monthly_result();
        let ds = Dataset::timeseries(
            "SUs",
            "XD SU",
            &rs,
            Period::Month,
            "end_time_month",
            Some("resource"),
            "total_su",
        )
        .unwrap();
        assert_eq!(ds.labels, vec!["2017-01", "2017-02", "2017-03"]);
        let comet = ds.series_named("comet").unwrap();
        assert_eq!(comet.values, vec![Some(10.0), None, Some(20.0)]);
        let s2 = ds.series_named("stampede2").unwrap();
        assert_eq!(s2.values, vec![None, None, Some(5.0)]);
    }

    #[test]
    fn single_series_timeseries_without_series_column() {
        let rs = monthly_result();
        let ds = Dataset::timeseries(
            "SUs",
            "XD SU",
            &rs,
            Period::Month,
            "end_time_month",
            None,
            "total_su",
        )
        .unwrap();
        assert_eq!(ds.series.len(), 1);
        assert_eq!(ds.series[0].name, "total_su");
    }

    #[test]
    fn aggregate_dataset_from_grouped_result() {
        let rs = ResultSet {
            columns: vec!["memory_gb_bin".into(), "avg".into()],
            rows: vec![
                vec![Value::Str("<1 GB".into()), Value::Float(25.0)],
                vec![Value::Str("1-2 GB".into()), Value::Float(30.0)],
            ],
        };
        let ds = Dataset::aggregate("t", "hours", &rs, "memory_gb_bin", "avg").unwrap();
        assert_eq!(ds.labels, vec!["<1 GB", "1-2 GB"]);
        assert_eq!(ds.series[0].values, vec![Some(25.0), Some(30.0)]);
    }

    #[test]
    fn missing_columns_are_reported() {
        let rs = monthly_result();
        assert!(Dataset::timeseries("t", "u", &rs, Period::Month, "nope", None, "total_su")
            .is_err());
        assert!(Dataset::aggregate("t", "u", &rs, "resource", "nope").is_err());
    }

    #[test]
    fn empty_result_yields_empty_dataset() {
        let rs = ResultSet {
            columns: vec!["end_time_month".into(), "total_su".into()],
            rows: vec![],
        };
        let ds = Dataset::timeseries(
            "t",
            "u",
            &rs,
            Period::Month,
            "end_time_month",
            None,
            "total_su",
        )
        .unwrap();
        assert_eq!(ds.width(), 0);
        assert!(ds.series.is_empty());
    }

    #[test]
    fn series_totals_and_max() {
        let rs = monthly_result();
        let ds = Dataset::timeseries(
            "SUs",
            "XD SU",
            &rs,
            Period::Month,
            "end_time_month",
            Some("resource"),
            "total_su",
        )
        .unwrap();
        assert_eq!(ds.series_total("comet"), Some(30.0));
        assert_eq!(ds.series_total("missing"), None);
        assert_eq!(ds.max_value(), 20.0);
    }

    #[test]
    fn push_series_validates_length() {
        let mut ds = Dataset::new("t", "u");
        ds.labels = vec!["a".into(), "b".into()];
        assert!(ds.push_series("ok", vec![Some(1.0), None]).is_ok());
        assert!(ds.push_series("bad", vec![Some(1.0)]).is_err());
    }
}

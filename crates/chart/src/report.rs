//! Report generation.
//!
//! XDMoD offers "custom report generation" and lets users "automate
//! reports" (§I-A, §I-D) — e.g. the summary reports a funding agency
//! requires of a collaborative research cloud (§II-E3). A [`Report`] is
//! an ordered list of sections (prose, charts, tables) rendered to a
//! single plain-text document; [`ReportSchedule`] computes the periodic
//! delivery times.

use crate::render::{ascii_bars, ascii_chart};
use crate::series::Dataset;
use xdmod_warehouse::time::Period;

/// One section of a report.
#[derive(Debug, Clone, PartialEq)]
pub enum Section {
    /// A heading.
    Heading(String),
    /// Free prose.
    Text(String),
    /// A dataset rendered as a line chart.
    Chart(Dataset),
    /// A dataset rendered as horizontal bars.
    Bars(Dataset),
    /// A dataset rendered as a table (labels + per-series columns).
    Table(Dataset),
}

/// A report: title plus ordered sections.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Report title.
    pub title: String,
    sections: Vec<Section>,
}

impl Report {
    /// New empty report.
    pub fn new(title: &str) -> Self {
        Report {
            title: title.to_owned(),
            sections: Vec::new(),
        }
    }

    /// Append a section (builder style).
    pub fn section(mut self, s: Section) -> Self {
        self.sections.push(s);
        self
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True when the report has no sections.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Render to plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n{}\n\n", self.title, "=".repeat(self.title.len())));
        for s in &self.sections {
            match s {
                Section::Heading(h) => {
                    out.push_str(&format!("{h}\n{}\n", "-".repeat(h.len())));
                }
                Section::Text(t) => {
                    out.push_str(t);
                    out.push('\n');
                }
                Section::Chart(ds) => out.push_str(&ascii_chart(ds, 12)),
                Section::Bars(ds) => out.push_str(&ascii_bars(ds, 40)),
                Section::Table(ds) => out.push_str(&render_table(ds)),
            }
            out.push('\n');
        }
        out
    }
}

/// Render a dataset as an aligned text table.
pub fn render_table(ds: &Dataset) -> String {
    let mut widths: Vec<usize> = Vec::with_capacity(ds.series.len() + 1);
    widths.push(
        ds.labels
            .iter()
            .map(String::len)
            .chain(["label".len()])
            .max()
            .unwrap_or(5),
    );
    for s in &ds.series {
        widths.push(s.name.len().max(10));
    }
    let mut out = String::new();
    out.push_str(&format!("{:>w$}", "label", w = widths[0]));
    for (s, w) in ds.series.iter().zip(&widths[1..]) {
        out.push_str(&format!("  {:>w$}", s.name, w = w));
    }
    out.push('\n');
    for (i, label) in ds.labels.iter().enumerate() {
        out.push_str(&format!("{label:>w$}", w = widths[0]));
        for (s, w) in ds.series.iter().zip(&widths[1..]) {
            match s.values.get(i).copied().flatten() {
                Some(v) => out.push_str(&format!("  {v:>w$.2}", w = w)),
                None => out.push_str(&format!("  {:>w$}", "-", w = w)),
            }
        }
        out.push('\n');
    }
    out
}

/// A periodic report schedule (daily / monthly / quarterly / yearly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportSchedule {
    /// Delivery cadence.
    pub period: Period,
}

impl ReportSchedule {
    /// Next delivery time strictly after `now`: the start of the next
    /// period bucket.
    pub fn next_delivery(&self, now: i64) -> i64 {
        let bucket = self.period.bucket_of(now);
        self.period.bucket_start(bucket + 1)
    }

    /// All delivery times in `[from, to)`.
    pub fn deliveries_between(&self, from: i64, to: i64) -> Vec<i64> {
        let mut out = Vec::new();
        let mut t = self.next_delivery(from - 1);
        // next_delivery(from - 1) may equal `from` when `from` is exactly
        // a boundary — that's desired (boundary deliveries included).
        while t < to {
            out.push(t);
            t = self.next_delivery(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;
    use xdmod_warehouse::time::date_of_epoch;
    use xdmod_warehouse::CivilDate;

    fn dataset() -> Dataset {
        Dataset {
            title: "usage".into(),
            unit: "GB".into(),
            labels: vec!["jan".into(), "feb".into()],
            series: vec![Series {
                name: "physical".into(),
                values: vec![Some(10.0), None],
            }],
        }
    }

    #[test]
    fn report_renders_all_section_kinds() {
        let r = Report::new("Aristotle Monthly Report")
            .section(Section::Heading("Storage".into()))
            .section(Section::Text("Usage keeps growing.".into()))
            .section(Section::Chart(dataset()))
            .section(Section::Bars(dataset()))
            .section(Section::Table(dataset()));
        let text = r.render();
        assert!(text.starts_with("Aristotle Monthly Report\n===="));
        assert!(text.contains("Storage\n-------"));
        assert!(text.contains("Usage keeps growing."));
        assert!(text.contains("usage [GB]"));
        assert!(text.contains("physical"));
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn table_aligns_and_marks_gaps() {
        let table = render_table(&dataset());
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].contains("label"));
        assert!(lines[1].contains("10.00"));
        assert!(lines[2].trim_end().ends_with('-'));
    }

    #[test]
    fn monthly_schedule_fires_at_month_starts() {
        let sched = ReportSchedule {
            period: Period::Month,
        };
        let mid_jan = CivilDate::new(2017, 1, 15).to_epoch();
        assert_eq!(
            sched.next_delivery(mid_jan),
            CivilDate::new(2017, 2, 1).to_epoch()
        );
        let deliveries = sched.deliveries_between(
            CivilDate::new(2017, 1, 1).to_epoch(),
            CivilDate::new(2017, 7, 1).to_epoch(),
        );
        assert_eq!(deliveries.len(), 6); // Jan 1 (boundary) .. Jun 1
        assert_eq!(deliveries[0], CivilDate::new(2017, 1, 1).to_epoch());
        assert_eq!(deliveries[5], CivilDate::new(2017, 6, 1).to_epoch());
        for d in deliveries {
            assert_eq!(date_of_epoch(d).day, 1);
        }
    }

    #[test]
    fn quarterly_schedule() {
        let sched = ReportSchedule {
            period: Period::Quarter,
        };
        let t = CivilDate::new(2017, 2, 10).to_epoch();
        assert_eq!(
            sched.next_delivery(t),
            CivilDate::new(2017, 4, 1).to_epoch()
        );
    }

    #[test]
    fn empty_report() {
        let r = Report::new("Empty");
        assert!(r.is_empty());
        assert!(r.render().contains("Empty"));
    }
}

//! Data export: CSV and JSON.
//!
//! XDMoD "provides reporting capabilities that include data export"
//! (§I-D). Datasets export as CSV (one row per x label, one column per
//! series) and as JSON (the dataset's serde form).

use crate::series::Dataset;

/// Export a dataset as CSV. The first column is the label; gaps render
/// as empty cells. Fields containing commas/quotes/newlines are quoted.
pub fn to_csv(ds: &Dataset) -> String {
    let mut out = String::new();
    out.push_str("label");
    for s in &ds.series {
        out.push(',');
        out.push_str(&csv_field(&s.name));
    }
    out.push('\n');
    for (i, label) in ds.labels.iter().enumerate() {
        out.push_str(&csv_field(label));
        for s in &ds.series {
            out.push(',');
            if let Some(Some(v)) = s.values.get(i) {
                out.push_str(&format!("{v}"));
            }
        }
        out.push('\n');
    }
    out
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Export a dataset as pretty JSON.
pub fn to_json(ds: &Dataset) -> String {
    serde_json::to_string_pretty(ds).expect("dataset serializes") // xc-allow: Dataset is plain data; serialization cannot fail
}

/// Parse a dataset back from its JSON export.
pub fn from_json(json: &str) -> Result<Dataset, String> {
    serde_json::from_str(json).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;

    fn dataset() -> Dataset {
        Dataset {
            title: "t".into(),
            unit: "u".into(),
            labels: vec!["2017-01".into(), "2017-02".into()],
            series: vec![
                Series {
                    name: "comet".into(),
                    values: vec![Some(1.5), None],
                },
                Series {
                    name: "with,comma".into(),
                    values: vec![Some(2.0), Some(3.0)],
                },
            ],
        }
    }

    #[test]
    fn csv_layout_and_gaps() {
        let csv = to_csv(&dataset());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "label,comet,\"with,comma\"");
        assert_eq!(lines[1], "2017-01,1.5,2");
        assert_eq!(lines[2], "2017-02,,3");
    }

    #[test]
    fn csv_quotes_embedded_quotes() {
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("plain"), "plain");
    }

    #[test]
    fn json_round_trip() {
        let ds = dataset();
        let back = from_json(&to_json(&ds)).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn bad_json_reports_error() {
        assert!(from_json("{nope").is_err());
    }
}

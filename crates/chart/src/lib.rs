//! # xdmod-chart
//!
//! The presentation layer of the XDMoD reproduction: the datasets,
//! renderers, exporters, and report generator behind every figure in the
//! paper. The interactive web UI is out of scope; everything it would
//! show is available here as terminal charts, SVG documents, CSV/JSON
//! exports, and scheduled plain-text reports.

#![warn(missing_docs)]

pub mod export;
pub mod render;
pub mod report;
pub mod series;

pub use export::{from_json, to_csv, to_json};
pub use render::{ascii_bars, ascii_chart, svg_chart};
pub use report::{render_table, Report, ReportSchedule, Section};
pub use series::{Dataset, Series};

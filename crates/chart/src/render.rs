//! Chart rendering: ASCII (terminal) and SVG (files).
//!
//! The web UI's interactive charts are out of scope; these renderers
//! produce the same *series* as readable terminal plots and standalone
//! SVG documents, which is what the benchmark harness prints/writes when
//! regenerating the paper's figures.

use crate::series::Dataset;

/// Glyphs assigned to series, in order (the paper's Fig. 1/6/7 legends
/// use circles, diamonds, squares, triangles).
const GLYPHS: [char; 6] = ['o', 'd', 's', 't', 'x', '+'];

/// Render an ASCII line/scatter chart: y rows scaled to the dataset's
/// max, one column per x label, one glyph per series.
pub fn ascii_chart(ds: &Dataset, height: usize) -> String {
    let height = height.max(4);
    let mut out = String::new();
    out.push_str(&format!("{} [{}]\n", ds.title, ds.unit));
    if ds.width() == 0 || ds.series.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let max = ds.max_value().max(f64::MIN_POSITIVE);
    let cols = ds.width();
    // grid[row][col] — row 0 is the top.
    let mut grid = vec![vec![' '; cols]; height];
    for (si, series) in ds.series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (col, v) in series.values.iter().enumerate() {
            if let Some(v) = v {
                let frac = (v / max).clamp(0.0, 1.0);
                let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
                let cell = &mut grid[row][col];
                // Collisions render as '*'.
                *cell = if *cell == ' ' { glyph } else { '*' };
            }
        }
    }
    let axis_width = format!("{max:.0}").len().max(4);
    for (i, row) in grid.iter().enumerate() {
        let y_value = max * (1.0 - i as f64 / (height - 1) as f64);
        out.push_str(&format!("{y_value:>axis_width$.0} |"));
        for &c in row {
            out.push(c);
            out.push(' ');
        }
        out.push('\n');
    }
    // X labels: print first, middle, last to stay narrow.
    out.push_str(&" ".repeat(axis_width + 2));
    out.push_str(&"-".repeat(cols * 2));
    out.push('\n');
    if cols >= 2 {
        let first = &ds.labels[0];
        let last = &ds.labels[cols - 1];
        let gap = (cols * 2).saturating_sub(first.len() + last.len());
        out.push_str(&" ".repeat(axis_width + 2));
        out.push_str(first);
        out.push_str(&" ".repeat(gap));
        out.push_str(last);
        out.push('\n');
    } else {
        out.push_str(&format!("{}{}\n", " ".repeat(axis_width + 2), ds.labels[0]));
    }
    // Legend.
    for (si, series) in ds.series.iter().enumerate() {
        out.push_str(&format!(
            "  {} {}\n",
            GLYPHS[si % GLYPHS.len()],
            series.name
        ));
    }
    out
}

/// Render a horizontal ASCII bar chart of a single-series aggregate
/// dataset (Fig. 7 style groupings read well this way in a terminal).
pub fn ascii_bars(ds: &Dataset, width: usize) -> String {
    let width = width.max(10);
    let mut out = String::new();
    out.push_str(&format!("{} [{}]\n", ds.title, ds.unit));
    let Some(series) = ds.series.first() else {
        out.push_str("(no data)\n");
        return out;
    };
    let max = ds.max_value().max(f64::MIN_POSITIVE);
    let label_width = ds.labels.iter().map(String::len).max().unwrap_or(0);
    for (label, v) in ds.labels.iter().zip(&series.values) {
        match v {
            Some(v) => {
                let bar = ((v / max) * width as f64).round() as usize;
                out.push_str(&format!(
                    "{label:>label_width$} | {} {v:.1}\n",
                    "#".repeat(bar)
                ));
            }
            None => out.push_str(&format!("{label:>label_width$} | (no data)\n")),
        }
    }
    out
}

/// Render an SVG line chart. Self-contained document with axes, polyline
/// per series, and a legend.
pub fn svg_chart(ds: &Dataset, width: u32, height: u32) -> String {
    let width = width.max(200);
    let height = height.max(120);
    let margin = 50.0;
    let plot_w = f64::from(width) - 2.0 * margin;
    let plot_h = f64::from(height) - 2.0 * margin;
    let colors = ["#4477AA", "#EE6677", "#888888", "#CCBB44", "#66CCEE", "#AA3377"];
    let max = ds.max_value().max(f64::MIN_POSITIVE);
    let n = ds.width().max(1);

    let mut svg = String::new();
    svg.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    ));
    svg.push_str(&format!(
        r#"<text x="{}" y="20" text-anchor="middle" font-size="14">{} [{}]</text>"#,
        f64::from(width) / 2.0,
        xml_escape(&ds.title),
        xml_escape(&ds.unit)
    ));
    // Axes.
    svg.push_str(&format!(
        r#"<line x1="{margin}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        margin + plot_h,
        margin + plot_w,
        margin + plot_h
    ));
    svg.push_str(&format!(
        r#"<line x1="{margin}" y1="{margin}" x2="{margin}" y2="{}" stroke="black"/>"#,
        margin + plot_h
    ));
    // Max-value tick.
    svg.push_str(&format!(
        r#"<text x="{}" y="{}" text-anchor="end" font-size="10">{max:.0}</text>"#,
        margin - 4.0,
        margin + 4.0
    ));
    let x_of = |i: usize| margin + plot_w * (i as f64) / ((n - 1).max(1) as f64);
    let y_of = |v: f64| margin + plot_h * (1.0 - (v / max).clamp(0.0, 1.0));
    // First/last x labels.
    if let (Some(first), Some(last)) = (ds.labels.first(), ds.labels.last()) {
        svg.push_str(&format!(
            r#"<text x="{margin}" y="{}" font-size="10">{}</text>"#,
            margin + plot_h + 14.0,
            xml_escape(first)
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" text-anchor="end" font-size="10">{}</text>"#,
            margin + plot_w,
            margin + plot_h + 14.0,
            xml_escape(last)
        ));
    }
    for (si, series) in ds.series.iter().enumerate() {
        let color = colors[si % colors.len()];
        // Split the polyline at gaps.
        let mut segments: Vec<Vec<(f64, f64)>> = vec![Vec::new()];
        for (i, v) in series.values.iter().enumerate() {
            match v {
                Some(v) => segments
                    .last_mut()
                    .expect("non-empty") // xc-allow: segments is seeded with one element
                    .push((x_of(i), y_of(*v))),
                None => {
                    if !segments.last().expect("non-empty").is_empty() { // xc-allow: segments is seeded with one element
                        segments.push(Vec::new());
                    }
                }
            }
        }
        for seg in segments.iter().filter(|s| !s.is_empty()) {
            let points: Vec<String> =
                seg.iter().map(|(x, y)| format!("{x:.1},{y:.1}")).collect();
            svg.push_str(&format!(
                r#"<polyline fill="none" stroke="{color}" stroke-width="2" points="{}"/>"#,
                points.join(" ")
            ));
            for (x, y) in seg {
                svg.push_str(&format!(r#"<circle cx="{x:.1}" cy="{y:.1}" r="3" fill="{color}"/>"#));
            }
        }
        // Legend entry.
        let ly = margin + 14.0 * si as f64;
        svg.push_str(&format!(
            r#"<rect x="{}" y="{}" width="10" height="10" fill="{color}"/>"#,
            margin + plot_w + 6.0,
            ly
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-size="10">{}</text>"#,
            margin + plot_w + 20.0,
            ly + 9.0,
            xml_escape(&series.name)
        ));
    }
    svg.push_str("</svg>");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;

    fn dataset() -> Dataset {
        Dataset {
            title: "Total SUs".into(),
            unit: "XD SU".into(),
            labels: vec!["2017-01".into(), "2017-02".into(), "2017-03".into()],
            series: vec![
                Series {
                    name: "comet".into(),
                    values: vec![Some(10.0), Some(12.0), Some(15.0)],
                },
                Series {
                    name: "stampede2".into(),
                    values: vec![None, Some(4.0), Some(9.0)],
                },
            ],
        }
    }

    #[test]
    fn ascii_chart_contains_title_legend_and_labels() {
        let s = ascii_chart(&dataset(), 10);
        assert!(s.contains("Total SUs [XD SU]"));
        assert!(s.contains("o comet"));
        assert!(s.contains("d stampede2"));
        assert!(s.contains("2017-01"));
        assert!(s.contains("2017-03"));
    }

    #[test]
    fn ascii_chart_empty_dataset() {
        let ds = Dataset::new("empty", "u");
        assert!(ascii_chart(&ds, 8).contains("(no data)"));
    }

    #[test]
    fn ascii_bars_scale_to_max() {
        let ds = Dataset {
            title: "Core hours per VM".into(),
            unit: "hours".into(),
            labels: vec!["<1 GB".into(), "4-8 GB".into()],
            series: vec![Series {
                name: "avg".into(),
                values: vec![Some(25.0), Some(100.0)],
            }],
        };
        let s = ascii_bars(&ds, 20);
        let small = s.lines().find(|l| l.contains("<1 GB")).unwrap();
        let large = s.lines().find(|l| l.contains("4-8 GB")).unwrap();
        let hashes = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert_eq!(hashes(large), 20);
        assert_eq!(hashes(small), 5);
    }

    #[test]
    fn ascii_bars_handle_gaps() {
        let ds = Dataset {
            title: "t".into(),
            unit: "u".into(),
            labels: vec!["a".into()],
            series: vec![Series {
                name: "s".into(),
                values: vec![None],
            }],
        };
        assert!(ascii_bars(&ds, 10).contains("(no data)"));
    }

    #[test]
    fn svg_is_well_formed_and_splits_gaps() {
        let svg = svg_chart(&dataset(), 640, 360);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // comet: one polyline; stampede2 (leading gap): one polyline.
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("comet"));
        // Escaping.
        let mut ds = dataset();
        ds.title = "a < b & c".into();
        let svg = svg_chart(&ds, 640, 360);
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b & c"));
    }

    #[test]
    fn svg_gap_in_middle_splits_polyline() {
        let ds = Dataset {
            title: "t".into(),
            unit: "u".into(),
            labels: (0..5).map(|i| i.to_string()).collect(),
            series: vec![Series {
                name: "s".into(),
                values: vec![Some(1.0), Some(2.0), None, Some(3.0), Some(4.0)],
            }],
        };
        let svg = svg_chart(&ds, 640, 360);
        assert_eq!(svg.matches("<polyline").count(), 2);
    }
}

//! Synthetic application-kernel run generator.
//!
//! Produces the periodic (e.g. nightly) run logs an XDMoD center would
//! collect, with optional injected performance regressions — the failure
//! mode the module exists to catch.

use crate::kernel::{default_suite, AppKernel, KernelRun};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A degradation window to inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectedRegression {
    /// Index of the first affected run.
    pub start_run: usize,
    /// Number of affected runs (to the end if the series is shorter).
    pub length: usize,
    /// Multiplicative performance loss (0.2 = 20% worse).
    pub severity: f64,
}

/// Generate `n_runs` periodic runs of `kernel` on `resource` at `nodes`,
/// one per `interval_secs`, with relative Gaussian-ish noise and any
/// injected regressions applied.
#[allow(clippy::too_many_arguments)] // a launcher config struct would obscure the call sites
pub fn simulate_series(
    kernel: &AppKernel,
    resource: &str,
    nodes: i64,
    n_runs: usize,
    start_ts: i64,
    interval_secs: i64,
    noise: f64,
    regressions: &[InjectedRegression],
    seed: u64,
) -> Vec<KernelRun> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = match kernel.id.as_str() {
        "nwchem" => 500.0,
        "hpcc_dgemm" => 22.0,
        "ior_write" => 1800.0,
        "graph500" => 350.0,
        "osu_latency" => 2.1,
        _ => 100.0,
    };
    (0..n_runs)
        .map(|i| {
            // Sum of uniforms approximates a normal; keep it simple and
            // bounded.
            let u: f64 = (0..4).map(|_| rng.random::<f64>()).sum::<f64>() / 4.0 - 0.5;
            let mut value = base * (1.0 + noise * u * 2.0);
            for reg in regressions {
                if i >= reg.start_run && i < reg.start_run + reg.length {
                    // A regression makes throughput lower but latency
                    // HIGHER.
                    if kernel.higher_is_better {
                        value *= 1.0 - reg.severity;
                    } else {
                        value *= 1.0 + reg.severity;
                    }
                }
            }
            KernelRun {
                kernel: kernel.id.clone(),
                resource: resource.to_owned(),
                nodes,
                ts: start_ts + i as i64 * interval_secs,
                value: value.max(0.0),
            }
        })
        .collect()
}

/// Render runs as the launcher's log format (see [`crate::ingest`]).
pub fn to_log(runs: &[KernelRun]) -> String {
    let mut out = String::new();
    for r in runs {
        out.push_str(&format!(
            "ak {} {} {} {} {:.6}\n",
            r.kernel, r.resource, r.nodes, r.ts, r.value
        ));
    }
    out
}

/// A full nightly campaign: every kernel of the default suite on one
/// resource, `n_runs` each, with one injected regression on a chosen
/// kernel.
pub fn campaign_log(
    resource: &str,
    n_runs: usize,
    degraded_kernel: Option<(&str, InjectedRegression)>,
    seed: u64,
) -> String {
    let mut out = String::new();
    for (i, kernel) in default_suite().iter().enumerate() {
        let regressions: Vec<InjectedRegression> = match degraded_kernel {
            Some((id, reg)) if id == kernel.id => vec![reg],
            _ => vec![],
        };
        let runs = simulate_series(
            kernel,
            resource,
            4,
            n_runs,
            1_483_228_800,
            86_400,
            0.015,
            &regressions,
            seed ^ (i as u64) << 8,
        );
        out.push_str(&to_log(&runs));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{analyze, ControlConfig};
    use crate::ingest::{load_runs, parse_log, series};
    use xdmod_warehouse::Database;

    #[test]
    fn simulated_logs_round_trip_through_parser() {
        let log = campaign_log("rush", 10, None, 7);
        let runs = parse_log(&log).unwrap();
        assert_eq!(runs.len(), 10 * default_suite().len());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(campaign_log("rush", 5, None, 7), campaign_log("rush", 5, None, 7));
        assert_ne!(campaign_log("rush", 5, None, 7), campaign_log("rush", 5, None, 8));
    }

    #[test]
    fn injected_regression_is_detected_end_to_end() {
        // Full loop: simulate → log → parse → warehouse → series →
        // control chart.
        let reg = InjectedRegression {
            start_run: 20,
            length: 10,
            severity: 0.25,
        };
        let log = campaign_log("rush", 30, Some(("hpcc_dgemm", reg)), 11);
        let runs = parse_log(&log).unwrap();
        let mut db = Database::new();
        load_runs(&mut db, "ak", &runs).unwrap();

        let suite = default_suite();
        let dgemm = suite.iter().find(|k| k.id == "hpcc_dgemm").unwrap();
        let values = series(&db, "ak", "hpcc_dgemm", "rush", 4).unwrap();
        let report = analyze(dgemm, &values, ControlConfig::default());
        assert!(
            report.events.iter().any(|e| e.regression && e.start_index >= 19),
            "regression not detected: {:?}",
            report.events
        );

        // A healthy kernel in the same campaign raises no events.
        let nwchem = suite.iter().find(|k| k.id == "nwchem").unwrap();
        let values = series(&db, "ak", "nwchem", "rush", 4).unwrap();
        let report = analyze(nwchem, &values, ControlConfig::default());
        assert!(report.events.is_empty(), "{:?}", report.events);
    }

    #[test]
    fn latency_kernel_regression_direction() {
        let suite = default_suite();
        let lat = suite.iter().find(|k| k.id == "osu_latency").unwrap();
        let reg = InjectedRegression {
            start_run: 15,
            length: 10,
            severity: 0.4,
        };
        let runs = simulate_series(lat, "rush", 4, 25, 0, 3600, 0.01, &[reg], 3);
        // Latency regression means values went UP.
        let before: f64 = runs[..15].iter().map(|r| r.value).sum::<f64>() / 15.0;
        let after: f64 = runs[15..].iter().map(|r| r.value).sum::<f64>() / 10.0;
        assert!(after > before * 1.2);
        let values: Vec<f64> = runs.iter().map(|r| r.value).collect();
        let report = analyze(lat, &values, ControlConfig::default());
        assert!(report.events.iter().any(|e| e.regression));
    }
}

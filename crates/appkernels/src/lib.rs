//! # xdmod-appkernels
//!
//! The **Application Kernel module** — one of the optional modules the
//! paper lists as extending XDMoD's base capabilities: "the Application
//! Kernel module enables quality-of-service monitoring for HPC
//! resources" (§I-E).
//!
//! Small benchmark kernels run periodically on each resource
//! ([`kernel`]); their run logs are parsed and loaded into the warehouse
//! ([`ingest`]); and a control-chart detector ([`control`]) flags
//! sustained performance regressions (and recoveries), following the
//! published variance-analysis methodology (the paper's reference \[30\]).
//! [`simulate`] generates the periodic campaigns, with injectable
//! regressions, standing in for a real center's nightly runs.

#![warn(missing_docs)]

pub mod control;
pub mod ingest;
pub mod kernel;
pub mod simulate;

pub use control::{analyze, ControlConfig, ControlReport, QosEvent, RunStatus};
pub use kernel::{default_suite, AppKernel, KernelRun, FACT_TABLE};

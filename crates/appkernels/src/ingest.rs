//! Application-kernel run-log parsing and warehouse loading.
//!
//! Runs arrive as a simple line-oriented log emitted by the kernel
//! launcher:
//!
//! ```text
//! ak <kernel_id> <resource> <nodes> <epoch_ts> <value>
//! ak nwchem rush 4 1483228800 512.5
//! ```

use crate::kernel::{fact_schema, KernelRun, FACT_TABLE};
use xdmod_warehouse::{Database, Result as WhResult, WarehouseError};

/// Parse a run log. Blank lines and `#` comments are skipped; malformed
/// lines are errors with line numbers.
pub fn parse_log(log: &str) -> Result<Vec<KernelRun>, String> {
    let mut runs = Vec::new();
    for (i, raw) in log.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 6 || fields[0] != "ak" {
            return Err(format!(
                "line {lineno}: expected 'ak <kernel> <resource> <nodes> <ts> <value>'"
            ));
        }
        let nodes: i64 = fields[3]
            .parse()
            .map_err(|_| format!("line {lineno}: bad node count {:?}", fields[3]))?;
        let ts: i64 = fields[4]
            .parse()
            .map_err(|_| format!("line {lineno}: bad timestamp {:?}", fields[4]))?;
        let value: f64 = fields[5]
            .parse()
            .map_err(|_| format!("line {lineno}: bad value {:?}", fields[5]))?;
        if nodes < 1 {
            return Err(format!("line {lineno}: node count must be positive"));
        }
        if !value.is_finite() || value < 0.0 {
            return Err(format!(
                "line {lineno}: value must be finite and non-negative"
            ));
        }
        runs.push(KernelRun {
            kernel: fields[1].to_owned(),
            resource: fields[2].to_owned(),
            nodes,
            ts,
            value,
        });
    }
    Ok(runs)
}

/// Install the `akfact` table in a schema (idempotent) and load runs.
pub fn load_runs(db: &mut Database, schema: &str, runs: &[KernelRun]) -> WhResult<usize> {
    db.ensure_schema(schema)?;
    db.ensure_table(schema, fact_schema())?;
    let rows: Vec<_> = runs.iter().map(KernelRun::to_row).collect();
    let n = rows.len();
    db.insert(schema, FACT_TABLE, rows)?;
    Ok(n)
}

/// Extract the time-ordered value series of one (kernel, resource,
/// nodes) combination from the warehouse — the input to
/// [`crate::control::analyze`].
pub fn series(
    db: &Database,
    schema: &str,
    kernel: &str,
    resource: &str,
    nodes: i64,
) -> WhResult<Vec<f64>> {
    let t = db.table(schema, FACT_TABLE)?;
    let s = t.schema();
    let k = s.column_index("kernel")?;
    let r = s.column_index("resource")?;
    let n = s.column_index("nodes")?;
    let ts = s.column_index("ts")?;
    let v = s.column_index("value")?;
    let table_rows = t.rows()?;
    let mut rows: Vec<(i64, f64)> = table_rows
        .iter()
        .filter(|row| {
            row[k].as_str() == Some(kernel)
                && row[r].as_str() == Some(resource)
                && row[n].as_i64() == Some(nodes)
        })
        .filter_map(|row| Some((row[ts].as_time()?, row[v].as_f64()?)))
        .collect();
    if rows.is_empty() {
        return Err(WarehouseError::InvalidQuery(format!(
            "no runs of {kernel} on {resource} at {nodes} nodes"
        )));
    }
    rows.sort_by_key(|(t, _)| *t);
    Ok(rows.into_iter().map(|(_, v)| v).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOG: &str = "\
# nightly kernels
ak nwchem rush 4 1483228800 512.5
ak nwchem rush 4 1483315200 508.0
ak hpcc_dgemm rush 1 1483228800 21.5
";

    #[test]
    fn parse_and_load() {
        let runs = parse_log(LOG).unwrap();
        assert_eq!(runs.len(), 3);
        let mut db = Database::new();
        assert_eq!(load_runs(&mut db, "ak", &runs).unwrap(), 3);
        assert_eq!(db.table("ak", FACT_TABLE).unwrap().len(), 3);
        // Idempotent table install.
        assert_eq!(load_runs(&mut db, "ak", &runs).unwrap(), 3);
        assert_eq!(db.table("ak", FACT_TABLE).unwrap().len(), 6);
    }

    #[test]
    fn malformed_lines_error() {
        for bad in [
            "ak nwchem rush 4 1483228800",      // missing value
            "xx nwchem rush 4 1483228800 1.0",  // wrong tag
            "ak nwchem rush 0 1483228800 1.0",  // zero nodes
            "ak nwchem rush 4 soon 1.0",        // bad ts
            "ak nwchem rush 4 1483228800 -1.0", // negative value
            "ak nwchem rush 4 1483228800 inf",  // non-finite
        ] {
            assert!(parse_log(bad).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn series_is_time_ordered_and_filtered() {
        let log = "\
ak nwchem rush 4 300 3.0
ak nwchem rush 4 100 1.0
ak nwchem rush 4 200 2.0
ak nwchem rush 8 100 99.0
ak nwchem other 4 100 77.0
";
        let runs = parse_log(log).unwrap();
        let mut db = Database::new();
        load_runs(&mut db, "ak", &runs).unwrap();
        let s = series(&db, "ak", "nwchem", "rush", 4).unwrap();
        assert_eq!(s, vec![1.0, 2.0, 3.0]);
        assert!(series(&db, "ak", "nwchem", "rush", 16).is_err());
    }
}

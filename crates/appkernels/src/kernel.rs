//! Application kernel catalog and run records.
//!
//! "The Application Kernel module enables quality-of-service monitoring
//! for HPC resources" (§I-E): small, representative benchmark codes run
//! periodically on each resource, whose measured performance exposes
//! regressions that utilization metrics can't see (failed firmware
//! updates, degraded interconnects, filesystem slowdowns).

use serde::{Deserialize, Serialize};
use xdmod_warehouse::{ColumnType, Row, SchemaBuilder, TableSchema, Value};

/// A benchmark kernel definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppKernel {
    /// Stable id (e.g. `nwchem`).
    pub id: String,
    /// Display name.
    pub name: String,
    /// Unit of the reported figure of merit.
    pub unit: String,
    /// Whether larger values are better (throughput) or worse (runtime).
    pub higher_is_better: bool,
}

/// The default kernel suite, modeled on the published XDMoD application
/// kernels (NWChem, HPCC, IOR, Graph500, MPI benchmarks).
pub fn default_suite() -> Vec<AppKernel> {
    vec![
        AppKernel {
            id: "nwchem".into(),
            name: "NWChem DFT".into(),
            unit: "seconds".into(),
            higher_is_better: false,
        },
        AppKernel {
            id: "hpcc_dgemm".into(),
            name: "HPCC DGEMM".into(),
            unit: "GFLOP/s".into(),
            higher_is_better: true,
        },
        AppKernel {
            id: "ior_write".into(),
            name: "IOR write bandwidth".into(),
            unit: "MB/s".into(),
            higher_is_better: true,
        },
        AppKernel {
            id: "graph500".into(),
            name: "Graph500 BFS".into(),
            unit: "MTEPS".into(),
            higher_is_better: true,
        },
        AppKernel {
            id: "osu_latency".into(),
            name: "OSU MPI latency".into(),
            unit: "microseconds".into(),
            higher_is_better: false,
        },
    ]
}

/// One execution of a kernel on a resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRun {
    /// Kernel id.
    pub kernel: String,
    /// Resource the run executed on.
    pub resource: String,
    /// Node count of the run.
    pub nodes: i64,
    /// Completion time, epoch seconds.
    pub ts: i64,
    /// Measured figure of merit (in the kernel's unit).
    pub value: f64,
}

/// Name of the application-kernel fact table.
pub const FACT_TABLE: &str = "akfact";

/// Schema of the `akfact` table.
pub fn fact_schema() -> TableSchema {
    SchemaBuilder::new(FACT_TABLE)
        .required("kernel", ColumnType::Str)
        .required("resource", ColumnType::Str)
        .required("nodes", ColumnType::Int)
        .required("ts", ColumnType::Time)
        .required("value", ColumnType::Float)
        .build()
        .expect("akfact schema is valid") // xc-allow: static schema literal, valid by construction
}

impl KernelRun {
    /// Convert to an `akfact` row.
    pub fn to_row(&self) -> Row {
        vec![
            Value::Str(self.kernel.clone()),
            Value::Str(self.resource.clone()),
            Value::Int(self.nodes),
            Value::Time(self.ts),
            Value::Float(self.value),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_unique_ids() {
        let suite = default_suite();
        let mut ids: Vec<&str> = suite.iter().map(|k| k.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), suite.len());
    }

    #[test]
    fn run_rows_match_schema() {
        let run = KernelRun {
            kernel: "nwchem".into(),
            resource: "rush".into(),
            nodes: 4,
            ts: 1_483_228_800,
            value: 512.5,
        };
        fact_schema().check_row(run.to_row()).unwrap();
    }

    #[test]
    fn direction_flags_are_sensible() {
        let suite = default_suite();
        let latency = suite.iter().find(|k| k.id == "osu_latency").unwrap();
        assert!(!latency.higher_is_better);
        let dgemm = suite.iter().find(|k| k.id == "hpcc_dgemm").unwrap();
        assert!(dgemm.higher_is_better);
    }
}

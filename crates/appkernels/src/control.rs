//! Control-chart analysis of kernel performance.
//!
//! The published application-kernel methodology (Simakov et al.,
//! "Application kernels: HPC resources performance monitoring and
//! variance analysis" — the paper's reference \[30\]) classifies each run
//! against a rolling in-control baseline: runs outside
//! `mean ± k·sigma` are *out of control*; a streak of consecutive
//! out-of-control runs in the same direction is flagged as a sustained
//! **regression** (or improvement), which is the quality-of-service
//! signal operators act on.

use crate::kernel::AppKernel;
use serde::{Deserialize, Serialize};

/// Classification of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunStatus {
    /// Within control limits.
    InControl,
    /// Outside limits, better than baseline.
    OutOfControlBetter,
    /// Outside limits, worse than baseline.
    OutOfControlWorse,
    /// Not enough history to judge.
    Baseline,
}

/// A detected sustained change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosEvent {
    /// Index (into the analyzed run sequence) where the streak started.
    pub start_index: usize,
    /// Length of the streak when it was flagged.
    pub run_length: usize,
    /// True if performance degraded.
    pub regression: bool,
    /// Baseline mean at detection time.
    pub baseline_mean: f64,
    /// Mean of the streak's values.
    pub observed_mean: f64,
}

impl QosEvent {
    /// Relative change from baseline (negative = worse for
    /// higher-is-better kernels; callers already oriented the data).
    pub fn relative_change(&self) -> f64 {
        if self.baseline_mean == 0.0 {
            0.0
        } else {
            (self.observed_mean - self.baseline_mean) / self.baseline_mean
        }
    }
}

/// Control-chart detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlConfig {
    /// Runs used to establish the initial baseline.
    pub baseline_runs: usize,
    /// Control-limit width in standard deviations.
    pub sigma: f64,
    /// Consecutive out-of-control runs before a [`QosEvent`] fires.
    pub streak: usize,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            baseline_runs: 8,
            sigma: 3.0,
            streak: 3,
        }
    }
}

/// Per-run classification plus detected events for one
/// (kernel, resource, node-count) series.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlReport {
    /// Status of each run, in input order.
    pub statuses: Vec<RunStatus>,
    /// Sustained changes detected.
    pub events: Vec<QosEvent>,
}

/// Analyze a value series in time order.
///
/// The baseline is frozen from the first `baseline_runs` values and
/// re-anchored after each detected event (the new regime becomes the new
/// normal, so recovery is detected as an improvement event rather than
/// sliding silently back).
pub fn analyze(kernel: &AppKernel, values: &[f64], config: ControlConfig) -> ControlReport {
    let mut statuses = Vec::with_capacity(values.len());
    let mut events = Vec::new();
    if values.len() < config.baseline_runs.max(2) {
        return ControlReport {
            statuses: vec![RunStatus::Baseline; values.len()],
            events,
        };
    }

    // Orient values so "higher is better" uniformly.
    let orient = |v: f64| if kernel.higher_is_better { v } else { -v };

    let mut baseline_start = 0usize;
    let mut mean;
    let mut sd;
    let compute_baseline = |start: usize, values: &[f64], n: usize| -> (f64, f64) {
        let window: Vec<f64> = values[start..start + n].iter().map(|&v| orient(v)).collect();
        let m = window.iter().sum::<f64>() / window.len() as f64;
        let var = window.iter().map(|v| (v - m).powi(2)).sum::<f64>() / window.len() as f64;
        (m, var.sqrt().max(m.abs() * 1e-6).max(1e-12))
    };
    (mean, sd) = compute_baseline(baseline_start, values, config.baseline_runs);

    let mut streak_dir: i8 = 0;
    let mut streak_len = 0usize;
    let mut streak_start = 0usize;
    // After an event fires but the baseline couldn't re-anchor (not
    // enough remaining data), stay silent for that direction until a run
    // returns in-control — one alarm per incident, not one per run.
    let mut muted_dir: i8 = 0;

    for (i, &raw) in values.iter().enumerate() {
        if i < baseline_start + config.baseline_runs {
            statuses.push(RunStatus::Baseline);
            continue;
        }
        let v = orient(raw);
        let status = if v > mean + config.sigma * sd {
            RunStatus::OutOfControlBetter
        } else if v < mean - config.sigma * sd {
            RunStatus::OutOfControlWorse
        } else {
            RunStatus::InControl
        };
        statuses.push(status);
        let dir: i8 = match status {
            RunStatus::OutOfControlBetter => 1,
            RunStatus::OutOfControlWorse => -1,
            _ => 0,
        };
        if dir == 0 {
            muted_dir = 0;
        }
        if dir != 0 && dir == muted_dir {
            continue;
        }
        if dir != 0 && dir == streak_dir {
            streak_len += 1;
        } else if dir != 0 {
            streak_dir = dir;
            streak_len = 1;
            streak_start = i;
        } else {
            streak_dir = 0;
            streak_len = 0;
        }
        if streak_len == config.streak {
            let observed: Vec<f64> = values[streak_start..=i].iter().map(|&v| orient(v)).collect();
            let observed_mean = observed.iter().sum::<f64>() / observed.len() as f64;
            events.push(QosEvent {
                start_index: streak_start,
                run_length: streak_len,
                regression: streak_dir < 0,
                baseline_mean: mean,
                observed_mean,
            });
            // Re-anchor the baseline on the new regime, if enough data
            // remains; otherwise keep the old limits.
            if streak_start + config.baseline_runs <= values.len() {
                baseline_start = streak_start;
                (mean, sd) = compute_baseline(baseline_start, values, config.baseline_runs);
            } else {
                muted_dir = streak_dir;
            }
            streak_dir = 0;
            streak_len = 0;
        }
    }
    ControlReport { statuses, events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::default_suite;

    fn dgemm() -> AppKernel {
        default_suite()
            .into_iter()
            .find(|k| k.id == "hpcc_dgemm")
            .unwrap()
    }

    fn latency() -> AppKernel {
        default_suite()
            .into_iter()
            .find(|k| k.id == "osu_latency")
            .unwrap()
    }

    #[test]
    fn steady_series_stays_in_control() {
        let values: Vec<f64> = (0..30).map(|i| 100.0 + f64::from(i % 3) * 0.5).collect();
        let report = analyze(&dgemm(), &values, ControlConfig::default());
        assert!(report.events.is_empty());
        assert!(report
            .statuses
            .iter()
            .skip(8)
            .all(|s| *s == RunStatus::InControl));
    }

    #[test]
    fn throughput_drop_is_a_regression() {
        // 100 ± small noise, then a 20% drop.
        let mut values: Vec<f64> = (0..15).map(|i| 100.0 + f64::from(i % 3) * 0.5).collect();
        values.extend((0..6).map(|i| 80.0 + f64::from(i % 2) * 0.5));
        let report = analyze(&dgemm(), &values, ControlConfig::default());
        assert_eq!(report.events.len(), 1);
        let e = &report.events[0];
        assert!(e.regression);
        assert_eq!(e.start_index, 15);
        assert!(e.relative_change() < -0.15);
    }

    #[test]
    fn latency_increase_is_a_regression_despite_higher_values() {
        // Lower-is-better kernel: latency jumping up must read as WORSE.
        let mut values: Vec<f64> = (0..12).map(|i| 2.0 + f64::from(i % 2) * 0.01).collect();
        values.extend([3.5, 3.6, 3.4, 3.5]);
        let report = analyze(&latency(), &values, ControlConfig::default());
        assert_eq!(report.events.len(), 1);
        assert!(report.events[0].regression);
    }

    #[test]
    fn recovery_after_reanchor_is_an_improvement() {
        let mut values: Vec<f64> = (0..12).map(|_| 100.0).collect();
        values.extend(std::iter::repeat_n(80.0, 10)); // regression regime
        values.extend(std::iter::repeat_n(100.0, 6)); // recovery
        let report = analyze(&dgemm(), &values, ControlConfig::default());
        assert!(report.events.len() >= 2, "{:?}", report.events);
        assert!(report.events[0].regression);
        assert!(!report.events[1].regression, "recovery should be flagged as improvement");
    }

    #[test]
    fn single_outlier_does_not_fire() {
        let mut values: Vec<f64> = (0..20).map(|i| 100.0 + f64::from(i % 3)).collect();
        values[15] = 60.0; // one bad run
        let report = analyze(&dgemm(), &values, ControlConfig::default());
        assert!(report.events.is_empty());
        assert_eq!(report.statuses[15], RunStatus::OutOfControlWorse);
    }

    #[test]
    fn short_series_is_all_baseline() {
        let report = analyze(&dgemm(), &[1.0, 2.0, 3.0], ControlConfig::default());
        assert!(report.events.is_empty());
        assert!(report.statuses.iter().all(|s| *s == RunStatus::Baseline));
    }

    #[test]
    fn alternating_directions_do_not_accumulate_a_streak() {
        let mut values: Vec<f64> = (0..12).map(|_| 100.0).collect();
        // worse, better, worse, better — never 3 in a row same direction.
        values.extend([60.0, 140.0, 60.0, 140.0, 60.0, 140.0]);
        let report = analyze(&dgemm(), &values, ControlConfig::default());
        assert!(report.events.is_empty());
    }
}

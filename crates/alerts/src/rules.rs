//! Alert families, severities, and per-family rule configuration.

use std::collections::BTreeMap;
use std::fmt;

/// A member's replication link stopped answering (stale / dead link).
pub const FAMILY_LINK_DOWN: &str = "link_down";
/// A member's replication lag crossed the supervisor's threshold.
pub const FAMILY_REPLICATION_LAG: &str = "replication_lag";
/// The supervisor quarantined a member after repeated failures.
pub const FAMILY_QUARANTINE: &str = "quarantine";
/// `go_live` refused the topology on Error-severity diagnostics.
pub const FAMILY_PREFLIGHT_REFUSED: &str = "preflight_refused";
/// The gateway's admission gate refused a request (saturation).
pub const FAMILY_GATEWAY_SATURATION: &str = "gateway_saturation";

/// Every known alert family. `xdmod-check`'s XC0013 pass mirrors this
/// list as data (std-only, no dependency on this crate); a sync test in
/// `xdmod-core` pins the two together.
pub const FAMILIES: [&str; 5] = [
    FAMILY_LINK_DOWN,
    FAMILY_REPLICATION_LAG,
    FAMILY_QUARANTINE,
    FAMILY_PREFLIGHT_REFUSED,
    FAMILY_GATEWAY_SATURATION,
];

/// Default debounce window: a re-fire within 5 s of resolving is a flap.
pub const DEFAULT_DEBOUNCE_MS: u64 = 5_000;
/// Default quiet period after which an open alert auto-resolves.
pub const DEFAULT_RESOLVE_TIMEOUT_MS: u64 = 30_000;
/// Default age after which a resolved alert goes stale.
pub const DEFAULT_STALE_MS: u64 = 60_000;
/// Default notification bucket capacity (burst size).
pub const DEFAULT_NOTIFY_CAPACITY: u64 = 8;
/// Default notification bucket refill, tokens per second.
pub const DEFAULT_NOTIFY_REFILL_PER_SEC: u64 = 1;

/// How urgently an operator must react.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertSeverity {
    /// Informational; no action expected.
    Info,
    /// Degraded but serving; act soon.
    Warning,
    /// Member data loss or outage in progress; act now.
    Critical,
}

impl AlertSeverity {
    /// Lower-case wire form (`info` / `warning` / `critical`).
    pub fn as_str(self) -> &'static str {
        match self {
            AlertSeverity::Info => "info",
            AlertSeverity::Warning => "warning",
            AlertSeverity::Critical => "critical",
        }
    }

    /// Parse the wire form; `None` for anything else.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "info" => Some(AlertSeverity::Info),
            "warning" => Some(AlertSeverity::Warning),
            "critical" => Some(AlertSeverity::Critical),
            _ => None,
        }
    }
}

impl fmt::Display for AlertSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-family lifecycle tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlertRule {
    /// Severity stamped onto alerts of this family.
    pub severity: AlertSeverity,
    /// Re-fire within this window of resolving folds into the same alert.
    pub debounce_ms: u64,
    /// Open alerts auto-resolve after this long without a fault.
    pub resolve_timeout_ms: u64,
    /// Resolved alerts go stale after this long without reopening.
    pub stale_ms: u64,
}

impl AlertRule {
    /// A rule with the default windows at the given severity.
    pub fn new(severity: AlertSeverity) -> Self {
        AlertRule {
            severity,
            debounce_ms: DEFAULT_DEBOUNCE_MS,
            resolve_timeout_ms: DEFAULT_RESOLVE_TIMEOUT_MS,
            stale_ms: DEFAULT_STALE_MS,
        }
    }

    /// Override the debounce window.
    pub fn with_debounce_ms(mut self, ms: u64) -> Self {
        self.debounce_ms = ms;
        self
    }

    /// Override the auto-resolve timeout.
    pub fn with_resolve_timeout_ms(mut self, ms: u64) -> Self {
        self.resolve_timeout_ms = ms;
        self
    }

    /// Override the stale age.
    pub fn with_stale_ms(mut self, ms: u64) -> Self {
        self.stale_ms = ms;
        self
    }
}

/// A problem found by [`AlertRules::validate`]. `xdmod-check` surfaces
/// these same three classes as XC0013 at preflight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleIssue {
    /// A rule names a family no producer ever emits — it can never fire.
    UnknownFamily {
        /// The unrecognized family name.
        family: String,
    },
    /// `resolve_timeout_ms <= debounce_ms`: the alert auto-resolves
    /// inside its own flap window, so every recurrence notifies afresh —
    /// exactly the storm flap damping exists to prevent.
    ResolveWithinDebounce {
        /// Offending family.
        family: String,
        /// Configured debounce window.
        debounce_ms: u64,
        /// Configured (too-small) resolve timeout.
        resolve_timeout_ms: u64,
    },
    /// A zero-capacity notification bucket suppresses every dispatch.
    ZeroNotifyCapacity,
}

impl fmt::Display for RuleIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleIssue::UnknownFamily { family } => {
                write!(f, "rule for unknown alert family {family:?} can never fire")
            }
            RuleIssue::ResolveWithinDebounce {
                family,
                debounce_ms,
                resolve_timeout_ms,
            } => write!(
                f,
                "family {family:?}: resolve timeout {resolve_timeout_ms} ms \
                 is within the {debounce_ms} ms debounce window"
            ),
            RuleIssue::ZeroNotifyCapacity => {
                f.write_str("zero-capacity notification bucket suppresses every dispatch")
            }
        }
    }
}

/// The full rule table: one [`AlertRule`] per family plus notification
/// bucket sizing. `Default` covers every known family with sensible
/// windows; unknown families queried at runtime fall back to a Warning
/// rule with default windows (and are flagged by [`validate`]).
///
/// [`validate`]: AlertRules::validate
#[derive(Debug, Clone)]
pub struct AlertRules {
    rules: BTreeMap<String, AlertRule>,
    notify_capacity: u64,
    notify_refill_per_sec: u64,
}

impl Default for AlertRules {
    fn default() -> Self {
        let mut rules = BTreeMap::new();
        rules.insert(
            FAMILY_LINK_DOWN.to_owned(),
            AlertRule::new(AlertSeverity::Critical),
        );
        rules.insert(
            FAMILY_REPLICATION_LAG.to_owned(),
            AlertRule::new(AlertSeverity::Warning),
        );
        rules.insert(
            FAMILY_QUARANTINE.to_owned(),
            AlertRule::new(AlertSeverity::Critical),
        );
        rules.insert(
            FAMILY_PREFLIGHT_REFUSED.to_owned(),
            AlertRule::new(AlertSeverity::Warning),
        );
        rules.insert(
            FAMILY_GATEWAY_SATURATION.to_owned(),
            AlertRule::new(AlertSeverity::Warning),
        );
        AlertRules {
            rules,
            notify_capacity: DEFAULT_NOTIFY_CAPACITY,
            notify_refill_per_sec: DEFAULT_NOTIFY_REFILL_PER_SEC,
        }
    }
}

impl AlertRules {
    /// Install (or replace) the rule for one family.
    pub fn set(&mut self, family: &str, rule: AlertRule) {
        self.rules.insert(family.to_owned(), rule);
    }

    /// The effective rule for a family (defaults for unknown families).
    pub fn rule_for(&self, family: &str) -> AlertRule {
        self.rules
            .get(family)
            .copied()
            .unwrap_or_else(|| AlertRule::new(AlertSeverity::Warning))
    }

    /// Every configured (family, rule) pair, sorted by family.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &AlertRule)> {
        self.rules.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Size the notification token bucket.
    pub fn set_notify(&mut self, capacity: u64, refill_per_sec: u64) {
        self.notify_capacity = capacity;
        self.notify_refill_per_sec = refill_per_sec;
    }

    /// Notification bucket capacity (burst size).
    pub fn notify_capacity(&self) -> u64 {
        self.notify_capacity
    }

    /// Notification bucket refill, tokens per second.
    pub fn notify_refill_per_sec(&self) -> u64 {
        self.notify_refill_per_sec
    }

    /// Check the table for configurations that silently misbehave.
    pub fn validate(&self) -> Vec<RuleIssue> {
        let mut issues = Vec::new();
        if self.notify_capacity == 0 {
            issues.push(RuleIssue::ZeroNotifyCapacity);
        }
        for (family, rule) in &self.rules {
            if !FAMILIES.contains(&family.as_str()) {
                issues.push(RuleIssue::UnknownFamily {
                    family: family.clone(),
                });
            }
            if rule.resolve_timeout_ms <= rule.debounce_ms {
                issues.push(RuleIssue::ResolveWithinDebounce {
                    family: family.clone(),
                    debounce_ms: rule.debounce_ms,
                    resolve_timeout_ms: rule.resolve_timeout_ms,
                });
            }
        }
        issues
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_every_family_and_validate_clean() {
        let rules = AlertRules::default();
        for family in FAMILIES {
            assert!(
                rules.entries().any(|(f, _)| f == family),
                "missing default rule for {family}"
            );
        }
        assert!(rules.validate().is_empty());
        assert_eq!(rules.rule_for(FAMILY_LINK_DOWN).severity, AlertSeverity::Critical);
        assert_eq!(rules.rule_for(FAMILY_QUARANTINE).severity, AlertSeverity::Critical);
    }

    #[test]
    fn unknown_family_falls_back_but_is_flagged() {
        let mut rules = AlertRules::default();
        assert_eq!(
            rules.rule_for("never_heard_of_it"),
            AlertRule::new(AlertSeverity::Warning)
        );
        rules.set("link_downn", AlertRule::new(AlertSeverity::Critical));
        let issues = rules.validate();
        assert_eq!(
            issues,
            vec![RuleIssue::UnknownFamily {
                family: "link_downn".to_owned()
            }]
        );
    }

    #[test]
    fn resolve_within_debounce_is_flagged() {
        let mut rules = AlertRules::default();
        rules.set(
            FAMILY_LINK_DOWN,
            AlertRule::new(AlertSeverity::Critical)
                .with_debounce_ms(10_000)
                .with_resolve_timeout_ms(10_000),
        );
        let issues = rules.validate();
        assert_eq!(issues.len(), 1);
        assert!(matches!(
            &issues[0],
            RuleIssue::ResolveWithinDebounce { family, .. } if family == FAMILY_LINK_DOWN
        ));
    }

    #[test]
    fn zero_notify_capacity_is_flagged() {
        let mut rules = AlertRules::default();
        rules.set_notify(0, 1);
        assert_eq!(rules.validate(), vec![RuleIssue::ZeroNotifyCapacity]);
    }

    #[test]
    fn severity_round_trips_and_orders() {
        for sev in [AlertSeverity::Info, AlertSeverity::Warning, AlertSeverity::Critical] {
            assert_eq!(AlertSeverity::parse(sev.as_str()), Some(sev));
        }
        assert_eq!(AlertSeverity::parse("CRITICAL"), None);
        assert!(AlertSeverity::Critical > AlertSeverity::Warning);
        assert!(AlertSeverity::Warning > AlertSeverity::Info);
    }

    #[test]
    fn issues_render_for_operators() {
        let issue = RuleIssue::ResolveWithinDebounce {
            family: "link_down".to_owned(),
            debounce_ms: 10,
            resolve_timeout_ms: 5,
        };
        let text = issue.to_string();
        assert!(text.contains("link_down"), "got: {text}");
        assert!(text.contains("debounce"), "got: {text}");
    }
}

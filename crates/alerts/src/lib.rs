//! # xdmod-alerts — alert-lifecycle state machines for the federation.
//!
//! The telemetry layer records what happened; this crate decides what an
//! operator must *act on*. Faults observed by the supervisor and mined
//! from the event ring are fingerprinted into stable alert identities and
//! driven through a small per-alert state machine:
//!
//! ```text
//!                      fault while open: fold (occurrences += 1)
//!                        ┌──────────────┐
//!                        ▼              │
//!   fault ──────────► firing ───ack───► acknowledged
//!                        │                    │
//!                        ├── observe_ok ──────┤
//!                        │                    │
//!                        ├── quiet for resolve_timeout_ms ──┐
//!                        ▼                    ▼             │
//!                     resolved ◄──────────────┘◄────────────┘
//!                        │  ▲
//!                        │  └── re-fire within debounce_ms:
//!                        │      reopen same alert (flaps += 1)
//!                        ▼
//!                      stale   (resolved and quiet for stale_ms)
//! ```
//!
//! Design decisions, modeled on acteon-style alert pipelines:
//!
//! - **Stable identity.** An alert is keyed by FNV-1a over
//!   `family \0 target`, so the same fault on the same link always lands
//!   on the same alert id — re-fires fold instead of multiplying.
//! - **Flap damping.** A fault arriving while the alert is open folds
//!   into it (`occurrences += 1`, no new notification); a fault arriving
//!   within `debounce_ms` of the alert resolving reopens the *same*
//!   alert (`flaps += 1`) instead of minting a fresh one.
//! - **Timeout transitions.** Open alerts auto-resolve after
//!   `resolve_timeout_ms` without a fault observation (the fault stopped
//!   recurring); resolved alerts age out to `stale` after `stale_ms`.
//! - **Notification gating.** Every transition into `firing` passes
//!   through a [`TokenBucket`] — the same milli-token scheme the
//!   gateway's per-client rate limiter uses — so an alert storm cannot
//!   flood a notification channel; suppressed dispatches are counted,
//!   never silently dropped.
//!
//! The crate is std-only and fully time-injected (`now_ms` parameters
//! everywhere): the engine is deterministic under test, and the
//! embedding layer (`xdmod-core`) supplies its telemetry clock.

mod bucket;
mod engine;
mod rules;

pub use bucket::{TakeOutcome, TokenBucket};
pub use engine::{fingerprint, format_alert_id, AckError, Alert, AlertEngine, AlertState};
pub use rules::{
    AlertRule, AlertRules, AlertSeverity, RuleIssue, DEFAULT_DEBOUNCE_MS,
    DEFAULT_NOTIFY_CAPACITY, DEFAULT_NOTIFY_REFILL_PER_SEC, DEFAULT_RESOLVE_TIMEOUT_MS,
    DEFAULT_STALE_MS, FAMILIES, FAMILY_GATEWAY_SATURATION, FAMILY_LINK_DOWN,
    FAMILY_PREFLIGHT_REFUSED, FAMILY_QUARANTINE, FAMILY_REPLICATION_LAG,
};

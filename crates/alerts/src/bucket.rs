//! A time-injected token bucket in integer milli-tokens.
//!
//! Extracted from the gateway's per-client rate limiter so the alert
//! engine can gate notification dispatch through the *same* arithmetic
//! the serving tier uses for 429s: milli-token granularity keeps
//! sub-second refill rates exact in integers, and the caller supplies
//! `now_ms`, so behavior is deterministic under test.

/// Outcome of one [`TokenBucket::try_take`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TakeOutcome {
    /// Under budget; a token was consumed.
    Taken,
    /// Bucket empty; retry after this many whole seconds (at least 1).
    Empty {
        /// Seconds until one token is refilled.
        retry_after_secs: u64,
    },
}

/// One token bucket: `capacity` tokens, refilling at `refill_per_sec`
/// tokens per second (both clamped to at least 1), starting full.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity_milli: u64,
    refill_per_sec: u64,
    milli_tokens: u64,
    last_refill_ms: u64,
}

impl TokenBucket {
    /// A full bucket whose refill clock starts at 0 ms.
    pub fn new(capacity: u64, refill_per_sec: u64) -> Self {
        Self::new_at(capacity, refill_per_sec, 0)
    }

    /// A full bucket whose refill clock starts at `now_ms` — use when
    /// buckets are created lazily mid-run (the gateway's per-client map),
    /// so the first refill doesn't credit the time before creation.
    pub fn new_at(capacity: u64, refill_per_sec: u64, now_ms: u64) -> Self {
        let capacity_milli = capacity.max(1) * 1000;
        TokenBucket {
            capacity_milli,
            refill_per_sec: refill_per_sec.max(1),
            milli_tokens: capacity_milli,
            last_refill_ms: now_ms,
        }
    }

    /// Refill for the elapsed time, then try to take one token.
    pub fn try_take(&mut self, now_ms: u64) -> TakeOutcome {
        let elapsed = now_ms.saturating_sub(self.last_refill_ms);
        self.milli_tokens = self
            .capacity_milli
            .min(self.milli_tokens + elapsed * self.refill_per_sec);
        self.last_refill_ms = now_ms;
        if self.milli_tokens >= 1000 {
            self.milli_tokens -= 1000;
            TakeOutcome::Taken
        } else {
            let deficit_ms = (1000 - self.milli_tokens).div_ceil(self.refill_per_sec);
            TakeOutcome::Empty {
                retry_after_secs: deficit_ms.div_ceil(1000).max(1),
            }
        }
    }

    /// Current fill, in milli-tokens (test/ops visibility).
    pub fn milli_tokens(&self) -> u64 {
        self.milli_tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_up_to_capacity_then_empty() {
        let mut b = TokenBucket::new(3, 1);
        for _ in 0..3 {
            assert_eq!(b.try_take(0), TakeOutcome::Taken);
        }
        assert_eq!(
            b.try_take(0),
            TakeOutcome::Empty {
                retry_after_secs: 1
            }
        );
    }

    #[test]
    fn refills_over_time_capped_at_capacity() {
        let mut b = TokenBucket::new(2, 2); // 2 tokens/sec
        assert_eq!(b.try_take(0), TakeOutcome::Taken);
        assert_eq!(b.try_take(0), TakeOutcome::Taken);
        assert!(matches!(b.try_take(0), TakeOutcome::Empty { .. }));
        // 500 ms refills one token at 2/sec.
        assert_eq!(b.try_take(500), TakeOutcome::Taken);
        assert!(matches!(b.try_take(500), TakeOutcome::Empty { .. }));
        // A long idle period refills to capacity, not beyond.
        assert_eq!(b.try_take(60_000), TakeOutcome::Taken);
        assert_eq!(b.try_take(60_000), TakeOutcome::Taken);
        assert!(matches!(b.try_take(60_000), TakeOutcome::Empty { .. }));
    }

    #[test]
    fn retry_after_reflects_refill_rate() {
        let mut slow = TokenBucket::new(1, 1);
        assert_eq!(slow.try_take(0), TakeOutcome::Taken);
        assert_eq!(
            slow.try_take(0),
            TakeOutcome::Empty {
                retry_after_secs: 1
            }
        );
        // At 4 tokens/sec a full token exists after 250 ms → still
        // reported as 1 whole second (floor for Retry-After headers).
        let mut fast = TokenBucket::new(1, 4);
        assert_eq!(fast.try_take(0), TakeOutcome::Taken);
        assert_eq!(
            fast.try_take(0),
            TakeOutcome::Empty {
                retry_after_secs: 1
            }
        );
    }

    #[test]
    fn zero_capacity_and_rate_are_clamped() {
        let mut b = TokenBucket::new(0, 0);
        assert_eq!(b.try_take(0), TakeOutcome::Taken);
        assert!(matches!(b.try_take(0), TakeOutcome::Empty { .. }));
        assert_eq!(b.try_take(1_000), TakeOutcome::Taken);
    }

    #[test]
    fn lazy_creation_does_not_credit_past_time() {
        let mut b = TokenBucket::new_at(1, 1, 10_000);
        assert_eq!(b.try_take(10_000), TakeOutcome::Taken);
        // Clock regressions (never expected, but clamp anyway) refill 0.
        assert!(matches!(b.try_take(9_000), TakeOutcome::Empty { .. }));
    }
}

//! The alert engine: fingerprinted identities and per-alert state
//! machines.

use crate::bucket::{TakeOutcome, TokenBucket};
use crate::rules::{AlertRules, AlertSeverity};
use std::collections::BTreeMap;
use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Stable identity of an alert: FNV-1a over `family \0 target`. The
/// same fault on the same link always hashes to the same alert, which is
/// what lets re-fires fold instead of multiplying.
pub fn fingerprint(family: &str, target: &str) -> u64 {
    let mut hash = FNV_OFFSET;
    for byte in family
        .as_bytes()
        .iter()
        .chain(&[0u8])
        .chain(target.as_bytes())
    {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Render a fingerprint as the wire-form alert id (16 hex digits).
pub fn format_alert_id(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Where an alert is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// The fault is live and unhandled.
    Firing,
    /// An operator has seen it; the fault may still be live.
    Acknowledged,
    /// The fault cleared (explicit all-clear or quiet timeout).
    Resolved,
    /// Resolved long enough ago that it is history, not status.
    Stale,
}

impl AlertState {
    /// Lower-case wire form.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Firing => "firing",
            AlertState::Acknowledged => "acknowledged",
            AlertState::Resolved => "resolved",
            AlertState::Stale => "stale",
        }
    }

    /// Whether the underlying fault is still considered live.
    pub fn is_open(self) -> bool {
        matches!(self, AlertState::Firing | AlertState::Acknowledged)
    }

    fn rank(self) -> u8 {
        match self {
            AlertState::Firing => 0,
            AlertState::Acknowledged => 1,
            AlertState::Resolved => 2,
            AlertState::Stale => 3,
        }
    }
}

impl fmt::Display for AlertState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One alert: a fingerprinted (family, target) fault and its lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Stable wire id (hex fingerprint).
    pub id: String,
    /// Fault family (one of [`crate::FAMILIES`], normally).
    pub family: String,
    /// What the fault is about — a member name, `gateway`, `preflight`.
    pub target: String,
    /// Severity stamped from the family's rule at (re)open time.
    pub severity: AlertSeverity,
    /// Lifecycle position.
    pub state: AlertState,
    /// Human-readable context from the most recent observation.
    pub detail: String,
    /// When this episode opened (ms, engine clock).
    pub opened_at_ms: u64,
    /// Most recent fault observation (ms).
    pub last_observed_ms: u64,
    /// Most recent state transition (ms).
    pub last_transition_ms: u64,
    /// Fault observations folded into this episode (≥ 1).
    pub occurrences: u64,
    /// Times the alert reopened within its debounce window.
    pub flaps: u64,
    /// Operator who acknowledged, while acknowledged.
    pub acked_by: Option<String>,
}

impl Alert {
    fn open(
        id: String,
        family: &str,
        target: &str,
        severity: AlertSeverity,
        detail: &str,
        now_ms: u64,
    ) -> Self {
        Alert {
            id,
            family: family.to_owned(),
            target: target.to_owned(),
            severity,
            state: AlertState::Firing,
            detail: detail.to_owned(),
            opened_at_ms: now_ms,
            last_observed_ms: now_ms,
            last_transition_ms: now_ms,
            occurrences: 1,
            flaps: 0,
            acked_by: None,
        }
    }
}

/// Why an acknowledgement was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AckError {
    /// No alert has this id.
    UnknownAlert(String),
    /// The alert exists but is not in `firing`.
    NotFiring {
        /// The alert id.
        id: String,
        /// Its current state.
        state: AlertState,
    },
}

impl fmt::Display for AckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AckError::UnknownAlert(id) => write!(f, "no alert with id {id:?}"),
            AckError::NotFiring { id, state } => {
                write!(f, "alert {id:?} is {state}, not firing")
            }
        }
    }
}

impl std::error::Error for AckError {}

/// The engine: every live alert, keyed by fingerprint, plus the
/// generation counter the gateway's `ETag` caching is keyed to.
#[derive(Debug)]
pub struct AlertEngine {
    rules: AlertRules,
    alerts: BTreeMap<u64, Alert>,
    generation: u64,
    notify_bucket: TokenBucket,
    notifications_sent: u64,
    notifications_suppressed: u64,
}

impl AlertEngine {
    /// An empty engine under the given rule table.
    pub fn new(rules: AlertRules) -> Self {
        let notify_bucket =
            TokenBucket::new(rules.notify_capacity(), rules.notify_refill_per_sec());
        AlertEngine {
            rules,
            alerts: BTreeMap::new(),
            generation: 0,
            notify_bucket,
            notifications_sent: 0,
            notifications_suppressed: 0,
        }
    }

    /// The active rule table.
    pub fn rules(&self) -> &AlertRules {
        &self.rules
    }

    /// Swap the rule table (rebuilds the notification bucket).
    pub fn set_rules(&mut self, rules: AlertRules) {
        self.notify_bucket =
            TokenBucket::new(rules.notify_capacity(), rules.notify_refill_per_sec());
        self.rules = rules;
        self.generation += 1;
    }

    /// Monotone counter bumped on every visible state change; the
    /// gateway derives `/alerts` ETags from it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Notifications dispatched (token available at firing time).
    pub fn notifications_sent(&self) -> u64 {
        self.notifications_sent
    }

    /// Notifications suppressed by the token bucket.
    pub fn notifications_suppressed(&self) -> u64 {
        self.notifications_suppressed
    }

    fn notify(&mut self, now_ms: u64) {
        match self.notify_bucket.try_take(now_ms) {
            TakeOutcome::Taken => self.notifications_sent += 1,
            TakeOutcome::Empty { .. } => self.notifications_suppressed += 1,
        }
    }

    /// Record a fault observation. Returns the (stable) alert id.
    ///
    /// State machine, per the crate docs: open alerts fold the
    /// observation (occurrence count, no new notification); a resolved
    /// alert re-firing within its debounce window reopens as a flap; a
    /// resolved-past-debounce or stale alert starts a fresh episode.
    pub fn observe_fault(&mut self, family: &str, target: &str, detail: &str, now_ms: u64) -> String {
        let key = fingerprint(family, target);
        let rule = self.rules.rule_for(family);
        let mut fired = false;
        match self.alerts.get_mut(&key) {
            Some(alert) if alert.state.is_open() => {
                alert.occurrences += 1;
                alert.last_observed_ms = now_ms;
                if !detail.is_empty() {
                    alert.detail = detail.to_owned();
                }
            }
            Some(alert)
                if alert.state == AlertState::Resolved
                    && now_ms.saturating_sub(alert.last_transition_ms) <= rule.debounce_ms =>
            {
                alert.state = AlertState::Firing;
                alert.flaps += 1;
                alert.occurrences += 1;
                alert.acked_by = None;
                alert.severity = rule.severity;
                alert.last_observed_ms = now_ms;
                alert.last_transition_ms = now_ms;
                if !detail.is_empty() {
                    alert.detail = detail.to_owned();
                }
                fired = true;
            }
            Some(alert) => {
                // Resolved past debounce, or stale: a fresh episode on
                // the same identity.
                *alert = Alert::open(
                    format_alert_id(key),
                    family,
                    target,
                    rule.severity,
                    detail,
                    now_ms,
                );
                fired = true;
            }
            None => {
                self.alerts.insert(
                    key,
                    Alert::open(
                        format_alert_id(key),
                        family,
                        target,
                        rule.severity,
                        detail,
                        now_ms,
                    ),
                );
                fired = true;
            }
        }
        self.generation += 1;
        if fired {
            self.notify(now_ms);
        }
        format_alert_id(key)
    }

    /// Record an explicit all-clear for a (family, target). Returns true
    /// when an open alert transitioned to resolved.
    pub fn observe_ok(&mut self, family: &str, target: &str, now_ms: u64) -> bool {
        let key = fingerprint(family, target);
        let Some(alert) = self.alerts.get_mut(&key) else {
            return false;
        };
        if !alert.state.is_open() {
            return false;
        }
        alert.state = AlertState::Resolved;
        alert.last_transition_ms = now_ms;
        self.generation += 1;
        true
    }

    /// Acknowledge a firing alert on behalf of `who`.
    pub fn ack(&mut self, id: &str, who: &str, now_ms: u64) -> Result<(), AckError> {
        let Some(alert) = self.alerts.values_mut().find(|a| a.id == id) else {
            return Err(AckError::UnknownAlert(id.to_owned()));
        };
        if alert.state != AlertState::Firing {
            return Err(AckError::NotFiring {
                id: id.to_owned(),
                state: alert.state,
            });
        }
        alert.state = AlertState::Acknowledged;
        alert.acked_by = Some(who.to_owned());
        alert.last_transition_ms = now_ms;
        self.generation += 1;
        Ok(())
    }

    /// Apply timeout transitions: open alerts quiet for
    /// `resolve_timeout_ms` auto-resolve; resolved alerts older than
    /// `stale_ms` go stale.
    pub fn tick(&mut self, now_ms: u64) {
        let AlertEngine {
            rules,
            alerts,
            generation,
            ..
        } = self;
        for alert in alerts.values_mut() {
            let rule = rules.rule_for(&alert.family);
            match alert.state {
                AlertState::Firing | AlertState::Acknowledged
                    if now_ms.saturating_sub(alert.last_observed_ms)
                        >= rule.resolve_timeout_ms =>
                {
                    alert.state = AlertState::Resolved;
                    alert.acked_by = None;
                    alert.last_transition_ms = now_ms;
                    *generation += 1;
                }
                AlertState::Resolved
                    if now_ms.saturating_sub(alert.last_transition_ms) >= rule.stale_ms =>
                {
                    alert.state = AlertState::Stale;
                    alert.last_transition_ms = now_ms;
                    *generation += 1;
                }
                _ => {}
            }
        }
    }

    /// Drop stale alerts (history, not status). Returns how many.
    pub fn purge_stale(&mut self) -> usize {
        let before = self.alerts.len();
        self.alerts.retain(|_, a| a.state != AlertState::Stale);
        let purged = before - self.alerts.len();
        if purged > 0 {
            self.generation += 1;
        }
        purged
    }

    /// One alert by wire id.
    pub fn get(&self, id: &str) -> Option<&Alert> {
        self.alerts.values().find(|a| a.id == id)
    }

    /// Every alert, most urgent first (state rank, then family, target).
    pub fn alerts(&self) -> Vec<Alert> {
        let mut out: Vec<Alert> = self.alerts.values().cloned().collect();
        out.sort_by(|a, b| {
            a.state
                .rank()
                .cmp(&b.state.rank())
                .then_with(|| a.family.cmp(&b.family))
                .then_with(|| a.target.cmp(&b.target))
        });
        out
    }

    /// How many alerts are open (firing or acknowledged).
    pub fn open_count(&self) -> usize {
        self.alerts.values().filter(|a| a.state.is_open()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{AlertRule, FAMILY_LINK_DOWN, FAMILY_REPLICATION_LAG};

    fn engine() -> AlertEngine {
        AlertEngine::new(AlertRules::default())
    }

    #[test]
    fn fingerprint_is_stable_and_separator_safe() {
        let a = fingerprint("link_down", "x");
        assert_eq!(a, fingerprint("link_down", "x"));
        assert_ne!(a, fingerprint("link_down", "y"));
        // The NUL separator keeps (ab, c) and (a, bc) distinct.
        assert_ne!(fingerprint("ab", "c"), fingerprint("a", "bc"));
        assert_eq!(format_alert_id(a).len(), 16);
    }

    #[test]
    fn lifecycle_fire_ack_resolve() {
        let mut eng = engine();
        let id = eng.observe_fault(FAMILY_LINK_DOWN, "x", "link dead", 10);
        assert_eq!(eng.open_count(), 1);
        let alert = eng.get(&id).unwrap().clone();
        assert_eq!(alert.state, AlertState::Firing);
        assert_eq!(alert.severity, AlertSeverity::Critical);
        assert_eq!(alert.occurrences, 1);

        eng.ack(&id, "ops", 20).unwrap();
        let alert = eng.get(&id).unwrap();
        assert_eq!(alert.state, AlertState::Acknowledged);
        assert_eq!(alert.acked_by.as_deref(), Some("ops"));

        assert!(eng.observe_ok(FAMILY_LINK_DOWN, "x", 30));
        assert_eq!(eng.get(&id).unwrap().state, AlertState::Resolved);
        assert_eq!(eng.open_count(), 0);
        // A second all-clear is a no-op.
        assert!(!eng.observe_ok(FAMILY_LINK_DOWN, "x", 31));
    }

    #[test]
    fn open_alert_folds_refires_without_new_notification() {
        let mut eng = engine();
        let id = eng.observe_fault(FAMILY_LINK_DOWN, "x", "", 0);
        assert_eq!(eng.notifications_sent(), 1);
        for t in 1..=5 {
            let again = eng.observe_fault(FAMILY_LINK_DOWN, "x", "still dead", t);
            assert_eq!(again, id, "same identity must fold");
        }
        let alert = eng.get(&id).unwrap();
        assert_eq!(alert.occurrences, 6);
        assert_eq!(alert.flaps, 0);
        assert_eq!(alert.detail, "still dead");
        assert_eq!(eng.alerts().len(), 1, "exactly one alert");
        assert_eq!(eng.notifications_sent(), 1, "folds must not re-notify");
    }

    #[test]
    fn refire_within_debounce_is_a_flap_not_a_new_alert() {
        let mut eng = engine();
        let id = eng.observe_fault(FAMILY_LINK_DOWN, "x", "", 0);
        eng.observe_ok(FAMILY_LINK_DOWN, "x", 100);
        // Default debounce is 5000 ms; re-fire at +1000.
        let again = eng.observe_fault(FAMILY_LINK_DOWN, "x", "", 1_100);
        assert_eq!(again, id);
        let alert = eng.get(&id).unwrap();
        assert_eq!(alert.state, AlertState::Firing);
        assert_eq!(alert.flaps, 1);
        assert_eq!(alert.occurrences, 2);
        assert_eq!(alert.opened_at_ms, 0, "flap keeps the original episode");
        assert_eq!(eng.alerts().len(), 1);
    }

    #[test]
    fn refire_past_debounce_starts_a_fresh_episode() {
        let mut eng = engine();
        let id = eng.observe_fault(FAMILY_LINK_DOWN, "x", "", 0);
        eng.observe_ok(FAMILY_LINK_DOWN, "x", 100);
        let again = eng.observe_fault(FAMILY_LINK_DOWN, "x", "back", 100 + 5_001);
        assert_eq!(again, id, "identity is stable across episodes");
        let alert = eng.get(&id).unwrap();
        assert_eq!(alert.occurrences, 1, "fresh episode restarts the count");
        assert_eq!(alert.flaps, 0);
        assert_eq!(alert.opened_at_ms, 5_101);
    }

    #[test]
    fn quiet_open_alert_times_out_to_resolved_then_stale() {
        let mut eng = engine();
        let id = eng.observe_fault(FAMILY_LINK_DOWN, "x", "", 0);
        eng.tick(29_999);
        assert_eq!(eng.get(&id).unwrap().state, AlertState::Firing);
        eng.tick(30_000); // default resolve_timeout_ms
        assert_eq!(eng.get(&id).unwrap().state, AlertState::Resolved);
        eng.tick(30_000 + 59_999);
        assert_eq!(eng.get(&id).unwrap().state, AlertState::Resolved);
        eng.tick(30_000 + 60_000); // default stale_ms after resolving
        assert_eq!(eng.get(&id).unwrap().state, AlertState::Stale);
        assert_eq!(eng.purge_stale(), 1);
        assert!(eng.get(&id).is_none());
    }

    #[test]
    fn ack_requires_firing_and_a_known_id() {
        let mut eng = engine();
        assert_eq!(
            eng.ack("feedfeedfeedfeed", "ops", 0),
            Err(AckError::UnknownAlert("feedfeedfeedfeed".to_owned()))
        );
        let id = eng.observe_fault(FAMILY_LINK_DOWN, "x", "", 0);
        eng.ack(&id, "ops", 1).unwrap();
        assert_eq!(
            eng.ack(&id, "ops", 2),
            Err(AckError::NotFiring {
                id: id.clone(),
                state: AlertState::Acknowledged
            })
        );
        // Timeout-resolve clears the ack attribution.
        eng.tick(1 + 30_000);
        assert_eq!(eng.get(&id).unwrap().state, AlertState::Resolved);
        assert_eq!(eng.get(&id).unwrap().acked_by, None);
    }

    #[test]
    fn generation_advances_on_every_visible_change() {
        let mut eng = engine();
        let g0 = eng.generation();
        let id = eng.observe_fault(FAMILY_LINK_DOWN, "x", "", 0);
        let g1 = eng.generation();
        assert!(g1 > g0);
        eng.ack(&id, "ops", 1).unwrap();
        let g2 = eng.generation();
        assert!(g2 > g1);
        eng.observe_ok(FAMILY_LINK_DOWN, "x", 2);
        let g3 = eng.generation();
        assert!(g3 > g2);
        // A tick with nothing to do leaves the generation alone.
        eng.tick(3);
        assert_eq!(eng.generation(), g3);
    }

    #[test]
    fn notification_bucket_gates_alert_storms() {
        let mut rules = AlertRules::default();
        rules.set_notify(2, 1);
        let mut eng = AlertEngine::new(rules);
        for i in 0..5 {
            eng.observe_fault(FAMILY_LINK_DOWN, &format!("m{i}"), "", 0);
        }
        assert_eq!(eng.notifications_sent(), 2);
        assert_eq!(eng.notifications_suppressed(), 3);
        assert_eq!(eng.alerts().len(), 5, "suppression hides nothing");
    }

    #[test]
    fn alerts_sort_most_urgent_first() {
        let mut eng = engine();
        eng.observe_fault(FAMILY_REPLICATION_LAG, "y", "", 0);
        eng.observe_fault(FAMILY_LINK_DOWN, "x", "", 0);
        eng.observe_ok(FAMILY_REPLICATION_LAG, "y", 1);
        let alerts = eng.alerts();
        assert_eq!(alerts[0].family, FAMILY_LINK_DOWN);
        assert_eq!(alerts[0].state, AlertState::Firing);
        assert_eq!(alerts[1].state, AlertState::Resolved);
    }

    #[test]
    fn custom_rule_windows_apply_per_family() {
        let mut rules = AlertRules::default();
        rules.set(
            FAMILY_REPLICATION_LAG,
            AlertRule::new(AlertSeverity::Info)
                .with_debounce_ms(10)
                .with_resolve_timeout_ms(50)
                .with_stale_ms(100),
        );
        let mut eng = AlertEngine::new(rules);
        let id = eng.observe_fault(FAMILY_REPLICATION_LAG, "y", "", 0);
        assert_eq!(eng.get(&id).unwrap().severity, AlertSeverity::Info);
        eng.tick(50);
        assert_eq!(eng.get(&id).unwrap().state, AlertState::Resolved);
        // Past the 10 ms debounce → fresh episode, not a flap.
        eng.observe_fault(FAMILY_REPLICATION_LAG, "y", "", 61);
        assert_eq!(eng.get(&id).unwrap().flaps, 0);
        assert_eq!(eng.get(&id).unwrap().occurrences, 1);
    }
}

//! The Job Viewer and role-scoped queries.
//!
//! "With XDMoD's Job Viewer, users can probe performance data about a
//! job's executable, its accounting data, job scripts, application, and
//! timeseries plots of metrics such as CPU user, flops, parallel file
//! system usage, and memory usage." (§IV). [`XdmodInstance::job_detail`]
//! assembles exactly that bundle from the Jobs and SUPReMM realms.
//!
//! "Users must sign on to XDMoD to use most of its advanced features, to
//! see their individual job-level performance data, and to access
//! certain metrics." (§II-D). [`XdmodInstance::query_as`] and
//! [`XdmodInstance::job_detail_as`] enforce that: end users see their own
//! data, PIs their group's, center staff everything.

use crate::instance::XdmodInstance;
use std::collections::BTreeMap;
use xdmod_auth::{Role, Session};
use xdmod_realms::{jobs, supremm, RealmKind};
use xdmod_warehouse::{Predicate, Query, Result, ResultSet, Value, WarehouseError};

/// Everything the Job Viewer shows for one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobDetail {
    /// The job id.
    pub job_id: i64,
    /// Accounting fields from `jobfact` (column → value).
    pub accounting: BTreeMap<String, Value>,
    /// Performance summary from `supremm_jobfact`, when collected.
    pub performance: Option<BTreeMap<String, Value>>,
    /// The batch script, when collected.
    pub script: Option<String>,
    /// Per-metric timeseries: metric name → `(timestamp, value)` points
    /// ordered by time.
    pub timeseries: BTreeMap<String, Vec<(i64, f64)>>,
}

impl JobDetail {
    /// The owning user, from the accounting record.
    pub fn owner(&self) -> Option<&str> {
        self.accounting.get("user").and_then(Value::as_str)
    }
}

/// Why an authorized operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// The session's user is not enrolled on this instance.
    UnknownUser(String),
    /// The role does not permit viewing the requested data.
    Forbidden {
        /// Who asked.
        user: String,
        /// What they asked for.
        wanted: String,
    },
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessError::UnknownUser(u) => write!(f, "user {u} is not enrolled here"),
            AccessError::Forbidden { user, wanted } => {
                write!(f, "{user} may not view {wanted}")
            }
        }
    }
}

impl std::error::Error for AccessError {}

impl XdmodInstance {
    /// Assemble the Job Viewer bundle for `job_id`.
    pub fn job_detail(&self, job_id: i64) -> Result<JobDetail> {
        let db = self.database();
        let db = db.read();
        let schema = self.schema_name();

        let find_row = |table: &str| -> Result<Option<BTreeMap<String, Value>>> {
            let t = db.table(&schema, table)?;
            let idx = t.schema().column_index("job_id")?;
            Ok(t.rows()?
                .iter()
                .find(|r| r[idx] == Value::Int(job_id))
                .map(|row| {
                    t.schema()
                        .columns
                        .iter()
                        .zip(row)
                        .map(|(c, v)| (c.name.clone(), v.clone()))
                        .collect()
                }))
        };

        let accounting = find_row(jobs::FACT_TABLE)?.ok_or_else(|| {
            WarehouseError::InvalidQuery(format!("no job {job_id} in the Jobs realm"))
        })?;
        let performance = find_row(supremm::FACT_TABLE)?;

        let script = {
            let t = db.table(&schema, supremm::JOBSCRIPT_TABLE)?;
            let id_idx = t.schema().column_index("job_id")?;
            let s_idx = t.schema().column_index("script")?;
            t.rows()?
                .iter()
                .find(|r| r[id_idx] == Value::Int(job_id))
                .and_then(|r| r[s_idx].as_str().map(str::to_owned))
        };

        let mut timeseries: BTreeMap<String, Vec<(i64, f64)>> = BTreeMap::new();
        {
            let t = db.table(&schema, supremm::TIMESERIES_TABLE)?;
            let id_idx = t.schema().column_index("job_id")?;
            let ts_idx = t.schema().column_index("ts")?;
            let m_idx = t.schema().column_index("metric")?;
            let v_idx = t.schema().column_index("value")?;
            for row in t.rows()?.iter() {
                if row[id_idx] != Value::Int(job_id) {
                    continue;
                }
                if let (Some(ts), Some(metric), Some(value)) = (
                    row[ts_idx].as_time(),
                    row[m_idx].as_str(),
                    row[v_idx].as_f64(),
                ) {
                    timeseries
                        .entry(metric.to_owned())
                        .or_default()
                        .push((ts, value));
                }
            }
            for points in timeseries.values_mut() {
                points.sort_by_key(|(ts, _)| *ts);
            }
        }

        Ok(JobDetail {
            job_id,
            accounting,
            performance,
            script,
            timeseries,
        })
    }

    /// Role of the session's user on this instance, if enrolled.
    fn role_of(
        &self,
        session: &Session,
    ) -> std::result::Result<(Role, Option<String>), AccessError> {
        let user = self
            .auth()
            .users()
            .get(&session.username)
            .ok_or_else(|| AccessError::UnknownUser(session.username.clone()))?;
        Ok((user.role, user.pi_group.clone()))
    }

    /// Run a Jobs-realm query scoped by the session's role:
    ///
    /// - `User` → only their own jobs (a `user = <me>` filter is
    ///   injected);
    /// - `Pi` → their group's jobs (`pi = <group>`);
    /// - `CenterStaff` / `CenterDirector` / `Admin` → everything.
    pub fn query_as(
        &self,
        session: &Session,
        realm: RealmKind,
        query: &Query,
    ) -> std::result::Result<ResultSet, Box<dyn std::error::Error>> {
        let (role, group) = self.role_of(session)?;
        let scoped = match role {
            Role::User => query.clone().filter(Predicate::Eq(
                "user".into(),
                Value::Str(session.username.clone()),
            )),
            Role::Pi => {
                let group = group.unwrap_or_else(|| session.username.clone());
                query
                    .clone()
                    .filter(Predicate::Eq("pi".into(), Value::Str(group)))
            }
            Role::CenterStaff | Role::CenterDirector | Role::Admin => query.clone(),
        };
        Ok(self.query(realm, &scoped)?)
    }

    /// Job Viewer access with role enforcement: end users may open only
    /// their own jobs.
    pub fn job_detail_as(
        &self,
        session: &Session,
        job_id: i64,
    ) -> std::result::Result<JobDetail, Box<dyn std::error::Error>> {
        let (role, group) = self.role_of(session)?;
        let detail = self.job_detail(job_id)?;
        let allowed = match role {
            Role::User => detail.owner() == Some(session.username.as_str()),
            Role::Pi => {
                let job_pi = detail.accounting.get("pi").and_then(Value::as_str);
                detail.owner() == Some(session.username.as_str())
                    || (job_pi.is_some() && job_pi == group.as_deref())
            }
            Role::CenterStaff | Role::CenterDirector | Role::Admin => true,
        };
        if !allowed {
            return Err(Box::new(AccessError::Forbidden {
                user: session.username.clone(),
                wanted: format!("job {job_id}"),
            }));
        }
        Ok(detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdmod_auth::User;
    use xdmod_warehouse::{AggFn, Aggregate};

    const SACCT: &str = "\
JobID|User|Account|Partition|NNodes|NCPUS|Submit|Start|End|State|AllocGPUs
1|alice|grp_smith|normal|1|24|2017-01-05T08:00:00|2017-01-05T09:00:00|2017-01-05T11:00:00|COMPLETED|0
2|bob|grp_smith|normal|2|48|2017-02-01T00:00:00|2017-02-01T01:00:00|2017-02-01T05:00:00|COMPLETED|0
3|carol|grp_jones|debug|1|8|2017-02-02T00:00:00|2017-02-02T00:10:00|2017-02-02T00:40:00|FAILED|0
";

    const PCP: &str = "\
job 1 rush alice 1483606800
ts 1483600000 cpu_user 0.8
ts 1483600600 cpu_user 0.9
ts 1483600000 memory_used 10.0
script #!/bin/bash\\nsrun ./lammps
end
";

    fn instance() -> XdmodInstance {
        let mut inst = XdmodInstance::new("ccr");
        inst.ingest_sacct("rush", SACCT).unwrap();
        inst.ingest_pcp(PCP).unwrap();
        inst.auth_mut()
            .enroll(User::member("alice", "alice@x.edu", "x.edu"), Some("pw-a"));
        inst.auth_mut().enroll(
            User::member("smith", "smith@x.edu", "x.edu")
                .with_role(Role::Pi)
                .in_group("grp_smith"),
            Some("pw-s"),
        );
        inst.auth_mut().enroll(
            User::member("ops", "ops@x.edu", "x.edu").with_role(Role::CenterStaff),
            Some("pw-o"),
        );
        inst
    }

    #[test]
    fn job_detail_bundles_all_four_components() {
        let inst = instance();
        let d = inst.job_detail(1).unwrap();
        assert_eq!(d.owner(), Some("alice"));
        assert_eq!(d.accounting.get("cores"), Some(&Value::Int(24)));
        let perf = d.performance.as_ref().expect("supremm collected");
        assert!((perf["cpu_user"].as_f64().unwrap() - 0.85).abs() < 1e-9);
        assert!(d.script.as_deref().unwrap().contains("lammps"));
        let cpu_series = &d.timeseries["cpu_user"];
        assert_eq!(cpu_series.len(), 2);
        assert!(cpu_series[0].0 < cpu_series[1].0);
    }

    #[test]
    fn job_without_performance_data_still_views() {
        let inst = instance();
        let d = inst.job_detail(2).unwrap();
        assert!(d.performance.is_none());
        assert!(d.script.is_none());
        assert!(d.timeseries.is_empty());
        assert_eq!(d.owner(), Some("bob"));
    }

    #[test]
    fn missing_job_reports_error() {
        let inst = instance();
        assert!(inst.job_detail(999).is_err());
    }

    #[test]
    fn end_user_queries_are_scoped_to_self() {
        let mut inst = instance();
        let session = inst.auth_mut().login_local("alice", "pw-a", 100).unwrap();
        let rs = inst
            .query_as(
                &session,
                RealmKind::Jobs,
                &Query::new().aggregate(Aggregate::count("jobs")),
            )
            .unwrap();
        assert_eq!(rs.scalar_f64("jobs"), Some(1.0)); // only alice's job
    }

    #[test]
    fn pi_queries_cover_the_group() {
        let mut inst = instance();
        let session = inst.auth_mut().login_local("smith", "pw-s", 100).unwrap();
        let rs = inst
            .query_as(
                &session,
                RealmKind::Jobs,
                &Query::new().aggregate(Aggregate::count("jobs")),
            )
            .unwrap();
        assert_eq!(rs.scalar_f64("jobs"), Some(2.0)); // alice + bob
    }

    #[test]
    fn staff_queries_are_unscoped() {
        let mut inst = instance();
        let session = inst.auth_mut().login_local("ops", "pw-o", 100).unwrap();
        let rs = inst
            .query_as(
                &session,
                RealmKind::Jobs,
                &Query::new().aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "cpu")),
            )
            .unwrap();
        // All three jobs: 24*2 + 48*4 + 8*0.5 = 244.
        assert_eq!(rs.scalar_f64("cpu"), Some(244.0));
    }

    #[test]
    fn job_viewer_respects_ownership() {
        let mut inst = instance();
        let alice = inst.auth_mut().login_local("alice", "pw-a", 100).unwrap();
        assert!(inst.job_detail_as(&alice, 1).is_ok()); // own job
        let err = inst.job_detail_as(&alice, 2).unwrap_err();
        assert!(err.to_string().contains("may not view"));
        // PI can open group members' jobs but not other groups'.
        let smith = inst.auth_mut().login_local("smith", "pw-s", 100).unwrap();
        assert!(inst.job_detail_as(&smith, 2).is_ok());
        assert!(inst.job_detail_as(&smith, 3).is_err());
        // Staff can open anything.
        let ops = inst.auth_mut().login_local("ops", "pw-o", 100).unwrap();
        assert!(inst.job_detail_as(&ops, 3).is_ok());
    }

    #[test]
    fn unenrolled_session_is_rejected() {
        let inst = instance();
        let ghost = Session {
            token: 1,
            username: "ghost".into(),
            instance: "ccr".into(),
            method: xdmod_auth::AuthMethod::Local,
            issued_at: 0,
            expires_at: 10_000,
        };
        let err = inst
            .query_as(
                &ghost,
                RealmKind::Jobs,
                &Query::new().aggregate(Aggregate::count("jobs")),
            )
            .unwrap_err();
        assert!(err.to_string().contains("not enrolled"));
    }
}

//! # xdmod-core
//!
//! The paper's primary contribution: **federated XDMoD**. This crate
//! wires the substrates (warehouse, ingest, realms, replication, auth,
//! chart) into the system of Figs. 2 and 3:
//!
//! - [`instance::XdmodInstance`] — a fully functional satellite XDMoD
//!   installation: realm tables, shredders, aggregation levels, SU
//!   conversion, authentication.
//! - [`hub::FederationHub`] — the central hub: one schema per satellite,
//!   hub-local aggregation levels, federated query over the union of
//!   members, identity mapping, multi-source SSO.
//! - [`federation::Federation`] — the Federation module: tight/loose
//!   links, the version gate, resource routing, consistency checks, and
//!   satellite regeneration from the hub.
//! - [`supervisor`] — tick-driven link supervision: retry, auto-restart,
//!   resync on divergence, quarantine, degraded-mode health reporting.
//! - [`config::FederationFile`] — JSON configuration for the whole
//!   wiring.
//! - [`version::XdmodVersion`] — the "same version everywhere" rule.
//!
//! The supervisor and the ops event stream also feed the
//! `xdmod-alerts` lifecycle engine ([`Federation::alerts`],
//! [`Federation::ack_alert`]): faults fingerprint into stable alert
//! identities that fire, damp flaps, and auto-resolve as links heal.
//!
//! [`Federation::alerts`]: federation::Federation::alerts
//! [`Federation::ack_alert`]: federation::Federation::ack_alert

#![warn(missing_docs)]

pub mod config;
pub mod explorer;
pub mod federation;
pub mod freport;
pub mod hub;
pub mod instance;
pub mod supervisor;
pub mod version;
pub mod viewer;

pub use config::{AlertRuleEntry, AlertsEntry, FederationFile, MemberEntry, TelemetryEntry};
pub use explorer::{ChartRequest, ChartView, CompiledChart, QueryDescriptor};
pub use federation::{DrainNotice, Federation, FederationConfig, FederationError, FederationMode};
pub use freport::federation_report;
pub use hub::FederationHub;
pub use instance::XdmodInstance;
pub use supervisor::{MemberHealth, MemberReport, SupervisionReport, SupervisorPolicy};
pub use version::XdmodVersion;
pub use viewer::{AccessError, JobDetail};
// The alert types appearing in `Federation`'s public signatures, so
// downstream crates need not depend on `xdmod-alerts` directly.
pub use xdmod_alerts::{AckError, Alert, AlertEngine, AlertRule, AlertRules, AlertSeverity, AlertState};

//! The Federation module: wiring satellites to a hub.
//!
//! "The new XDMoD Federation module further extends the application,
//! providing the ability for multiple disparate XDMoD installations to
//! replicate their raw data to a central, federated hub server." (§I-E)
//!
//! A [`Federation`] owns the hub plus one replication link per satellite
//! — **tight** (live binlog tailing) or **loose** (batched shipments),
//! freely mixed (§II-C2's heterogeneous model). Joining enforces the
//! version gate; per-satellite [`FederationConfig`] chooses which realms
//! replicate (the initial release federates only HPC Jobs) and which
//! resources are excluded from federation (§II-C4).

use crate::hub::FederationHub;
use crate::instance::XdmodInstance;
use crate::supervisor::{
    MemberHealth, MemberReport, SupervisionReport, SupervisionState, SupervisorPolicy,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xdmod_alerts::{
    AckError, Alert, AlertEngine, AlertRules, FAMILY_GATEWAY_SATURATION, FAMILY_LINK_DOWN,
    FAMILY_PREFLIGHT_REFUSED, FAMILY_QUARANTINE, FAMILY_REPLICATION_LAG,
};
use xdmod_chaos::FaultInjector;
use xdmod_realms::{cloud as cloud_realm, jobs, storage, supremm, RealmKind};
use xdmod_replication::{
    schemas_match, LinkConfig, LiveReplicator, LooseReceiver, LooseShipper, ReplicationError,
    ReplicationFilter, Replicator, RetryPolicy,
};
use xdmod_warehouse::{SharedDatabase, Value, WarehouseError};

/// Federation-level errors.
#[derive(Debug, Clone, PartialEq)]
pub enum FederationError {
    /// Satellite and hub run different XDMoD versions.
    VersionMismatch {
        /// Satellite version.
        satellite: String,
        /// Hub version.
        hub: String,
    },
    /// A satellite with this name is already a member.
    DuplicateMember(String),
    /// No member with this name.
    UnknownMember(String),
    /// The operation needs a live (background-threaded) tight link, but
    /// this member's link is polled or loose.
    LinkNotLive(String),
    /// Static pre-flight analysis found Error-severity diagnostics;
    /// `go_live` refuses to start replication threads over a topology
    /// that is known to produce silent data corruption or empty reports.
    /// Override with [`Federation::go_live_forced`].
    Preflight {
        /// Number of Error-severity diagnostics.
        errors: usize,
        /// Full rendered diagnostic report (text format).
        report: String,
    },
    /// A replication link failed (e.g. its worker thread panicked).
    Replication(ReplicationError),
    /// Underlying warehouse/replication failure.
    Warehouse(WarehouseError),
}

impl fmt::Display for FederationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FederationError::VersionMismatch { satellite, hub } => write!(
                f,
                "satellite runs XDMoD {satellite}, hub runs {hub}: \
                 every instance must run the same version"
            ),
            FederationError::DuplicateMember(n) => write!(f, "{n} is already federated"),
            FederationError::UnknownMember(n) => write!(f, "{n} is not a federation member"),
            FederationError::LinkNotLive(n) => {
                write!(f, "{n}'s replication link is not live (call go_live first)")
            }
            FederationError::Preflight { errors, report } => write!(
                f,
                "preflight found {errors} error-severity diagnostic(s); refusing to go \
                 live (use go_live_forced to override):\n{report}"
            ),
            FederationError::Replication(e) => write!(f, "{e}"),
            FederationError::Warehouse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FederationError {}

impl From<WarehouseError> for FederationError {
    fn from(e: WarehouseError) -> Self {
        FederationError::Warehouse(e)
    }
}

impl From<ReplicationError> for FederationError {
    fn from(e: ReplicationError) -> Self {
        FederationError::Replication(e)
    }
}

/// Per-satellite federation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederationConfig {
    /// Realms whose raw data replicates to the hub.
    pub realms: Vec<RealmKind>,
    /// Resources excluded from federation (sensitive-data routing,
    /// §II-C4).
    pub excluded_resources: Vec<String>,
    /// Replicate the **summarized** SUPReMM monthly aggregates
    /// (`supremm_summary_by_month`) even though the raw performance realm
    /// stays local — the paper's "we plan to replicate summarized
    /// performance data to the federated hub database in a subsequent
    /// release" (§II-C5), implemented.
    #[serde(default)]
    pub supremm_summaries: bool,
    /// Fast-retry attempts a live link's worker makes after a failed poll
    /// before falling back to interval polling. `None` uses the
    /// [`RetryPolicy`] default; an explicit `Some(0)` disables retries —
    /// which the pre-flight analyzer flags (`XC0010`) on tight links.
    #[serde(default)]
    pub retries: Option<u32>,
}

impl Default for FederationConfig {
    /// The paper's initial release: HPC Jobs only, nothing excluded, no
    /// performance summaries.
    fn default() -> Self {
        FederationConfig {
            realms: vec![RealmKind::Jobs],
            excluded_resources: Vec::new(),
            supremm_summaries: false,
            retries: None,
        }
    }
}

impl FederationConfig {
    /// Federate every realm that is federated by default (Jobs, Storage,
    /// Cloud — SUPReMM stays local, §II-C5).
    pub fn default_realms() -> Self {
        FederationConfig {
            realms: RealmKind::ALL
                .into_iter()
                .filter(|r| r.federated_by_default())
                .collect(),
            excluded_resources: Vec::new(),
            supremm_summaries: false,
            retries: None,
        }
    }

    /// Exclude a resource.
    pub fn exclude(mut self, resource: &str) -> Self {
        self.excluded_resources.push(resource.to_owned());
        self
    }

    /// Set the live link's fast-retry budget (0 disables retries).
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = Some(retries);
        self
    }

    /// The retry policy a live link for this member should run with.
    pub fn retry_policy(&self) -> RetryPolicy {
        match self.retries {
            None => RetryPolicy::default(),
            Some(0) => RetryPolicy::no_retries(),
            Some(n) => RetryPolicy {
                max_attempts: n,
                ..RetryPolicy::default()
            },
        }
    }

    /// Also replicate monthly SUPReMM summaries (not the raw realm).
    pub fn with_supremm_summaries(mut self) -> Self {
        self.supremm_summaries = true;
        self
    }

    /// The raw tables one realm replicates (and that its aggregation
    /// pipeline reads). This mapping is mirrored as *data* in
    /// `xdmod_check::model::realm_tables` so the std-only analyzer can
    /// resolve realm names without depending on this crate; the
    /// `realm_tables_in_sync` test pins the two together.
    pub fn realm_table_names(realm: RealmKind) -> &'static [&'static str] {
        match realm {
            RealmKind::Jobs => &[jobs::FACT_TABLE],
            RealmKind::Supremm => &[
                supremm::FACT_TABLE,
                supremm::TIMESERIES_TABLE,
                supremm::JOBSCRIPT_TABLE,
            ],
            RealmKind::Storage => &[storage::FACT_TABLE],
            RealmKind::Cloud => &[cloud_realm::FACT_TABLE, cloud_realm::RESERVATION_TABLE],
        }
    }

    /// Tables this config's declared realms expect to reach the hub.
    pub fn expected_tables(&self) -> Vec<String> {
        self.realms
            .iter()
            .flat_map(|r| Self::realm_table_names(*r).iter().map(|t| (*t).to_owned()))
            .collect()
    }

    /// Compile into a replication filter. The filter also carries the
    /// declared realms' tables as *required*, so the replicator can
    /// count any drop of a downstream-needed table
    /// (`replication_filtered_required_tables_total`).
    pub fn filter(&self) -> ReplicationFilter {
        let mut tables: Vec<String> = self.expected_tables();
        if self.supremm_summaries {
            tables.push(supremm::summary_spec().table_name(xdmod_warehouse::Period::Month));
        }
        let mut filter = ReplicationFilter::all()
            .with_tables(tables)
            .with_required_tables(self.expected_tables())
            .with_resource_column(jobs::FACT_TABLE, "resource")
            .with_resource_column(supremm::FACT_TABLE, "resource")
            .with_resource_column(storage::FACT_TABLE, "filesystem")
            .with_resource_column(cloud_realm::FACT_TABLE, "resource");
        for r in &self.excluded_resources {
            filter = filter.exclude_resource(r);
        }
        filter
    }
}

/// How a satellite is coupled to the hub.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FederationMode {
    /// Live binlog replication.
    Tight,
    /// Periodic batch shipping.
    Loose,
}

/// A tight link is either hand-polled (`sync` drives it) or live (a
/// background thread tails the binlog; `sync` leaves it alone).
/// `Swapping` is a transient placeholder while ownership moves between
/// the two — never observable between `&mut self` calls.
enum TightLink {
    Polled(Replicator),
    Live(LiveReplicator),
    Swapping,
}

enum Link {
    Tight(TightLink),
    Loose {
        shipper: LooseShipper,
        receiver: LooseReceiver,
    },
}

struct Member {
    name: String,
    mode: FederationMode,
    config: FederationConfig,
    link: Link,
    /// The satellite's database handle, captured at join so pre-flight
    /// can introspect the source catalog (and a panicked live link can
    /// be rebuilt) without the `XdmodInstance` in hand.
    source_db: SharedDatabase,
    /// The satellite's instance schema name, captured at join.
    source_schema: String,
    /// Resources with an SU conversion factor registered at join time
    /// (a snapshot: factors added afterwards are not visible here).
    su_factors: Vec<String>,
    /// Supervision bookkeeping (failure streak, quarantine flag).
    supervision: SupervisionState,
    /// The polling interval handed to `go_live*`, remembered so the
    /// supervisor can relaunch a dead live worker at the same cadence.
    live_interval: Option<Duration>,
}

/// Shared record of which members are currently serving *stale* data:
/// paused live links and links stopped by [`Federation::quiesce`] whose
/// backlog has not been drained by a subsequent poll.
struct DrainState {
    stale: parking_lot::Mutex<BTreeSet<String>>,
}

/// A cheap-clone, `Send + Sync` handle the serving tier holds to decide
/// whether the federation's unified view is current. While any member's
/// replication is paused (maintenance window) or stopped by a quiesce,
/// the hub still *answers* queries — from data frozen at the moment the
/// link stopped. A gateway consults this notice and returns 503 instead
/// of serving that stale view as if it were live.
///
/// Obtained from [`Federation::drain_notice`]; updated automatically by
/// [`Federation::pause_member`] / [`Federation::resume_member`] /
/// [`Federation::quiesce`] / [`Federation::go_live`] /
/// [`Federation::sync`].
#[derive(Clone)]
pub struct DrainNotice {
    inner: Arc<DrainState>,
}

impl DrainNotice {
    /// Whether any member's replication is currently paused or stopped —
    /// i.e. whether federated answers may be stale.
    pub fn is_draining(&self) -> bool {
        !self.inner.stale.lock().is_empty()
    }

    /// The members whose links are paused/stopped, sorted by name.
    pub fn stale_members(&self) -> Vec<String> {
        self.inner.stale.lock().iter().cloned().collect()
    }
}

impl fmt::Debug for DrainNotice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DrainNotice")
            .field("stale", &self.stale_members())
            .finish()
    }
}

/// A federation: the hub plus its replication links.
pub struct Federation {
    hub: FederationHub,
    members: Vec<Member>,
    drain: Arc<DrainState>,
    /// Alert-lifecycle engine fed by the supervisor and the telemetry
    /// event ring (see [`Federation::alerts`]).
    alerts: AlertEngine,
    /// Last telemetry event sequence folded into the alert engine, so
    /// each pump only mines events it has not yet seen.
    alert_seq: u64,
}

impl Federation {
    /// Create a federation around a hub.
    pub fn new(hub: FederationHub) -> Self {
        Federation {
            hub,
            members: Vec::new(),
            drain: Arc::new(DrainState {
                stale: parking_lot::Mutex::new(BTreeSet::new()),
            }),
            alerts: AlertEngine::new(AlertRules::default()),
            alert_seq: 0,
        }
    }

    /// A handle the serving tier polls to refuse queries while any
    /// member's replication is paused or quiesced (see [`DrainNotice`]).
    pub fn drain_notice(&self) -> DrainNotice {
        DrainNotice {
            inner: Arc::clone(&self.drain),
        }
    }

    /// The hub.
    pub fn hub(&self) -> &FederationHub {
        &self.hub
    }

    /// Mutable hub access (level changes, identity operations).
    pub fn hub_mut(&mut self) -> &mut FederationHub {
        &mut self.hub
    }

    /// Member names with their coupling modes.
    pub fn members(&self) -> Vec<(&str, FederationMode)> {
        self.members
            .iter()
            .map(|m| (m.name.as_str(), m.mode))
            .collect()
    }

    fn check_joinable(&self, instance: &XdmodInstance) -> Result<(), FederationError> {
        if !instance.version().federates_with(self.hub.version()) {
            return Err(FederationError::VersionMismatch {
                satellite: instance.version().to_string(),
                hub: self.hub.version().to_string(),
            });
        }
        if self.members.iter().any(|m| m.name == instance.name()) {
            return Err(FederationError::DuplicateMember(instance.name().to_owned()));
        }
        Ok(())
    }

    fn link_config(instance: &XdmodInstance, config: &FederationConfig) -> LinkConfig {
        LinkConfig::renaming(
            &instance.schema_name(),
            &FederationHub::schema_for(instance.name()),
        )
        .with_filter(config.filter())
    }

    /// Join a satellite with live ("tight") replication.
    pub fn join_tight(
        &mut self,
        instance: &XdmodInstance,
        config: FederationConfig,
    ) -> Result<(), FederationError> {
        self.check_joinable(instance)?;
        let link = Replicator::new(
            instance.database(),
            self.hub.database(),
            Self::link_config(instance, &config),
        )
        .with_telemetry(self.hub.telemetry().clone(), instance.name());
        self.hub.register_satellite(instance.name());
        self.members.push(Member {
            name: instance.name().to_owned(),
            mode: FederationMode::Tight,
            config,
            link: Link::Tight(TightLink::Polled(link)),
            source_db: instance.database(),
            source_schema: instance.schema_name(),
            su_factors: instance
                .su_converter()
                .resources()
                .map(|(r, _)| r.to_owned())
                .collect(),
            supervision: SupervisionState::default(),
            live_interval: None,
        });
        Ok(())
    }

    /// Join a satellite with batched ("loose") replication.
    pub fn join_loose(
        &mut self,
        instance: &XdmodInstance,
        config: FederationConfig,
    ) -> Result<(), FederationError> {
        self.check_joinable(instance)?;
        let shipper = LooseShipper::new(instance.database());
        let receiver =
            LooseReceiver::new(self.hub.database(), Self::link_config(instance, &config));
        self.hub.register_satellite(instance.name());
        self.members.push(Member {
            name: instance.name().to_owned(),
            mode: FederationMode::Loose,
            config,
            link: Link::Loose { shipper, receiver },
            source_db: instance.database(),
            source_schema: instance.schema_name(),
            su_factors: instance
                .su_converter()
                .resources()
                .map(|(r, _)| r.to_owned())
                .collect(),
            supervision: SupervisionState::default(),
            live_interval: None,
        });
        Ok(())
    }

    /// Drive every link once: poll tight links, ship+apply loose batches.
    /// Live links are skipped — their background threads are already
    /// draining the binlog — and so are quarantined members (see
    /// [`Federation::supervise`]). Returns total events applied at the
    /// hub by **this** call.
    pub fn sync(&mut self) -> Result<usize, FederationError> {
        let mut applied = 0;
        for member in &mut self.members {
            if member.supervision.quarantined {
                continue;
            }
            match &mut member.link {
                Link::Tight(TightLink::Polled(rep)) => {
                    applied += rep.poll()?;
                    // A successful poll drains the backlog a quiesce left
                    // behind — the member's view is current again.
                    self.drain.stale.lock().remove(&member.name);
                }
                Link::Tight(_) => {}
                Link::Loose { shipper, receiver } => {
                    let batch = shipper.export_batch()?;
                    applied += receiver.apply_batch(&batch)?;
                }
            }
        }
        Ok(applied)
    }

    /// Project the federation into the analyzer's model: link topology
    /// and filters from each member's join-time config, table catalogs
    /// from live warehouse introspection ([`Database::describe_schema`]),
    /// and the hub's registered aggregates plus its canned-report
    /// group-by surface (`freport`). A hub group-by enters the model only
    /// when some member declares its realm — a jobs-only federation must
    /// not fail pre-flight over the storage report section it will never
    /// render.
    ///
    /// [`Database::describe_schema`]: xdmod_warehouse::Database::describe_schema
    pub fn check_model(&self) -> xdmod_check::FederationModel {
        let mut satellites = Vec::new();
        for member in &self.members {
            let filter = member.config.filter();
            let selected: Vec<String> = filter.selected_tables().map(str::to_owned).collect();
            let mut expected_tables = member.config.expected_tables();
            expected_tables.sort_unstable();
            expected_tables.dedup();
            let db = member.source_db.read();
            let tables = db
                .describe_schema(&member.source_schema)
                .unwrap_or_default()
                .into_iter()
                .map(|t| xdmod_check::TableModel {
                    name: t.name,
                    columns: t
                        .columns
                        .into_iter()
                        .map(|c| xdmod_check::ColumnModel {
                            name: c.name,
                            ty: c.ty.to_string(),
                            nullable: c.nullable,
                        })
                        .collect(),
                })
                .collect();
            let job_resources: Vec<String> = db
                .table(&member.source_schema, jobs::FACT_TABLE)
                .ok()
                .and_then(|t| t.column_values("resource").ok())
                .map(|values| {
                    values
                        .into_iter()
                        .filter_map(|v| match v {
                            Value::Str(s) => Some(s),
                            _ => None,
                        })
                        .collect::<BTreeSet<_>>()
                        .into_iter()
                        .collect()
                })
                .unwrap_or_default();
            satellites.push(xdmod_check::SatelliteModel {
                name: member.name.clone(),
                link: xdmod_check::LinkModel {
                    id: member.name.clone(),
                    source_schema: member.source_schema.clone(),
                    hub_schema: FederationHub::schema_for(&member.name),
                    mode: Some(
                        match member.mode {
                            FederationMode::Tight => "tight",
                            FederationMode::Loose => "loose",
                        }
                        .to_owned(),
                    ),
                    retries: member.config.retries.map(u64::from),
                },
                replicated_tables: (!selected.is_empty()).then_some(selected),
                expected_tables,
                excluded_resources: member.config.excluded_resources.clone(),
                tables,
                job_resources,
                su_factors: member.su_factors.clone(),
            });
        }

        let levels = self.hub.levels();
        let specs = [
            ("jobs", jobs::aggregation_spec(levels)),
            ("supremm", supremm::aggregation_spec()),
            ("storage", storage::aggregation_spec()),
            ("cloud", cloud_realm::aggregation_spec(levels)),
        ];
        let aggregates = specs
            .into_iter()
            .map(|(name, spec)| xdmod_check::AggregateModel {
                name: name.to_owned(),
                fact_table: spec.fact_table.clone(),
                time_column: spec.time_column.clone(),
                dimensions: spec.dims.iter().map(|d| d.column().to_owned()).collect(),
                measures: spec
                    .measures
                    .iter()
                    .filter_map(|m| m.column.clone())
                    .collect(),
            })
            .collect();

        let declares = |realm: RealmKind| {
            self.members
                .iter()
                .any(|m| m.config.realms.contains(&realm))
        };
        let mut group_bys = Vec::new();
        if declares(RealmKind::Jobs) {
            group_bys.push(xdmod_check::GroupByModel {
                name: "hpc usage by resource".to_owned(),
                fact_table: jobs::FACT_TABLE.to_owned(),
                columns: vec!["resource".to_owned()],
            });
        }
        if declares(RealmKind::Storage) {
            group_bys.push(xdmod_check::GroupByModel {
                name: "storage usage".to_owned(),
                fact_table: storage::FACT_TABLE.to_owned(),
                columns: Vec::new(),
            });
        }
        if declares(RealmKind::Cloud) {
            group_bys.push(xdmod_check::GroupByModel {
                name: "cloud core hours by project".to_owned(),
                fact_table: cloud_realm::FACT_TABLE.to_owned(),
                columns: vec!["project".to_owned()],
            });
        }

        // Project the hub warehouse's *effective* pool sizing: with
        // defaults, workers == shards, so untouched configs stay clean.
        let pool = self.hub.parallelism();
        let aggregation = Some(xdmod_check::AggregationPoolModel {
            workers: Some(pool.workers() as u64),
            shards: Some(pool.shards() as u64),
        });

        // Project the alert rule table so XC0013 can refuse unknown
        // families, inverted timeout windows, and dead notify buckets at
        // preflight, before any alert would misbehave at runtime.
        let alert_rules = self.alerts.rules();
        let alerts = Some(xdmod_check::AlertsModel {
            notify_capacity: Some(alert_rules.notify_capacity()),
            notify_refill_per_sec: Some(alert_rules.notify_refill_per_sec()),
            rules: alert_rules
                .entries()
                .map(|(family, rule)| xdmod_check::AlertRuleModel {
                    family: family.to_owned(),
                    debounce_ms: Some(rule.debounce_ms),
                    resolve_timeout_ms: Some(rule.resolve_timeout_ms),
                })
                .collect(),
        });

        xdmod_check::FederationModel {
            hub: self.hub.name().to_owned(),
            satellites,
            aggregates,
            group_bys,
            aggregation,
            // The serving tier, when present, injects its own pool sizing
            // (see `xdmod_gateway::preflight`); the federation itself has
            // no gateway to describe.
            gateway: None,
            alerts,
            // A live hub already opened (and recovered) its storage
            // backend — a stanza it could not honor was caught at config
            // time by XC0014, so there is nothing left to validate here.
            storage: None,
        }
    }

    /// Run the static pre-flight analyzer over the current topology —
    /// every `xdmod-check` pass, no data movement. [`Federation::go_live`]
    /// calls this and refuses on Error-severity diagnostics; callers can
    /// also run it directly (e.g. from an admin endpoint) for a report.
    pub fn preflight(&self) -> xdmod_check::Diagnostics {
        xdmod_check::analyze(&self.check_model())
    }

    /// Switch every polled tight link to **live** replication: each gets a
    /// background thread tailing its satellite's binlog at `interval` —
    /// the paper's "live replication to the central federation hub
    /// database". Returns how many links switched. Loose and
    /// already-live links are untouched.
    ///
    /// Runs [`Federation::preflight`] first and refuses with
    /// [`FederationError::Preflight`] when it reports any Error-severity
    /// diagnostic — replication threads must not be started over a
    /// topology known to corrupt data or produce silently-empty reports.
    /// [`Federation::go_live_forced`] skips the gate.
    pub fn go_live(&mut self, interval: Duration) -> Result<usize, FederationError> {
        let diags = self.preflight();
        if diags.has_errors() {
            let errors = diags.count(xdmod_check::Severity::Error);
            self.hub.telemetry().event_with(
                "federation.preflight_refused",
                "go_live refused: pre-flight found error-severity diagnostics",
                &[("errors", errors as f64)],
            );
            // Fold the refusal into the alert engine immediately — an
            // operator reading `/alerts` must not have to wait for the
            // next supervision tick to see why go-live failed.
            self.pump_alerts();
            return Err(FederationError::Preflight {
                errors,
                report: diags.render_text(),
            });
        }
        Ok(self.go_live_forced(interval))
    }

    /// [`Federation::go_live`] without the pre-flight gate — the override
    /// for operators who have reviewed the diagnostics and accept them.
    pub fn go_live_forced(&mut self, interval: Duration) -> usize {
        let mut switched = 0;
        for member in &mut self.members {
            if member.supervision.quarantined {
                continue;
            }
            let policy = member.config.retry_policy();
            let Link::Tight(tight) = &mut member.link else {
                continue;
            };
            if matches!(tight, TightLink::Polled(_)) {
                let TightLink::Polled(rep) = std::mem::replace(tight, TightLink::Swapping) else {
                    unreachable!()
                };
                *tight = TightLink::Live(LiveReplicator::start_with_policy(rep, interval, policy));
                member.live_interval = Some(interval);
                switched += 1;
                // The fresh worker tails from the link's position; any
                // quiesce-era backlog drains in the background.
                self.drain.stale.lock().remove(&member.name);
            }
        }
        switched
    }

    /// Stop one live link, absorbing a panicked worker: the member gets a
    /// fresh polled replicator seeked to the source binlog head (the dead
    /// worker applied an unknown prefix of history; restarting from zero
    /// would replay it into the hub), and the panic is reported as data.
    fn stop_link(
        hub: &FederationHub,
        member: &Member,
        live: LiveReplicator,
    ) -> (Replicator, Option<ReplicationError>) {
        match live.stop() {
            Ok(rep) => (rep, None),
            Err(e) => {
                let mut rebuilt = Replicator::new(
                    member.source_db.clone(),
                    hub.database(),
                    LinkConfig::renaming(
                        &member.source_schema,
                        &FederationHub::schema_for(&member.name),
                    )
                    .with_filter(member.config.filter()),
                )
                .with_telemetry(hub.telemetry().clone(), &member.name);
                let head = member.source_db.read().binlog_position();
                rebuilt
                    .seek(head)
                    .expect("seek to the source's own head is never beyond-tail"); // xc-allow: head read from the same binlog one line above
                (rebuilt, Some(e))
            }
        }
    }

    /// Stop every live link: each background thread drains any remaining
    /// events, takes a final lag sample (the gauges settle to 0), and
    /// hands its replicator back for polled operation. Returns how many
    /// links were stopped. A link whose worker panicked is rebuilt in
    /// polled mode (see `stop_link`) and the first such panic is returned
    /// as [`FederationError::Replication`] — after stopping the rest.
    pub fn quiesce(&mut self) -> Result<usize, FederationError> {
        let mut stopped = 0;
        let mut first_err: Option<ReplicationError> = None;
        for member in &mut self.members {
            if !matches!(&member.link, Link::Tight(TightLink::Live(_))) {
                continue;
            }
            let Link::Tight(tight) = &mut member.link else {
                unreachable!()
            };
            let TightLink::Live(live) = std::mem::replace(tight, TightLink::Swapping) else {
                unreachable!()
            };
            let (rep, err) = Self::stop_link(&self.hub, member, live);
            member.link = Link::Tight(TightLink::Polled(rep));
            self.drain.stale.lock().insert(member.name.clone());
            stopped += 1;
            if let Some(e) = err {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(stopped),
            Some(e) => Err(e.into()),
        }
    }

    fn live_link(&self, name: &str) -> Result<&LiveReplicator, FederationError> {
        let member = self
            .members
            .iter()
            .find(|m| m.name == name)
            .ok_or_else(|| FederationError::UnknownMember(name.to_owned()))?;
        match &member.link {
            Link::Tight(TightLink::Live(live)) => Ok(live),
            _ => Err(FederationError::LinkNotLive(name.to_owned())),
        }
    }

    /// Pause a live member's replication thread (maintenance window). The
    /// thread keeps sampling lag, so the hub's
    /// `replication_lag_events{link=..}` gauge shows the backlog growing.
    pub fn pause_member(&self, name: &str) -> Result<(), FederationError> {
        self.live_link(name).map(LiveReplicator::pause)?;
        self.drain.stale.lock().insert(name.to_owned());
        Ok(())
    }

    /// Resume a paused live member.
    pub fn resume_member(&self, name: &str) -> Result<(), FederationError> {
        self.live_link(name).map(LiveReplicator::resume)?;
        self.drain.stale.lock().remove(name);
        Ok(())
    }

    /// The most recent apply error on a live member's link, if any — live
    /// links keep running through errors and surface them here and in the
    /// hub's `replication_apply_errors_total{link=..}` counter.
    pub fn member_last_error(&self, name: &str) -> Result<Option<WarehouseError>, FederationError> {
        self.live_link(name).map(LiveReplicator::last_error)
    }

    /// Sync, then rebuild the hub's aggregates under its own levels — one
    /// full federation cycle.
    pub fn sync_and_aggregate(&mut self) -> Result<usize, FederationError> {
        let applied = self.sync()?;
        self.hub.aggregate_all()?;
        Ok(applied)
    }

    /// Verify a member's raw data replicated unaltered (checksum
    /// comparison; excluded tables/resources are ignored by comparing
    /// only tables present on both sides with no exclusions configured).
    pub fn verify_member(&self, instance: &XdmodInstance) -> Result<bool, FederationError> {
        let member = self
            .members
            .iter()
            .find(|m| m.name == instance.name())
            .ok_or_else(|| FederationError::UnknownMember(instance.name().to_owned()))?;
        if !member.config.excluded_resources.is_empty() {
            // Row-level exclusions make checksums legitimately differ;
            // verification is only meaningful for full replication.
            return Ok(true);
        }
        let sat_db = instance.database();
        let hub_db = self.hub.database();
        let sat = sat_db.read();
        let hub = hub_db.read();
        let sat_schema = instance.schema_name();
        let hub_schema = FederationHub::schema_for(instance.name());
        let filter = member.config.filter();
        for check in xdmod_replication::verify_schemas(&sat, &sat_schema, &hub, &hub_schema)? {
            if !filter.table_passes(&check.table) {
                continue; // excluded realm, expected absent
            }
            // Aggregate tables built satellite-side aren't replicated.
            if check.table.contains("_by_") {
                continue;
            }
            if !check.matches {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Regenerate a member instance's database from the hub (backup use
    /// case, §II-E4), and re-seed its replication link so already-
    /// restored data is not re-replicated.
    pub fn restore_member(&mut self, instance: &mut XdmodInstance) -> Result<(), FederationError> {
        let idx = self
            .members
            .iter()
            .position(|m| m.name == instance.name())
            .ok_or_else(|| FederationError::UnknownMember(instance.name().to_owned()))?;
        // A live thread must not race the restore (it could replay the
        // restored history into the hub): stop it first — it drains, then
        // the link stays polled; the caller may `go_live` again. A
        // panicked worker still leaves a usable polled link behind, but
        // aborts the restore so the operator sees the failure.
        let member = &mut self.members[idx];
        if matches!(&member.link, Link::Tight(TightLink::Live(_))) {
            let Link::Tight(tight) = &mut member.link else {
                unreachable!()
            };
            let TightLink::Live(live) = std::mem::replace(tight, TightLink::Swapping) else {
                unreachable!()
            };
            let (rep, err) = Self::stop_link(&self.hub, member, live);
            member.link = Link::Tight(TightLink::Polled(rep));
            if let Some(e) = err {
                return Err(e.into());
            }
        }
        let dump = self.hub.regeneration_dump(instance.name())?;
        instance.restore_from_dump(&dump)?;
        let position = instance.database().read().binlog_position();
        match &mut self.members[idx].link {
            Link::Tight(tight) => {
                let TightLink::Polled(rep) = tight else {
                    unreachable!("live links were stopped above")
                };
                rep.seek(position)
                    // xc-allow: position read from the link's source binlog above
                    .expect("seek to the restored instance's own head is never beyond-tail");
            }
            Link::Loose { shipper, .. } => {
                // Recreate the shipper at the new epoch; the hub-side
                // receiver keeps its state (the hub data is unchanged).
                *shipper = LooseShipper::new(instance.database());
                let mut drained = shipper.export_batch()?; // skip restore replay
                let _ = &mut drained;
            }
        }
        Ok(())
    }

    /// Convenience: are satellite and hub fully consistent right now
    /// (all links drained, checksums equal)? Used in tests and examples.
    pub fn is_consistent_with(&self, instance: &XdmodInstance) -> Result<bool, FederationError> {
        let sat_db = instance.database();
        let hub_db = self.hub.database();
        let sat = sat_db.read();
        let hub = hub_db.read();
        Ok(schemas_match(
            &sat,
            &instance.schema_name(),
            &hub,
            &FederationHub::schema_for(instance.name()),
        )
        .unwrap_or(false))
    }

    // ----- supervision: retry, restart, resync, quarantine -------------

    /// One supervision tick: drive and police every link.
    ///
    /// Per non-quarantined member, in join order:
    ///
    /// 1. a **dead live worker** (panicked thread) is detected via
    ///    [`LiveReplicator::is_dead`], the link is rebuilt in polled form
    ///    from its resumable watermark, and — if the tick's drive then
    ///    succeeds — relaunched live at its original interval;
    /// 2. a polled link that has **diverged** (watermark beyond the
    ///    source tail) or whose source **repaired a damaged binlog tail**
    ///    since the last tick is resynced from the source tables
    ///    ([`Replicator::resync_target`] — checksum-grade, filter-aware);
    /// 3. otherwise the link is driven once (poll with up to
    ///    `policy.retry.max_attempts` synchronous retries / loose
    ///    ship+apply / live error inspection);
    /// 4. `policy.max_failures` consecutive failed ticks **quarantine**
    ///    the member: its link is parked, `sync`/`supervise`/`go_live*`
    ///    skip it, and `federation_quarantines_total{link=..}` plus a
    ///    `federation.quarantine` event record the decision. Recovery is
    ///    explicit, via [`Federation::reinstate_member`].
    ///
    /// The tick is synchronous and single-threaded, so a seeded
    /// fault-injection run ([`Federation::inject_chaos`]) meets a
    /// deterministic operation sequence.
    pub fn supervise(&mut self, policy: &SupervisorPolicy) -> SupervisionReport {
        let mut out = SupervisionReport::default();
        let hub = &self.hub;
        for member in &mut self.members {
            out.members
                .push(Self::supervise_member(hub, member, policy));
        }
        // Every tick also feeds the alert engine: per-member health
        // becomes fault/all-clear observations (quarantine is re-observed
        // each tick so its alert cannot quietly timeout-resolve while the
        // member is still parked), and freshly mined telemetry events are
        // folded in.
        let now_ms = self.hub.telemetry().elapsed_ms();
        for report in &out.members {
            Self::feed_member_alerts(&mut self.alerts, report, now_ms);
        }
        self.pump_alerts();
        out
    }

    /// Translate one member's supervision outcome into alert engine
    /// observations.
    fn feed_member_alerts(engine: &mut AlertEngine, report: &MemberReport, now_ms: u64) {
        match report.health {
            MemberHealth::Quarantined => {
                engine.observe_fault(
                    FAMILY_QUARANTINE,
                    &report.name,
                    report
                        .error
                        .as_deref()
                        .unwrap_or("member quarantined by the supervisor"),
                    now_ms,
                );
            }
            MemberHealth::Stale { age_secs } => {
                let detail = report
                    .error
                    .clone()
                    .unwrap_or_else(|| format!("link stale for {age_secs}s"));
                engine.observe_fault(FAMILY_LINK_DOWN, &report.name, &detail, now_ms);
            }
            MemberHealth::Lagging { behind } => {
                engine.observe_fault(
                    FAMILY_REPLICATION_LAG,
                    &report.name,
                    &format!("{behind} events behind"),
                    now_ms,
                );
            }
            MemberHealth::Live => {
                // One healthy tick is the supervisor's all-clear for
                // every link-scoped alert family on this member.
                engine.observe_ok(FAMILY_LINK_DOWN, &report.name, now_ms);
                engine.observe_ok(FAMILY_REPLICATION_LAG, &report.name, now_ms);
                engine.observe_ok(FAMILY_QUARANTINE, &report.name, now_ms);
            }
        }
    }

    /// Mine telemetry events the engine has not yet seen into alert
    /// observations, then apply timeout transitions. Runs on every
    /// supervision tick and every alert read, so the alert view never
    /// lags the event ring.
    fn pump_alerts(&mut self) {
        let telemetry = self.hub.telemetry();
        let now_ms = telemetry.elapsed_ms();
        for event in telemetry.events() {
            if event.seq <= self.alert_seq {
                continue;
            }
            match event.kind.as_str() {
                "federation.preflight_refused" => {
                    self.alerts.observe_fault(
                        FAMILY_PREFLIGHT_REFUSED,
                        "preflight",
                        &event.message,
                        now_ms,
                    );
                }
                "gateway.saturated" => {
                    self.alerts.observe_fault(
                        FAMILY_GATEWAY_SATURATION,
                        "gateway",
                        &event.message,
                        now_ms,
                    );
                }
                _ => {}
            }
        }
        // Advance past everything emitted so far — including events the
        // ring already evicted (their loss is itself observable via
        // `telemetry_events_dropped_total`).
        self.alert_seq = self.alert_seq.max(telemetry.events_emitted());
        self.alerts.tick(now_ms);
    }

    fn supervise_member(
        hub: &FederationHub,
        member: &mut Member,
        policy: &SupervisorPolicy,
    ) -> MemberReport {
        let mut report = MemberReport {
            name: member.name.clone(),
            health: MemberHealth::Live,
            restarted: false,
            resynced: false,
            quarantined_now: false,
            error: None,
        };
        if member.supervision.quarantined {
            report.health = MemberHealth::Quarantined;
            return report;
        }
        if let Link::Tight(TightLink::Live(live)) = &member.link {
            if live.is_dead() {
                let Link::Tight(tight) = &mut member.link else {
                    unreachable!()
                };
                let TightLink::Live(live) = std::mem::replace(tight, TightLink::Swapping) else {
                    unreachable!()
                };
                let (rep, err) = Self::stop_link(hub, member, live);
                member.link = Link::Tight(TightLink::Polled(rep));
                report.restarted = true;
                if let Some(e) = &err {
                    report.error = Some(e.to_string());
                }
                hub.telemetry().event(
                    "federation.link_restarted",
                    &format!(
                        "{}: live worker died; link rebuilt from its resumable position",
                        member.name
                    ),
                );
            }
        }
        let outcome: Result<(), String> = match &mut member.link {
            Link::Tight(TightLink::Polled(rep)) => {
                let needs_resync = rep.is_diverged()
                    || rep.stats().source_repairs > member.supervision.repairs_seen;
                let drive = if needs_resync {
                    report.resynced = true;
                    rep.resync_target().map(|_| ()).map_err(|e| e.to_string())
                } else {
                    let mut left = policy.retry.max_attempts;
                    loop {
                        match rep.poll() {
                            Ok(_) => break Ok(()),
                            Err(_) if left > 0 => left -= 1,
                            Err(e) => break Err(e.to_string()),
                        }
                    }
                };
                if report.resynced {
                    member.supervision.repairs_seen = rep.stats().source_repairs;
                }
                drive
            }
            Link::Tight(TightLink::Live(live)) => match live.last_error() {
                None => Ok(()),
                Some(e) => Err(e.to_string()),
            },
            Link::Tight(TightLink::Swapping) => Err("link mid-swap".to_owned()),
            Link::Loose { shipper, receiver } => shipper
                .export_batch()
                .and_then(|batch| receiver.apply_batch(&batch))
                .map(|_| ())
                .map_err(|e| e.to_string()),
        };
        match outcome {
            Ok(()) => {
                member.supervision.last_ok = Some(Instant::now());
                if report.restarted {
                    // A panic is a strike even though the rebuilt link
                    // polls fine — a crash-looping worker must
                    // eventually park instead of thrashing forever.
                    member.supervision.failures += 1;
                    if member.supervision.failures >= policy.max_failures {
                        Self::quarantine(hub, member);
                        report.quarantined_now = true;
                        report.health = MemberHealth::Quarantined;
                        return report;
                    }
                    if let Some(interval) = member.live_interval {
                        let retry = member.config.retry_policy();
                        let Link::Tight(tight) = &mut member.link else {
                            unreachable!()
                        };
                        if matches!(tight, TightLink::Polled(_)) {
                            let TightLink::Polled(rep) =
                                std::mem::replace(tight, TightLink::Swapping)
                            else {
                                unreachable!()
                            };
                            *tight = TightLink::Live(LiveReplicator::start_with_policy(
                                rep, interval, retry,
                            ));
                        }
                    }
                } else {
                    member.supervision.failures = 0;
                }
                report.health = Self::observed_health(hub, member, policy);
            }
            Err(e) => {
                member.supervision.failures += 1;
                report.error.get_or_insert(e);
                if member.supervision.failures >= policy.max_failures {
                    Self::quarantine(hub, member);
                    report.quarantined_now = true;
                    report.health = MemberHealth::Quarantined;
                } else {
                    report.health = MemberHealth::Stale {
                        age_secs: Self::age_secs(member),
                    };
                }
            }
        }
        report
    }

    /// Park a member: stop any live worker, flag it quarantined, and
    /// record the decision in the hub's telemetry.
    fn quarantine(hub: &FederationHub, member: &mut Member) {
        if matches!(&member.link, Link::Tight(TightLink::Live(_))) {
            let Link::Tight(tight) = &mut member.link else {
                unreachable!()
            };
            let TightLink::Live(live) = std::mem::replace(tight, TightLink::Swapping) else {
                unreachable!()
            };
            let (rep, _) = Self::stop_link(hub, member, live);
            member.link = Link::Tight(TightLink::Polled(rep));
        }
        member.supervision.quarantined = true;
        hub.telemetry()
            .counter(
                "federation_quarantines_total",
                &[("link", member.name.as_str())],
            )
            .inc();
        hub.telemetry().event(
            "federation.quarantine",
            &format!(
                "{}: quarantined after repeated link failures; sync/supervise skip it \
                 until reinstate_member",
                member.name
            ),
        );
    }

    fn age_secs(member: &Member) -> u64 {
        member
            .supervision
            .last_ok
            .map(|t| t.elapsed().as_secs())
            .unwrap_or(0)
    }

    /// Health of one member as observable *right now*, without driving
    /// anything.
    fn observed_health(
        hub: &FederationHub,
        member: &Member,
        policy: &SupervisorPolicy,
    ) -> MemberHealth {
        if member.supervision.quarantined {
            return MemberHealth::Quarantined;
        }
        let stale = || MemberHealth::Stale {
            age_secs: Self::age_secs(member),
        };
        if member.supervision.failures > 0 {
            return stale();
        }
        if let Some(last) = member.supervision.last_ok {
            if last.elapsed() > policy.stale_after {
                return stale();
            }
        }
        match &member.link {
            Link::Tight(TightLink::Polled(rep)) => {
                let behind = rep.lag_events();
                if behind > policy.lag_threshold {
                    MemberHealth::Lagging { behind }
                } else {
                    MemberHealth::Live
                }
            }
            Link::Tight(TightLink::Live(live)) => {
                if live.is_dead() || live.last_error().is_some() {
                    return stale();
                }
                let behind = hub
                    .telemetry()
                    .snapshot()
                    .gauge("replication_lag_events", &[("link", member.name.as_str())])
                    .map(|v| v as u64)
                    .unwrap_or(0);
                if behind > policy.lag_threshold {
                    MemberHealth::Lagging { behind }
                } else {
                    MemberHealth::Live
                }
            }
            Link::Tight(TightLink::Swapping) => stale(),
            Link::Loose { .. } => MemberHealth::Live,
        }
    }

    /// Current health of every member (default thresholds), without
    /// driving any link — the degraded-mode view the ops report embeds.
    pub fn health(&self) -> Vec<(String, MemberHealth)> {
        let policy = SupervisorPolicy::default();
        self.members
            .iter()
            .map(|m| (m.name.clone(), Self::observed_health(&self.hub, m, &policy)))
            .collect()
    }

    /// Names of currently quarantined members.
    pub fn quarantined_members(&self) -> Vec<&str> {
        self.members
            .iter()
            .filter(|m| m.supervision.quarantined)
            .map(|m| m.name.as_str())
            .collect()
    }

    // ----- alerting: lifecycle state machines over telemetry -----------

    /// The current alert set, most urgent first. Mines telemetry events
    /// the engine has not yet seen and applies timeout transitions
    /// first, so the view reflects *now* — not the last supervisor tick.
    pub fn alerts(&mut self) -> Vec<Alert> {
        self.pump_alerts();
        self.alerts.alerts()
    }

    /// The alert engine's generation counter: bumped on every visible
    /// state change. The gateway keys `/alerts` ETags to it, mirroring
    /// `/query`'s watermark-derived versions. Reads the counter as-is
    /// (no pump), so a caller that just listed alerts gets the matching
    /// generation.
    pub fn alerts_generation(&self) -> u64 {
        self.alerts.generation()
    }

    /// Acknowledge a firing alert on behalf of `who`.
    pub fn ack_alert(&mut self, id: &str, who: &str) -> Result<(), AckError> {
        self.pump_alerts();
        let now_ms = self.hub.telemetry().elapsed_ms();
        self.alerts.ack(id, who, now_ms)
    }

    /// Read-only access to the alert engine (rules, notification
    /// counters) — test and ops visibility.
    pub fn alert_engine(&self) -> &AlertEngine {
        &self.alerts
    }

    /// Replace the alert rule table. Rules also flow into
    /// [`Federation::check_model`], so a misconfigured table is refused
    /// at [`Federation::go_live`] by `xdmod-check`'s XC0013.
    pub fn set_alert_rules(&mut self, rules: AlertRules) {
        self.alerts.set_rules(rules);
    }

    /// The hub's self-monitoring ops report, extended with a per-member
    /// "Satellite health" section — the degraded-mode view: each member
    /// annotated `live | lagging(..) | stale(..) | quarantined`.
    pub fn ops_report(&self) -> Result<xdmod_chart::Report, FederationError> {
        let mut report = self.hub.ops_report()?;
        report = report.section(xdmod_chart::Section::Heading("Satellite health".to_owned()));
        let lines: Vec<String> = self
            .health()
            .into_iter()
            .map(|(name, health)| format!("{name}: {health}"))
            .collect();
        report = report.section(xdmod_chart::Section::Text(lines.join("\n")));
        report = report.section(xdmod_chart::Section::Heading("Active alerts".to_owned()));
        let open: Vec<String> = self
            .alerts
            .alerts()
            .into_iter()
            .filter(|a| a.state.is_open())
            .map(|a| {
                format!(
                    "[{}] {}/{}: {} (x{})",
                    a.severity, a.family, a.target, a.state, a.occurrences
                )
            })
            .collect();
        report = report.section(xdmod_chart::Section::Text(if open.is_empty() {
            "none".to_owned()
        } else {
            open.join("\n")
        }));
        Ok(report)
    }

    /// Lift a quarantined member back into the federation. The member
    /// may have drifted arbitrarily while parked, so its hub schema is
    /// resynced from the source tables before polling resumes.
    pub fn reinstate_member(&mut self, name: &str) -> Result<(), FederationError> {
        let Federation { hub, members, .. } = self;
        let member = members
            .iter_mut()
            .find(|m| m.name == name)
            .ok_or_else(|| FederationError::UnknownMember(name.to_owned()))?;
        member.supervision.quarantined = false;
        member.supervision.failures = 0;
        if let Link::Tight(TightLink::Polled(rep)) = &mut member.link {
            rep.resync_target()?;
            member.supervision.repairs_seen = rep.stats().source_repairs;
        }
        hub.telemetry().event(
            "federation.reinstated",
            &format!("{name}: reinstated into the federation"),
        );
        Ok(())
    }

    /// Thread a seeded fault injector through the federation: every
    /// member's satellite database (binlog-read and apply points) and
    /// every polled tight link's transport. Live links pick the injector
    /// up when (re)built from a polled link; simplest is to inject
    /// before `go_live*`.
    pub fn inject_chaos(&mut self, injector: &FaultInjector) {
        for member in &mut self.members {
            member
                .source_db
                .write()
                .set_fault_injector(injector.clone(), member.name.as_str());
            if let Link::Tight(TightLink::Polled(rep)) = &mut member.link {
                rep.set_chaos(injector.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::XdmodVersion;
    use xdmod_warehouse::{Aggregate, Query};

    const SACCT_X: &str = "\
JobID|User|Account|Partition|NNodes|NCPUS|Submit|Start|End|State|AllocGPUs
1|alice|phys|normal|1|24|2017-01-05T08:00:00|2017-01-05T09:00:00|2017-01-05T11:00:00|COMPLETED|0
";
    const SACCT_Y: &str = "\
JobID|User|Account|Partition|NNodes|NCPUS|Submit|Start|End|State|AllocGPUs
7|bob|chem|normal|2|32|2017-03-01T00:00:00|2017-03-01T01:00:00|2017-03-01T03:00:00|COMPLETED|0
8|carol|bio|normal|1|16|2017-03-02T00:00:00|2017-03-02T00:30:00|2017-03-02T06:30:00|COMPLETED|0
";

    fn instance(name: &str, log: &str, resource: &str) -> XdmodInstance {
        let mut inst = XdmodInstance::new(name);
        inst.ingest_sacct(resource, log).unwrap();
        inst
    }

    #[test]
    fn fig2_three_satellite_fan_in() {
        // Figure 2: instances X, Y, Z monitoring resources L, M, N.
        let x = instance("x", SACCT_X, "resource-l");
        let y = instance("y", SACCT_Y, "resource-m");
        let z = instance("z", SACCT_X, "resource-n");
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default()).unwrap();
        fed.join_tight(&y, FederationConfig::default()).unwrap();
        fed.join_tight(&z, FederationConfig::default()).unwrap();
        fed.sync().unwrap();
        assert_eq!(fed.hub().federated_fact_rows(RealmKind::Jobs), 4);
        let rs = fed
            .hub()
            .federated_query(
                RealmKind::Jobs,
                &Query::new()
                    .group_by_column("resource")
                    .aggregate(Aggregate::count("jobs")),
            )
            .unwrap();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn version_gate_rejects_mismatched_satellite() {
        let old = XdmodInstance::with_version("old", XdmodVersion::new(7, 5, 0));
        let mut fed = Federation::new(FederationHub::new("hub"));
        let err = fed
            .join_tight(&old, FederationConfig::default())
            .unwrap_err();
        assert!(matches!(err, FederationError::VersionMismatch { .. }));
        assert!(err.to_string().contains("same version"));
    }

    #[test]
    fn duplicate_join_rejected() {
        let x = instance("x", SACCT_X, "r");
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default()).unwrap();
        assert!(matches!(
            fed.join_loose(&x, FederationConfig::default()),
            Err(FederationError::DuplicateMember(_))
        ));
    }

    #[test]
    fn heterogeneous_tight_and_loose_members() {
        let x = instance("x", SACCT_X, "r-x");
        let y = instance("y", SACCT_Y, "r-y");
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default()).unwrap();
        fed.join_loose(&y, FederationConfig::default()).unwrap();
        fed.sync().unwrap();
        assert_eq!(fed.hub().federated_fact_rows(RealmKind::Jobs), 3);
        assert_eq!(
            fed.members(),
            vec![("x", FederationMode::Tight), ("y", FederationMode::Loose)]
        );
    }

    #[test]
    fn initial_release_excludes_supremm() {
        let mut x = XdmodInstance::new("x");
        x.ingest_sacct("r", SACCT_X).unwrap();
        x.ingest_pcp("job 1 r alice 1483700000\nts 1483690000 cpu_user 0.9\nend\n")
            .unwrap();
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default()).unwrap();
        fed.sync().unwrap();
        let hub_db = fed.hub().database();
        let hub = hub_db.read();
        let schema = FederationHub::schema_for("x");
        assert!(hub.table(&schema, "jobfact").is_ok());
        assert!(hub.table(&schema, "supremm_jobfact").is_err());
        assert!(hub.table(&schema, "supremm_timeseries").is_err());
    }

    #[test]
    fn supremm_summaries_federate_without_raw_performance_data() {
        // §II-C5's "subsequent release": the heavy per-job data stays
        // local; the small monthly summary crosses.
        let mut x = XdmodInstance::new("x");
        x.ingest_sacct("r", SACCT_X).unwrap();
        x.ingest_pcp(
            "job 1 r alice 1483700000\nts 1483690000 cpu_user 0.9\nts 1483690600 memory_used 12.0\nscript #!/bin/sh\nend\n",
        )
        .unwrap();
        x.aggregate().unwrap(); // builds supremm_summary_by_month

        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default().with_supremm_summaries())
            .unwrap();
        fed.sync().unwrap();

        let hub_db = fed.hub().database();
        let hub = hub_db.read();
        let schema = FederationHub::schema_for("x");
        // Summary table crossed, with data.
        let summary = hub.table(&schema, "supremm_summary_by_month").unwrap();
        assert_eq!(summary.len(), 1);
        let cpu_idx = summary.schema().column_index("avg_cpu_user").unwrap();
        assert_eq!(
            summary.rows().unwrap()[0][cpu_idx],
            xdmod_warehouse::Value::Float(0.9)
        );
        // Raw realm tables did not.
        assert!(hub.table(&schema, "supremm_jobfact").is_err());
        assert!(hub.table(&schema, "supremm_timeseries").is_err());
        assert!(hub.table(&schema, "supremm_jobscript").is_err());
    }

    #[test]
    fn verify_member_detects_clean_replication() {
        let x = instance("x", SACCT_X, "r");
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default()).unwrap();
        fed.sync().unwrap();
        assert!(fed.verify_member(&x).unwrap());
    }

    #[test]
    fn resource_exclusion_keeps_sensitive_rows_local() {
        let mut x = XdmodInstance::new("x");
        x.ingest_sacct("open", SACCT_X).unwrap();
        x.ingest_sacct("secret", SACCT_Y).unwrap();
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default().exclude("secret"))
            .unwrap();
        fed.sync().unwrap();
        let rs = fed
            .hub()
            .federated_query(
                RealmKind::Jobs,
                &Query::new()
                    .group_by_column("resource")
                    .aggregate(Aggregate::count("jobs")),
            )
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], xdmod_warehouse::Value::Str("open".into()));
    }

    #[test]
    fn ongoing_ingest_flows_through_sync() {
        let mut x = instance("x", SACCT_X, "r");
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default()).unwrap();
        fed.sync().unwrap();
        assert_eq!(fed.hub().federated_fact_rows(RealmKind::Jobs), 1);
        x.ingest_sacct("r", SACCT_Y).unwrap();
        fed.sync().unwrap();
        assert_eq!(fed.hub().federated_fact_rows(RealmKind::Jobs), 3);
    }

    #[test]
    fn sync_and_aggregate_builds_hub_aggregates() {
        let x = instance("x", SACCT_X, "r");
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default()).unwrap();
        fed.sync_and_aggregate().unwrap();
        let hub_db = fed.hub().database();
        let hub = hub_db.read();
        let t = hub
            .table(&FederationHub::schema_for("x"), "jobfact_by_month")
            .unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn restore_member_round_trips_and_does_not_duplicate() {
        let mut x = instance("x", SACCT_X, "r");
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default()).unwrap();
        fed.sync().unwrap();
        let before = x.fact_rows(RealmKind::Jobs).unwrap();

        // Disaster: satellite loses everything; regenerate from the hub.
        fed.restore_member(&mut x).unwrap();
        assert_eq!(x.fact_rows(RealmKind::Jobs).unwrap(), before);
        // SUPReMM tables (never federated) are back, empty.
        assert_eq!(x.fact_rows(RealmKind::Supremm).unwrap(), 0);

        // Subsequent sync must not duplicate hub rows.
        fed.sync().unwrap();
        assert_eq!(fed.hub().federated_fact_rows(RealmKind::Jobs), 1);
        // And new ingest still replicates.
        x.ingest_sacct("r", SACCT_Y).unwrap();
        fed.sync().unwrap();
        assert_eq!(fed.hub().federated_fact_rows(RealmKind::Jobs), 3);
    }

    /// Poll `cond` for up to ~5 s; panic with `what` if it never holds.
    fn eventually(what: &str, mut cond: impl FnMut() -> bool) {
        for _ in 0..5000 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("timed out waiting for {what}");
    }

    #[test]
    fn live_links_replicate_without_sync() {
        let mut x = instance("x", SACCT_X, "r");
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default()).unwrap();
        assert_eq!(fed.go_live(Duration::from_millis(1)).unwrap(), 1);
        assert_eq!(fed.go_live(Duration::from_millis(1)).unwrap(), 0); // idempotent

        // New ingest flows to the hub with nobody calling sync().
        x.ingest_sacct("r", SACCT_Y).unwrap();
        eventually("live replication of 3 jobs", || {
            fed.hub().federated_fact_rows(RealmKind::Jobs) == 3
        });
        // sync() leaves live links alone rather than fighting the thread.
        assert_eq!(fed.sync().unwrap(), 0);

        assert_eq!(fed.quiesce().unwrap(), 1);
        // Quiescing drained the link and settled the lag gauges to zero.
        let snap = fed.hub().telemetry().snapshot();
        assert_eq!(
            snap.gauge("replication_lag_events", &[("link", "x")]),
            Some(0.0)
        );
        assert_eq!(
            snap.counter("replication_events_applied_total", &[("link", "x")])
                .map(|n| n > 0),
            Some(true)
        );
        // Back in polled mode, sync() drives the link again.
        x.ingest_sacct("r", SACCT_X).unwrap();
        assert!(fed.sync().unwrap() > 0);
        assert_eq!(fed.hub().federated_fact_rows(RealmKind::Jobs), 4);
    }

    #[test]
    fn paused_member_shows_lag_on_the_hub_gauges() {
        let mut x = instance("x", SACCT_X, "r");
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default()).unwrap();
        fed.go_live(Duration::from_millis(1)).unwrap();
        eventually("initial drain", || {
            fed.hub().federated_fact_rows(RealmKind::Jobs) == 1
        });

        fed.pause_member("x").unwrap();
        x.ingest_sacct("r", SACCT_Y).unwrap();
        eventually("lag gauge to rise while paused", || {
            fed.hub()
                .telemetry()
                .snapshot()
                .gauge("replication_lag_events", &[("link", "x")])
                .is_some_and(|lag| lag > 0.0)
        });
        assert_eq!(fed.hub().federated_fact_rows(RealmKind::Jobs), 1);

        fed.resume_member("x").unwrap();
        eventually("backlog to drain after resume", || {
            fed.hub().federated_fact_rows(RealmKind::Jobs) == 3
        });
        assert_eq!(fed.member_last_error("x").unwrap(), None);
        fed.quiesce().unwrap();
        // The maintenance window left a lag audit trail for ops_report.
        assert!(!fed
            .hub()
            .telemetry()
            .events_of_kind("replication.lag")
            .is_empty());
    }

    #[test]
    fn drain_notice_tracks_paused_and_quiesced_members() {
        let x = instance("x", SACCT_X, "r-x");
        let y = instance("y", SACCT_Y, "r-y");
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default()).unwrap();
        fed.join_tight(&y, FederationConfig::default()).unwrap();
        let notice = fed.drain_notice();
        assert!(!notice.is_draining());

        fed.go_live(Duration::from_millis(1)).unwrap();
        assert!(!notice.is_draining());

        // A maintenance pause marks exactly that member stale.
        fed.pause_member("x").unwrap();
        assert!(notice.is_draining());
        assert_eq!(notice.stale_members(), vec!["x".to_owned()]);
        fed.resume_member("x").unwrap();
        assert!(!notice.is_draining());

        // Quiesce stops every live link: all members go stale...
        fed.quiesce().unwrap();
        assert_eq!(notice.stale_members(), vec!["x".to_owned(), "y".to_owned()]);
        // ...until a polled sync drains the backlog...
        fed.sync().unwrap();
        assert!(!notice.is_draining());

        // ...or going live again hands the backlog to fresh workers.
        fed.quiesce().unwrap_or_default();
        fed.go_live(Duration::from_millis(1)).unwrap();
        assert!(!notice.is_draining());
        fed.quiesce().unwrap();
        fed.sync().unwrap();
        assert!(!notice.is_draining());

        // Failed pauses never mark anything stale.
        let _ = fed.pause_member("ghost");
        assert!(!notice.is_draining());
    }

    #[test]
    fn pause_requires_a_live_link() {
        let x = instance("x", SACCT_X, "r");
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default()).unwrap();
        assert!(matches!(
            fed.pause_member("x"),
            Err(FederationError::LinkNotLive(_))
        ));
        assert!(matches!(
            fed.pause_member("ghost"),
            Err(FederationError::UnknownMember(_))
        ));
    }

    #[test]
    fn restore_unknown_member_errors() {
        let mut stranger = XdmodInstance::new("stranger");
        let mut fed = Federation::new(FederationHub::new("hub"));
        assert!(matches!(
            fed.restore_member(&mut stranger),
            Err(FederationError::Warehouse(_)) | Err(FederationError::UnknownMember(_))
        ));
    }

    #[test]
    fn preflight_is_clean_for_a_healthy_federation() {
        let mut x = instance("x", SACCT_X, "r");
        x.set_su_factor("r", 1.5);
        let y = {
            let mut y = instance("y", SACCT_Y, "s");
            y.set_su_factor("s", 2.0);
            y
        };
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default()).unwrap();
        fed.join_loose(&y, FederationConfig::default()).unwrap();
        let diags = fed.preflight();
        assert!(diags.is_empty(), "unexpected: {}", diags.render_text());
    }

    #[test]
    fn check_model_reflects_topology_and_catalog() {
        let mut x = instance("x", SACCT_X, "r");
        x.set_su_factor("r", 1.5);
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default().exclude("secret"))
            .unwrap();
        let m = fed.check_model();
        assert_eq!(m.hub, "hub");
        let s = &m.satellites[0];
        assert_eq!(s.link.source_schema, "xdmod_x");
        assert_eq!(s.link.hub_schema, "inst_x");
        assert!(s.replicates("jobfact"));
        assert!(!s.replicates("supremm_jobfact"));
        assert_eq!(s.expected_tables, vec!["jobfact".to_owned()]);
        assert_eq!(s.excluded_resources, vec!["secret".to_owned()]);
        assert_eq!(s.job_resources, vec!["r".to_owned()]);
        assert_eq!(s.su_factors, vec!["r".to_owned()]);
        // Catalog came from warehouse introspection.
        let jobfact = s.table("jobfact").expect("jobfact in catalog");
        assert!(jobfact.column("resource").is_some());
        // Aggregates cover all realms; group-bys only declared ones.
        assert_eq!(m.aggregates.len(), 4);
        assert_eq!(m.group_bys.len(), 1);
        assert_eq!(m.group_bys[0].fact_table, "jobfact");
    }

    #[test]
    fn preflight_refuses_go_live_on_hub_schema_collision() {
        // schema_for maps both names to inst_site_a — the paper-scale
        // footgun XC0001 exists for.
        let a = instance("site-a", SACCT_X, "r-a");
        let b = instance("site.a", SACCT_Y, "r-b");
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&a, FederationConfig::default()).unwrap();
        fed.join_tight(&b, FederationConfig::default()).unwrap();

        let err = fed.go_live(Duration::from_millis(1)).unwrap_err();
        match &err {
            FederationError::Preflight { errors, report } => {
                assert!(*errors >= 1);
                assert!(report.contains("XC0001"), "report: {report}");
            }
            other => panic!("expected Preflight, got {other:?}"),
        }
        // Refusal is observable on the ops dashboard.
        assert!(!fed
            .hub()
            .telemetry()
            .events_of_kind("federation.preflight_refused")
            .is_empty());
        // No link went live.
        assert!(matches!(
            fed.pause_member("site-a"),
            Err(FederationError::LinkNotLive(_))
        ));

        // The operator override still works.
        assert_eq!(fed.go_live_forced(Duration::from_millis(1)), 2);
        fed.quiesce().unwrap();
    }

    #[test]
    fn missing_su_factor_warns_but_does_not_gate_go_live() {
        let x = instance("x", SACCT_X, "r"); // no set_su_factor call
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default()).unwrap();
        let diags = fed.preflight();
        assert!(!diags.has_errors());
        assert_eq!(diags.count(xdmod_check::Severity::Warning), 1);
        assert_eq!(fed.go_live(Duration::from_millis(1)).unwrap(), 1);
        fed.quiesce().unwrap();
    }

    #[test]
    fn supervise_quarantines_after_repeated_failures_and_reinstates() {
        use xdmod_chaos::{FaultKind, FaultPlan, FaultPoint, FaultSpec};

        let x = instance("x", SACCT_X, "r-x");
        let y = instance("y", SACCT_Y, "r-y");
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default()).unwrap();
        fed.join_tight(&y, FederationConfig::default()).unwrap();

        // x's transport dies permanently; y is untouched.
        let plan = FaultPlan::new().with(
            FaultSpec::at_ops(FaultPoint::Transport, FaultKind::LinkDown, &[1]).for_target("x"),
        );
        let injector = plan.injector(42);
        fed.inject_chaos(&injector);

        let policy = SupervisorPolicy::default()
            .with_max_failures(2)
            .with_retry(xdmod_replication::RetryPolicy::no_retries());
        let first = fed.supervise(&policy);
        assert_eq!(
            first.health_of("x"),
            Some(MemberHealth::Stale { age_secs: 0 })
        );
        assert!(first.health_of("y").is_some_and(|h| h.is_healthy()));
        let second = fed.supervise(&policy);
        assert_eq!(second.health_of("x"), Some(MemberHealth::Quarantined));
        assert!(second.members[0].quarantined_now);
        assert_eq!(fed.quarantined_members(), vec!["x"]);
        // Parked: further ticks and syncs skip x without driving it.
        let third = fed.supervise(&policy);
        assert_eq!(third.health_of("x"), Some(MemberHealth::Quarantined));
        assert!(!third.members[0].quarantined_now);
        fed.sync().unwrap(); // x's permanently-down link no longer errors the sync
                             // The decision is on the dashboard.
        assert_eq!(
            fed.hub()
                .telemetry()
                .snapshot()
                .counter("federation_quarantines_total", &[("link", "x")]),
            Some(1)
        );
        assert!(!fed
            .hub()
            .telemetry()
            .events_of_kind("federation.quarantine")
            .is_empty());
        // y replicated fine throughout.
        assert!(fed.verify_member(&y).unwrap());

        // Reinstatement clears the quarantine and resyncs the hub schema
        // from x's tables — data flows again (the injector stays wired,
        // but resync bypasses the dead transport in this scenario; health
        // is recomputed fresh).
        fed.reinstate_member("x").unwrap();
        assert!(fed.quarantined_members().is_empty());
        assert!(fed.verify_member(&x).unwrap());
        assert!(!fed
            .hub()
            .telemetry()
            .events_of_kind("federation.reinstated")
            .is_empty());
    }

    #[test]
    fn supervise_resyncs_past_crash_damaged_source_binlog() {
        let x = instance("x", SACCT_X, "r-x");
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default()).unwrap();
        fed.sync().unwrap();
        assert!(fed.is_consistent_with(&x).unwrap());

        // A write lands in x's tables, then a crash mangles the binlog
        // tail: the record exists in the table but its event is
        // unreadable — replay alone can never deliver it to the hub.
        {
            let db = x.database();
            let mut db = db.write();
            let row = db
                .table(&x.schema_name(), "jobfact")
                .unwrap()
                .rows()
                .unwrap()[0]
                .clone();
            db.insert(&x.schema_name(), "jobfact", vec![row]).unwrap();
            db.truncate_binlog_tail(6);
        }

        let policy = SupervisorPolicy::default();
        // Tick 1: the poll finds the corrupt tail, repairs the source
        // log past it, and resumes — but the dropped record leaves the
        // hub behind the source tables.
        let t1 = fed.supervise(&policy);
        assert!(!t1.members[0].resynced);
        assert!(!fed.is_consistent_with(&x).unwrap());
        // Tick 2: the supervisor notices the repair (lost records) and
        // resyncs the hub schema from the source tables.
        let t2 = fed.supervise(&policy);
        assert!(t2.members[0].resynced);
        assert!(t2.all_healthy());
        assert!(fed.is_consistent_with(&x).unwrap());
        // Both the repair and the resync left telemetry trails.
        assert!(!fed
            .hub()
            .telemetry()
            .events_of_kind("replication.source_repaired")
            .is_empty());
        assert!(!fed
            .hub()
            .telemetry()
            .events_of_kind("replication.resync")
            .is_empty());
    }

    #[test]
    fn health_reflects_lag_and_ops_report_carries_satellite_section() {
        let x = instance("x", SACCT_X, "r-x");
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default()).unwrap();
        // Not yet polled: the whole binlog is backlog.
        let health = fed.health();
        assert_eq!(health.len(), 1);
        assert!(matches!(health[0].1, MemberHealth::Lagging { behind } if behind > 0));
        fed.sync().unwrap();
        assert_eq!(fed.health()[0].1, MemberHealth::Live);

        let report = fed.ops_report().unwrap();
        let text = report.render();
        assert!(text.contains("Satellite health"), "report: {text}");
        assert!(text.contains("x: live"), "report: {text}");
    }

    /// Pins the analyzer's std-only realm→tables data against the realm
    /// crate's constants: if a realm gains a table, `xdmod-check` must
    /// learn it too or pre-flight would pass configs that starve the hub.
    #[test]
    fn realm_tables_in_sync_with_check_model() {
        for realm in RealmKind::ALL {
            let name = format!("{realm:?}").to_ascii_lowercase();
            let ours = FederationConfig::realm_table_names(realm);
            let theirs = xdmod_check::model::realm_tables(&name)
                .unwrap_or_else(|| panic!("xdmod-check lacks realm {name}"));
            assert_eq!(ours, theirs, "realm {name}");
        }
    }

    /// Pins the analyzer's std-only alert-family data (and default
    /// windows) against the alert crate's constants, same contract as
    /// `realm_tables_in_sync_with_check_model`: if a new family starts
    /// firing, XC0013 must learn it too or valid rules would be refused.
    #[test]
    fn alert_families_in_sync_with_check_model() {
        let mut ours: Vec<&str> = xdmod_alerts::FAMILIES.to_vec();
        ours.sort_unstable();
        assert_eq!(&ours[..], xdmod_check::alert_families());
        assert_eq!(
            xdmod_check::DEFAULT_ALERT_DEBOUNCE_MS,
            xdmod_alerts::DEFAULT_DEBOUNCE_MS
        );
        assert_eq!(
            xdmod_check::DEFAULT_ALERT_RESOLVE_TIMEOUT_MS,
            xdmod_alerts::DEFAULT_RESOLVE_TIMEOUT_MS
        );
    }
}

//! The usage explorer: XDMoD's chart-building API.
//!
//! "Its web-based interface supports charting, exploration, and reporting
//! for any time range, across all computing resources" (abstract); users
//! pick a **realm**, a **metric**, a **group-by dimension**, a time
//! range, and filters, in either *timeseries* or *aggregate* view
//! (§I-D). [`ChartRequest`] is that picker; [`XdmodInstance::explore`]
//! and [`FederationHub::explore_federated`] execute it against the realm
//! catalogs and return a ready-to-render [`Dataset`].

use crate::hub::FederationHub;
use crate::instance::XdmodInstance;
use xdmod_chart::Dataset;
use xdmod_realms::{all_realms, AggregationLevelsConfig, Realm, RealmKind};
use xdmod_warehouse::{GroupKey, OrderBy, Period, Predicate, Query, ResultSet, Value};

/// Timeseries vs aggregate view (§I-D: "most metrics can be plotted in
/// either timeseries or aggregate view").
#[derive(Debug, Clone, PartialEq)]
pub enum ChartView {
    /// One point per calendar period.
    Timeseries(Period),
    /// One value per dimension group over the whole range.
    Aggregate,
}

/// A chart specification, as the usage tab would assemble it.
#[derive(Debug, Clone)]
pub struct ChartRequest {
    /// Which realm to chart.
    pub realm: RealmKind,
    /// Metric id from the realm's catalog (e.g. `total_su`).
    pub metric: String,
    /// Optional group-by dimension id from the catalog (e.g. `resource`).
    /// Numeric dimensions are binned through the instance's aggregation
    /// levels.
    pub dimension: Option<String>,
    /// View mode.
    pub view: ChartView,
    /// Inclusive start / exclusive end of the time range (epoch secs).
    pub time_range: Option<(i64, i64)>,
    /// Dimension-value filters: (dimension id, value) pairs — XDMoD's
    /// filter/drill-down mechanism.
    pub filters: Vec<(String, Value)>,
    /// Keep only the top N groups by the metric (aggregate view).
    pub top_n: Option<usize>,
}

impl ChartRequest {
    /// A timeseries request for one metric.
    pub fn timeseries(realm: RealmKind, metric: &str, period: Period) -> Self {
        ChartRequest {
            realm,
            metric: metric.to_owned(),
            dimension: None,
            view: ChartView::Timeseries(period),
            time_range: None,
            filters: Vec::new(),
            top_n: None,
        }
    }

    /// An aggregate request for one metric.
    pub fn aggregate(realm: RealmKind, metric: &str) -> Self {
        ChartRequest {
            view: ChartView::Aggregate,
            ..ChartRequest::timeseries(realm, metric, Period::Month)
        }
    }

    /// Group by a catalog dimension.
    pub fn group_by(mut self, dimension: &str) -> Self {
        self.dimension = Some(dimension.to_owned());
        self
    }

    /// Restrict to a time range `[start, end)`.
    pub fn between(mut self, start: i64, end: i64) -> Self {
        self.time_range = Some((start, end));
        self
    }

    /// Add a drill-down filter on a dimension value.
    pub fn filter(mut self, dimension: &str, value: impl Into<Value>) -> Self {
        self.filters.push((dimension.to_owned(), value.into()));
        self
    }

    /// Keep only the top N groups (aggregate view).
    pub fn top(mut self, n: usize) -> Self {
        self.top_n = Some(n);
        self
    }

    /// Resolve against the realm catalogs and build the warehouse query.
    /// Returns the query plus the metric's output alias and display
    /// metadata.
    pub fn compile(&self, levels: &AggregationLevelsConfig) -> Result<CompiledChart, String> {
        let realms = all_realms(levels);
        let realm: &Realm = realms
            .iter()
            .find(|r| r.kind == self.realm)
            .expect("all realms present"); // xc-allow: all_realms covers every RealmKind
        let metric = realm
            .metric(&self.metric)
            .ok_or_else(|| format!("realm {} has no metric {}", realm.kind.ident(), self.metric))?;
        let time_column = realm.default_aggregation.time_column.clone();

        let mut query = Query::new();
        if let Some((start, end)) = self.time_range {
            query = query.filter(Predicate::TimeRange {
                column: time_column.clone(),
                start,
                end,
            });
        }
        for (dim_id, value) in &self.filters {
            let dim = realm
                .dimension(dim_id)
                .ok_or_else(|| format!("no dimension {dim_id} to filter on"))?;
            query = query.filter(Predicate::Eq(dim.column.clone(), value.clone()));
        }
        let mut series_column = None;
        if let ChartView::Timeseries(period) = self.view {
            query = query.group(GroupKey::PeriodOf(time_column.clone(), period));
        }
        if let Some(dim_id) = &self.dimension {
            let dim = realm
                .dimension(dim_id)
                .ok_or_else(|| format!("realm {} has no dimension {dim_id}", realm.kind.ident()))?;
            let key = if dim.numeric {
                let bins = levels.bins_for(dim_id)?;
                GroupKey::Binned(dim.column.clone(), bins)
            } else {
                GroupKey::Column(dim.column.clone())
            };
            series_column = Some(key.output_name());
            query = query.group(key);
        }
        query = query.aggregate(metric.aggregate.clone());
        if let (ChartView::Aggregate, Some(n)) = (&self.view, self.top_n) {
            query = query
                .order(OrderBy::ColumnDesc(metric.aggregate.alias.clone()))
                .limit(n);
        }
        Ok(CompiledChart {
            query,
            metric_alias: metric.aggregate.alias.clone(),
            metric_label: metric.label.clone(),
            unit: metric.unit.clone(),
            series_column,
            time_column,
            view: self.view.clone(),
        })
    }
}

/// A wire-shaped chart specification: every field is a string or number
/// exactly as it arrives in HTTP query parameters, so a serving tier can
/// populate it without knowing the realm/period/view enums. Validation
/// happens in [`QueryDescriptor::into_request`], which resolves the
/// strings against the catalogs and reports precise, user-facing errors
/// (the gateway maps them to 400s, never a panic).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryDescriptor {
    /// Realm ident: `jobs`, `supremm`, `storage`, or `cloud`.
    pub realm: String,
    /// Metric id from the realm's catalog (e.g. `total_su`).
    pub metric: String,
    /// Optional group-by dimension id.
    pub dimension: Option<String>,
    /// View: `timeseries` (default) or `aggregate`.
    pub view: Option<String>,
    /// Timeseries period ident: `day`, `month` (default), `quarter`,
    /// `year`.
    pub period: Option<String>,
    /// Inclusive range start (epoch secs); requires `end`.
    pub start: Option<i64>,
    /// Exclusive range end (epoch secs); requires `start`.
    pub end: Option<i64>,
    /// Drill-down filters as (dimension id, value) strings.
    pub filters: Vec<(String, String)>,
    /// Keep only the top N groups (aggregate view).
    pub top_n: Option<usize>,
}

impl QueryDescriptor {
    /// A descriptor for one realm + metric; refine the rest field-wise.
    pub fn new(realm: &str, metric: &str) -> Self {
        QueryDescriptor {
            realm: realm.to_owned(),
            metric: metric.to_owned(),
            ..QueryDescriptor::default()
        }
    }

    /// Resolve the `realm` string against [`RealmKind`] idents.
    pub fn realm_kind(&self) -> Result<RealmKind, String> {
        RealmKind::ALL
            .into_iter()
            .find(|k| k.ident() == self.realm)
            .ok_or_else(|| {
                format!(
                    "unknown realm {:?}; expected one of: {}",
                    self.realm,
                    RealmKind::ALL.map(|k| k.ident()).join(", ")
                )
            })
    }

    /// Validate every string field and build the typed [`ChartRequest`].
    /// All failures are described in terms of the offending parameter.
    pub fn into_request(&self) -> Result<ChartRequest, String> {
        let realm = self.realm_kind()?;
        if self.metric.is_empty() {
            return Err("missing metric".to_owned());
        }
        let period = match self.period.as_deref() {
            None => Period::Month,
            Some(p) => Period::ALL
                .into_iter()
                .find(|candidate| candidate.ident() == p)
                .ok_or_else(|| {
                    format!(
                        "unknown period {p:?}; expected one of: {}",
                        Period::ALL.map(|c| c.ident()).join(", ")
                    )
                })?,
        };
        let view = match self.view.as_deref() {
            None | Some("timeseries") => ChartView::Timeseries(period),
            Some("aggregate") => ChartView::Aggregate,
            Some(other) => {
                return Err(format!(
                    "unknown view {other:?}; expected timeseries or aggregate"
                ))
            }
        };
        let time_range = match (self.start, self.end) {
            (None, None) => None,
            (Some(start), Some(end)) if start < end => Some((start, end)),
            (Some(start), Some(end)) => {
                return Err(format!("empty time range: start {start} >= end {end}"))
            }
            _ => return Err("start and end must be given together".to_owned()),
        };
        Ok(ChartRequest {
            realm,
            metric: self.metric.clone(),
            dimension: self.dimension.clone(),
            view,
            time_range,
            filters: self
                .filters
                .iter()
                .map(|(dim, value)| (dim.clone(), Value::from(value.as_str())))
                .collect(),
            top_n: self.top_n,
        })
    }
}

/// A compiled chart: the query plus the metadata needed to shape the
/// result into a [`Dataset`].
#[derive(Debug, Clone)]
pub struct CompiledChart {
    /// The warehouse query to run.
    pub query: Query,
    /// Output column of the metric.
    pub metric_alias: String,
    /// Chart title contribution.
    pub metric_label: String,
    /// Y-axis unit.
    pub unit: String,
    /// Output column naming the series (when grouped by a dimension).
    pub series_column: Option<String>,
    /// The realm's time column.
    pub time_column: String,
    /// Requested view.
    pub view: ChartView,
}

impl CompiledChart {
    /// Shape a result set into a chartable dataset.
    pub fn into_dataset(self, rs: &ResultSet, title_suffix: &str) -> Result<Dataset, String> {
        let title = if title_suffix.is_empty() {
            self.metric_label.clone()
        } else {
            format!("{} — {title_suffix}", self.metric_label)
        };
        match self.view {
            ChartView::Timeseries(period) => Dataset::timeseries(
                &title,
                &self.unit,
                rs,
                period,
                &format!("{}_{}", self.time_column, period.ident()),
                self.series_column.as_deref(),
                &self.metric_alias,
            ),
            ChartView::Aggregate => {
                let label_col = self
                    .series_column
                    .ok_or_else(|| "aggregate view needs a group-by dimension".to_owned())?;
                Dataset::aggregate(&title, &self.unit, rs, &label_col, &self.metric_alias)
            }
        }
    }
}

impl XdmodInstance {
    /// Execute a chart request against this instance.
    pub fn explore(&self, request: &ChartRequest) -> Result<Dataset, String> {
        let compiled = request.compile(self.levels())?;
        let rs = self
            .query(request.realm, &compiled.query)
            .map_err(|e| e.to_string())?;
        compiled.into_dataset(&rs, self.name())
    }
}

impl FederationHub {
    /// Execute a chart request against the federation's unified view.
    pub fn explore_federated(&self, request: &ChartRequest) -> Result<Dataset, String> {
        let compiled = request.compile(self.levels())?;
        let rs = self
            .federated_query(request.realm, &compiled.query)
            .map_err(|e| e.to_string())?;
        compiled.into_dataset(&rs, &format!("{} (federated)", self.name()))
    }

    /// Validate a wire-shaped descriptor and execute it federated — the
    /// serving tier's one-call entry point.
    pub fn explore_descriptor(&self, descriptor: &QueryDescriptor) -> Result<Dataset, String> {
        self.explore_federated(&descriptor.into_request()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdmod_realms::levels::{instance_a_walltime, DIM_WALL_TIME};

    const SACCT: &str = "\
JobID|User|Account|Partition|NNodes|NCPUS|Submit|Start|End|State|AllocGPUs
1|alice|g|normal|1|24|2017-01-05T08:00:00|2017-01-05T09:00:00|2017-01-05T11:00:00|COMPLETED|0
2|bob|g|normal|2|48|2017-02-01T00:00:00|2017-02-01T01:00:00|2017-02-01T05:00:00|COMPLETED|0
3|alice|g|debug|1|8|2017-02-02T00:00:00|2017-02-02T00:10:00|2017-02-02T03:40:00|COMPLETED|0
";

    fn instance() -> XdmodInstance {
        let mut inst = XdmodInstance::new("ccr");
        inst.set_su_factor("rush", 2.0);
        inst.ingest_sacct("rush", SACCT).unwrap();
        let mut levels = AggregationLevelsConfig::new();
        levels.set(DIM_WALL_TIME, instance_a_walltime());
        inst.set_levels(levels);
        inst
    }

    #[test]
    fn timeseries_metric_by_dimension() {
        let inst = instance();
        let ds = inst
            .explore(
                &ChartRequest::timeseries(RealmKind::Jobs, "total_cpu_hours", Period::Month)
                    .group_by("queue"),
            )
            .unwrap();
        assert!(ds.title.contains("CPU Hours"));
        assert_eq!(ds.unit, "CPU hours");
        assert_eq!(ds.series.len(), 2); // normal, debug
        assert_eq!(ds.labels, vec!["2017-01", "2017-02"]);
        assert_eq!(ds.series_total("normal"), Some(24.0 * 2.0 + 48.0 * 4.0));
    }

    #[test]
    fn aggregate_view_with_top_n() {
        let inst = instance();
        let ds = inst
            .explore(
                &ChartRequest::aggregate(RealmKind::Jobs, "job_count")
                    .group_by("user")
                    .top(1),
            )
            .unwrap();
        assert_eq!(ds.labels, vec!["alice"]); // 2 jobs > bob's 1
        assert_eq!(ds.series[0].values, vec![Some(2.0)]);
    }

    #[test]
    fn numeric_dimension_uses_aggregation_levels() {
        let inst = instance();
        let ds = inst
            .explore(&ChartRequest::aggregate(RealmKind::Jobs, "job_count").group_by(DIM_WALL_TIME))
            .unwrap();
        // 2h and 3.5h jobs → 1-5 hours; 4h job also 1-5 hours.
        assert!(ds.labels.contains(&"1-5 hours".to_owned()));
    }

    #[test]
    fn drill_down_filter() {
        let inst = instance();
        let ds = inst
            .explore(
                &ChartRequest::timeseries(RealmKind::Jobs, "job_count", Period::Month)
                    .filter("user", "alice"),
            )
            .unwrap();
        assert_eq!(ds.series_total("job_count"), Some(2.0));
    }

    #[test]
    fn time_range_restricts() {
        use xdmod_warehouse::CivilDate;
        let inst = instance();
        let ds = inst
            .explore(
                &ChartRequest::timeseries(RealmKind::Jobs, "job_count", Period::Month).between(
                    CivilDate::new(2017, 2, 1).to_epoch(),
                    CivilDate::new(2017, 3, 1).to_epoch(),
                ),
            )
            .unwrap();
        assert_eq!(ds.labels, vec!["2017-02"]);
        assert_eq!(ds.series_total("job_count"), Some(2.0));
    }

    #[test]
    fn unknown_metric_and_dimension_error_with_names() {
        let inst = instance();
        let err = inst
            .explore(&ChartRequest::aggregate(RealmKind::Jobs, "bogus_metric"))
            .unwrap_err();
        assert!(err.contains("bogus_metric"));
        let err = inst
            .explore(&ChartRequest::aggregate(RealmKind::Jobs, "job_count").group_by("bogus_dim"))
            .unwrap_err();
        assert!(err.contains("bogus_dim"));
    }

    #[test]
    fn aggregate_view_requires_dimension() {
        let inst = instance();
        let err = inst
            .explore(&ChartRequest::aggregate(RealmKind::Jobs, "job_count"))
            .unwrap_err();
        assert!(err.contains("group-by dimension"));
    }

    #[test]
    fn descriptor_parses_into_a_request() {
        let mut desc = QueryDescriptor::new("jobs", "job_count");
        desc.view = Some("aggregate".to_owned());
        desc.dimension = Some("user".to_owned());
        desc.filters.push(("queue".to_owned(), "normal".to_owned()));
        desc.top_n = Some(3);
        let req = desc.into_request().unwrap();
        assert_eq!(req.realm, RealmKind::Jobs);
        assert_eq!(req.view, ChartView::Aggregate);
        assert_eq!(req.dimension.as_deref(), Some("user"));
        assert_eq!(
            req.filters,
            vec![("queue".to_owned(), Value::from("normal"))]
        );
        assert_eq!(req.top_n, Some(3));

        let mut ts = QueryDescriptor::new("storage", "m");
        ts.period = Some("quarter".to_owned());
        ts.start = Some(0);
        ts.end = Some(100);
        let req = ts.into_request().unwrap();
        assert_eq!(req.view, ChartView::Timeseries(Period::Quarter));
        assert_eq!(req.time_range, Some((0, 100)));
    }

    #[test]
    fn descriptor_rejects_bad_parameters_by_name() {
        let err = QueryDescriptor::new("jobz", "m")
            .into_request()
            .unwrap_err();
        assert!(err.contains("jobz") && err.contains("jobs"));

        let err = QueryDescriptor::new("jobs", "").into_request().unwrap_err();
        assert!(err.contains("metric"));

        let mut d = QueryDescriptor::new("jobs", "m");
        d.view = Some("pie".to_owned());
        assert!(d.into_request().unwrap_err().contains("pie"));

        let mut d = QueryDescriptor::new("jobs", "m");
        d.period = Some("decade".to_owned());
        assert!(d.into_request().unwrap_err().contains("decade"));

        let mut d = QueryDescriptor::new("jobs", "m");
        d.start = Some(5);
        assert!(d.into_request().unwrap_err().contains("together"));
        d.end = Some(5);
        assert!(d.into_request().unwrap_err().contains("empty time range"));
    }

    #[test]
    fn descriptor_explores_federated() {
        use crate::federation::{Federation, FederationConfig};
        let inst = instance();
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&inst, FederationConfig::default()).unwrap();
        fed.sync().unwrap();
        let mut desc = QueryDescriptor::new("jobs", "total_su");
        desc.dimension = Some("resource".to_owned());
        let ds = fed.hub().explore_descriptor(&desc).unwrap();
        assert!(ds.title.contains("(federated)"));
        assert_eq!(ds.series.len(), 1);
    }

    #[test]
    fn federated_explore_matches_local_for_single_member() {
        use crate::federation::{Federation, FederationConfig};
        let inst = instance();
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&inst, FederationConfig::default()).unwrap();
        fed.sync().unwrap();
        let request = ChartRequest::timeseries(RealmKind::Jobs, "total_su", Period::Month);
        let local = inst.explore(&request).unwrap();
        let federated = fed.hub().explore_federated(&request).unwrap();
        assert_eq!(local.labels, federated.labels);
        assert_eq!(local.series[0].values, federated.series[0].values);
    }
}

//! Federation summary reports.
//!
//! "The maintenance and management of the individual sites vary by
//! institution ..., but the funding agency and project partners require
//! summary reports that describe the project as a whole." (§II-E3). This
//! module assembles that report from a federation hub: membership
//! overview, per-realm charts and tables over the unified data, rendered
//! through `xdmod-chart`'s report engine.

use crate::explorer::ChartRequest;
use crate::federation::Federation;
use xdmod_chart::{Report, Section};
use xdmod_realms::RealmKind;
use xdmod_warehouse::{CivilDate, Period};

/// Build the project-wide summary report for one calendar year.
///
/// Sections are included per realm only when the federation actually
/// holds data for that realm (a jobs-only federation produces a
/// jobs-only report).
pub fn federation_report(federation: &Federation, year: i32) -> Report {
    let hub = federation.hub();
    let start = CivilDate::new(year, 1, 1).to_epoch();
    let end = CivilDate::new(year + 1, 1, 1).to_epoch();

    let members: Vec<String> = federation
        .members()
        .iter()
        .map(|(name, mode)| format!("{name} ({mode:?})"))
        .collect();
    let mut report = Report::new(&format!("{} — {year} annual summary", hub.name()))
        .section(Section::Heading("Federation membership".into()))
        .section(Section::Text(format!(
            "{} member instances: {}.",
            members.len(),
            members.join(", ")
        )));

    if hub.federated_fact_rows(RealmKind::Jobs) > 0 {
        report = report.section(Section::Heading("HPC usage".into()));
        if let Ok(ds) = hub.explore_federated(
            &ChartRequest::timeseries(RealmKind::Jobs, "total_su", Period::Month)
                .group_by("resource")
                .between(start, end),
        ) {
            report = report.section(Section::Chart(ds));
        }
        if let Ok(ds) = hub.explore_federated(
            &ChartRequest::aggregate(RealmKind::Jobs, "total_cpu_hours")
                .group_by("resource")
                .between(start, end),
        ) {
            report = report.section(Section::Table(ds));
        }
    }

    if hub.federated_fact_rows(RealmKind::Storage) > 0 {
        report = report.section(Section::Heading("Storage".into()));
        if let Ok(ds) = hub.explore_federated(
            &ChartRequest::timeseries(RealmKind::Storage, "physical_usage", Period::Month)
                .between(start, end),
        ) {
            report = report.section(Section::Chart(ds));
        }
    }

    if hub.federated_fact_rows(RealmKind::Cloud) > 0 {
        report = report.section(Section::Heading("Cloud".into()));
        if let Ok(ds) = hub.explore_federated(
            &ChartRequest::aggregate(RealmKind::Cloud, "total_core_hours")
                .group_by("project")
                .between(start, end),
        ) {
            report = report.section(Section::Bars(ds));
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federation::FederationConfig;
    use crate::hub::FederationHub;
    use crate::instance::XdmodInstance;
    use xdmod_sim::{CloudSim, ClusterSim, ResourceProfile, StorageSim};

    fn aristotle() -> Federation {
        let mut ccr = XdmodInstance::new("ccr");
        let hpc = ClusterSim::new(ResourceProfile::generic("rush", 128, 24.0, 1.0), 5);
        ccr.ingest_sacct("rush", &hpc.sacct_log(2017, 1..=3))
            .unwrap();
        ccr.ingest_storage_json(&StorageSim::ccr(5).json_document(2017, 2))
            .unwrap();
        let cloud = CloudSim::new("ccr-cloud", 8, 5);
        ccr.ingest_cloud_feed(&cloud.event_feed(2017), CloudSim::horizon(2017))
            .unwrap();
        let mut fed = Federation::new(FederationHub::new("aristotle-hub"));
        fed.join_tight(&ccr, FederationConfig::default_realms())
            .unwrap();
        fed.sync().unwrap();
        fed
    }

    #[test]
    fn full_report_has_all_realm_sections() {
        let fed = aristotle();
        let report = federation_report(&fed, 2017);
        let text = report.render();
        assert!(text.contains("aristotle-hub — 2017 annual summary"));
        assert!(text.contains("Federation membership"));
        assert!(text.contains("ccr (Tight)"));
        assert!(text.contains("HPC usage"));
        assert!(text.contains("Storage"));
        assert!(text.contains("Cloud"));
        assert!(text.contains("SUs Charged"));
    }

    #[test]
    fn jobs_only_federation_yields_jobs_only_report() {
        let mut x = XdmodInstance::new("x");
        let hpc = ClusterSim::new(ResourceProfile::generic("r", 64, 24.0, 1.0), 9);
        x.ingest_sacct("r", &hpc.sacct_log(2017, 1..=1)).unwrap();
        let mut fed = Federation::new(FederationHub::new("hub"));
        fed.join_tight(&x, FederationConfig::default()).unwrap();
        fed.sync().unwrap();
        let text = federation_report(&fed, 2017).render();
        assert!(text.contains("HPC usage"));
        assert!(!text.contains("Storage"));
        assert!(!text.contains("Cloud"));
    }

    #[test]
    fn empty_federation_report_is_membership_only() {
        let fed = Federation::new(FederationHub::new("hub"));
        let report = federation_report(&fed, 2017);
        assert_eq!(report.len(), 2); // heading + member text
        assert!(report.render().contains("0 member instances"));
    }
}

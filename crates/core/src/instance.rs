//! A satellite XDMoD instance.
//!
//! One [`XdmodInstance`] is the paper's unit of deployment: a warehouse
//! database, the realm fact tables, ingestion pipelines for its monitored
//! resources, an aggregation configuration (including instance-local
//! aggregation levels, Table I), an SU converter, and an authentication
//! front door. "Users logging into a satellite XDMoD instance have access
//! to the standard functionality for all metrics on associated
//! resources" (§II-B) — the instance is fully functional standalone;
//! federation is additive.

use crate::version::XdmodVersion;
use std::sync::Arc;
use xdmod_auth::{AuthMode, InstanceAuth};
use xdmod_ingest::{cloud, pcp, slurm, storage_json, IngestReport};
use xdmod_realms::levels::AggregationLevelsConfig;
use xdmod_realms::{cloud as cloud_realm, jobs, storage, su::SuConverter, supremm, RealmKind};
use xdmod_telemetry::MetricsRegistry;
use xdmod_warehouse::{shared, Database, Query, Result, ResultSet, SharedDatabase, WarehouseError};

/// A complete satellite XDMoD installation.
pub struct XdmodInstance {
    name: String,
    version: XdmodVersion,
    db: SharedDatabase,
    levels: AggregationLevelsConfig,
    su: SuConverter,
    auth: InstanceAuth,
    telemetry: MetricsRegistry,
}

impl XdmodInstance {
    /// Stand up an instance: creates the instance schema and all four
    /// realms' tables.
    pub fn new(name: &str) -> Self {
        Self::with_version(name, XdmodVersion::CURRENT)
    }

    /// Stand up an instance at a specific XDMoD version (for testing the
    /// federation version gate).
    pub fn with_version(name: &str, version: XdmodVersion) -> Self {
        let mut db = Database::new();
        let schema = Self::schema_name_of(name);
        db.create_schema(&schema).expect("fresh database"); // xc-allow: fresh in-memory database, schema cannot pre-exist
        db.create_table(&schema, jobs::fact_schema())
            .expect("fresh schema"); // xc-allow: fresh in-memory database, schema cannot pre-exist
        db.create_table(&schema, supremm::fact_schema())
            .expect("fresh schema"); // xc-allow: fresh in-memory database, schema cannot pre-exist
        db.create_table(&schema, supremm::timeseries_schema())
            .expect("fresh schema"); // xc-allow: fresh in-memory database, schema cannot pre-exist
        db.create_table(&schema, supremm::jobscript_schema())
            .expect("fresh schema"); // xc-allow: fresh in-memory database, schema cannot pre-exist
        db.create_table(&schema, storage::fact_schema())
            .expect("fresh schema"); // xc-allow: fresh in-memory database, schema cannot pre-exist
        db.create_table(&schema, cloud_realm::fact_schema())
            .expect("fresh schema"); // xc-allow: fresh in-memory database, schema cannot pre-exist
        db.create_table(&schema, cloud_realm::reservation_schema())
            .expect("fresh schema"); // xc-allow: fresh in-memory database, schema cannot pre-exist
        XdmodInstance {
            name: name.to_owned(),
            version,
            db: shared(db),
            levels: AggregationLevelsConfig::new(),
            su: SuConverter::new(),
            auth: InstanceAuth::new(name, AuthMode::ServiceProvider, false),
            // Satellites are born dark: metrics cost nothing until an
            // operator attaches a registry (their own, or the hub's for a
            // federation-wide view) via `set_telemetry`.
            telemetry: MetricsRegistry::disabled(),
        }
    }

    /// This instance's metrics registry (disabled unless attached).
    pub fn telemetry(&self) -> &MetricsRegistry {
        &self.telemetry
    }

    /// Attach a metrics registry: ingest counters and warehouse timings
    /// report there. Attaching the hub's registry yields a single
    /// federation-wide view; satellite metrics stay distinguishable by
    /// label.
    pub fn set_telemetry(&mut self, telemetry: MetricsRegistry) {
        self.db.write().set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Running XDMoD version.
    pub fn version(&self) -> XdmodVersion {
        self.version
    }

    /// The warehouse schema holding this instance's realm tables.
    pub fn schema_name(&self) -> String {
        Self::schema_name_of(&self.name)
    }

    /// Schema naming convention: `xdmod_<instance>`.
    pub fn schema_name_of(name: &str) -> String {
        format!("xdmod_{}", name.replace(['-', '.'], "_"))
    }

    /// Shared handle to the instance database (what replication links
    /// tail).
    pub fn database(&self) -> SharedDatabase {
        Arc::clone(&self.db)
    }

    /// The instance's aggregation-levels configuration.
    pub fn levels(&self) -> &AggregationLevelsConfig {
        &self.levels
    }

    /// Replace the aggregation-levels configuration. Call
    /// [`aggregate`](Self::aggregate) afterwards to re-bin — the paper's
    /// "update the appropriate configuration file ... then re-aggregate"
    /// procedure.
    pub fn set_levels(&mut self, levels: AggregationLevelsConfig) {
        self.levels = levels;
    }

    /// The instance's SU converter.
    pub fn su_converter(&self) -> &SuConverter {
        &self.su
    }

    /// Register a resource's HPL-derived XD SU conversion factor.
    pub fn set_su_factor(&mut self, resource: &str, factor: f64) {
        self.su.set_factor(resource, factor);
    }

    /// The authentication front door.
    pub fn auth(&self) -> &InstanceAuth {
        &self.auth
    }

    /// Mutable access to the authentication front door.
    pub fn auth_mut(&mut self) -> &mut InstanceAuth {
        &mut self.auth
    }

    // ------------------------------------------------------------------
    // Ingestion
    // ------------------------------------------------------------------

    /// Ingest a SLURM `sacct` log for `resource` into the Jobs realm.
    pub fn ingest_sacct(&mut self, resource: &str, log: &str) -> Result<IngestReport> {
        let (rows, report) = slurm::shred(log, resource, &self.su)
            .map_err(|e| WarehouseError::SchemaMismatch(format!("sacct parse: {e}")))?;
        let schema = self.schema_name();
        self.db.write().insert(&schema, jobs::FACT_TABLE, rows)?;
        report.record_telemetry(&self.telemetry, "sacct");
        Ok(report)
    }

    /// Ingest a PCP-style performance archive into the SUPReMM realm
    /// (summary facts + per-job timeseries + job scripts).
    pub fn ingest_pcp(&mut self, archive: &str) -> Result<IngestReport> {
        let (jobs, report) = pcp::parse_archive(archive)
            .map_err(|e| WarehouseError::SchemaMismatch(format!("pcp parse: {e}")))?;
        let schema = self.schema_name();
        let mut db = self.db.write();
        db.insert(
            &schema,
            supremm::FACT_TABLE,
            jobs.iter().map(pcp::SupremmJob::fact_row).collect(),
        )?;
        db.insert(
            &schema,
            supremm::TIMESERIES_TABLE,
            jobs.iter()
                .flat_map(pcp::SupremmJob::timeseries_rows)
                .collect(),
        )?;
        db.insert(
            &schema,
            supremm::JOBSCRIPT_TABLE,
            jobs.iter().map(pcp::SupremmJob::script_row).collect(),
        )?;
        drop(db);
        report.record_telemetry(&self.telemetry, "pcp");
        Ok(report)
    }

    /// Ingest a validated storage JSON document into the Storage realm.
    pub fn ingest_storage_json(&mut self, document: &str) -> Result<IngestReport> {
        let (rows, report) = storage_json::shred(document)
            .map_err(|e| WarehouseError::SchemaMismatch(format!("storage json: {e}")))?;
        let schema = self.schema_name();
        self.db.write().insert(&schema, storage::FACT_TABLE, rows)?;
        report.record_telemetry(&self.telemetry, "storage_json");
        Ok(report)
    }

    /// Ingest a cloud lifecycle event feed into the Cloud realm,
    /// sessionizing up to the `as_of` horizon.
    pub fn ingest_cloud_feed(&mut self, feed: &str, as_of: i64) -> Result<IngestReport> {
        let (rows, report) = cloud::shred(feed, as_of)
            .map_err(|e| WarehouseError::SchemaMismatch(format!("cloud feed: {e}")))?;
        let schema = self.schema_name();
        self.db
            .write()
            .insert(&schema, cloud_realm::FACT_TABLE, rows)?;
        report.record_telemetry(&self.telemetry, "cloud");
        Ok(report)
    }

    /// Ingest a VM reservation (purchased capacity) feed — the Cloud
    /// realm's payment information (§III-B future release, implemented).
    pub fn ingest_cloud_reservations(&mut self, feed: &str) -> Result<IngestReport> {
        let (rows, report) = cloud::shred_reservations(feed)
            .map_err(|e| WarehouseError::SchemaMismatch(format!("reservation feed: {e}")))?;
        let schema = self.schema_name();
        self.db
            .write()
            .insert(&schema, cloud_realm::RESERVATION_TABLE, rows)?;
        report.record_telemetry(&self.telemetry, "cloud_reservations");
        Ok(report)
    }

    /// Run a query against the Cloud realm's reservation table.
    pub fn query_reservations(&self, query: &Query) -> Result<ResultSet> {
        self.db
            .read()
            .query(&self.schema_name(), cloud_realm::RESERVATION_TABLE, query)
    }

    // ------------------------------------------------------------------
    // Aggregation and query
    // ------------------------------------------------------------------

    /// Run the aggregation pipelines — the paper's daily "aggregation
    /// processes run against newly ingested data" — materializing
    /// `{fact}_by_{period}` tables for every realm under this instance's
    /// aggregation levels.
    pub fn aggregate(&self) -> Result<()> {
        let schema = self.schema_name();
        let specs = [
            jobs::aggregation_spec(&self.levels),
            supremm::aggregation_spec(),
            // The monthly summary pipeline — small enough to federate "in
            // a subsequent release" (§II-C5); satellites always build it.
            supremm::summary_spec(),
            storage::aggregation_spec(),
            cloud_realm::aggregation_spec(&self.levels),
        ];
        let mut db = self.db.write();
        for spec in specs {
            spec.materialize(&mut db, &schema)?;
        }
        Ok(())
    }

    /// Fact-table name of a realm.
    pub fn fact_table(realm: RealmKind) -> &'static str {
        match realm {
            RealmKind::Jobs => jobs::FACT_TABLE,
            RealmKind::Supremm => supremm::FACT_TABLE,
            RealmKind::Storage => storage::FACT_TABLE,
            RealmKind::Cloud => cloud_realm::FACT_TABLE,
        }
    }

    /// Run a query against one realm's fact table, timed under
    /// `warehouse_query_seconds{table=..}` when telemetry is attached.
    ///
    /// Served through the warehouse's partitioned parallel engine and its
    /// watermark-keyed aggregate cache, so chart/explorer repeats with no
    /// intervening ingest cost an O(1) lookup.
    pub fn query(&self, realm: RealmKind, query: &Query) -> Result<ResultSet> {
        self.db
            .read()
            .query_cached(&self.schema_name(), Self::fact_table(realm), query)
    }

    /// Rebuild this instance's database from a federation-hub dump — the
    /// backup/regeneration use case (§II-E4). The previous contents are
    /// discarded (binlog epoch rotates), the dump is applied, and any
    /// realm tables the federation filter had excluded from replication
    /// are recreated empty so the instance stays fully functional.
    pub fn restore_from_dump(&mut self, dump: &[u8]) -> Result<()> {
        let snapshot = xdmod_warehouse::Snapshot::from_bytes(dump)?;
        let schema = self.schema_name();
        if !snapshot.schemas.contains_key(&schema) {
            return Err(WarehouseError::Snapshot(format!(
                "dump does not contain schema {schema}"
            )));
        }
        let mut db = self.db.write();
        db.reset_for_restore()?;
        snapshot.apply(&mut db)?;
        for def in [
            jobs::fact_schema(),
            supremm::fact_schema(),
            supremm::timeseries_schema(),
            supremm::jobscript_schema(),
            storage::fact_schema(),
            cloud_realm::fact_schema(),
            cloud_realm::reservation_schema(),
        ] {
            db.ensure_table(&schema, def)?;
        }
        Ok(())
    }

    /// Rows currently in a realm's fact table (diagnostics).
    pub fn fact_rows(&self, realm: RealmKind) -> Result<usize> {
        let db = self.db.read();
        Ok(db
            .table(&self.schema_name(), Self::fact_table(realm))?
            .len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdmod_realms::levels::{instance_a_walltime, DIM_WALL_TIME};
    use xdmod_warehouse::{AggFn, Aggregate};

    const SACCT: &str = "\
JobID|User|Account|Partition|NNodes|NCPUS|Submit|Start|End|State|AllocGPUs
1|alice|phys|normal|1|24|2017-01-05T08:00:00|2017-01-05T09:00:00|2017-01-05T11:00:00|COMPLETED|0
2|bob|chem|normal|2|48|2017-02-01T00:00:00|2017-02-01T01:00:00|2017-02-01T05:00:00|COMPLETED|0
";

    #[test]
    fn fresh_instance_has_all_realm_tables() {
        let inst = XdmodInstance::new("ccr");
        let db = inst.database();
        let db = db.read();
        let tables = db.table_names(&inst.schema_name()).unwrap();
        for t in [
            "jobfact",
            "supremm_jobfact",
            "supremm_timeseries",
            "supremm_jobscript",
            "storagefact",
            "cloudfact",
        ] {
            assert!(tables.contains(&t), "missing {t}");
        }
    }

    #[test]
    fn schema_name_sanitizes_punctuation() {
        assert_eq!(
            XdmodInstance::schema_name_of("ccr-xdmod.buffalo"),
            "xdmod_ccr_xdmod_buffalo"
        );
    }

    #[test]
    fn ingest_sacct_applies_su_conversion() {
        let mut inst = XdmodInstance::new("ccr");
        inst.set_su_factor("rush", 2.0);
        let report = inst.ingest_sacct("rush", SACCT).unwrap();
        assert_eq!(report.ingested, 2);
        let rs = inst
            .query(
                RealmKind::Jobs,
                &Query::new().aggregate(Aggregate::of(AggFn::Sum, "su_charged", "total_su")),
            )
            .unwrap();
        // job1: 24 cores × 2h × 2.0 = 96; job2: 48 × 4 × 2.0 = 384.
        assert_eq!(rs.scalar_f64("total_su"), Some(480.0));
    }

    #[test]
    fn aggregate_materializes_period_tables() {
        let mut inst = XdmodInstance::new("ccr");
        inst.ingest_sacct("rush", SACCT).unwrap();
        let mut levels = AggregationLevelsConfig::new();
        levels.set(DIM_WALL_TIME, instance_a_walltime());
        inst.set_levels(levels);
        inst.aggregate().unwrap();
        let db = inst.database();
        let db = db.read();
        let t = db.table(&inst.schema_name(), "jobfact_by_month").unwrap();
        assert_eq!(t.len(), 2); // one row per month
                                // Wall-time bin column present because levels were configured.
        assert!(t.schema().column_index("wall_hours_bin").is_ok());
    }

    #[test]
    fn reaggregation_after_level_change_rebins() {
        let mut inst = XdmodInstance::new("ccr");
        inst.ingest_sacct("rush", SACCT).unwrap();
        inst.aggregate().unwrap(); // no levels: no bin column
        {
            let db = inst.database();
            let db = db.read();
            let t = db.table(&inst.schema_name(), "jobfact_by_month").unwrap();
            assert!(t.schema().column_index("wall_hours_bin").is_err());
        }
        // Administrator updates the config file, then re-aggregates. The
        // aggregate layout changes, so the old tables must be dropped —
        // our warehouse refuses a silent layout change.
        let mut levels = AggregationLevelsConfig::new();
        levels.set(DIM_WALL_TIME, instance_a_walltime());
        inst.set_levels(levels);
        assert!(inst.aggregate().is_err());
    }

    #[test]
    fn ingest_pcp_populates_three_tables() {
        let mut inst = XdmodInstance::new("ccr");
        let archive =
            "job 1 rush alice 1483700000\nts 1483690000 cpu_user 0.9\nscript #!/bin/sh\nend\n";
        inst.ingest_pcp(archive).unwrap();
        let db = inst.database();
        let db = db.read();
        let schema = inst.schema_name();
        assert_eq!(db.table(&schema, "supremm_jobfact").unwrap().len(), 1);
        assert_eq!(db.table(&schema, "supremm_timeseries").unwrap().len(), 1);
        assert_eq!(db.table(&schema, "supremm_jobscript").unwrap().len(), 1);
    }

    #[test]
    fn parse_errors_surface_with_context() {
        let mut inst = XdmodInstance::new("ccr");
        let err = inst.ingest_sacct("rush", "JobID|nope\n").unwrap_err();
        assert!(err.to_string().contains("sacct"));
        let err = inst.ingest_storage_json("[{}]").unwrap_err();
        assert!(err.to_string().contains("storage json"));
        let err = inst.ingest_cloud_feed("bogus,line\n", 0).unwrap_err();
        assert!(err.to_string().contains("cloud feed"));
    }

    #[test]
    fn attached_telemetry_sees_ingest_and_queries() {
        let mut inst = XdmodInstance::new("ccr");
        assert!(!inst.telemetry().is_enabled());
        let reg = MetricsRegistry::new();
        inst.set_telemetry(reg.clone());
        inst.ingest_sacct("rush", SACCT).unwrap();
        inst.query(
            RealmKind::Jobs,
            &Query::new().aggregate(Aggregate::count("n")),
        )
        .unwrap();
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("ingest_records_total", &[("format", "sacct")]),
            Some(2)
        );
        assert!(snap
            .histogram("warehouse_query_seconds", &[("table", "jobfact")])
            .is_some());
        // The ingest insert hit the binlog through the attached registry.
        assert!(snap.counter_total("warehouse_binlog_appends_total") > 0);
    }

    #[test]
    fn query_unknown_realm_table_is_error_free_but_empty_realms_query_fine() {
        let inst = XdmodInstance::new("ccr");
        let rs = inst
            .query(
                RealmKind::Cloud,
                &Query::new().aggregate(Aggregate::count("n")),
            )
            .unwrap();
        assert_eq!(rs.scalar_f64("n"), Some(0.0));
        assert_eq!(inst.fact_rows(RealmKind::Jobs).unwrap(), 0);
    }
}

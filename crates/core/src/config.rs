//! JSON configuration files for federations.
//!
//! XDMoD's configuration surface is JSON ("aggregation levels, which are
//! managed by JSON configuration files", §II-C3; "aggregation is
//! customized on each instance using local configuration files", §II-A).
//! [`FederationFile`] is the federation-level equivalent: a declarative
//! document naming the hub, its aggregation levels, and every member with
//! its coupling mode, federated realms, and resource exclusions — enough
//! to reconstruct the wiring of Figs. 2 and 3.

use crate::federation::{Federation, FederationConfig, FederationError, FederationMode};
use crate::hub::FederationHub;
use crate::instance::XdmodInstance;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use xdmod_realms::levels::AggregationLevelsConfig;
use xdmod_realms::RealmKind;

/// One member entry in the federation file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemberEntry {
    /// Instance name (must match an [`XdmodInstance`] name at build
    /// time).
    pub name: String,
    /// Tight (live) or loose (batched) coupling.
    pub mode: FederationMode,
    /// Realms replicated from this member.
    #[serde(default = "default_realms")]
    pub realms: Vec<RealmKind>,
    /// Resources excluded from federation.
    #[serde(default)]
    pub excluded_resources: Vec<String>,
    /// Replicate monthly SUPReMM summaries (§II-C5 subsequent release).
    #[serde(default)]
    pub supremm_summaries: bool,
    /// Fast-retry attempts for the member's live link (`null`/absent =
    /// policy default; explicit 0 disables retries and is flagged by the
    /// pre-flight analyzer on tight links).
    #[serde(default)]
    pub retries: Option<u32>,
}

fn default_realms() -> Vec<RealmKind> {
    vec![RealmKind::Jobs]
}

/// Hub-side aggregation pool sizing:
/// `"hub_aggregation": {"workers": 4, "shards": 8}`.
///
/// Absent fields fall back to the warehouse defaults (workers from
/// `available_parallelism`, shards matching workers). A pool sized wider
/// than its shard count is legal but wasteful — the pre-flight analyzer
/// flags it as XC0011.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct HubAggregationEntry {
    /// Worker threads for partitioned parallel aggregation
    /// (absent = one per available core).
    #[serde(default)]
    pub workers: Option<u64>,
    /// Day-bucket shard count (absent = match workers).
    #[serde(default)]
    pub shards: Option<u64>,
}

/// The federation configuration file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederationFile {
    /// Hub instance name.
    pub hub: String,
    /// The hub's own aggregation levels (Table I, "Federation Hub").
    #[serde(default)]
    pub hub_levels: AggregationLevelsConfig,
    /// Hub aggregation pool sizing (absent = warehouse defaults).
    #[serde(default)]
    pub hub_aggregation: Option<HubAggregationEntry>,
    /// Member entries.
    pub members: Vec<MemberEntry>,
}

impl FederationFile {
    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("bad federation config: {e}"))
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes") // xc-allow: config is plain data; serialization cannot fail
    }

    /// Build the federation, joining every listed member from
    /// `instances` (keyed by name). Unlisted instances are ignored;
    /// listed-but-missing instances are an error.
    pub fn build(
        &self,
        instances: &BTreeMap<String, &XdmodInstance>,
    ) -> Result<Federation, FederationError> {
        let mut hub = FederationHub::new(&self.hub);
        hub.set_levels(self.hub_levels.clone());
        if let Some(agg) = &self.hub_aggregation {
            let mut pool = match agg.workers {
                Some(w) => xdmod_warehouse::PoolConfig::new(w as usize),
                None => xdmod_warehouse::PoolConfig::auto(),
            };
            if let Some(s) = agg.shards {
                pool = pool.with_shards(s as usize);
            }
            hub.set_parallelism(pool);
        }
        let mut fed = Federation::new(hub);
        for entry in &self.members {
            let inst = instances.get(&entry.name).ok_or_else(|| {
                FederationError::UnknownMember(format!(
                    "{} listed in config but no such instance was provided",
                    entry.name
                ))
            })?;
            let mut config = FederationConfig {
                realms: entry.realms.clone(),
                excluded_resources: entry.excluded_resources.clone(),
                supremm_summaries: entry.supremm_summaries,
                retries: entry.retries,
            };
            config.realms.dedup();
            match entry.mode {
                FederationMode::Tight => fed.join_tight(inst, config)?,
                FederationMode::Loose => fed.join_loose(inst, config)?,
            }
        }
        Ok(fed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdmod_realms::levels::hub_walltime;

    fn sample() -> FederationFile {
        let mut levels = AggregationLevelsConfig::new();
        levels.set("wall_hours", hub_walltime());
        FederationFile {
            hub: "federation-hub".into(),
            hub_levels: levels,
            hub_aggregation: Some(HubAggregationEntry {
                workers: Some(2),
                shards: Some(4),
            }),
            members: vec![
                MemberEntry {
                    name: "x".into(),
                    mode: FederationMode::Tight,
                    realms: vec![RealmKind::Jobs],
                    excluded_resources: vec![],
                    supremm_summaries: false,
                    retries: Some(4),
                },
                MemberEntry {
                    name: "y".into(),
                    mode: FederationMode::Loose,
                    realms: vec![RealmKind::Jobs, RealmKind::Cloud],
                    excluded_resources: vec!["secret".into()],
                    supremm_summaries: true,
                    retries: None,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip() {
        let cfg = sample();
        let back = FederationFile::from_json(&cfg.to_json()).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn defaults_fill_in_missing_fields() {
        let json = r#"{
            "hub": "h",
            "members": [{"name": "x", "mode": "Tight"}]
        }"#;
        let cfg = FederationFile::from_json(json).unwrap();
        assert_eq!(cfg.members[0].realms, vec![RealmKind::Jobs]);
        assert!(cfg.members[0].excluded_resources.is_empty());
        assert_eq!(cfg.members[0].retries, None);
        assert!(cfg.hub_levels.dimensions.is_empty());
        assert_eq!(cfg.hub_aggregation, None);
    }

    #[test]
    fn build_wires_members_by_mode() {
        let x = XdmodInstance::new("x");
        let y = XdmodInstance::new("y");
        let instances = BTreeMap::from([("x".to_owned(), &x), ("y".to_owned(), &y)]);
        let fed = sample().build(&instances).unwrap();
        assert_eq!(
            fed.members(),
            vec![("x", FederationMode::Tight), ("y", FederationMode::Loose)]
        );
        assert_eq!(fed.hub().name(), "federation-hub");
        assert!(fed.hub().levels().get("wall_hours").is_some());
        let pool = fed.hub().parallelism();
        assert_eq!(pool.configured_workers(), 2);
        assert_eq!(pool.configured_shards(), 4);
    }

    #[test]
    fn build_fails_on_missing_instance() {
        let x = XdmodInstance::new("x");
        let instances = BTreeMap::from([("x".to_owned(), &x)]);
        let err = match sample().build(&instances) {
            Err(e) => e,
            Ok(_) => panic!("expected missing-instance error"),
        };
        assert!(err.to_string().contains("y"));
    }

    #[test]
    fn malformed_json_reports_error() {
        assert!(FederationFile::from_json("{").is_err());
        assert!(FederationFile::from_json("{\"hub\": 3}").is_err());
    }
}

//! JSON configuration files for federations.
//!
//! XDMoD's configuration surface is JSON ("aggregation levels, which are
//! managed by JSON configuration files", §II-C3; "aggregation is
//! customized on each instance using local configuration files", §II-A).
//! [`FederationFile`] is the federation-level equivalent: a declarative
//! document naming the hub, its aggregation levels, and every member with
//! its coupling mode, federated realms, and resource exclusions — enough
//! to reconstruct the wiring of Figs. 2 and 3.

use crate::federation::{Federation, FederationConfig, FederationError, FederationMode};
use crate::hub::FederationHub;
use crate::instance::XdmodInstance;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use xdmod_alerts::{AlertRule, AlertRules, AlertSeverity};
use xdmod_realms::levels::AggregationLevelsConfig;
use xdmod_realms::RealmKind;
use xdmod_telemetry::MetricsRegistry;

/// One member entry in the federation file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemberEntry {
    /// Instance name (must match an [`XdmodInstance`] name at build
    /// time).
    pub name: String,
    /// Tight (live) or loose (batched) coupling.
    pub mode: FederationMode,
    /// Realms replicated from this member.
    #[serde(default = "default_realms")]
    pub realms: Vec<RealmKind>,
    /// Resources excluded from federation.
    #[serde(default)]
    pub excluded_resources: Vec<String>,
    /// Replicate monthly SUPReMM summaries (§II-C5 subsequent release).
    #[serde(default)]
    pub supremm_summaries: bool,
    /// Fast-retry attempts for the member's live link (`null`/absent =
    /// policy default; explicit 0 disables retries and is flagged by the
    /// pre-flight analyzer on tight links).
    #[serde(default)]
    pub retries: Option<u32>,
}

fn default_realms() -> Vec<RealmKind> {
    vec![RealmKind::Jobs]
}

/// Hub-side aggregation pool sizing:
/// `"hub_aggregation": {"workers": 4, "shards": 8, "incremental": true}`.
///
/// Absent fields fall back to the warehouse defaults (workers from
/// `available_parallelism`, shards matching workers, incremental
/// maintenance on). A pool sized wider than its shard count is legal but
/// wasteful — the pre-flight analyzer flags it as XC0011.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct HubAggregationEntry {
    /// Worker threads for partitioned parallel aggregation
    /// (absent = one per available core).
    #[serde(default)]
    pub workers: Option<u64>,
    /// Day-bucket shard count (absent = match workers).
    #[serde(default)]
    pub shards: Option<u64>,
    /// Incremental (delta-fold) maintenance of materialized aggregates
    /// (absent = enabled). `false` forces every re-aggregation to rebuild
    /// from the full fact tables — the diagnostics escape hatch; results
    /// are byte-identical either way.
    #[serde(default)]
    pub incremental: Option<bool>,
}

/// Hub telemetry sizing: `"telemetry": {"event_capacity": 8192}`.
///
/// The event ring is bounded; overflow evicts the oldest events (and is
/// counted by `telemetry_events_dropped_total`). Federations emitting
/// dense event streams — chaos soaks, busy gateways feeding the alert
/// engine — can widen the ring here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TelemetryEntry {
    /// Event-ring capacity (absent = the telemetry default, 4096).
    #[serde(default)]
    pub event_capacity: Option<u64>,
}

/// One alert rule override in the federation file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlertRuleEntry {
    /// Alert family the rule applies to (unknown families are carried
    /// through so the XC0013 preflight pass can refuse them by name).
    pub family: String,
    /// `info` / `warning` / `critical` (absent or unrecognized keeps the
    /// family default).
    #[serde(default)]
    pub severity: Option<String>,
    /// Flap-damping window override.
    #[serde(default)]
    pub debounce_ms: Option<u64>,
    /// Auto-resolve timeout override.
    #[serde(default)]
    pub resolve_timeout_ms: Option<u64>,
    /// Stale age override.
    #[serde(default)]
    pub stale_ms: Option<u64>,
}

/// Alert engine configuration:
/// `"alerts": {"notify_capacity": 8, "rules": [{"family": "link_down", ...}]}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct AlertsEntry {
    /// Notification token-bucket burst capacity.
    #[serde(default)]
    pub notify_capacity: Option<u64>,
    /// Notification token-bucket refill, tokens per second.
    #[serde(default)]
    pub notify_refill_per_sec: Option<u64>,
    /// Per-family rule overrides.
    #[serde(default)]
    pub rules: Vec<AlertRuleEntry>,
}

impl AlertsEntry {
    /// Materialize the rule table: defaults for every family, overridden
    /// field-by-field by each entry. Invalid values (unknown families,
    /// inverted windows, zero buckets) are *kept* — build never edits the
    /// operator's intent; the preflight analyzer refuses them as XC0013.
    pub fn to_rules(&self) -> AlertRules {
        let mut rules = AlertRules::default();
        if self.notify_capacity.is_some() || self.notify_refill_per_sec.is_some() {
            rules.set_notify(
                self.notify_capacity
                    .unwrap_or(xdmod_alerts::DEFAULT_NOTIFY_CAPACITY),
                self.notify_refill_per_sec
                    .unwrap_or(xdmod_alerts::DEFAULT_NOTIFY_REFILL_PER_SEC),
            );
        }
        for entry in &self.rules {
            let base = rules.rule_for(&entry.family);
            let severity = entry
                .severity
                .as_deref()
                .and_then(AlertSeverity::parse)
                .unwrap_or(base.severity);
            let rule = AlertRule {
                severity,
                debounce_ms: entry.debounce_ms.unwrap_or(base.debounce_ms),
                resolve_timeout_ms: entry.resolve_timeout_ms.unwrap_or(base.resolve_timeout_ms),
                stale_ms: entry.stale_ms.unwrap_or(base.stale_ms),
            };
            rules.set(&entry.family, rule);
        }
        rules
    }
}

/// Hub durability configuration:
/// `"storage": {"backend": "disk", "dir": "/var/lib/xdmod/wal",
/// "segment_max_kb": 1024, "snapshot_every_records": 4096, "fsync": true}`.
///
/// Absent (or `"backend": "memory"`) keeps the historical in-memory
/// warehouse. With `"disk"`, the hub's warehouse writes ahead to a
/// segmented on-disk binlog under `dir`, snapshots (and compacts) every
/// `snapshot_every_records` records, and replays the durable state on the
/// next build. Invalid combinations (unknown backend name, disk without a
/// dir, zero intervals) are *kept* in the parsed file — build never edits
/// operator intent; the pre-flight analyzer refuses them as XC0014.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct StorageEntry {
    /// `"memory"` (default) or `"disk"`.
    #[serde(default)]
    pub backend: Option<String>,
    /// Directory for segment and snapshot files (required for `"disk"`).
    #[serde(default)]
    pub dir: Option<String>,
    /// Rotate segment files at this size in KiB (absent = 1024).
    #[serde(default)]
    pub segment_max_kb: Option<u64>,
    /// Auto-snapshot + compaction interval in binlog records (absent =
    /// manual snapshots only).
    #[serde(default)]
    pub snapshot_every_records: Option<u64>,
    /// fsync each durable append (absent = true; turning it off trades
    /// crash durability of the newest records for throughput).
    #[serde(default)]
    pub fsync: Option<bool>,
    /// Cold-shard paging: spill cold day-bucket shards to disk once the
    /// working-set budget fills (absent = everything stays resident).
    #[serde(default)]
    pub paging: Option<PagingEntry>,
}

/// The `storage.paging` stanza:
/// `"paging": {"budget_mb": 256, "pages_per_table": 8,
/// "spill_dir": "/var/lib/xdmod/wal/paging", "fsync": false}`.
///
/// With paging on, each hub fact table is striped into
/// `pages_per_table` day-bucket pages; once resident rows exceed
/// `budget_mb`, cold pages spill to CRC-framed files under `spill_dir`
/// (default: `<storage.dir>/paging`) and queries fault them back in on
/// demand. Spill files are caches — a lost one is rebuilt from the
/// write-ahead log — which is why build only honors the stanza over a
/// successfully opened disk backend; the pre-flight analyzer refuses
/// the rest as XC0015.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct PagingEntry {
    /// Working-set budget in MiB (absent = 256).
    #[serde(default)]
    pub budget_mb: Option<u64>,
    /// Day-bucket pages per fact table (absent = 8).
    #[serde(default)]
    pub pages_per_table: Option<u64>,
    /// Spill-file directory (absent = `<storage.dir>/paging`).
    #[serde(default)]
    pub spill_dir: Option<String>,
    /// fsync each spill write (absent = false; spill files are
    /// rederivable caches, so losing one to a crash only costs a
    /// rebuild).
    #[serde(default)]
    pub fsync: Option<bool>,
}

/// The federation configuration file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederationFile {
    /// Hub instance name.
    pub hub: String,
    /// The hub's own aggregation levels (Table I, "Federation Hub").
    #[serde(default)]
    pub hub_levels: AggregationLevelsConfig,
    /// Hub aggregation pool sizing (absent = warehouse defaults).
    #[serde(default)]
    pub hub_aggregation: Option<HubAggregationEntry>,
    /// Hub telemetry sizing (absent = telemetry defaults).
    #[serde(default)]
    pub telemetry: Option<TelemetryEntry>,
    /// Alert engine rules (absent = alert defaults).
    #[serde(default)]
    pub alerts: Option<AlertsEntry>,
    /// Hub warehouse durability (absent = in-memory).
    #[serde(default)]
    pub storage: Option<StorageEntry>,
    /// Member entries.
    pub members: Vec<MemberEntry>,
}

impl FederationFile {
    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("bad federation config: {e}"))
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes") // xc-allow: config is plain data; serialization cannot fail
    }

    /// Build the federation, joining every listed member from
    /// `instances` (keyed by name). Unlisted instances are ignored;
    /// listed-but-missing instances are an error.
    pub fn build(
        &self,
        instances: &BTreeMap<String, &XdmodInstance>,
    ) -> Result<Federation, FederationError> {
        let mut hub = FederationHub::new(&self.hub);
        hub.set_levels(self.hub_levels.clone());
        if let Some(cap) = self.telemetry.as_ref().and_then(|t| t.event_capacity) {
            hub.set_telemetry(MetricsRegistry::with_event_capacity(cap as usize));
        }
        if let Some(agg) = &self.hub_aggregation {
            let mut pool = match agg.workers {
                Some(w) => xdmod_warehouse::PoolConfig::new(w as usize),
                None => xdmod_warehouse::PoolConfig::auto(),
            };
            if let Some(s) = agg.shards {
                pool = pool.with_shards(s as usize);
            }
            hub.set_parallelism(pool);
            if let Some(on) = agg.incremental {
                hub.set_incremental_aggregation(on);
            }
        }
        if let Some(storage) = &self.storage {
            // Only a well-formed disk entry swaps the backend; malformed
            // entries (unknown name, missing dir) are left to the XC0014
            // preflight pass, and the hub stays on the memory backend so a
            // forced build still works.
            if storage.backend.as_deref() == Some("disk") {
                if let Some(dir) = &storage.dir {
                    let mut opts = xdmod_warehouse::DiskOptions::new(dir);
                    if let Some(kb) = storage.segment_max_kb {
                        opts = opts.segment_max_bytes(kb.saturating_mul(1024));
                    }
                    if let Some(on) = storage.fsync {
                        opts = opts.fsync(on);
                    }
                    let backend = xdmod_warehouse::DiskBackend::open(opts)?;
                    hub.set_storage(Box::new(backend))?;
                    // Paging rides the disk backend only: a lost spill
                    // file is repaired by replaying the durable log, and
                    // the memory backend has none (XC0015 refuses that
                    // combination at preflight).
                    if let Some(paging) = &storage.paging {
                        let spill = paging
                            .spill_dir
                            .clone()
                            .unwrap_or_else(|| format!("{dir}/paging"));
                        let mut cfg = xdmod_warehouse::PagingConfig::new(spill);
                        if let Some(mb) = paging.budget_mb {
                            cfg = cfg.budget_bytes(mb.saturating_mul(1024 * 1024));
                        }
                        if let Some(pages) = paging.pages_per_table {
                            cfg = cfg.pages_per_table(pages.min(u32::MAX as u64) as u32);
                        }
                        if let Some(on) = paging.fsync {
                            cfg = cfg.fsync(on);
                        }
                        hub.enable_paging(cfg)?;
                    }
                }
            }
            if let Some(every) = storage.snapshot_every_records {
                hub.set_snapshot_policy(Some(every));
            }
        }
        let mut fed = Federation::new(hub);
        if let Some(alerts) = &self.alerts {
            fed.set_alert_rules(alerts.to_rules());
        }
        for entry in &self.members {
            let inst = instances.get(&entry.name).ok_or_else(|| {
                FederationError::UnknownMember(format!(
                    "{} listed in config but no such instance was provided",
                    entry.name
                ))
            })?;
            let mut config = FederationConfig {
                realms: entry.realms.clone(),
                excluded_resources: entry.excluded_resources.clone(),
                supremm_summaries: entry.supremm_summaries,
                retries: entry.retries,
            };
            config.realms.dedup();
            match entry.mode {
                FederationMode::Tight => fed.join_tight(inst, config)?,
                FederationMode::Loose => fed.join_loose(inst, config)?,
            }
        }
        Ok(fed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdmod_realms::levels::hub_walltime;

    fn sample() -> FederationFile {
        let mut levels = AggregationLevelsConfig::new();
        levels.set("wall_hours", hub_walltime());
        FederationFile {
            hub: "federation-hub".into(),
            hub_levels: levels,
            hub_aggregation: Some(HubAggregationEntry {
                workers: Some(2),
                shards: Some(4),
                incremental: Some(true),
            }),
            telemetry: Some(TelemetryEntry {
                event_capacity: Some(128),
            }),
            alerts: Some(AlertsEntry {
                notify_capacity: Some(4),
                notify_refill_per_sec: None,
                rules: vec![AlertRuleEntry {
                    family: "replication_lag".into(),
                    severity: Some("critical".into()),
                    debounce_ms: Some(2_000),
                    resolve_timeout_ms: None,
                    stale_ms: None,
                }],
            }),
            storage: None,
            members: vec![
                MemberEntry {
                    name: "x".into(),
                    mode: FederationMode::Tight,
                    realms: vec![RealmKind::Jobs],
                    excluded_resources: vec![],
                    supremm_summaries: false,
                    retries: Some(4),
                },
                MemberEntry {
                    name: "y".into(),
                    mode: FederationMode::Loose,
                    realms: vec![RealmKind::Jobs, RealmKind::Cloud],
                    excluded_resources: vec!["secret".into()],
                    supremm_summaries: true,
                    retries: None,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip() {
        let cfg = sample();
        let back = FederationFile::from_json(&cfg.to_json()).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn defaults_fill_in_missing_fields() {
        let json = r#"{
            "hub": "h",
            "members": [{"name": "x", "mode": "Tight"}]
        }"#;
        let cfg = FederationFile::from_json(json).unwrap();
        assert_eq!(cfg.members[0].realms, vec![RealmKind::Jobs]);
        assert!(cfg.members[0].excluded_resources.is_empty());
        assert_eq!(cfg.members[0].retries, None);
        assert!(cfg.hub_levels.dimensions.is_empty());
        assert_eq!(cfg.hub_aggregation, None);
        assert_eq!(cfg.telemetry, None);
        assert_eq!(cfg.alerts, None);
        assert_eq!(cfg.storage, None);
    }

    #[test]
    fn storage_entry_round_trips_and_builds_disk_hub() {
        let dir = std::env::temp_dir().join(format!("xdmod-cfg-storage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = sample();
        cfg.storage = Some(StorageEntry {
            backend: Some("disk".into()),
            dir: Some(dir.to_string_lossy().into_owned()),
            segment_max_kb: Some(64),
            snapshot_every_records: Some(100),
            fsync: Some(false),
            paging: None,
        });
        let back = FederationFile::from_json(&cfg.to_json()).unwrap();
        assert_eq!(cfg, back);

        let x = XdmodInstance::new("x");
        let y = XdmodInstance::new("y");
        let instances = BTreeMap::from([("x".to_owned(), &x), ("y".to_owned(), &y)]);
        let fed = cfg.build(&instances).unwrap();
        assert_eq!(fed.hub().database().read().storage_name(), "disk");
        assert!(dir.is_dir(), "disk backend must create its directory");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn paging_entry_round_trips_and_builds_paged_disk_hub() {
        let dir = std::env::temp_dir().join(format!("xdmod-cfg-paging-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = sample();
        cfg.storage = Some(StorageEntry {
            backend: Some("disk".into()),
            dir: Some(dir.to_string_lossy().into_owned()),
            fsync: Some(false),
            paging: Some(PagingEntry {
                budget_mb: Some(16),
                pages_per_table: Some(4),
                spill_dir: None,
                fsync: Some(false),
            }),
            ..StorageEntry::default()
        });
        let back = FederationFile::from_json(&cfg.to_json()).unwrap();
        assert_eq!(cfg, back);

        let x = XdmodInstance::new("x");
        let y = XdmodInstance::new("y");
        let instances = BTreeMap::from([("x".to_owned(), &x), ("y".to_owned(), &y)]);
        let fed = cfg.build(&instances).unwrap();
        let db = fed.hub().database();
        let db = db.read();
        assert_eq!(db.storage_name(), "disk");
        assert!(db.paging_enabled());
        let paging = db.paging_config().unwrap();
        assert_eq!(paging.budget_bytes, 16 * 1024 * 1024);
        assert_eq!(paging.pages_per_table, 4);
        // Default spill dir lands under the WAL directory.
        assert!(paging.spill_dir.starts_with(&dir));
        drop(db);
        drop(fed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn paging_without_disk_backend_is_ignored_at_build() {
        // Build never edits operator intent: the stanza is kept in the
        // parsed file and XC0015 refuses it at preflight, but a forced
        // build still works — unpaged, on the memory backend.
        let x = XdmodInstance::new("x");
        let y = XdmodInstance::new("y");
        let instances = BTreeMap::from([("x".to_owned(), &x), ("y".to_owned(), &y)]);
        let mut cfg = sample();
        cfg.storage = Some(StorageEntry {
            backend: Some("memory".into()),
            paging: Some(PagingEntry {
                budget_mb: Some(16),
                ..PagingEntry::default()
            }),
            ..StorageEntry::default()
        });
        let fed = cfg.build(&instances).unwrap();
        let db = fed.hub().database();
        let db = db.read();
        assert_eq!(db.storage_name(), "memory");
        assert!(!db.paging_enabled());
    }

    #[test]
    fn malformed_storage_entry_stays_on_memory_backend() {
        // Disk without a dir, and an unknown backend name: build leaves
        // the memory backend (XC0014 refuses these at preflight).
        let x = XdmodInstance::new("x");
        let y = XdmodInstance::new("y");
        let instances = BTreeMap::from([("x".to_owned(), &x), ("y".to_owned(), &y)]);
        for backend in ["disk", "papyrus"] {
            let mut cfg = sample();
            cfg.storage = Some(StorageEntry {
                backend: Some(backend.into()),
                ..StorageEntry::default()
            });
            let fed = cfg.build(&instances).unwrap();
            assert_eq!(fed.hub().database().read().storage_name(), "memory");
        }
    }

    #[test]
    fn build_wires_members_by_mode() {
        let x = XdmodInstance::new("x");
        let y = XdmodInstance::new("y");
        let instances = BTreeMap::from([("x".to_owned(), &x), ("y".to_owned(), &y)]);
        let fed = sample().build(&instances).unwrap();
        assert_eq!(
            fed.members(),
            vec![("x", FederationMode::Tight), ("y", FederationMode::Loose)]
        );
        assert_eq!(fed.hub().name(), "federation-hub");
        assert!(fed.hub().levels().get("wall_hours").is_some());
        let pool = fed.hub().parallelism();
        assert_eq!(pool.configured_workers(), 2);
        assert_eq!(pool.configured_shards(), 4);
        assert!(fed.hub().incremental_aggregation());
    }

    #[test]
    fn build_honors_incremental_escape_hatch() {
        let x = XdmodInstance::new("x");
        let y = XdmodInstance::new("y");
        let instances = BTreeMap::from([("x".to_owned(), &x), ("y".to_owned(), &y)]);
        let mut cfg = sample();
        if let Some(agg) = &mut cfg.hub_aggregation {
            agg.incremental = Some(false);
        }
        let fed = cfg.build(&instances).unwrap();
        assert!(!fed.hub().incremental_aggregation());
        // Absent means the warehouse default: enabled.
        let mut cfg = sample();
        if let Some(agg) = &mut cfg.hub_aggregation {
            agg.incremental = None;
        }
        let fed = cfg.build(&instances).unwrap();
        assert!(fed.hub().incremental_aggregation());
    }

    #[test]
    fn build_applies_telemetry_capacity() {
        let x = XdmodInstance::new("x");
        let y = XdmodInstance::new("y");
        let instances = BTreeMap::from([("x".to_owned(), &x), ("y".to_owned(), &y)]);
        let mut cfg = sample();
        cfg.telemetry = Some(TelemetryEntry {
            event_capacity: Some(1),
        });
        let fed = cfg.build(&instances).unwrap();
        let telemetry = fed.hub().telemetry();
        telemetry.event("a", "first");
        telemetry.event("b", "second");
        assert_eq!(telemetry.events().len(), 1);
        assert_eq!(telemetry.events_dropped(), 1);
    }

    #[test]
    fn build_applies_alert_rules() {
        let x = XdmodInstance::new("x");
        let y = XdmodInstance::new("y");
        let instances = BTreeMap::from([("x".to_owned(), &x), ("y".to_owned(), &y)]);
        let fed = sample().build(&instances).unwrap();
        let rules = fed.alert_engine().rules();
        assert_eq!(rules.notify_capacity(), 4);
        let lag = rules.rule_for("replication_lag");
        assert_eq!(lag.severity, AlertSeverity::Critical);
        assert_eq!(lag.debounce_ms, 2_000);
        // Untouched families keep their defaults.
        let link = rules.rule_for("link_down");
        assert_eq!(link.severity, AlertSeverity::Critical);
        assert_eq!(link.debounce_ms, xdmod_alerts::DEFAULT_DEBOUNCE_MS);
    }

    #[test]
    fn to_rules_keeps_unknown_families_for_preflight() {
        let entry = AlertsEntry {
            notify_capacity: None,
            notify_refill_per_sec: None,
            rules: vec![AlertRuleEntry {
                family: "disk_full".into(),
                severity: None,
                debounce_ms: Some(1_000),
                resolve_timeout_ms: None,
                stale_ms: None,
            }],
        };
        let rules = entry.to_rules();
        assert!(rules.entries().any(|(family, _)| family == "disk_full"));
        assert!(!rules.validate().is_empty());
    }

    #[test]
    fn build_fails_on_missing_instance() {
        let x = XdmodInstance::new("x");
        let instances = BTreeMap::from([("x".to_owned(), &x)]);
        let err = match sample().build(&instances) {
            Err(e) => e,
            Ok(_) => panic!("expected missing-instance error"),
        };
        assert!(err.to_string().contains("y"));
    }

    #[test]
    fn malformed_json_reports_error() {
        assert!(FederationFile::from_json("{").is_err());
        assert!(FederationFile::from_json("{\"hub\": 3}").is_err());
    }
}

//! The federation hub.
//!
//! "Federation provides a combined, master view of job and performance
//! data collected from individual XDMoD instances. ... Once data is
//! ingested on the individual XDMoD instances, it undergoes live
//! replication to the central federation hub database, where it is then
//! aggregated as appropriate to the requirements of the whole collection"
//! (§II-A). The hub holds one warehouse schema per satellite (the
//! Tungsten rename-on-transfer convention), its **own** aggregation
//! levels (Table I's "Federation Hub" column), a multi-source SSO
//! gateway, and the federated identity map.

use crate::instance::XdmodInstance;
use crate::version::XdmodVersion;
use std::sync::Arc;
use xdmod_auth::{AuthMode, IdentityMap, InstanceAuth};
use xdmod_realms::levels::AggregationLevelsConfig;
use xdmod_realms::{cloud as cloud_realm, jobs, storage, supremm, RealmKind};
use xdmod_warehouse::{
    shared, Database, Query, Result, ResultSet, SharedDatabase, Table, WarehouseError,
};

/// The central federation hub.
pub struct FederationHub {
    name: String,
    version: XdmodVersion,
    db: SharedDatabase,
    levels: AggregationLevelsConfig,
    satellites: Vec<String>,
    identity: IdentityMap,
    auth: InstanceAuth,
}

impl FederationHub {
    /// Stand up a hub at [`XdmodVersion::CURRENT`].
    pub fn new(name: &str) -> Self {
        Self::with_version(name, XdmodVersion::CURRENT)
    }

    /// Stand up a hub at a specific version.
    pub fn with_version(name: &str, version: XdmodVersion) -> Self {
        FederationHub {
            name: name.to_owned(),
            version,
            db: shared(Database::new()),
            levels: AggregationLevelsConfig::new(),
            satellites: Vec::new(),
            identity: IdentityMap::new(),
            // The hub's gateway allows multiple SSO sources: "a federated
            // core instance ... may consist of data originating from
            // multiple institutions that may use varied protocols"
            // (§II-D3).
            auth: InstanceAuth::new(name, AuthMode::ServiceProvider, true),
        }
    }

    /// Hub name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Hub XDMoD version (satellites must match exactly).
    pub fn version(&self) -> XdmodVersion {
        self.version
    }

    /// Shared handle to the hub database (replication targets this).
    pub fn database(&self) -> SharedDatabase {
        Arc::clone(&self.db)
    }

    /// Hub-side schema name for a satellite: `inst_<name>`.
    pub fn schema_for(name: &str) -> String {
        format!("inst_{}", name.replace(['-', '.'], "_"))
    }

    /// The hub's own aggregation levels (Table I, "Federation Hub").
    pub fn levels(&self) -> &AggregationLevelsConfig {
        &self.levels
    }

    /// Replace the hub's aggregation levels. Follow with
    /// [`aggregate_all`](Self::aggregate_all) to "re-aggregate all raw
    /// federation data" (§II-C3).
    pub fn set_levels(&mut self, levels: AggregationLevelsConfig) {
        self.levels = levels;
    }

    /// Record a satellite as a member (called by the federation when a
    /// link is established).
    pub fn register_satellite(&mut self, name: &str) {
        if !self.satellites.iter().any(|s| s == name) {
            self.satellites.push(name.to_owned());
        }
    }

    /// Registered satellites, in join order.
    pub fn satellites(&self) -> &[String] {
        &self.satellites
    }

    /// The federated identity map (§II-D4's future work, implemented).
    pub fn identity_map(&self) -> &IdentityMap {
        &self.identity
    }

    /// Mutable identity map access.
    pub fn identity_map_mut(&mut self) -> &mut IdentityMap {
        &mut self.identity
    }

    /// The hub's authentication front door (multi-source SSO).
    pub fn auth(&self) -> &InstanceAuth {
        &self.auth
    }

    /// Mutable access to the hub's front door.
    pub fn auth_mut(&mut self) -> &mut InstanceAuth {
        &mut self.auth
    }

    // ------------------------------------------------------------------
    // Aggregation
    // ------------------------------------------------------------------

    /// Aggregate every satellite's replicated data under the **hub's**
    /// levels. Raw replicated rows are left untouched ("no data are lost
    /// or changed"); only `{fact}_by_{period}` tables are written into
    /// each satellite schema on the hub.
    pub fn aggregate_all(&self) -> Result<()> {
        let specs = [
            jobs::aggregation_spec(&self.levels),
            supremm::aggregation_spec(),
            storage::aggregation_spec(),
            cloud_realm::aggregation_spec(&self.levels),
        ];
        let mut db = self.db.write();
        for sat in &self.satellites {
            let schema = Self::schema_for(sat);
            if !db.has_schema(&schema) {
                continue; // link established but nothing replicated yet
            }
            for spec in &specs {
                // A replication filter may have excluded a realm's fact
                // table entirely (e.g. SUPReMM); skip those.
                if db.table(&schema, &spec.fact_table).is_ok() {
                    spec.materialize(&mut db, &schema)?;
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Federated query
    // ------------------------------------------------------------------

    /// Run a query against one satellite's replicated fact table.
    pub fn query_instance(
        &self,
        satellite: &str,
        realm: RealmKind,
        query: &Query,
    ) -> Result<ResultSet> {
        let db = self.db.read();
        let table = db.table(
            &Self::schema_for(satellite),
            XdmodInstance::fact_table(realm),
        )?;
        query.run(table)
    }

    /// Run a query against the **union** of every satellite's fact table
    /// — "an integrated view of job and performance data collected from
    /// entirely independent XDMoD instances".
    pub fn federated_query(&self, realm: RealmKind, query: &Query) -> Result<ResultSet> {
        let union = self.union_fact_table(realm)?;
        query.run(&union)
    }

    /// Materialize the union of a realm's fact rows across satellites.
    fn union_fact_table(&self, realm: RealmKind) -> Result<Table> {
        let fact = XdmodInstance::fact_table(realm);
        let db = self.db.read();
        let mut union: Option<Table> = None;
        for sat in &self.satellites {
            let schema = Self::schema_for(sat);
            if !db.has_schema(&schema) {
                continue;
            }
            let Ok(table) = db.table(&schema, fact) else {
                continue; // realm not federated from this satellite
            };
            match &mut union {
                None => {
                    let mut t = Table::new(table.schema().clone());
                    t.insert_checked(table.rows().to_vec());
                    union = Some(t);
                }
                Some(u) => {
                    if u.schema() != table.schema() {
                        return Err(WarehouseError::SchemaMismatch(format!(
                            "satellite {sat} has an incompatible {fact} layout"
                        )));
                    }
                    u.insert_checked(table.rows().to_vec());
                }
            }
        }
        union.ok_or_else(|| {
            WarehouseError::InvalidQuery(format!(
                "no satellite has replicated {} data",
                realm.display_name()
            ))
        })
    }

    /// Total replicated fact rows of a realm across the federation.
    pub fn federated_fact_rows(&self, realm: RealmKind) -> usize {
        self.union_fact_table(realm).map(|t| t.len()).unwrap_or(0)
    }

    /// Export a satellite's replicated data as a dump renamed back to the
    /// satellite's own schema — the backup use case: "the hub itself
    /// could be used to regenerate the databases for the member
    /// instances" (§II-E4).
    pub fn regeneration_dump(&self, satellite: &str) -> Result<Vec<u8>> {
        let db = self.db.read();
        xdmod_warehouse::Snapshot::capture_schemas(&db, &[Self::schema_for(satellite)])?
            .into_renamed(&XdmodInstance::schema_name_of(satellite))?
            .to_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdmod_warehouse::{AggFn, Aggregate, ColumnType, SchemaBuilder, Value};

    /// Manually stage replicated-looking data into the hub db.
    fn hub_with_two_satellites() -> FederationHub {
        let mut hub = FederationHub::new("federation-hub");
        hub.register_satellite("x");
        hub.register_satellite("y");
        let db = hub.database();
        let mut db = db.write();
        for (sat, hours) in [("x", 10.0), ("y", 20.0)] {
            let schema = FederationHub::schema_for(sat);
            db.create_schema(&schema).unwrap();
            db.create_table(
                &schema,
                SchemaBuilder::new("jobfact")
                    .required("resource", ColumnType::Str)
                    .required("cpu_hours", ColumnType::Float)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            db.insert(
                &schema,
                "jobfact",
                vec![vec![Value::Str(format!("res-{sat}")), Value::Float(hours)]],
            )
            .unwrap();
        }
        drop(db);
        hub
    }

    #[test]
    fn federated_query_unions_satellites() {
        let hub = hub_with_two_satellites();
        let rs = hub
            .federated_query(
                RealmKind::Jobs,
                &Query::new().aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total")),
            )
            .unwrap();
        assert_eq!(rs.scalar_f64("total"), Some(30.0));
        assert_eq!(hub.federated_fact_rows(RealmKind::Jobs), 2);
    }

    #[test]
    fn query_instance_scopes_to_one_satellite() {
        let hub = hub_with_two_satellites();
        let rs = hub
            .query_instance(
                "x",
                RealmKind::Jobs,
                &Query::new().aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total")),
            )
            .unwrap();
        assert_eq!(rs.scalar_f64("total"), Some(10.0));
    }

    #[test]
    fn register_satellite_is_idempotent() {
        let mut hub = FederationHub::new("h");
        hub.register_satellite("x");
        hub.register_satellite("x");
        assert_eq!(hub.satellites(), &["x".to_owned()]);
    }

    #[test]
    fn federated_query_with_no_data_is_an_error() {
        let hub = FederationHub::new("h");
        let err = hub
            .federated_query(
                RealmKind::Jobs,
                &Query::new().aggregate(Aggregate::count("n")),
            )
            .unwrap_err();
        assert!(err.to_string().contains("HPC Jobs"));
        assert_eq!(hub.federated_fact_rows(RealmKind::Jobs), 0);
    }

    #[test]
    fn incompatible_satellite_layouts_are_detected() {
        let hub = hub_with_two_satellites();
        {
            let db = hub.database();
            let mut db = db.write();
            let schema = FederationHub::schema_for("z");
            db.create_schema(&schema).unwrap();
            db.create_table(
                &schema,
                SchemaBuilder::new("jobfact")
                    .required("different", ColumnType::Int)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            db.insert(&schema, "jobfact", vec![vec![Value::Int(1)]])
                .unwrap();
        }
        let mut hub = hub;
        hub.register_satellite("z");
        let err = hub
            .federated_query(
                RealmKind::Jobs,
                &Query::new().aggregate(Aggregate::count("n")),
            )
            .unwrap_err();
        assert!(err.to_string().contains("incompatible"));
    }

    #[test]
    fn schema_for_sanitizes() {
        assert_eq!(FederationHub::schema_for("ccr-x.y"), "inst_ccr_x_y");
    }
}

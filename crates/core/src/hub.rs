//! The federation hub.
//!
//! "Federation provides a combined, master view of job and performance
//! data collected from individual XDMoD instances. ... Once data is
//! ingested on the individual XDMoD instances, it undergoes live
//! replication to the central federation hub database, where it is then
//! aggregated as appropriate to the requirements of the whole collection"
//! (§II-A). The hub holds one warehouse schema per satellite (the
//! Tungsten rename-on-transfer convention), its **own** aggregation
//! levels (Table I's "Federation Hub" column), a multi-source SSO
//! gateway, and the federated identity map.

use crate::instance::XdmodInstance;
use crate::version::XdmodVersion;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use xdmod_auth::{AuthMode, IdentityMap, InstanceAuth};
use xdmod_realms::levels::AggregationLevelsConfig;
use xdmod_realms::{cloud as cloud_realm, jobs, storage, supremm, RealmKind};
use xdmod_telemetry::MetricsRegistry;
use xdmod_warehouse::{
    shared, AggregationOutputs, Database, LogPosition, PoolConfig, Query, Result, ResultSet,
    SharedDatabase, Table, WarehouseError,
};

/// A memoized federated-query result. Valid only while every satellite's
/// fact-table watermark and the hub's rebuild generation are unchanged;
/// any ingest, resync, or restore shifts the vector and forces a
/// recompute.
struct FedCacheEntry {
    watermarks: Vec<Option<LogPosition>>,
    generation: u64,
    result: ResultSet,
}

/// The central federation hub.
pub struct FederationHub {
    name: String,
    version: XdmodVersion,
    db: SharedDatabase,
    levels: AggregationLevelsConfig,
    satellites: Vec<String>,
    identity: IdentityMap,
    auth: InstanceAuth,
    telemetry: MetricsRegistry,
    fed_cache: Mutex<HashMap<(String, u64), FedCacheEntry>>,
}

impl FederationHub {
    /// Stand up a hub at [`XdmodVersion::CURRENT`].
    pub fn new(name: &str) -> Self {
        Self::with_version(name, XdmodVersion::CURRENT)
    }

    /// Stand up a hub at a specific version.
    ///
    /// The hub is born with a **live** metrics registry wired into its
    /// warehouse: the hub is the operations center of the federation, so
    /// its self-monitoring is on by default (satellites may stay dark).
    /// Replication links attach to the same registry when they join.
    pub fn with_version(name: &str, version: XdmodVersion) -> Self {
        let telemetry = MetricsRegistry::new();
        let mut db = Database::new();
        db.set_telemetry(telemetry.clone());
        FederationHub {
            name: name.to_owned(),
            version,
            db: shared(db),
            levels: AggregationLevelsConfig::new(),
            satellites: Vec::new(),
            identity: IdentityMap::new(),
            // The hub's gateway allows multiple SSO sources: "a federated
            // core instance ... may consist of data originating from
            // multiple institutions that may use varied protocols"
            // (§II-D3).
            auth: InstanceAuth::new(name, AuthMode::ServiceProvider, true),
            telemetry,
            fed_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The hub's metrics registry: warehouse, replication links, and
    /// federated-query instrumentation all report here.
    pub fn telemetry(&self) -> &MetricsRegistry {
        &self.telemetry
    }

    /// Swap the hub's registry (e.g. [`MetricsRegistry::disabled`] to
    /// turn self-monitoring off). The hub warehouse follows.
    pub fn set_telemetry(&mut self, telemetry: MetricsRegistry) {
        self.db.write().set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Rebuild the hub's warehouse on a durability backend, running crash
    /// recovery against whatever durable state the backend holds. Must be
    /// called before any members join (the recovered database *replaces*
    /// the current one — pool sizing is carried over, data is whatever
    /// the backend recovered).
    pub fn set_storage(&mut self, backend: Box<dyn xdmod_warehouse::StorageBackend>) -> Result<()> {
        let recovered = Database::open_with_telemetry(backend, self.telemetry.clone())?;
        let mut db = self.db.write();
        let pool = db.parallelism();
        let incremental = db.incremental_enabled();
        *db = recovered;
        db.set_parallelism(pool);
        db.set_incremental(incremental);
        Ok(())
    }

    /// Auto-snapshot (and compact) the hub warehouse's binlog every
    /// `every` records. See
    /// [`xdmod_warehouse::Database::set_snapshot_policy`].
    pub fn set_snapshot_policy(&mut self, every: Option<u64>) {
        self.db.write().set_snapshot_policy(every);
    }

    /// Enable cold-shard paging on the hub warehouse: fact tables are
    /// striped into day-bucket pages, cold pages spill to disk when the
    /// working-set byte budget fills, and queries fault them back in
    /// transparently. See [`xdmod_warehouse::Database::enable_paging`].
    pub fn enable_paging(&mut self, config: xdmod_warehouse::PagingConfig) -> Result<()> {
        self.db.write().enable_paging(config)
    }

    /// Hub name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Hub XDMoD version (satellites must match exactly).
    pub fn version(&self) -> XdmodVersion {
        self.version
    }

    /// Shared handle to the hub database (replication targets this).
    pub fn database(&self) -> SharedDatabase {
        Arc::clone(&self.db)
    }

    /// Hub-side schema name for a satellite: `inst_<name>`.
    pub fn schema_for(name: &str) -> String {
        format!("inst_{}", name.replace(['-', '.'], "_"))
    }

    /// The hub's own aggregation levels (Table I, "Federation Hub").
    pub fn levels(&self) -> &AggregationLevelsConfig {
        &self.levels
    }

    /// Replace the hub's aggregation levels. Follow with
    /// [`aggregate_all`](Self::aggregate_all) to "re-aggregate all raw
    /// federation data" (§II-C3).
    pub fn set_levels(&mut self, levels: AggregationLevelsConfig) {
        self.levels = levels;
    }

    /// Configure the worker pool the hub's warehouse uses for partitioned
    /// parallel aggregation (see [`xdmod_warehouse::PoolConfig`]).
    /// Determinism does not depend on this: any pool produces the same
    /// bytes, only the wall-clock changes.
    pub fn set_parallelism(&mut self, pool: PoolConfig) {
        self.db.write().set_parallelism(pool);
    }

    /// The hub warehouse's current aggregation pool configuration.
    pub fn parallelism(&self) -> PoolConfig {
        self.db.read().parallelism()
    }

    /// Enable or disable incremental (delta-fold) maintenance of the
    /// hub's materialized aggregates — see
    /// [`xdmod_warehouse::Database::set_incremental`]. On by default;
    /// disabling forces every [`aggregate_all`](Self::aggregate_all) to
    /// rebuild from the full fact tables (the operator escape hatch while
    /// diagnosing a discrepancy). Results are byte-identical either way.
    pub fn set_incremental_aggregation(&mut self, enabled: bool) {
        self.db.write().set_incremental(enabled);
    }

    /// Whether the hub's aggregates are maintained incrementally.
    pub fn incremental_aggregation(&self) -> bool {
        self.db.read().incremental_enabled()
    }

    /// Record a satellite as a member (called by the federation when a
    /// link is established).
    pub fn register_satellite(&mut self, name: &str) {
        if !self.satellites.iter().any(|s| s == name) {
            self.satellites.push(name.to_owned());
        }
    }

    /// Registered satellites, in join order.
    pub fn satellites(&self) -> &[String] {
        &self.satellites
    }

    /// The federated identity map (§II-D4's future work, implemented).
    pub fn identity_map(&self) -> &IdentityMap {
        &self.identity
    }

    /// Mutable identity map access.
    pub fn identity_map_mut(&mut self) -> &mut IdentityMap {
        &mut self.identity
    }

    /// The hub's authentication front door (multi-source SSO).
    pub fn auth(&self) -> &InstanceAuth {
        &self.auth
    }

    /// Mutable access to the hub's front door.
    pub fn auth_mut(&mut self) -> &mut InstanceAuth {
        &mut self.auth
    }

    // ------------------------------------------------------------------
    // Aggregation
    // ------------------------------------------------------------------

    /// Aggregate every satellite's replicated data under the **hub's**
    /// levels. Raw replicated rows are left untouched ("no data are lost
    /// or changed"); only `{fact}_by_{period}` tables are written into
    /// each satellite schema on the hub.
    ///
    /// Runs in two phases on the partitioned parallel engine: every
    /// satellite's rebuild is *planned* concurrently under a single read
    /// lock (one scoped worker per satellite, each folding its fact
    /// shards on the warehouse pool), then the planned outputs are
    /// *applied* under one write lock in stable satellite × spec order —
    /// so the result is byte-identical to a serial rebuild for any pool
    /// size. Satellites with no ingest since the last rebuild are
    /// answered from the aggregate cache without re-reading their rows.
    pub fn aggregate_all(&self) -> Result<()> {
        let specs = [
            jobs::aggregation_spec(&self.levels),
            supremm::aggregation_spec(),
            storage::aggregation_spec(),
            cloud_realm::aggregation_spec(&self.levels),
        ];
        // Phase 1: plan concurrently. Nothing is written, so readers
        // (charts, federated queries) stay unblocked during the fold.
        let db = self.db.read();
        let schemas: Vec<String> = self
            .satellites
            .iter()
            .map(|s| Self::schema_for(s))
            // Link established but nothing replicated yet: skip.
            .filter(|schema| db.has_schema(schema))
            .collect();
        let planned: Vec<Result<Vec<(usize, AggregationOutputs)>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = schemas
                .iter()
                .map(|schema| {
                    let db = &db;
                    let specs = &specs;
                    scope.spawn(move || -> Result<Vec<(usize, AggregationOutputs)>> {
                        let mut outs = Vec::new();
                        for (i, spec) in specs.iter().enumerate() {
                            // A replication filter may have excluded a
                            // realm's fact table entirely (e.g.
                            // SUPReMM); skip those.
                            if db.table(schema, &spec.fact_table).is_ok() {
                                outs.push((i, spec.plan_parallel(db, schema)?));
                            }
                        }
                        Ok(outs)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(WarehouseError::Io(
                            "satellite aggregation planner panicked".to_owned(),
                        ))
                    })
                })
                .collect()
        });
        drop(db);
        // Phase 2: install under one write lock, in stable order. A
        // ticket gone stale between the phases (concurrent ingest or
        // resync) recomputes under the lock instead of installing the
        // stale view.
        let mut db = self.db.write();
        for (schema, outs) in schemas.iter().zip(planned) {
            for (i, outputs) in outs? {
                specs[i].apply_outputs(&mut db, schema, outputs)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Federated query
    // ------------------------------------------------------------------

    /// Run a query against one satellite's replicated fact table.
    ///
    /// Timed as `hub_satellite_query_seconds{satellite=..}` and served
    /// through the warehouse's watermark-keyed aggregate cache: a repeat
    /// with no intervening ingest is an O(1) lookup, counted under
    /// `warehouse_aggcache_hits_total`.
    pub fn query_instance(
        &self,
        satellite: &str,
        realm: RealmKind,
        query: &Query,
    ) -> Result<ResultSet> {
        let span = self
            .telemetry
            .span("hub_satellite_query_seconds", &[("satellite", satellite)]);
        let db = self.db.read();
        let out = db.query_cached(
            &Self::schema_for(satellite),
            XdmodInstance::fact_table(realm),
            query,
        );
        span.finish();
        out
    }

    /// Run a query against the **union** of every satellite's fact table
    /// — "an integrated view of job and performance data collected from
    /// entirely independent XDMoD instances".
    ///
    /// Timed end-to-end as `hub_federated_query_seconds`; the per-satellite
    /// fan-out inside the union is broken out under
    /// `hub_satellite_query_seconds{satellite=..}`.
    ///
    /// Results are memoized against the vector of per-satellite fact
    /// watermarks plus the hub's rebuild generation: a repeat with no new
    /// replication traffic skips the union entirely (counted under
    /// `hub_query_cache_hits_total` / `hub_query_cache_misses_total`).
    pub fn federated_query(&self, realm: RealmKind, query: &Query) -> Result<ResultSet> {
        let span = self.telemetry.span("hub_federated_query_seconds", &[]);
        let fact = XdmodInstance::fact_table(realm);
        let key = (fact.to_owned(), query.fingerprint());
        let (watermarks, generation) = {
            let db = self.db.read();
            let marks = self
                .satellites
                .iter()
                .map(|s| db.table_watermark(&Self::schema_for(s), fact))
                .collect::<Vec<_>>();
            (marks, db.rebuild_generation())
        };
        // Clone the hit inside one statement so the cache guard drops at
        // the `;` — an `if let` scrutinee would hold it across the
        // telemetry counter (a cross-crate lock) until the end of the
        // whole construct.
        let hit = self.fed_cache.lock().get(&key).and_then(|entry| {
            (entry.watermarks == watermarks && entry.generation == generation)
                .then(|| entry.result.clone())
        });
        if let Some(result) = hit {
            self.telemetry
                .counter("hub_query_cache_hits_total", &[])
                .inc();
            span.finish();
            return Ok(result);
        }
        self.telemetry
            .counter("hub_query_cache_misses_total", &[])
            .inc();
        let out = self
            .union_fact_table(realm)
            .and_then(|union| query.run(&union));
        span.finish();
        let out = out?;
        self.fed_cache.lock().insert(
            key,
            FedCacheEntry {
                watermarks,
                generation,
                result: out.clone(),
            },
        );
        Ok(out)
    }

    /// A version stamp for a realm's federated answers: an FNV-1a fold of
    /// every satellite's fact-table watermark plus the hub's rebuild
    /// generation — exactly the vector [`FederationHub::federated_query`]
    /// memoizes against. Two calls return the same stamp iff no
    /// replication traffic, resync, or restore touched the realm in
    /// between, so the serving tier can derive an `ETag` from it and
    /// answer `If-None-Match` revalidations with 304 without running the
    /// query.
    pub fn result_version(&self, realm: RealmKind) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut fold = |byte: u8| h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        let fact = XdmodInstance::fact_table(realm);
        for b in fact.bytes() {
            fold(b);
        }
        let db = self.db.read();
        for sat in &self.satellites {
            for b in sat.bytes() {
                fold(b);
            }
            match db.table_watermark(&Self::schema_for(sat), fact) {
                None => fold(0xff),
                Some(pos) => {
                    fold(0x01);
                    for b in u64::from(pos.epoch)
                        .to_le_bytes()
                        .iter()
                        .chain(pos.seqno.to_le_bytes().iter())
                    {
                        fold(*b);
                    }
                }
            }
        }
        for b in db.rebuild_generation().to_le_bytes() {
            fold(b);
        }
        drop(fold);
        h
    }

    /// Materialize the union of a realm's fact rows across satellites.
    fn union_fact_table(&self, realm: RealmKind) -> Result<Table> {
        let fact = XdmodInstance::fact_table(realm);
        let db = self.db.read();
        let mut union: Option<Table> = None;
        for sat in &self.satellites {
            let schema = Self::schema_for(sat);
            if !db.has_schema(&schema) {
                continue;
            }
            let Ok(table) = db.table(&schema, fact) else {
                continue; // realm not federated from this satellite
            };
            let span = self
                .telemetry
                .span("hub_satellite_query_seconds", &[("satellite", sat)]);
            match &mut union {
                None => {
                    let mut t = Table::new(table.schema().clone());
                    t.insert_checked(table.rows()?.into_vec());
                    union = Some(t);
                }
                Some(u) => {
                    if u.schema() != table.schema() {
                        return Err(WarehouseError::SchemaMismatch(format!(
                            "satellite {sat} has an incompatible {fact} layout"
                        )));
                    }
                    u.insert_checked(table.rows()?.into_vec());
                }
            }
            span.finish();
        }
        union.ok_or_else(|| {
            WarehouseError::InvalidQuery(format!(
                "no satellite has replicated {} data",
                realm.display_name()
            ))
        })
    }

    /// Total replicated fact rows of a realm across the federation.
    pub fn federated_fact_rows(&self, realm: RealmKind) -> usize {
        self.union_fact_table(realm).map(|t| t.len()).unwrap_or(0)
    }

    /// Export a satellite's replicated data as a dump renamed back to the
    /// satellite's own schema — the backup use case: "the hub itself
    /// could be used to regenerate the databases for the member
    /// instances" (§II-E4).
    pub fn regeneration_dump(&self, satellite: &str) -> Result<Vec<u8>> {
        let db = self.db.read();
        xdmod_warehouse::Snapshot::capture_schemas(&db, &[Self::schema_for(satellite)])?
            .into_renamed(&XdmodInstance::schema_name_of(satellite))?
            .to_bytes()
    }

    // ------------------------------------------------------------------
    // Self-monitoring: the hub watches the federation watching the
    // satellites. Telemetry is materialized into an internal warehouse
    // schema and rendered through the same report pipeline as any other
    // XDMoD realm — the monitoring system eats its own dog food.
    // ------------------------------------------------------------------

    /// Snapshot the hub's telemetry into the internal `xdmod_meta` schema
    /// (`ops_counters`, `ops_gauges`, `ops_histograms`, `ops_lag_samples`)
    /// and render the operations dashboard: replication-lag timeseries per
    /// link plus query/aggregation latency quantiles.
    ///
    /// The meta tables are rebuilt from scratch on every call, so the
    /// dashboard and the queryable tables always agree. Writing them does
    /// bump the hub's own binlog counters — by design: self-monitoring
    /// traffic is traffic — but the snapshot is taken *before* the write,
    /// so a report never counts its own materialization.
    pub fn ops_report(&self) -> Result<xdmod_chart::Report> {
        let snap = self.telemetry.snapshot();
        self.materialize_meta(&snap)?;

        use xdmod_chart::{Dataset, Report, Section};
        let applied = snap.counter_total("replication_events_applied_total");
        let appends = snap.counter_total("warehouse_binlog_appends_total");
        let errors = snap.counter_total("replication_apply_errors_total");
        let mut report = Report::new(&format!("{} operations", self.name))
            .section(Section::Heading("Federation health".into()))
            .section(Section::Text(format!(
                "{} satellite(s); {applied} replication event(s) applied, \
                 {errors} apply error(s); {appends} hub binlog append(s); \
                 registry up {} ms.",
                self.satellites.len(),
                self.telemetry.elapsed_ms(),
            )));

        // Durability posture: which storage backend the hub warehouse is
        // on, plus the recovery/compaction counters the disk layer bumps.
        let compactions = snap.counter_total("warehouse_compactions_total");
        let truncated = snap.counter_total("warehouse_recovery_truncated_records_total");
        let snap_failures = snap.counter_total("warehouse_snapshot_failures_total");
        report = report
            .section(Section::Heading("Durability".into()))
            .section(Section::Text(format!(
                "storage backend `{}`; {compactions} binlog compaction(s); \
                 {truncated} torn record(s) truncated during recovery; \
                 {snap_failures} auto-snapshot failure(s).",
                self.db.read().storage_name(),
            )));

        // Residency posture: only rendered when cold-shard paging is on.
        // The point-in-time stats come from the residency manager (budget,
        // resident/spilled/lost pages); the motion counters (fault-ins,
        // evictions, spill writes) from the telemetry registry.
        if let Some(stats) = self.db.read().residency_stats() {
            let fault_ins = snap.counter_total("warehouse_page_faultins_total");
            let evictions = snap.counter_total("warehouse_page_evictions_total");
            let spill_writes = snap.counter_total("warehouse_page_spill_writes_total");
            let lost = snap.counter_total("warehouse_page_spill_lost_total");
            report = report
                .section(Section::Heading("Residency".into()))
                .section(Section::Text(format!(
                    "paging enabled: {} of {} byte(s) resident; \
                     {} resident / {} spilled / {} lost page(s); \
                     {fault_ins} fault-in(s); {evictions} eviction(s); \
                     {spill_writes} spill write(s); {lost} spill file(s) lost.",
                    stats.resident_bytes,
                    stats.budget_bytes,
                    stats.resident_pages,
                    stats.spilled_pages,
                    stats.lost_pages,
                )));
        }

        // Incremental aggregation posture: how much materialization work
        // the delta-fold engine saved, and how often it had to bail out
        // to a full rebuild (and why — the reason label distinguishes
        // resyncs from compaction races from fact rewrites).
        let folds = snap.counter_total("warehouse_delta_folds_total");
        let folded = snap.counter_total("warehouse_delta_folded_records_total");
        let cold = snap.counter_total("warehouse_delta_cold_builds_total");
        let fallbacks = snap.counter_total("warehouse_delta_fallback_rebuilds_total");
        report = report
            .section(Section::Heading("Incremental aggregation".into()))
            .section(Section::Text(format!(
                "delta-fold engine {}; {folds} incremental fold(s) covering \
                 {folded} binlog record(s); {cold} cold/full rebuild(s); \
                 {fallbacks} fallback(s) to full rebuild.",
                if self.db.read().incremental_enabled() {
                    "enabled"
                } else {
                    "disabled"
                },
            )));

        // Replication lag over time, one series per link, from the
        // `replication.lag` events the live replicators emit.
        let lag_events = snap
            .events
            .iter()
            .filter(|e| e.kind == "replication.lag")
            .collect::<Vec<_>>();
        if lag_events.is_empty() {
            report = report.section(Section::Text("No replication lag samples recorded.".into()));
        } else {
            let mut ds = Dataset::new("Replication lag", "events behind");
            ds.labels = lag_events
                .iter()
                .map(|e| format!("{:.1}s", e.elapsed_ms as f64 / 1000.0))
                .collect();
            let mut links: Vec<&str> = lag_events.iter().map(|e| e.message.as_str()).collect();
            links.sort_unstable();
            links.dedup();
            for link in links {
                let values = lag_events
                    .iter()
                    .map(|e| (e.message == link).then(|| e.field("lag_events")).flatten())
                    .collect();
                ds.push_series(link, values)
                    .expect("lag series aligned with labels"); // xc-allow: series built from the labels vector above
            }
            report = report.section(Section::Chart(ds));
        }

        // Latency quantiles for every timing histogram the hub has seen.
        if !snap.histograms.is_empty() {
            let mut ds = Dataset::new("Operation latency quantiles", "seconds");
            ds.labels = snap.histograms.iter().map(|(id, _)| id.render()).collect();
            let hists = || snap.histograms.iter().map(|(_, h)| h);
            let columns: [(&str, Vec<Option<f64>>); 5] = [
                ("count", hists().map(|h| Some(h.count as f64)).collect()),
                ("p50", hists().map(|h| h.p50()).collect()),
                ("p95", hists().map(|h| h.p95()).collect()),
                ("p99", hists().map(|h| h.p99()).collect()),
                ("max", hists().map(|h| Some(h.max)).collect()),
            ];
            for (column, values) in columns {
                ds.push_series(column, values)
                    .expect("quantile series aligned with labels"); // xc-allow: series built from the labels vector above
            }
            report = report.section(Section::Table(ds));
        }
        Ok(report)
    }

    /// Rebuild `xdmod_meta` from a registry snapshot so telemetry is
    /// queryable through the ordinary warehouse `Query` machinery.
    fn materialize_meta(&self, snap: &xdmod_telemetry::RegistrySnapshot) -> Result<()> {
        use xdmod_warehouse::{ColumnType, SchemaBuilder, Value};
        const SCHEMA: &str = "xdmod_meta";
        let mut db = self.db.write();
        if !db.has_schema(SCHEMA) {
            db.create_schema(SCHEMA)?;
            db.create_table(
                SCHEMA,
                SchemaBuilder::new("ops_counters")
                    .required("metric", ColumnType::Str)
                    .required("value", ColumnType::Int)
                    .build()?,
            )?;
            db.create_table(
                SCHEMA,
                SchemaBuilder::new("ops_gauges")
                    .required("metric", ColumnType::Str)
                    .required("value", ColumnType::Float)
                    .build()?,
            )?;
            db.create_table(
                SCHEMA,
                SchemaBuilder::new("ops_histograms")
                    .required("metric", ColumnType::Str)
                    .required("count", ColumnType::Int)
                    .required("sum", ColumnType::Float)
                    .required("max", ColumnType::Float)
                    .required("p50", ColumnType::Float)
                    .required("p95", ColumnType::Float)
                    .required("p99", ColumnType::Float)
                    .build()?,
            )?;
            db.create_table(
                SCHEMA,
                SchemaBuilder::new("ops_lag_samples")
                    .required("seq", ColumnType::Int)
                    .required("elapsed_ms", ColumnType::Int)
                    .required("link", ColumnType::Str)
                    .required("lag_events", ColumnType::Float)
                    .required("lag_seconds", ColumnType::Float) // xc-allow: truncate's page-slot mutexes are leaves under the db write lock held here
                    .build()?,
            )?;
        } else {
            for t in [
                "ops_counters",
                "ops_gauges",
                "ops_histograms",
                "ops_lag_samples",
            ] {
                db.truncate(SCHEMA, t)?;
            }
        }

        let counter_rows: Vec<_> = snap
            .counters
            .iter()
            .map(|(id, v)| vec![Value::Str(id.render()), Value::Int(*v as i64)])
            .collect();
        if !counter_rows.is_empty() {
            db.insert(SCHEMA, "ops_counters", counter_rows)?;
        }
        let gauge_rows: Vec<_> = snap
            .gauges
            .iter()
            .map(|(id, v)| vec![Value::Str(id.render()), Value::Float(*v)])
            .collect();
        if !gauge_rows.is_empty() {
            db.insert(SCHEMA, "ops_gauges", gauge_rows)?;
        }
        let hist_rows: Vec<_> = snap
            .histograms
            .iter()
            .map(|(id, h)| {
                vec![
                    Value::Str(id.render()),
                    Value::Int(h.count as i64),
                    Value::Float(h.sum),
                    Value::Float(h.max),
                    Value::Float(h.p50().unwrap_or(0.0)),
                    Value::Float(h.p95().unwrap_or(0.0)),
                    Value::Float(h.p99().unwrap_or(0.0)),
                ]
            })
            .collect();
        if !hist_rows.is_empty() {
            db.insert(SCHEMA, "ops_histograms", hist_rows)?;
        }
        let lag_rows: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.kind == "replication.lag")
            .map(|e| {
                vec![
                    Value::Int(e.seq as i64),
                    Value::Int(e.elapsed_ms as i64),
                    Value::Str(e.message.clone()),
                    Value::Float(e.field("lag_events").unwrap_or(0.0)),
                    Value::Float(e.field("lag_seconds").unwrap_or(0.0)),
                ]
            })
            .collect();
        if !lag_rows.is_empty() {
            db.insert(SCHEMA, "ops_lag_samples", lag_rows)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdmod_warehouse::{AggFn, Aggregate, ColumnType, SchemaBuilder, Value};

    /// Manually stage replicated-looking data into the hub db.
    fn hub_with_two_satellites() -> FederationHub {
        let mut hub = FederationHub::new("federation-hub");
        hub.register_satellite("x");
        hub.register_satellite("y");
        let db = hub.database();
        let mut db = db.write();
        for (sat, hours) in [("x", 10.0), ("y", 20.0)] {
            let schema = FederationHub::schema_for(sat);
            db.create_schema(&schema).unwrap();
            db.create_table(
                &schema,
                SchemaBuilder::new("jobfact")
                    .required("resource", ColumnType::Str)
                    .required("cpu_hours", ColumnType::Float)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            db.insert(
                &schema,
                "jobfact",
                vec![vec![Value::Str(format!("res-{sat}")), Value::Float(hours)]],
            )
            .unwrap();
        }
        drop(db);
        hub
    }

    #[test]
    fn federated_query_unions_satellites() {
        let hub = hub_with_two_satellites();
        let rs = hub
            .federated_query(
                RealmKind::Jobs,
                &Query::new().aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total")),
            )
            .unwrap();
        assert_eq!(rs.scalar_f64("total"), Some(30.0));
        assert_eq!(hub.federated_fact_rows(RealmKind::Jobs), 2);
    }

    #[test]
    fn query_instance_scopes_to_one_satellite() {
        let hub = hub_with_two_satellites();
        let rs = hub
            .query_instance(
                "x",
                RealmKind::Jobs,
                &Query::new().aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total")),
            )
            .unwrap();
        assert_eq!(rs.scalar_f64("total"), Some(10.0));
    }

    #[test]
    fn register_satellite_is_idempotent() {
        let mut hub = FederationHub::new("h");
        hub.register_satellite("x");
        hub.register_satellite("x");
        assert_eq!(hub.satellites(), &["x".to_owned()]);
    }

    #[test]
    fn federated_query_with_no_data_is_an_error() {
        let hub = FederationHub::new("h");
        let err = hub
            .federated_query(
                RealmKind::Jobs,
                &Query::new().aggregate(Aggregate::count("n")),
            )
            .unwrap_err();
        assert!(err.to_string().contains("HPC Jobs"));
        assert_eq!(hub.federated_fact_rows(RealmKind::Jobs), 0);
    }

    #[test]
    fn incompatible_satellite_layouts_are_detected() {
        let hub = hub_with_two_satellites();
        {
            let db = hub.database();
            let mut db = db.write();
            let schema = FederationHub::schema_for("z");
            db.create_schema(&schema).unwrap();
            db.create_table(
                &schema,
                SchemaBuilder::new("jobfact")
                    .required("different", ColumnType::Int)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            db.insert(&schema, "jobfact", vec![vec![Value::Int(1)]])
                .unwrap();
        }
        let mut hub = hub;
        hub.register_satellite("z");
        let err = hub
            .federated_query(
                RealmKind::Jobs,
                &Query::new().aggregate(Aggregate::count("n")),
            )
            .unwrap_err();
        assert!(err.to_string().contains("incompatible"));
    }

    #[test]
    fn schema_for_sanitizes() {
        assert_eq!(FederationHub::schema_for("ccr-x.y"), "inst_ccr_x_y");
    }

    #[test]
    fn hub_queries_are_timed_per_satellite() {
        let hub = hub_with_two_satellites();
        let q = Query::new().aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"));
        hub.query_instance("x", RealmKind::Jobs, &q).unwrap();
        hub.federated_query(RealmKind::Jobs, &q).unwrap();
        let snap = hub.telemetry().snapshot();
        // query_instance + the fan-out inside federated_query both hit x.
        let x = snap
            .histogram("hub_satellite_query_seconds", &[("satellite", "x")])
            .expect("satellite x timed");
        assert_eq!(x.count, 2);
        let y = snap
            .histogram("hub_satellite_query_seconds", &[("satellite", "y")])
            .expect("satellite y timed");
        assert_eq!(y.count, 1);
        let fed = snap
            .histogram("hub_federated_query_seconds", &[])
            .expect("federated query timed");
        assert_eq!(fed.count, 1);
        // Staging data through the shared db counted binlog appends.
        assert!(snap.counter_total("warehouse_binlog_appends_total") > 0);
    }

    #[test]
    fn ops_report_materializes_meta_and_renders() {
        let hub = hub_with_two_satellites();
        let q = Query::new().aggregate(Aggregate::count("n"));
        hub.federated_query(RealmKind::Jobs, &q).unwrap();
        // Seed a lag sample the way a live replicator would.
        hub.telemetry().event_with(
            "replication.lag",
            "x",
            &[("lag_events", 3.0), ("lag_seconds", 0.25)],
        );
        let report = hub.ops_report().unwrap();
        let text = report.render();
        assert!(text.contains("federation-hub operations"));
        assert!(text.contains("Durability"));
        assert!(text.contains("storage backend `memory`"));
        assert!(text.contains("Incremental aggregation"));
        assert!(text.contains("delta-fold engine enabled"));
        assert!(text.contains("Replication lag"));
        assert!(text.contains("Operation latency quantiles"));

        let db = hub.database();
        let db = db.read();
        assert!(db.table("xdmod_meta", "ops_counters").unwrap().len() > 0);
        assert!(db.table("xdmod_meta", "ops_histograms").unwrap().len() > 0);
        assert_eq!(db.table("xdmod_meta", "ops_lag_samples").unwrap().len(), 1);
        drop(db);

        // Second call rebuilds the meta schema instead of duplicating rows.
        hub.ops_report().unwrap();
        let db = hub.database();
        let db = db.read();
        assert_eq!(db.table("xdmod_meta", "ops_lag_samples").unwrap().len(), 1);
    }

    #[test]
    fn ops_report_shows_residency_only_when_paging_is_on() {
        let dir = std::env::temp_dir().join(format!("xdmod-hub-paging-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut hub = hub_with_two_satellites();
        // Unpaged hub: no Residency section.
        assert!(!hub.ops_report().unwrap().render().contains("Residency"));
        hub.enable_paging(xdmod_warehouse::PagingConfig::new(&dir).budget_bytes(1))
            .unwrap();
        // Force page motion: a federated query scans (and, at a one-byte
        // budget, immediately evicts) every satellite fact page.
        let q = Query::new().aggregate(Aggregate::count("n"));
        hub.federated_query(RealmKind::Jobs, &q).unwrap();
        let text = hub.ops_report().unwrap().render();
        assert!(text.contains("Residency"), "got: {text}");
        assert!(text.contains("paging enabled"));
        assert!(text.contains("fault-in(s)"));
        assert!(text.contains("eviction(s)"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Stage two satellites with full Jobs-realm fact tables so
    /// `aggregate_all` has something period-shaped to chew on. Values are
    /// dyadic rationals so float folds are exact in any order.
    fn staged_jobs_hub(pool: xdmod_warehouse::PoolConfig) -> FederationHub {
        let mut hub = FederationHub::new("h");
        hub.set_parallelism(pool);
        hub.register_satellite("x");
        hub.register_satellite("y");
        let db = hub.database();
        let mut db = db.write();
        let base = xdmod_warehouse::CivilDate::new(2017, 1, 1).to_epoch();
        for sat in ["x", "y"] {
            let schema = FederationHub::schema_for(sat);
            db.create_schema(&schema).unwrap();
            db.create_table(&schema, xdmod_realms::jobs::fact_schema())
                .unwrap();
            let rows: Vec<_> = (0..32i64)
                .map(|i| {
                    let t = base + i * 86_400;
                    vec![
                        Value::Int(i),
                        Value::Str(format!("res-{}", i % 3)),
                        Value::Str("u".into()),
                        Value::Str("pi".into()),
                        Value::Str(format!("q{}", i % 2)),
                        Value::Int(1 + i % 4),
                        Value::Int(8),
                        Value::Time(t),
                        Value::Time(t),
                        Value::Time(t + 3_600),
                        Value::Float(i as f64 / 64.0),
                        Value::Float(0.0),
                        Value::Float(i as f64 / 32.0),
                        Value::Float(i as f64 / 16.0),
                        Value::Str("0".into()),
                        Value::Null,
                    ]
                })
                .collect();
            db.insert(&schema, "jobfact", rows).unwrap();
        }
        drop(db);
        hub
    }

    #[test]
    fn parallel_aggregate_all_matches_serial_and_caches() {
        let parallel = staged_jobs_hub(xdmod_warehouse::PoolConfig::new(4).with_shards(8));
        let serial = staged_jobs_hub(xdmod_warehouse::PoolConfig::serial());
        parallel.aggregate_all().unwrap();
        serial.aggregate_all().unwrap();

        let spec = jobs::aggregation_spec(parallel.levels());
        for sat in ["x", "y"] {
            let schema = FederationHub::schema_for(sat);
            for &period in &spec.periods {
                let name = spec.table_name(period);
                let pdb = parallel.database();
                let sdb = serial.database();
                let (pdb, sdb) = (pdb.read(), sdb.read());
                assert_eq!(
                    pdb.table(&schema, &name).unwrap().content_checksum(),
                    sdb.table(&schema, &name).unwrap().content_checksum(),
                    "{schema}.{name} must be byte-identical across pool sizes"
                );
            }
        }

        // No new ingest: the repeat rebuild is answered from the cache.
        parallel.aggregate_all().unwrap();
        let snap = parallel.telemetry().snapshot();
        assert!(snap.counter_total("warehouse_aggcache_hits_total") > 0);
    }

    #[test]
    fn incremental_aggregate_all_folds_deltas_and_matches_full_rebuild() {
        let pool = xdmod_warehouse::PoolConfig::new(4).with_shards(8);
        let incr = staged_jobs_hub(pool);
        let mut full = staged_jobs_hub(pool);
        full.set_incremental_aggregation(false);
        assert!(incr.incremental_aggregation());
        assert!(!full.incremental_aggregation());
        incr.aggregate_all().unwrap();
        full.aggregate_all().unwrap();

        // A late day of jobs lands on satellite x; re-aggregate.
        let base = xdmod_warehouse::CivilDate::new(2017, 2, 10).to_epoch();
        let late_rows = || {
            (0..4i64)
                .map(|i| {
                    let t = base + i * 3_600;
                    vec![
                        Value::Int(100 + i),
                        Value::Str(format!("res-{}", i % 3)),
                        Value::Str("u".into()),
                        Value::Str("pi".into()),
                        Value::Str("q1".into()),
                        Value::Int(2),
                        Value::Int(8),
                        Value::Time(t),
                        Value::Time(t),
                        Value::Time(t + 1_800),
                        Value::Float(i as f64 / 64.0),
                        Value::Float(0.0),
                        Value::Float(i as f64 / 32.0),
                        Value::Float(i as f64 / 16.0),
                        Value::Str("0".into()),
                        Value::Null,
                    ]
                })
                .collect::<Vec<_>>()
        };
        for hub in [&incr, &full] {
            let db = hub.database();
            let mut db = db.write();
            db.insert(&FederationHub::schema_for("x"), "jobfact", late_rows())
                .unwrap();
        }
        incr.aggregate_all().unwrap();
        full.aggregate_all().unwrap();

        // The incremental hub folded the late rows; the disabled hub
        // rebuilt from scratch and never touched the delta engine.
        let isnap = incr.telemetry().snapshot();
        assert!(isnap.counter_total("warehouse_delta_folds_total") > 0);
        assert!(isnap.counter_total("warehouse_delta_folded_records_total") > 0);
        let fsnap = full.telemetry().snapshot();
        assert_eq!(fsnap.counter_total("warehouse_delta_folds_total"), 0);

        // Either way the materialized aggregates are byte-identical.
        let spec = jobs::aggregation_spec(incr.levels());
        for sat in ["x", "y"] {
            let schema = FederationHub::schema_for(sat);
            for &period in &spec.periods {
                let name = spec.table_name(period);
                let idb = incr.database();
                let fdb = full.database();
                let (idb, fdb) = (idb.read(), fdb.read());
                assert_eq!(
                    idb.table(&schema, &name).unwrap().content_checksum(),
                    fdb.table(&schema, &name).unwrap().content_checksum(),
                    "{schema}.{name} diverged between incremental and full rebuild"
                );
            }
        }
    }

    #[test]
    fn federated_query_cache_invalidates_on_ingest() {
        let hub = hub_with_two_satellites();
        let q = Query::new().aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"));
        for _ in 0..2 {
            let rs = hub.federated_query(RealmKind::Jobs, &q).unwrap();
            assert_eq!(rs.scalar_f64("total"), Some(30.0));
        }
        let snap = hub.telemetry().snapshot();
        assert_eq!(snap.counter_total("hub_query_cache_hits_total"), 1);
        assert_eq!(snap.counter_total("hub_query_cache_misses_total"), 1);

        // New replicated rows move satellite x's watermark: recompute.
        {
            let db = hub.database();
            let mut db = db.write();
            db.insert(
                &FederationHub::schema_for("x"),
                "jobfact",
                vec![vec![Value::Str("res-x".into()), Value::Float(5.0)]],
            )
            .unwrap();
        }
        let rs = hub.federated_query(RealmKind::Jobs, &q).unwrap();
        assert_eq!(rs.scalar_f64("total"), Some(35.0));
        let snap = hub.telemetry().snapshot();
        assert_eq!(snap.counter_total("hub_query_cache_hits_total"), 1);
        assert_eq!(snap.counter_total("hub_query_cache_misses_total"), 2);
    }

    #[test]
    fn result_version_moves_with_watermarks_and_differs_per_realm() {
        let hub = hub_with_two_satellites();
        let v1 = hub.result_version(RealmKind::Jobs);
        assert_eq!(hub.result_version(RealmKind::Jobs), v1); // stable at rest
        assert_ne!(hub.result_version(RealmKind::Storage), v1);

        // New replicated rows move a watermark: the stamp must change.
        {
            let db = hub.database();
            let mut db = db.write();
            db.insert(
                &FederationHub::schema_for("x"),
                "jobfact",
                vec![vec![Value::Str("res-x".into()), Value::Float(5.0)]],
            )
            .unwrap();
        }
        let v2 = hub.result_version(RealmKind::Jobs);
        assert_ne!(v2, v1);
        assert_eq!(hub.result_version(RealmKind::Jobs), v2);
    }

    #[test]
    fn query_instance_serves_repeats_from_the_aggregate_cache() {
        let hub = hub_with_two_satellites();
        let q = Query::new().aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"));
        hub.query_instance("x", RealmKind::Jobs, &q).unwrap();
        let rs = hub.query_instance("x", RealmKind::Jobs, &q).unwrap();
        assert_eq!(rs.scalar_f64("total"), Some(10.0));
        let snap = hub.telemetry().snapshot();
        assert_eq!(
            snap.counter("warehouse_aggcache_hits_total", &[("table", "jobfact")]),
            Some(1)
        );
    }

    #[test]
    fn disabling_hub_telemetry_silences_everything() {
        let mut hub = hub_with_two_satellites();
        hub.set_telemetry(xdmod_telemetry::MetricsRegistry::disabled());
        let q = Query::new().aggregate(Aggregate::count("n"));
        hub.federated_query(RealmKind::Jobs, &q).unwrap();
        assert!(hub.telemetry().snapshot().histograms.is_empty());
        assert_eq!(hub.telemetry().prometheus_text(), "");
    }
}

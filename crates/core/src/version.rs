//! XDMoD version compatibility.
//!
//! "The only requirement is that each individual XDMoD instance must run
//! the same version of XDMoD." (§II-A). Federation membership is gated on
//! an exact version match.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An XDMoD release version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct XdmodVersion {
    /// Major release.
    pub major: u32,
    /// Minor release.
    pub minor: u32,
    /// Patch release.
    pub patch: u32,
}

impl XdmodVersion {
    /// The version this workspace models: Open XDMoD 8.0, the release
    /// cycle the federation module was developed in (SSO shipped in 6.5,
    /// §II-D2).
    pub const CURRENT: XdmodVersion = XdmodVersion {
        major: 8,
        minor: 0,
        patch: 0,
    };

    /// First release with SSO support (paper: "since XDMoD version 6.5").
    pub const SSO_INTRODUCED: XdmodVersion = XdmodVersion {
        major: 6,
        minor: 5,
        patch: 0,
    };

    /// Construct a version.
    pub fn new(major: u32, minor: u32, patch: u32) -> Self {
        XdmodVersion {
            major,
            minor,
            patch,
        }
    }

    /// Whether an instance at this version may join a federation whose
    /// hub runs `hub` — exact match required.
    pub fn federates_with(self, hub: XdmodVersion) -> bool {
        self == hub
    }

    /// Whether this version offers SSO.
    pub fn supports_sso(self) -> bool {
        self >= Self::SSO_INTRODUCED
    }

    /// Parse `MAJOR.MINOR.PATCH`.
    pub fn parse(s: &str) -> Option<XdmodVersion> {
        let mut parts = s.split('.');
        let major = parts.next()?.parse().ok()?;
        let minor = parts.next()?.parse().ok()?;
        let patch = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(XdmodVersion::new(major, minor, patch))
    }
}

impl fmt::Display for XdmodVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_required_for_federation() {
        let v = XdmodVersion::CURRENT;
        assert!(v.federates_with(XdmodVersion::CURRENT));
        assert!(!v.federates_with(XdmodVersion::new(8, 0, 1)));
        assert!(!v.federates_with(XdmodVersion::new(7, 5, 0)));
    }

    #[test]
    fn sso_supported_since_6_5() {
        assert!(XdmodVersion::new(6, 5, 0).supports_sso());
        assert!(XdmodVersion::new(8, 0, 0).supports_sso());
        assert!(!XdmodVersion::new(6, 0, 0).supports_sso());
        assert!(!XdmodVersion::new(5, 6, 0).supports_sso());
    }

    #[test]
    fn parse_and_display_round_trip() {
        let v = XdmodVersion::parse("8.0.0").unwrap();
        assert_eq!(v, XdmodVersion::CURRENT);
        assert_eq!(v.to_string(), "8.0.0");
        assert!(XdmodVersion::parse("8.0").is_none());
        assert!(XdmodVersion::parse("8.0.0.1").is_none());
        assert!(XdmodVersion::parse("a.b.c").is_none());
    }

    #[test]
    fn ordering_is_semver_like() {
        assert!(XdmodVersion::new(6, 5, 0) > XdmodVersion::new(6, 4, 9));
        assert!(XdmodVersion::new(7, 0, 0) > XdmodVersion::new(6, 9, 9));
    }
}

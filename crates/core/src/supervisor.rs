//! Link supervision: the self-healing layer over federation links.
//!
//! The paper's federation assumes links that quietly keep working; real
//! affiliated sites drop off networks, crash mid-write, and come back
//! with repaired (shorter) binlogs. This module defines the *vocabulary*
//! of supervision — health states, the supervisor's policy knobs, and
//! the per-tick report — while the mechanics live on
//! [`Federation::supervise`](crate::federation::Federation::supervise),
//! which owns the links.
//!
//! Supervision is **tick-driven**, not threaded: each call to
//! `supervise` drives every non-quarantined link once, applying the
//! retry policy synchronously. That keeps fault-injection runs fully
//! deterministic — the same seeded
//! [`FaultPlan`](xdmod_chaos::FaultPlan) always meets the same sequence
//! of link operations.
//!
//! The state machine per member:
//!
//! ```text
//!            poll ok                      poll err (failures < max)
//!   Live  ◀───────────  Stale(age)  ◀──────────────────────┐
//!    │ ▲                    │                               │
//!    │ └── resync on        │ failures reaches              │
//!    │     divergence /     ▼ max_failures                  │
//!    │     source repair  Quarantined ── reinstate_member ──┘
//!    │                      (parked: sync/supervise skip it)
//!    ▼
//!   Lagging(behind)   (healthy but behind; tight links only)
//! ```

use std::fmt;
use std::time::{Duration, Instant};
use xdmod_replication::RetryPolicy;

/// Health of one federation member's link, as reported by
/// [`Federation::health`](crate::federation::Federation::health) and
/// annotated in the degraded-mode ops report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberHealth {
    /// The last drive of the link succeeded and it is caught up.
    Live,
    /// The link works but its watermark trails the source binlog head.
    Lagging {
        /// Binlog events between the watermark and the source head.
        behind: u64,
    },
    /// The link is currently failing (or has not succeeded recently),
    /// but has not yet exhausted the supervisor's patience.
    Stale {
        /// Seconds since the last successful drive (0 if never driven).
        age_secs: u64,
    },
    /// The supervisor gave up on the link after repeated failures; it is
    /// parked and skipped by `sync`/`supervise` until
    /// [`reinstate_member`](crate::federation::Federation::reinstate_member).
    Quarantined,
}

impl MemberHealth {
    /// Live or merely lagging — the member still participates.
    pub fn is_healthy(&self) -> bool {
        matches!(self, MemberHealth::Live | MemberHealth::Lagging { .. })
    }
}

impl fmt::Display for MemberHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemberHealth::Live => write!(f, "live"),
            MemberHealth::Lagging { behind } => write!(f, "lagging({behind} behind)"),
            MemberHealth::Stale { age_secs } => write!(f, "stale({age_secs}s)"),
            MemberHealth::Quarantined => write!(f, "quarantined"),
        }
    }
}

/// Knobs of the supervision loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Retry behaviour for one tick's drive of a polled link, and the
    /// policy handed to relaunched live workers.
    pub retry: RetryPolicy,
    /// Consecutive failed ticks before a member is quarantined.
    pub max_failures: u32,
    /// Events of lag a tight link may carry and still count as
    /// [`MemberHealth::Live`]; beyond it the member reads as `Lagging`.
    pub lag_threshold: u64,
    /// A member whose last success is older than this reads as `Stale`
    /// even if no tick has failed outright (e.g. a wedged live worker).
    pub stale_after: Duration,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            retry: RetryPolicy::default(),
            max_failures: 3,
            lag_threshold: 0,
            stale_after: Duration::from_secs(300),
        }
    }
}

impl SupervisorPolicy {
    /// Quarantine after `n` consecutive failed ticks.
    pub fn with_max_failures(mut self, n: u32) -> Self {
        self.max_failures = n;
        self
    }

    /// Use `retry` when driving links.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// What one supervision tick did to (and observed about) one member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberReport {
    /// Member name.
    pub name: String,
    /// Health after this tick.
    pub health: MemberHealth,
    /// A dead live worker was detected and the link was rebuilt from its
    /// resumable watermark.
    pub restarted: bool,
    /// The link had diverged (or its source repaired a damaged binlog
    /// tail) and the hub schema was resynced from the source tables.
    pub resynced: bool,
    /// This tick is the one that moved the member into quarantine.
    pub quarantined_now: bool,
    /// The error that made this tick fail, if it did.
    pub error: Option<String>,
}

/// One [`supervise`](crate::federation::Federation::supervise) pass over
/// every member.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SupervisionReport {
    /// Per-member outcomes, in federation join order.
    pub members: Vec<MemberReport>,
}

impl SupervisionReport {
    /// Health of `name` after this tick, if it is a member.
    pub fn health_of(&self, name: &str) -> Option<MemberHealth> {
        self.members
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.health)
    }

    /// Names of members currently quarantined.
    pub fn quarantined(&self) -> Vec<&str> {
        self.members
            .iter()
            .filter(|m| m.health == MemberHealth::Quarantined)
            .map(|m| m.name.as_str())
            .collect()
    }

    /// True when every member is live or merely lagging.
    pub fn all_healthy(&self) -> bool {
        self.members.iter().all(|m| m.health.is_healthy())
    }
}

impl fmt::Display for SupervisionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in &self.members {
            write!(f, "{}: {}", m.name, m.health)?;
            if m.restarted {
                write!(f, " [restarted]")?;
            }
            if m.resynced {
                write!(f, " [resynced]")?;
            }
            if let Some(e) = &m.error {
                write!(f, " ({e})")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Per-member supervision bookkeeping, owned by the federation.
#[derive(Debug, Default)]
pub(crate) struct SupervisionState {
    /// Consecutive failed ticks (reset by a success).
    pub(crate) failures: u32,
    /// Parked by the supervisor; skipped until reinstated.
    pub(crate) quarantined: bool,
    /// When a tick last succeeded for this member.
    pub(crate) last_ok: Option<Instant>,
    /// `LinkStats::source_repairs` at the last tick, to detect a source
    /// binlog tail repair (lost records) since then.
    pub(crate) repairs_seen: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_displays_compactly() {
        assert_eq!(MemberHealth::Live.to_string(), "live");
        assert_eq!(
            MemberHealth::Lagging { behind: 7 }.to_string(),
            "lagging(7 behind)"
        );
        assert_eq!(
            MemberHealth::Stale { age_secs: 12 }.to_string(),
            "stale(12s)"
        );
        assert_eq!(MemberHealth::Quarantined.to_string(), "quarantined");
    }

    #[test]
    fn healthiness_partition() {
        assert!(MemberHealth::Live.is_healthy());
        assert!(MemberHealth::Lagging { behind: 1 }.is_healthy());
        assert!(!MemberHealth::Stale { age_secs: 0 }.is_healthy());
        assert!(!MemberHealth::Quarantined.is_healthy());
    }

    #[test]
    fn report_helpers() {
        let report = SupervisionReport {
            members: vec![
                MemberReport {
                    name: "x".into(),
                    health: MemberHealth::Live,
                    restarted: false,
                    resynced: true,
                    quarantined_now: false,
                    error: None,
                },
                MemberReport {
                    name: "z".into(),
                    health: MemberHealth::Quarantined,
                    restarted: false,
                    resynced: false,
                    quarantined_now: true,
                    error: Some("injected link-down".into()),
                },
            ],
        };
        assert_eq!(report.health_of("x"), Some(MemberHealth::Live));
        assert_eq!(report.health_of("z"), Some(MemberHealth::Quarantined));
        assert_eq!(report.health_of("missing"), None);
        assert_eq!(report.quarantined(), vec!["z"]);
        assert!(!report.all_healthy());
        let text = report.to_string();
        assert!(text.contains("x: live [resynced]"));
        assert!(text.contains("z: quarantined"));
    }

    #[test]
    fn policy_defaults_are_patient_but_finite() {
        let p = SupervisorPolicy::default();
        assert_eq!(p.max_failures, 3);
        assert_eq!(p.lag_threshold, 0);
        assert!(p.stale_after > Duration::ZERO);
        let p = p.with_max_failures(1).with_retry(RetryPolicy::no_retries());
        assert_eq!(p.max_failures, 1);
        assert_eq!(p.retry.max_attempts, 0);
    }
}

//! Seeded paging soak: eviction storms and spill-file chaos.
//!
//! Two scenarios drive the cold-shard paging engine well past its
//! working-set budget:
//!
//! 1. **Eviction storm** — a seeded interleaving of inserts and queries
//!    against a pathologically small budget, checked after *every*
//!    operation: resident bytes never exceed the budget at an operation
//!    boundary, every query result is byte-identical to an unpaged twin
//!    database fed the same rows, and the fault-in/eviction counters
//!    actually moved.
//! 2. **Spill chaos** — silent spill-file damage (bit flips, torn
//!    writes, dropped fsyncs) and loud transient I/O injected at seeded
//!    spill reads and writes. Damage must surface as
//!    [`WarehouseError::SpillLost`] or a retriable I/O error — never as
//!    wrong rows — and [`Database::repair_paging`] must rebuild the
//!    exact pre-damage state from the write-ahead log.
//!
//! The run is parameterized by `CHAOS_SEED` and, when
//! `PAGING_SOAK_REPORT` names a path, writes a JSON report of every
//! case (same shape as the crash-recovery soak) for CI to archive.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use xdmod_chaos::{DeterministicRng, FaultKind, FaultPlan, FaultPoint, FaultSpec};
use xdmod_telemetry::MetricsRegistry;
use xdmod_warehouse::{
    AggFn, Aggregate, ColumnType, Database, DiskBackend, DiskOptions, PagingConfig, Period, Query,
    Row, SchemaBuilder, TableSchema, Value, WarehouseError,
};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("xdmod-pagingsoak-{}-{tag}-{n}", std::process::id()))
}

fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn fact() -> TableSchema {
    SchemaBuilder::new("jobfact")
        .required("resource", ColumnType::Str)
        .required("end_time", ColumnType::Time)
        .required("cpu_hours", ColumnType::Float)
        .build()
        .expect("static schema literal is valid")
}

/// A seeded batch of job rows spread over ~45 day buckets so every page
/// of the table sees traffic. `cpu_hours` values are dyadic rationals,
/// so float sums are exact and twin comparisons are byte-strict.
fn random_batch(rng: &mut DeterministicRng, max_rows: u64) -> Vec<Row> {
    let n = rng.gen_range(1, max_rows + 1);
    (0..n)
        .map(|_| {
            vec![
                Value::Str(format!("res-{}", rng.gen_range(0, 5))),
                Value::Time(86_400 * rng.gen_range(0, 45) as i64),
                Value::Float(rng.gen_range(0, 4096) as f64 / 8.0),
            ]
        })
        .collect()
}

/// Full-table scan: groups every page's rows by resource.
fn by_resource() -> Query {
    Query::new()
        .group_by_column("resource")
        .aggregate(Aggregate::count("n"))
        .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"))
}

fn by_day() -> Query {
    Query::new()
        .group_by_period("end_time", Period::Day)
        .aggregate(Aggregate::count("n"))
        .aggregate(Aggregate::of(AggFn::Max, "cpu_hours", "peak"))
}

struct CaseReport {
    scenario: &'static str,
    fault: String,
    op: u64,
    outcome: String,
}

static REPORT: Mutex<Vec<CaseReport>> = Mutex::new(Vec::new());

fn record_case(scenario: &'static str, fault: impl Into<String>, op: u64, outcome: String) {
    REPORT.lock().expect("report lock").push(CaseReport {
        scenario,
        fault: fault.into(),
        op,
        outcome,
    });
}

/// Serialize the accumulated cases to `PAGING_SOAK_REPORT` when set (the
/// CI soak job archives it). Called from each scenario; the file
/// converges to the union of whatever ran.
fn flush_report() {
    let Ok(path) = std::env::var("PAGING_SOAK_REPORT") else {
        return;
    };
    let report = REPORT.lock().expect("report lock");
    let cases: Vec<String> = report
        .iter()
        .map(|c| {
            format!(
                r#"{{"scenario":"{}","fault":"{}","op":{},"outcome":"{}"}}"#,
                c.scenario, c.fault, c.op, c.outcome
            )
        })
        .collect();
    let doc = format!(
        r#"{{"seed":{},"cases":[{}],"total":{}}}"#,
        seed(),
        cases.join(","),
        report.len(),
    );
    let _ = std::fs::write(&path, doc);
}

#[test]
fn eviction_storm_stays_within_budget_and_serves_exact_results() {
    const BUDGET: u64 = 2048;
    const OPS: u64 = 90;
    let seed = seed();
    let mut rng = DeterministicRng::new(seed);
    let dir = temp_dir("storm");
    let reg = MetricsRegistry::new();

    let mut paged = Database::new();
    paged.set_telemetry(reg.clone());
    paged
        .enable_paging(
            PagingConfig::new(&dir)
                .budget_bytes(BUDGET)
                .pages_per_table(8),
        )
        .expect("enable paging");
    let mut twin = Database::new();
    for db in [&mut paged, &mut twin] {
        db.create_schema("s").expect("create schema");
        db.create_table("s", fact()).expect("create table");
    }

    let mut inserted = 0u64;
    for op in 1..=OPS {
        if inserted == 0 || rng.gen_range(0, 10) < 6 {
            let batch = random_batch(&mut rng, 8);
            inserted += batch.len() as u64;
            paged.insert("s", "jobfact", batch.clone()).expect("insert");
            twin.insert("s", "jobfact", batch).expect("twin insert");
        } else {
            let query = if rng.gen_range(0, 2) == 0 {
                by_resource()
            } else {
                by_day()
            };
            let got = paged
                .query_sharded("s", "jobfact", &query)
                .expect("paged query");
            let want = twin
                .query_sharded("s", "jobfact", &query)
                .expect("twin query");
            assert_eq!(got, want, "op {op} (seed {seed}): paged result diverged");
        }
        let stats = paged.residency_stats().expect("paging is on");
        assert!(
            stats.resident_bytes <= BUDGET,
            "op {op} (seed {seed}): {} resident bytes exceed the {BUDGET}-byte budget ({stats:?})",
            stats.resident_bytes,
        );
    }

    let stats = paged.residency_stats().expect("paging is on");
    assert!(stats.evictions > 0, "storm never evicted: {stats:?}");
    assert!(stats.fault_ins > 0, "storm never faulted in: {stats:?}");
    assert!(stats.spill_writes > 0, "storm never spilled: {stats:?}");
    assert_eq!(
        stats.lost_pages, 0,
        "no faults injected, no page may be lost"
    );
    let snap = reg.snapshot();
    assert!(snap.counter_total("warehouse_page_evictions_total") > 0);
    assert!(snap.counter_total("warehouse_page_faultins_total") > 0);
    assert!(snap.counter_total("warehouse_page_pins_total") > 0);

    let got = paged.table("s", "jobfact").expect("paged table");
    let want = twin.table("s", "jobfact").expect("twin table");
    assert_eq!(got.len(), want.len(), "row count parity");
    assert_eq!(
        got.content_checksum(),
        want.content_checksum(),
        "checksum parity after the storm"
    );

    record_case(
        "eviction-storm",
        "none",
        OPS,
        format!(
            "resident<= {BUDGET}B every op; {} evictions; {} fault-ins; {} rows",
            stats.evictions, stats.fault_ins, inserted
        ),
    );
    flush_report();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spill_chaos_surfaces_loudly_and_repairs_from_the_log() {
    let seed = seed();
    let mut rng = DeterministicRng::new(seed ^ 0xD1CE_5EED);
    let dir = temp_dir("chaos");
    let opts = DiskOptions::new(&dir).fsync(false).segment_max_bytes(256);
    let mut paged =
        Database::open(Box::new(DiskBackend::open(opts).expect("open backend"))).expect("open db");
    paged
        .enable_paging(
            PagingConfig::new(dir.join("paging"))
                .budget_bytes(1)
                .pages_per_table(6),
        )
        .expect("enable paging");
    let mut twin = Database::new();
    for db in [&mut paged, &mut twin] {
        db.create_schema("s").expect("create schema");
        db.create_table("s", fact()).expect("create table");
    }

    // Phase 1 guarantees >= 30 spill-write consultations (budget 1 spills
    // every insert), so every seeded write fault below actually fires.
    let plan = FaultPlan::new()
        .with(FaultSpec::at_ops(
            FaultPoint::SpillWrite,
            FaultKind::CorruptTailByte,
            &[2, 9, 17],
        ))
        .with(FaultSpec::at_ops(
            FaultPoint::SpillWrite,
            FaultKind::TruncateTail {
                bytes: 1 + seed % 5,
            },
            &[5, 23],
        ))
        .with(FaultSpec::at_ops(
            FaultPoint::SpillWrite,
            FaultKind::DropFsync,
            &[12, 27],
        ))
        .with(FaultSpec::at_ops(
            FaultPoint::SpillWrite,
            FaultKind::Transient,
            &[7, 19],
        ))
        .with(FaultSpec::at_ops(
            FaultPoint::SpillRead,
            FaultKind::Transient,
            &[3, 11],
        ))
        .with(FaultSpec::at_ops(
            FaultPoint::SpillRead,
            FaultKind::CorruptTailByte,
            &[6],
        ));
    paged.set_fault_injector(plan.injector(seed), "paging");

    for _ in 1..=30 {
        let batch = random_batch(&mut rng, 6);
        paged.insert("s", "jobfact", batch.clone()).expect("insert");
        twin.insert("s", "jobfact", batch).expect("twin insert");
    }

    // Phase 2: queries race the damaged spill files. A query either
    // returns the exact twin result, fails loudly with a retriable
    // injected I/O error, or declares a page lost — wrong rows never.
    let mut lost_seen = 0u64;
    let mut transient_seen = 0u64;
    for op in 1..=24u64 {
        if rng.gen_range(0, 3) == 0 {
            let batch = random_batch(&mut rng, 6);
            paged.insert("s", "jobfact", batch.clone()).expect("insert");
            twin.insert("s", "jobfact", batch).expect("twin insert");
            continue;
        }
        let query = if rng.gen_range(0, 2) == 0 {
            by_resource()
        } else {
            by_day()
        };
        match paged.query_sharded("s", "jobfact", &query) {
            Ok(got) => {
                let want = twin
                    .query_sharded("s", "jobfact", &query)
                    .expect("twin query");
                assert_eq!(
                    got, want,
                    "op {op} (seed {seed}): damaged store served wrong rows"
                );
            }
            Err(WarehouseError::SpillLost { table, page }) => {
                lost_seen += 1;
                record_case(
                    "spill-chaos",
                    "spill-lost",
                    op,
                    format!("query refused: {table} page {page} lost"),
                );
            }
            Err(WarehouseError::Io(msg)) => {
                assert!(
                    msg.contains("injected"),
                    "op {op} (seed {seed}): unexpected I/O error: {msg}"
                );
                transient_seen += 1;
                record_case(
                    "spill-chaos",
                    "transient-io",
                    op,
                    "query failed retriably".into(),
                );
            }
            Err(other) => panic!("op {op} (seed {seed}): unexpected error class: {other}"),
        }
    }
    paged.clear_fault_injector();

    // The bit flip at write consultation 2 corrupted a real spill file,
    // and nothing short of a WAL rebuild may heal it — a full scan must
    // refuse with SpillLost rather than serve damaged bytes.
    let pre_repair = paged.query_sharded("s", "jobfact", &by_resource());
    assert!(
        matches!(pre_repair, Err(WarehouseError::SpillLost { .. })),
        "seed {seed}: injected corruption must surface as SpillLost, got {pre_repair:?}"
    );

    paged.repair_paging().expect("repair rebuilds from the log");
    assert!(!paged.has_lost_pages(), "repair left lost pages behind");
    assert!(
        paged.residency_stats().is_some(),
        "repair must re-enable paging"
    );
    for query in [by_resource(), by_day()] {
        let got = paged
            .query_sharded("s", "jobfact", &query)
            .expect("post-repair query");
        let want = twin
            .query_sharded("s", "jobfact", &query)
            .expect("twin query");
        assert_eq!(got, want, "seed {seed}: post-repair result diverged");
    }
    let got = paged.table("s", "jobfact").expect("paged table");
    let want = twin.table("s", "jobfact").expect("twin table");
    assert_eq!(got.len(), want.len(), "post-repair row count parity");
    assert_eq!(
        got.content_checksum(),
        want.content_checksum(),
        "post-repair checksum parity"
    );
    let stats = paged.residency_stats().expect("paging is on");
    assert_eq!(stats.lost_pages, 0, "post-repair stats still count losses");

    record_case(
        "spill-chaos",
        "all-clear",
        0,
        format!(
            "repaired from WAL after {lost_seen} lost + {transient_seen} transient observations"
        ),
    );
    flush_report();
    let _ = std::fs::remove_dir_all(&dir);
}

//! Property-based tests colocated with the warehouse crate, covering the
//! storage and query invariants the rest of the workspace leans on.

use proptest::prelude::*;
use xdmod_warehouse::{
    AggFn, Aggregate, ColumnType, Database, LogPosition, OrderBy, Predicate, Query,
    SchemaBuilder, Table, Value,
};

fn small_table(keys: &[u8], values: &[f64]) -> Table {
    let mut t = Table::new(
        SchemaBuilder::new("t")
            .required("k", ColumnType::Str)
            .required("v", ColumnType::Float)
            .nullable("opt", ColumnType::Float)
            .build()
            .unwrap(),
    );
    let n = keys.len().min(values.len());
    t.insert_batch(
        (0..n)
            .map(|i| {
                vec![
                    Value::Str(format!("k{}", keys[i])),
                    Value::Float(values[i]),
                    if i % 3 == 0 {
                        Value::Null
                    } else {
                        Value::Float(values[i] * 2.0)
                    },
                ]
            })
            .collect(),
    )
    .unwrap();
    t
}

proptest! {
    /// Filters can only shrink the matched row set, never grow it.
    #[test]
    fn filters_are_monotone(keys in prop::collection::vec(0u8..4, 0..100),
                            values in prop::collection::vec(-100.0f64..100.0, 0..100),
                            threshold in -100.0f64..100.0) {
        let t = small_table(&keys, &values);
        let all = Query::new()
            .aggregate(Aggregate::count("n"))
            .run(&t)
            .unwrap()
            .scalar_f64("n")
            .unwrap();
        let filtered = Query::new()
            .filter(Predicate::Range { column: "v".into(), min: Some(threshold), max: None })
            .aggregate(Aggregate::count("n"))
            .run(&t)
            .unwrap()
            .scalar_f64("n")
            .unwrap();
        prop_assert!(filtered <= all);
        // Complementary filters partition the rows exactly.
        let complement = Query::new()
            .filter(Predicate::Range { column: "v".into(), min: None, max: Some(threshold) })
            .aggregate(Aggregate::count("n"))
            .run(&t)
            .unwrap()
            .scalar_f64("n")
            .unwrap();
        prop_assert_eq!(filtered + complement, all);
    }

    /// MIN ≤ AVG ≤ MAX whenever any non-NULL value exists.
    #[test]
    fn min_avg_max_ordering(keys in prop::collection::vec(0u8..3, 1..80),
                            values in prop::collection::vec(-1e9f64..1e9, 1..80)) {
        let t = small_table(&keys, &values);
        let rs = Query::new()
            .aggregate(Aggregate::of(AggFn::Min, "v", "lo"))
            .aggregate(Aggregate::of(AggFn::Avg, "v", "mid"))
            .aggregate(Aggregate::of(AggFn::Max, "v", "hi"))
            .run(&t)
            .unwrap();
        let lo = rs.scalar_f64("lo").unwrap();
        let mid = rs.scalar_f64("mid").unwrap();
        let hi = rs.scalar_f64("hi").unwrap();
        let eps = 1e-9 * (1.0 + hi.abs() + lo.abs());
        prop_assert!(lo <= mid + eps);
        prop_assert!(mid <= hi + eps);
    }

    /// NULLs never contribute to Sum/Avg but Count counts rows.
    #[test]
    fn null_semantics(keys in prop::collection::vec(0u8..2, 1..60),
                      values in prop::collection::vec(-1e6f64..1e6, 1..60)) {
        let t = small_table(&keys, &values);
        let n = keys.len().min(values.len());
        let rs = Query::new()
            .aggregate(Aggregate::count("rows"))
            .aggregate(Aggregate::of(AggFn::Sum, "opt", "sum_opt"))
            .run(&t)
            .unwrap();
        prop_assert_eq!(rs.scalar_f64("rows").unwrap() as usize, n);
        // Sum over "opt" equals 2x the sum of the non-null positions.
        let expect: f64 = (0..n).filter(|i| i % 3 != 0).map(|i| values[i] * 2.0).sum();
        let got = rs.scalar_f64("sum_opt").unwrap();
        prop_assert!((got - expect).abs() <= 1e-6 * (1.0 + expect.abs()));
    }

    /// Top-N via OrderBy+limit agrees with full sort.
    #[test]
    fn top_n_agrees_with_full_sort(keys in prop::collection::vec(0u8..6, 1..100),
                                   values in prop::collection::vec(0.0f64..1e6, 1..100),
                                   n in 1usize..5) {
        let t = small_table(&keys, &values);
        let full = Query::new()
            .group_by_column("k")
            .aggregate(Aggregate::of(AggFn::Sum, "v", "total"))
            .run(&t)
            .unwrap();
        let mut totals: Vec<f64> = full
            .rows
            .iter()
            .map(|r| r[1].as_f64().unwrap())
            .collect();
        totals.sort_by(|a, b| b.total_cmp(a));
        let top = Query::new()
            .group_by_column("k")
            .aggregate(Aggregate::of(AggFn::Sum, "v", "total"))
            .order(OrderBy::ColumnDesc("total".into()))
            .limit(n)
            .run(&t)
            .unwrap();
        let got: Vec<f64> = top.rows.iter().map(|r| r[1].as_f64().unwrap()).collect();
        prop_assert_eq!(&got[..], &totals[..n.min(totals.len())]);
    }

    /// Replaying a database's binlog into a fresh database reproduces
    /// every table's checksum, regardless of the operation mix.
    #[test]
    fn binlog_replay_reproduces_database(ops in prop::collection::vec((0u8..3, any::<i64>()), 1..60)) {
        let mut db = Database::new();
        db.create_schema("s").unwrap();
        db.create_table(
            "s",
            SchemaBuilder::new("t")
                .required("a", ColumnType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        for (op, payload) in &ops {
            match op % 3 {
                0 | 1 => {
                    db.insert("s", "t", vec![vec![Value::Int(*payload)]]).unwrap();
                }
                _ => {
                    db.truncate("s", "t").unwrap();
                }
            }
        }
        let mut replica = Database::new();
        for ev in db.binlog_after(LogPosition::START).unwrap() {
            replica.apply_event(&ev.payload).unwrap();
        }
        prop_assert_eq!(
            db.table("s", "t").unwrap().content_checksum(),
            replica.table("s", "t").unwrap().content_checksum()
        );
        prop_assert_eq!(db.table("s", "t").unwrap().len(), replica.table("s", "t").unwrap().len());
    }
}

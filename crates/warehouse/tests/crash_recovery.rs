//! Kill-at-every-fault-point crash-recovery matrix.
//!
//! One deterministic workload is driven against a disk-backed database
//! while a silent storage fault (bit-flip, torn write, dropped fsync) is
//! injected at every single append in turn. After each simulated crash
//! the database is reopened and three invariants are checked:
//!
//! 1. **Prefix integrity** — the recovered binlog is byte- and
//!    checksum-identical to the pre-crash log up to the last durable
//!    record, and nothing past the damage point is resurrected.
//! 2. **Differential oracle** — the recovered store's content equals an
//!    in-memory database replaying exactly the surviving prefix of the
//!    workload.
//! 3. **Liveness** — recovery never panics, never refuses to start, and
//!    the reopened database accepts new writes.
//!
//! A second matrix damages snapshot writes (including a loudly-failing
//! transient) and checks that recovery falls back to the previous
//! snapshot plus the segment tail with no data loss.
//!
//! The run is parameterized by `CRASH_SEED` (varies payload bytes and
//! tear sizes) and, when `CRASH_RECOVERY_REPORT` names a path, writes a
//! JSON report of every matrix case for CI to archive.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use xdmod_chaos::{FaultKind, FaultPlan, FaultPoint, FaultSpec};
use xdmod_warehouse::checksum::crc32;
use xdmod_warehouse::{
    ColumnType, Database, DiskBackend, DiskOptions, LogPosition, SchemaBuilder, TableSchema, Value,
};

/// Total workload steps; step N is binlog record N.
const STEPS: u64 = 14;
/// Step at which the workload truncates instead of inserting, so the
/// matrix covers every mutation kind the binlog can carry.
const TRUNCATE_STEP: u64 = 9;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "xdmod-crashmatrix-{}-{tag}-{n}",
        std::process::id()
    ))
}

fn seed() -> u64 {
    std::env::var("CRASH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn table_def() -> TableSchema {
    SchemaBuilder::new("t")
        .required("id", ColumnType::Int)
        .required("val", ColumnType::Str)
        .build()
        .expect("static schema literal is valid")
}

/// Apply workload step `step` (1-based). Returns the step's log position.
fn apply_step(db: &mut Database, step: u64, seed: u64) -> LogPosition {
    match step {
        1 => db.create_schema("s").expect("create schema"),
        2 => db.create_table("s", table_def()).expect("create table"),
        TRUNCATE_STEP => db.truncate("s", "t").expect("truncate"),
        n => db
            .insert(
                "s",
                "t",
                vec![vec![
                    Value::Int(n as i64),
                    Value::Str(format!("v-{seed}-{n}-{}", "x".repeat((n % 5) as usize))),
                ]],
            )
            .expect("insert"),
    }
}

/// Replay steps `1..=upto` on a fresh in-memory database — the
/// differential oracle for a store recovered at seqno `upto`.
fn oracle_at(upto: u64, seed: u64) -> Database {
    let mut db = Database::new();
    for step in 1..=upto {
        apply_step(&mut db, step, seed);
    }
    db
}

/// The full pre-crash oracle: complete framed binlog bytes plus the
/// cumulative byte length after each record (`cum[n]` = bytes of records
/// `1..=n`), so any durable prefix can be sliced out exactly.
fn oracle_log(seed: u64) -> (Vec<u8>, Vec<usize>) {
    let mut db = Database::new();
    let mut cum = vec![0usize];
    for step in 1..=STEPS {
        apply_step(&mut db, step, seed);
        cum.push(db.binlog_export(LogPosition::START).expect("export").len());
    }
    let full = db
        .binlog_export(LogPosition::START)
        .expect("export")
        .to_vec();
    (full, cum)
}

/// Assert the recovered store is content-identical to the oracle at the
/// same seqno: same schemas, same tables, same order-independent content
/// checksum and row count per table.
fn assert_matches_oracle(recovered: &Database, upto: u64, seed: u64, ctx: &str) {
    let oracle = oracle_at(upto, seed);
    let mut want: Vec<String> = oracle
        .schema_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut got: Vec<String> = recovered
        .schema_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    want.sort_unstable();
    got.sort_unstable();
    assert_eq!(got, want, "{ctx}: schema set diverged");
    for schema in oracle.schema_names() {
        for table in oracle.table_names(schema).expect("oracle tables") {
            let want = oracle.table(schema, table).expect("oracle table");
            let got = recovered
                .table(schema, table)
                .unwrap_or_else(|_| panic!("{ctx}: recovered store lost {schema}.{table}"));
            assert_eq!(got.len(), want.len(), "{ctx}: {schema}.{table} row count");
            assert_eq!(
                got.content_checksum(),
                want.content_checksum(),
                "{ctx}: {schema}.{table} content checksum"
            );
        }
    }
}

struct CaseReport {
    fault: &'static str,
    op: u64,
    durable_prefix: u64,
    prefix_crc: u32,
}

static REPORT: Mutex<Vec<CaseReport>> = Mutex::new(Vec::new());

fn record_case(fault: &'static str, op: u64, durable_prefix: u64, prefix_crc: u32) {
    REPORT.lock().expect("report lock").push(CaseReport {
        fault,
        op,
        durable_prefix,
        prefix_crc,
    });
}

/// Serialize the accumulated matrix cases to `CRASH_RECOVERY_REPORT`
/// when set (the CI soak job archives it). Called from each matrix test;
/// the file converges to the union of whatever ran.
fn flush_report() {
    let Ok(path) = std::env::var("CRASH_RECOVERY_REPORT") else {
        return;
    };
    let report = REPORT.lock().expect("report lock");
    let cases: Vec<String> = report
        .iter()
        .map(|c| {
            format!(
                r#"{{"fault":"{}","op":{},"durable_prefix":{},"prefix_crc":"0x{:08x}"}}"#,
                c.fault, c.op, c.durable_prefix, c.prefix_crc
            )
        })
        .collect();
    let doc = format!(
        r#"{{"seed":{},"steps":{},"cases":[{}],"total":{}}}"#,
        seed(),
        STEPS,
        cases.join(","),
        report.len(),
    );
    let _ = std::fs::write(&path, doc);
}

fn disk_db(dir: &PathBuf) -> Database {
    // Small segments force rotation mid-workload, so the matrix covers
    // faults at segment boundaries too; fsync off keeps the soak fast
    // (durability of the synced path is covered by the disk unit tests).
    let opts = DiskOptions::new(dir).fsync(false).segment_max_bytes(192);
    Database::open(Box::new(DiskBackend::open(opts).expect("open backend"))).expect("open db")
}

fn reopen(dir: &PathBuf) -> Database {
    let opts = DiskOptions::new(dir).fsync(false).segment_max_bytes(192);
    Database::open(Box::new(DiskBackend::open(opts).expect("reopen backend")))
        .expect("recovery must repair, not refuse")
}

#[test]
fn every_append_fault_point_recovers_to_durable_prefix() {
    let seed = seed();
    let (full_log, cum) = oracle_log(seed);
    let kinds: [(&'static str, FaultKind); 3] = [
        ("corrupt-tail-byte", FaultKind::CorruptTailByte),
        (
            "truncate-tail",
            FaultKind::TruncateTail {
                bytes: 1 + seed % 9,
            },
        ),
        ("drop-fsync", FaultKind::DropFsync),
    ];
    for (name, kind) in kinds {
        for op in 1..=STEPS {
            let ctx = format!("fault {name} at record {op} (seed {seed})");
            let dir = temp_dir(name);
            let plan =
                FaultPlan::new().with(FaultSpec::at_ops(FaultPoint::SegmentAppend, kind, &[op]));
            let mut db = disk_db(&dir);
            db.set_fault_injector(plan.injector(seed), "wal");
            // Silent faults report success to the writer — every step
            // completes; the damage exists only on disk.
            for step in 1..=STEPS {
                apply_step(&mut db, step, seed);
            }
            assert_eq!(db.binlog_position().seqno, STEPS, "{ctx}: pre-crash head");
            drop(db); // crash

            let db = reopen(&dir);
            // The faulted record and everything after it is gone; the
            // durable prefix ends exactly one record before the damage.
            let recovered = db.binlog_position().seqno;
            assert_eq!(recovered, op - 1, "{ctx}: durable prefix length");

            // Prefix integrity: byte- and checksum-identical to the
            // pre-crash log up to the last durable record. A torn record
            // must never be resurrected.
            let replayed = db
                .binlog_export(LogPosition::START)
                .expect("export recovered log")
                .to_vec();
            let want = &full_log[..cum[recovered as usize]];
            assert_eq!(replayed, want, "{ctx}: recovered prefix bytes");
            assert_eq!(crc32(&replayed), crc32(want), "{ctx}: prefix checksum");

            // Differential oracle on the recovered store.
            assert_matches_oracle(&db, recovered, seed, &ctx);

            // Liveness: the reopened database accepts new writes.
            let mut db = db;
            if recovered >= 2 {
                db.insert(
                    "s",
                    "t",
                    vec![vec![Value::Int(999), Value::Str("post-crash".into())]],
                )
                .expect("post-recovery insert");
            } else {
                db.create_schema("post_crash").expect("post-recovery DDL");
            }
            record_case(name, op, recovered, crc32(&replayed));
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    flush_report();
}

#[test]
fn every_snapshot_fault_point_falls_back_without_data_loss() {
    let seed = seed();
    let kinds: [(&'static str, FaultKind, bool); 4] = [
        ("snap-corrupt", FaultKind::CorruptTailByte, false),
        ("snap-truncate", FaultKind::TruncateTail { bytes: 5 }, false),
        ("snap-drop-fsync", FaultKind::DropFsync, false),
        ("snap-transient", FaultKind::Transient, true),
    ];
    for (name, kind, loud) in kinds {
        let ctx = format!("snapshot fault {name} (seed {seed})");
        let dir = temp_dir(name);
        // The *second* snapshot is damaged; the first must carry recovery.
        let plan = FaultPlan::new().with(FaultSpec::at_ops(FaultPoint::SnapshotWrite, kind, &[2]));
        let mut db = disk_db(&dir);
        db.set_fault_injector(plan.injector(seed), "wal");
        for step in 1..=8 {
            apply_step(&mut db, step, seed);
        }
        db.snapshot_now().expect("first snapshot");
        for step in 9..=12 {
            apply_step(&mut db, step, seed);
        }
        let second = db.snapshot_now();
        if loud {
            second.expect_err("transient snapshot fault fails loudly");
        } else {
            // Silent damage: the writer believes the snapshot landed.
            second.expect("silently damaged snapshot");
        }
        for step in 13..=STEPS {
            apply_step(&mut db, step, seed);
        }
        drop(db); // crash

        let db = reopen(&dir);
        // Nothing was lost: appends were never damaged, so recovery
        // (previous snapshot + segment tail) reaches the full head.
        assert_eq!(db.binlog_position().seqno, STEPS, "{ctx}: recovered head");
        assert_matches_oracle(&db, STEPS, seed, &ctx);

        // The surviving log tail past the recovery base matches the
        // oracle's frames over the same range.
        let base = LogPosition {
            epoch: 0,
            seqno: db.compaction_horizon(),
        };
        let replayed = db.binlog_export(base).expect("export tail").to_vec();
        let oracle = oracle_at(STEPS, seed);
        let want = oracle.binlog_export(base).expect("oracle tail").to_vec();
        assert_eq!(replayed, want, "{ctx}: tail bytes");
        assert_eq!(crc32(&replayed), crc32(&want), "{ctx}: tail checksum");

        // Snapshots still work after recovering past a damaged one.
        let mut db = db;
        apply_step(&mut db, STEPS + 1, seed);
        db.snapshot_now().expect("post-recovery snapshot");
        record_case(name, 2, STEPS, crc32(&replayed));
        let _ = std::fs::remove_dir_all(&dir);
    }
    flush_report();
}

#[test]
fn repeated_crashes_converge_to_a_stable_store() {
    // Crash → recover → write → crash again, several times over one
    // directory: each recovery must build on the previous repair without
    // compounding loss.
    let seed = seed();
    let dir = temp_dir("repeat");
    let mut expected_rows = 0u64;
    for round in 0..4u64 {
        // Tear the round's LAST append (a torn record strands everything
        // after it, so only the final tear loses exactly one record).
        // Round 0 has two DDL records ahead of its three inserts.
        let last_op = if round == 0 { 5 } else { 3 };
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::SegmentAppend,
            FaultKind::TruncateTail { bytes: 4 },
            &[last_op],
        ));
        let mut db = reopen(&dir);
        if round == 0 {
            db.create_schema("s").expect("schema");
            db.create_table("s", table_def()).expect("table");
        }
        db.set_fault_injector(plan.injector(seed + round), "wal");
        for i in 0..3u64 {
            db.insert(
                "s",
                "t",
                vec![vec![
                    Value::Int((round * 10 + i) as i64),
                    Value::Str(format!("r{round}-{i}")),
                ]],
            )
            .expect("insert");
        }
        // Two of the three inserts survive each round; the third is torn.
        expected_rows += 2;
        drop(db); // crash
        let db = reopen(&dir);
        assert_eq!(
            db.table("s", "t").expect("table survives").len() as u64,
            expected_rows,
            "round {round}: exactly the durable inserts survive"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn append_fault_matrix_holds_with_paging_enabled() {
    // The same kill-at-every-append matrix, but with cold-shard paging on
    // at a one-byte budget: every table page lives in a spill file (not
    // RAM) at crash time. Paging must be invisible to durability — the
    // binlog is written ahead of any page mutation, spill files are
    // rederivable caches, and recovery plus re-enabling paging must land
    // on the exact oracle state.
    use xdmod_warehouse::PagingConfig;
    let seed = seed();
    let (full_log, cum) = oracle_log(seed);
    let kinds: [(&'static str, FaultKind); 3] = [
        ("paged-corrupt-tail-byte", FaultKind::CorruptTailByte),
        (
            "paged-truncate-tail",
            FaultKind::TruncateTail {
                bytes: 1 + seed % 9,
            },
        ),
        ("paged-drop-fsync", FaultKind::DropFsync),
    ];
    for (name, kind) in kinds {
        for op in 1..=STEPS {
            let ctx = format!("fault {name} at record {op} (seed {seed}, paging on)");
            let dir = temp_dir(name);
            let paging = || {
                PagingConfig::new(dir.join("paging"))
                    .budget_bytes(1)
                    .pages_per_table(4)
            };
            let plan =
                FaultPlan::new().with(FaultSpec::at_ops(FaultPoint::SegmentAppend, kind, &[op]));
            let mut db = disk_db(&dir);
            db.enable_paging(paging()).expect("paging enables");
            db.set_fault_injector(plan.injector(seed), "wal");
            for step in 1..=STEPS {
                apply_step(&mut db, step, seed);
            }
            assert_eq!(db.binlog_position().seqno, STEPS, "{ctx}: pre-crash head");
            drop(db); // crash

            let mut db = reopen(&dir);
            let recovered = db.binlog_position().seqno;
            assert_eq!(recovered, op - 1, "{ctx}: durable prefix length");
            let replayed = db
                .binlog_export(LogPosition::START)
                .expect("export recovered log")
                .to_vec();
            let want = &full_log[..cum[recovered as usize]];
            assert_eq!(replayed, want, "{ctx}: recovered prefix bytes");
            assert_matches_oracle(&db, recovered, seed, &ctx);

            // Re-enabling paging over the recovered store (with the
            // crash's stale spill files still on disk) must not change
            // its content.
            db.enable_paging(paging()).expect("paging re-enables");
            assert_matches_oracle(&db, recovered, seed, &format!("{ctx}, re-paged"));
            if recovered >= 2 {
                db.insert(
                    "s",
                    "t",
                    vec![vec![Value::Int(999), Value::Str("post-crash".into())]],
                )
                .expect("post-recovery insert on the paged store");
            }
            record_case(name, op, recovered, crc32(&replayed));
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    flush_report();
}

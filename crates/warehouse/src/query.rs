//! The group-by/filter query engine.
//!
//! Every XDMoD chart is "a metric, aggregated, grouped by a dimension,
//! over a time range, with optional filters" — this module executes
//! exactly that against warehouse tables. Grouping supports plain
//! columns, calendar periods (timeseries view), and numeric bins
//! (aggregation levels). Aggregation over rows is data-parallel with
//! rayon: partitions fold into per-thread hash maps that are then merged.

use crate::bins::Bins;
use crate::error::{Result, WarehouseError};
use crate::schema::TableSchema;
use crate::table::Table;
use crate::time::Period;
use crate::value::{Row, Value};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Row filter applied before grouping.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Column equals value.
    Eq(String, Value),
    /// Column differs from value (NULLs are excluded, SQL-style).
    Ne(String, Value),
    /// Column is one of the listed values.
    In(String, Vec<Value>),
    /// Numeric column within `[min, max)`; `None` edges are unbounded.
    Range {
        /// Column to test (must be numeric or time).
        column: String,
        /// Inclusive lower bound.
        min: Option<f64>,
        /// Exclusive upper bound.
        max: Option<f64>,
    },
    /// Timestamp column within `[start, end)` epoch seconds.
    TimeRange {
        /// Column to test.
        column: String,
        /// Inclusive start.
        start: i64,
        /// Exclusive end.
        end: i64,
    },
    /// String column is not NULL and starts with the given prefix.
    StrPrefix(String, String),
}

impl Predicate {
    fn column(&self) -> &str {
        match self {
            Predicate::Eq(c, _)
            | Predicate::Ne(c, _)
            | Predicate::In(c, _)
            | Predicate::Range { column: c, .. }
            | Predicate::TimeRange { column: c, .. }
            | Predicate::StrPrefix(c, _) => c,
        }
    }

    fn matches(&self, v: &Value) -> bool {
        match self {
            Predicate::Eq(_, want) => v == want,
            Predicate::Ne(_, want) => !v.is_null() && v != want,
            Predicate::In(_, set) => set.contains(v),
            Predicate::Range { min, max, .. } => match v.as_f64() {
                Some(x) => min.is_none_or(|m| x >= m) && max.is_none_or(|m| x < m),
                None => false,
            },
            Predicate::TimeRange { start, end, .. } => match v.as_i64() {
                Some(t) => t >= *start && t < *end,
                None => false,
            },
            Predicate::StrPrefix(_, prefix) => {
                v.as_str().is_some_and(|s| s.starts_with(prefix.as_str()))
            }
        }
    }
}

/// How to derive a group key component from a row.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupKey {
    /// Group by the raw column value.
    Column(String),
    /// Group a timestamp column by calendar period (timeseries view).
    /// The key value is the period's bucket id as `Value::Int`.
    PeriodOf(String, Period),
    /// Group a numeric column through bins (aggregation levels). The key
    /// value is the bin label as `Value::Str`.
    Binned(String, Bins),
}

impl GroupKey {
    /// The column this key reads.
    pub fn column(&self) -> &str {
        match self {
            GroupKey::Column(c) | GroupKey::PeriodOf(c, _) | GroupKey::Binned(c, _) => c,
        }
    }

    /// Output column name in the result set.
    pub fn output_name(&self) -> String {
        match self {
            GroupKey::Column(c) => c.clone(),
            GroupKey::PeriodOf(c, p) => format!("{c}_{}", p.ident()),
            GroupKey::Binned(c, _) => format!("{c}_bin"),
        }
    }

    fn extract(&self, v: &Value) -> Value {
        match self {
            GroupKey::Column(_) => v.clone(),
            GroupKey::PeriodOf(_, period) => match v.as_i64() {
                Some(t) => Value::Int(period.bucket_of(t)),
                None => Value::Null,
            },
            GroupKey::Binned(_, bins) => match v.as_f64() {
                Some(x) => Value::Str(bins.label_of(x).to_owned()),
                None => Value::Null,
            },
        }
    }
}

/// Aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFn {
    /// Row count (column ignored).
    Count,
    /// Sum of a numeric column (NULLs skipped).
    Sum,
    /// Mean of a numeric column (NULLs skipped).
    Avg,
    /// Minimum of a numeric column.
    Min,
    /// Maximum of a numeric column.
    Max,
    /// Number of distinct non-NULL values.
    CountDistinct,
    /// Sum of `column * weight_column` divided by sum of weights — the
    /// paper's "Average Cores Reserved: Weighted by Wall Hours" style
    /// cloud metric (§III-B footnote 3).
    WeightedAvg,
}

/// One aggregate output: function, input column, output alias.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Function to apply.
    pub func: AggFn,
    /// Input column; `None` only for `Count`.
    pub column: Option<String>,
    /// Weight column; only for `WeightedAvg`.
    pub weight: Option<String>,
    /// Output column name.
    pub alias: String,
}

impl Aggregate {
    /// `COUNT(*) AS alias`.
    pub fn count(alias: &str) -> Self {
        Aggregate {
            func: AggFn::Count,
            column: None,
            weight: None,
            alias: alias.to_owned(),
        }
    }

    /// `func(column) AS alias`.
    pub fn of(func: AggFn, column: &str, alias: &str) -> Self {
        Aggregate {
            func,
            column: Some(column.to_owned()),
            weight: None,
            alias: alias.to_owned(),
        }
    }

    /// `SUM(column*weight)/SUM(weight) AS alias`.
    pub fn weighted_avg(column: &str, weight: &str, alias: &str) -> Self {
        Aggregate {
            func: AggFn::WeightedAvg,
            column: Some(column.to_owned()),
            weight: Some(weight.to_owned()),
            alias: alias.to_owned(),
        }
    }
}

/// Per-group accumulator state for one aggregate.
#[derive(Debug, Clone)]
enum Acc {
    Count(u64),
    Sum(f64),
    Avg { sum: f64, n: u64 },
    Min(Option<f64>),
    Max(Option<f64>),
    Distinct(HashSet<Value>),
    Weighted { num: f64, den: f64 },
}

impl Acc {
    fn new(func: AggFn) -> Acc {
        match func {
            AggFn::Count => Acc::Count(0),
            AggFn::Sum => Acc::Sum(0.0),
            AggFn::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFn::Min => Acc::Min(None),
            AggFn::Max => Acc::Max(None),
            AggFn::CountDistinct => Acc::Distinct(HashSet::new()),
            AggFn::WeightedAvg => Acc::Weighted { num: 0.0, den: 0.0 },
        }
    }

    fn update(&mut self, value: Option<&Value>, weight: Option<&Value>) {
        match self {
            Acc::Count(n) => *n += 1,
            Acc::Sum(s) => {
                if let Some(x) = value.and_then(Value::as_f64) {
                    *s += x;
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(x) = value.and_then(Value::as_f64) {
                    *sum += x;
                    *n += 1;
                }
            }
            Acc::Min(m) => {
                if let Some(x) = value.and_then(Value::as_f64) {
                    *m = Some(m.map_or(x, |cur| cur.min(x)));
                }
            }
            Acc::Max(m) => {
                if let Some(x) = value.and_then(Value::as_f64) {
                    *m = Some(m.map_or(x, |cur| cur.max(x)));
                }
            }
            Acc::Distinct(set) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        set.insert(v.clone());
                    }
                }
            }
            Acc::Weighted { num, den } => {
                if let (Some(x), Some(w)) = (
                    value.and_then(Value::as_f64),
                    weight.and_then(Value::as_f64),
                ) {
                    *num += x * w;
                    *den += w;
                }
            }
        }
    }

    fn merge(&mut self, other: Acc) {
        match (self, other) {
            (Acc::Count(a), Acc::Count(b)) => *a += b,
            (Acc::Sum(a), Acc::Sum(b)) => *a += b,
            (Acc::Avg { sum, n }, Acc::Avg { sum: s2, n: n2 }) => {
                *sum += s2;
                *n += n2;
            }
            (Acc::Min(a), Acc::Min(b)) => {
                *a = match (*a, b) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (x, y) => x.or(y),
                }
            }
            (Acc::Max(a), Acc::Max(b)) => {
                *a = match (*a, b) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                }
            }
            (Acc::Distinct(a), Acc::Distinct(b)) => a.extend(b),
            (Acc::Weighted { num, den }, Acc::Weighted { num: n2, den: d2 }) => {
                *num += n2;
                *den += d2;
            }
            _ => unreachable!("mismatched accumulator variants"),
        }
    }

    fn finish(self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(n as i64),
            Acc::Sum(s) => Value::Float(s),
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            Acc::Min(m) => m.map_or(Value::Null, Value::Float),
            Acc::Max(m) => m.map_or(Value::Null, Value::Float),
            Acc::Distinct(set) => Value::Int(set.len() as i64),
            Acc::Weighted { num, den } => {
                if den == 0.0 {
                    Value::Null
                } else {
                    Value::Float(num / den)
                }
            }
        }
    }
}

/// Sort order of the result set.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderBy {
    /// Ascending by the group key columns (default; deterministic).
    KeyAsc,
    /// Descending by a named output column (e.g. "top resources by SUs").
    ColumnDesc(String),
    /// Ascending by a named output column.
    ColumnAsc(String),
}

/// A query against one table.
#[derive(Debug, Clone)]
pub struct Query {
    filters: Vec<Predicate>,
    group_by: Vec<GroupKey>,
    aggregates: Vec<Aggregate>,
    order_by: OrderBy,
    limit: Option<usize>,
}

impl Query {
    /// New query with no filters, no grouping, no aggregates.
    pub fn new() -> Self {
        Query {
            filters: Vec::new(),
            group_by: Vec::new(),
            aggregates: Vec::new(),
            order_by: OrderBy::KeyAsc,
            limit: None,
        }
    }

    /// Add a filter.
    pub fn filter(mut self, p: Predicate) -> Self {
        self.filters.push(p);
        self
    }

    /// Add a group key.
    pub fn group(mut self, k: GroupKey) -> Self {
        self.group_by.push(k);
        self
    }

    /// Shorthand: group by a raw column.
    pub fn group_by_column(self, column: &str) -> Self {
        self.group(GroupKey::Column(column.to_owned()))
    }

    /// Shorthand: group a time column by calendar period.
    pub fn group_by_period(self, column: &str, period: Period) -> Self {
        self.group(GroupKey::PeriodOf(column.to_owned(), period))
    }

    /// Shorthand: group a numeric column through bins.
    pub fn group_by_bins(self, column: &str, bins: Bins) -> Self {
        self.group(GroupKey::Binned(column.to_owned(), bins))
    }

    /// Add an aggregate output.
    pub fn aggregate(mut self, a: Aggregate) -> Self {
        self.aggregates.push(a);
        self
    }

    /// Set the result ordering.
    pub fn order(mut self, o: OrderBy) -> Self {
        self.order_by = o;
        self
    }

    /// Keep only the first `n` result rows after ordering.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Execute against a table.
    ///
    /// Paged tables are folded one page at a time (pin → fault-in →
    /// fold → release), so the scan's memory footprint stays bounded by
    /// the residency budget plus the one pinned page. The result is
    /// identical to the dense path: a fold over any partition of the
    /// same multiset of rows merges to the same groups.
    pub fn run(&self, table: &Table) -> Result<ResultSet> {
        let plan = AggPlan::resolve(self, table.schema())?;
        if table.is_paged() {
            let mut groups = Groups::new();
            table.scan_pages(&mut |rows| {
                for (_, row) in rows {
                    plan.fold_row(&mut groups, row);
                }
                Ok(())
            })?;
            return plan.finish(groups);
        }
        // Data-parallel fold/reduce over row partitions (rayon idiom).
        let groups: Groups = table
            .rows()?
            .par_iter()
            .fold(Groups::new, |mut acc, row| {
                plan.fold_row(&mut acc, row);
                acc
            })
            .reduce(Groups::new, |mut a, b| {
                AggPlan::merge_groups(&mut a, b);
                a
            });
        plan.finish(groups)
    }

    /// Fold a subset ("shard") of a table's rows into an opaque partial
    /// state. Combine shards with [`PartialAggregation::merge`] and
    /// finish with [`Query::finalize_partials`]. Folding every row of a
    /// table through one partial and finalizing is exactly [`Query::run`].
    pub fn partial_aggregate<'a, I>(
        &self,
        schema: &TableSchema,
        rows: I,
    ) -> Result<PartialAggregation>
    where
        I: IntoIterator<Item = &'a Row>,
    {
        let plan = AggPlan::resolve(self, schema)?;
        let mut groups = Groups::new();
        for row in rows {
            plan.fold_row(&mut groups, row);
        }
        Ok(PartialAggregation { groups })
    }

    /// Fold additional rows into an existing partial — the
    /// incremental-maintenance primitive behind the delta-fold engine.
    ///
    /// Folding batch `a` and then batch `b` into a partial leaves exactly
    /// the accumulator state of folding `a ++ b` in one pass: each row is
    /// applied to its group's accumulator in arrival order, so
    /// `fold(fold(P, a), b) == recompute(a ++ b)` holds bitwise — counts,
    /// min/max, and distinct sets always; float sums because the
    /// *sequence* of additions is identical, not merely the operand set.
    pub fn fold_partial<'a, I>(
        &self,
        schema: &TableSchema,
        partial: &mut PartialAggregation,
        rows: I,
    ) -> Result<()>
    where
        I: IntoIterator<Item = &'a Row>,
    {
        let plan = AggPlan::resolve(self, schema)?;
        for row in rows {
            plan.fold_row(&mut partial.groups, row);
        }
        Ok(())
    }

    /// Turn a (merged) partial state into the final result set: SQL
    /// one-row semantics for ungrouped aggregates, deterministic key
    /// sort, then ordering and limit.
    pub fn finalize_partials(
        &self,
        schema: &TableSchema,
        partial: PartialAggregation,
    ) -> Result<ResultSet> {
        let plan = AggPlan::resolve(self, schema)?;
        plan.finish(partial.groups)
    }

    /// Stable in-process fingerprint over the query's full shape
    /// (filters, grouping, aggregates, ordering, limit). Together with a
    /// binlog watermark this identifies a cached result: the fingerprint
    /// says *what* was asked, the watermark says *of which data*.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the Debug representation; the derived Debug output
        // covers every field and is stable within a build.
        let repr = format!("{self:?}");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in repr.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The time column to shard on, when the query names one: the first
    /// calendar-period group key, else the first time-range filter.
    pub(crate) fn shard_hint(&self) -> Option<&str> {
        self.group_by
            .iter()
            .find_map(|k| match k {
                GroupKey::PeriodOf(c, _) => Some(c.as_str()),
                _ => None,
            })
            .or_else(|| {
                self.filters.iter().find_map(|p| match p {
                    Predicate::TimeRange { column, .. } => Some(column.as_str()),
                    _ => None,
                })
            })
    }
}

/// Per-group accumulator map shared by the serial and sharded engines.
pub(crate) type Groups = HashMap<Vec<Value>, Vec<Acc>>;

/// A query with every column reference resolved against one schema —
/// the shared machinery behind [`Query::run`], the public partial
/// surface, and the sharded engine in [`crate::parallel`].
pub(crate) struct AggPlan<'q> {
    query: &'q Query,
    filter_idx: Vec<usize>,
    key_idx: Vec<usize>,
    agg_idx: Vec<Option<usize>>,
    weight_idx: Vec<Option<usize>>,
}

impl<'q> AggPlan<'q> {
    /// Resolve all column references once, up front.
    pub(crate) fn resolve(query: &'q Query, schema: &TableSchema) -> Result<Self> {
        if query.aggregates.is_empty() {
            return Err(WarehouseError::InvalidQuery(
                "query needs at least one aggregate".into(),
            ));
        }
        let filter_idx: Vec<usize> = query
            .filters
            .iter()
            .map(|p| schema.column_index(p.column()))
            .collect::<Result<_>>()?;
        let key_idx: Vec<usize> = query
            .group_by
            .iter()
            .map(|k| schema.column_index(k.column()))
            .collect::<Result<_>>()?;
        let agg_idx: Vec<Option<usize>> = query
            .aggregates
            .iter()
            .map(|a| match (&a.column, a.func) {
                (None, AggFn::Count) => Ok(None),
                (None, _) => Err(WarehouseError::InvalidQuery(format!(
                    "aggregate {} requires a column",
                    a.alias
                ))),
                (Some(c), _) => schema.column_index(c).map(Some),
            })
            .collect::<Result<_>>()?;
        let weight_idx: Vec<Option<usize>> = query
            .aggregates
            .iter()
            .map(|a| match (a.func, &a.weight) {
                (AggFn::WeightedAvg, Some(w)) => schema.column_index(w).map(Some),
                (AggFn::WeightedAvg, None) => Err(WarehouseError::InvalidQuery(format!(
                    "weighted aggregate {} requires a weight column",
                    a.alias
                ))),
                _ => Ok(None),
            })
            .collect::<Result<_>>()?;
        Ok(AggPlan {
            query,
            filter_idx,
            key_idx,
            agg_idx,
            weight_idx,
        })
    }

    /// Filter one row and, if it passes, fold it into its group.
    pub(crate) fn fold_row(&self, groups: &mut Groups, row: &Row) {
        for (p, &idx) in self.query.filters.iter().zip(&self.filter_idx) {
            if !p.matches(&row[idx]) {
                return;
            }
        }
        let key: Vec<Value> = self
            .query
            .group_by
            .iter()
            .zip(&self.key_idx)
            .map(|(k, &idx)| k.extract(&row[idx]))
            .collect();
        let accs = groups.entry(key).or_insert_with(|| {
            self.query
                .aggregates
                .iter()
                .map(|a| Acc::new(a.func))
                .collect::<Vec<_>>()
        });
        for ((acc, col), w) in accs.iter_mut().zip(&self.agg_idx).zip(&self.weight_idx) {
            acc.update(col.map(|i| &row[i]), w.map(|i| &row[i]));
        }
    }

    /// Merge `src` into `dst`. Per key, `dst`'s accumulator absorbs
    /// `src`'s; the map iteration order does not affect the outcome
    /// because keys are disjoint state.
    pub(crate) fn merge_groups(dst: &mut Groups, src: Groups) {
        for (key, accs) in src {
            match dst.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (d, s) in e.get_mut().iter_mut().zip(accs) {
                        d.merge(s);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(accs);
                }
            }
        }
    }

    /// Materialize groups into the final, deterministically ordered
    /// result set.
    pub(crate) fn finish(&self, mut groups: Groups) -> Result<ResultSet> {
        let query = self.query;
        // SQL semantics: an aggregate with no GROUP BY always yields one
        // row, even over an empty table (COUNT = 0, SUM = 0, AVG = NULL).
        if query.group_by.is_empty() && groups.is_empty() {
            groups.insert(
                Vec::new(),
                query.aggregates.iter().map(|a| Acc::new(a.func)).collect(),
            );
        }

        // Materialize, sort deterministically, then apply ordering/limit.
        let mut rows: Vec<Row> = groups
            .into_iter()
            .map(|(mut key, accs)| {
                key.extend(accs.into_iter().map(Acc::finish));
                key
            })
            .collect();
        let key_len = query.group_by.len();
        rows.sort_by(|a, b| a[..key_len].cmp(&b[..key_len]));

        let mut columns: Vec<String> = query.group_by.iter().map(GroupKey::output_name).collect();
        columns.extend(query.aggregates.iter().map(|a| a.alias.clone()));

        match &query.order_by {
            OrderBy::KeyAsc => {}
            OrderBy::ColumnDesc(name) | OrderBy::ColumnAsc(name) => {
                let idx = columns.iter().position(|c| c == name).ok_or_else(|| {
                    WarehouseError::InvalidQuery(format!("order-by column {name} not in output"))
                })?;
                rows.sort_by(|a, b| a[idx].cmp(&b[idx]));
                if matches!(query.order_by, OrderBy::ColumnDesc(_)) {
                    rows.reverse();
                }
            }
        }
        if let Some(n) = query.limit {
            rows.truncate(n);
        }
        Ok(ResultSet { columns, rows })
    }
}

/// Opaque partial-aggregation state over a subset of a table's rows.
///
/// Merging is associative and commutative at the accumulator level
/// (counts, min/max, distinct sets — exactly; float sums up to IEEE
/// rounding, and exactly whenever the inputs are exactly representable),
/// which is what lets the sharded engine combine shards in any grouping
/// as long as the *order of row folds within a shard* is preserved.
#[derive(Debug, Clone, Default)]
pub struct PartialAggregation {
    groups: Groups,
}

impl PartialAggregation {
    /// Merge another shard's state into this one.
    pub fn merge(&mut self, other: PartialAggregation) {
        AggPlan::merge_groups(&mut self.groups, other.groups);
    }

    /// Number of distinct group keys folded so far.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Wrap an already-folded group map (the sharded engine's per-shard
    /// state) as a retainable partial.
    pub(crate) fn from_groups(groups: Groups) -> Self {
        PartialAggregation { groups }
    }

    /// Fold one more row through a resolved plan — the delta-fold hot
    /// path, continuing the accumulator sequence a cold build started.
    pub(crate) fn fold_row_with(&mut self, plan: &AggPlan<'_>, row: &Row) {
        plan.fold_row(&mut self.groups, row);
    }

    /// Clone the group map (finalization merges clones so the retained
    /// state survives for the next delta).
    pub(crate) fn groups_clone(&self) -> Groups {
        self.groups.clone()
    }
}

impl Default for Query {
    fn default() -> Self {
        Query::new()
    }
}

/// A query result: named columns and data rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names: group keys first, then aggregate aliases.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Index of an output column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Values of an output column.
    pub fn column(&self, name: &str) -> Option<Vec<Value>> {
        let idx = self.column_index(name)?;
        Some(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single numeric value of a one-row result column (convenience
    /// for scalar queries like a global SUM).
    pub fn scalar_f64(&self, name: &str) -> Option<f64> {
        if self.rows.len() != 1 {
            return None;
        }
        let idx = self.column_index(name)?;
        self.rows[0][idx].as_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::Bin;
    use crate::schema::SchemaBuilder;
    use crate::time::CivilDate;
    use crate::value::ColumnType;

    fn jobs_table() -> Table {
        let mut t = Table::new(
            SchemaBuilder::new("jobfact")
                .required("resource", ColumnType::Str)
                .required("cpu_hours", ColumnType::Float)
                .required("wall_hours", ColumnType::Float)
                .required("end_time", ColumnType::Time)
                .nullable("user", ColumnType::Str)
                .build()
                .unwrap(),
        );
        let jan = CivilDate::new(2017, 1, 10).to_epoch();
        let feb = CivilDate::new(2017, 2, 10).to_epoch();
        t.insert_batch(vec![
            vec![
                "comet".into(),
                Value::Float(10.0),
                Value::Float(2.0),
                Value::Time(jan),
                "alice".into(),
            ],
            vec![
                "comet".into(),
                Value::Float(30.0),
                Value::Float(6.0),
                Value::Time(feb),
                "bob".into(),
            ],
            vec![
                "stampede".into(),
                Value::Float(5.0),
                Value::Float(0.5),
                Value::Time(jan),
                "alice".into(),
            ],
            vec![
                "stampede".into(),
                Value::Float(15.0),
                Value::Float(40.0),
                Value::Time(feb),
                Value::Null,
            ],
        ])
        .unwrap();
        t
    }

    #[test]
    fn global_aggregates_without_grouping() {
        let rs = Query::new()
            .aggregate(Aggregate::count("jobs"))
            .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total_cpu"))
            .aggregate(Aggregate::of(AggFn::Avg, "cpu_hours", "avg_cpu"))
            .aggregate(Aggregate::of(AggFn::Min, "cpu_hours", "min_cpu"))
            .aggregate(Aggregate::of(AggFn::Max, "cpu_hours", "max_cpu"))
            .run(&jobs_table())
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.scalar_f64("jobs"), Some(4.0));
        assert_eq!(rs.scalar_f64("total_cpu"), Some(60.0));
        assert_eq!(rs.scalar_f64("avg_cpu"), Some(15.0));
        assert_eq!(rs.scalar_f64("min_cpu"), Some(5.0));
        assert_eq!(rs.scalar_f64("max_cpu"), Some(30.0));
    }

    #[test]
    fn group_by_column_sorted_by_key() {
        let rs = Query::new()
            .group_by_column("resource")
            .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"))
            .run(&jobs_table())
            .unwrap();
        assert_eq!(rs.columns, vec!["resource", "total"]);
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Str("comet".into()));
        assert_eq!(rs.rows[0][1], Value::Float(40.0));
        assert_eq!(rs.rows[1][0], Value::Str("stampede".into()));
        assert_eq!(rs.rows[1][1], Value::Float(20.0));
    }

    #[test]
    fn filters_apply_before_grouping() {
        let rs = Query::new()
            .filter(Predicate::Eq("resource".into(), "comet".into()))
            .aggregate(Aggregate::count("jobs"))
            .run(&jobs_table())
            .unwrap();
        assert_eq!(rs.scalar_f64("jobs"), Some(2.0));
    }

    #[test]
    fn time_range_filter_half_open() {
        let feb1 = CivilDate::new(2017, 2, 1).to_epoch();
        let mar1 = CivilDate::new(2017, 3, 1).to_epoch();
        let rs = Query::new()
            .filter(Predicate::TimeRange {
                column: "end_time".into(),
                start: feb1,
                end: mar1,
            })
            .aggregate(Aggregate::count("jobs"))
            .run(&jobs_table())
            .unwrap();
        assert_eq!(rs.scalar_f64("jobs"), Some(2.0));
    }

    #[test]
    fn group_by_period_gives_timeseries() {
        let rs = Query::new()
            .group_by_period("end_time", Period::Month)
            .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"))
            .run(&jobs_table())
            .unwrap();
        assert_eq!(rs.columns, vec!["end_time_month", "total"]);
        assert_eq!(rs.rows.len(), 2);
        let jan_bucket = Period::Month.bucket_of(CivilDate::new(2017, 1, 1).to_epoch());
        assert_eq!(rs.rows[0][0], Value::Int(jan_bucket));
        assert_eq!(rs.rows[0][1], Value::Float(15.0));
        assert_eq!(rs.rows[1][1], Value::Float(45.0));
    }

    #[test]
    fn group_by_bins_applies_aggregation_levels() {
        let bins = Bins::new(vec![
            Bin::new("0-1 hours", 0.0, 1.0),
            Bin::new("1-10 hours", 1.0, 10.0),
        ])
        .unwrap();
        let rs = Query::new()
            .group_by_bins("wall_hours", bins)
            .aggregate(Aggregate::count("jobs"))
            .run(&jobs_table())
            .unwrap();
        // 0.5 -> 0-1; 2,6 -> 1-10; 40 -> other.
        let labels: Vec<String> = rs
            .rows
            .iter()
            .map(|r| r[0].as_str().unwrap().to_owned())
            .collect();
        assert!(labels.contains(&"0-1 hours".to_owned()));
        assert!(labels.contains(&"1-10 hours".to_owned()));
        assert!(labels.contains(&"other".to_owned()));
        let idx = rs
            .rows
            .iter()
            .position(|r| r[0].as_str() == Some("1-10 hours"))
            .unwrap();
        assert_eq!(rs.rows[idx][1], Value::Int(2));
    }

    #[test]
    fn count_distinct_skips_nulls() {
        let rs = Query::new()
            .aggregate(Aggregate::of(AggFn::CountDistinct, "user", "users"))
            .run(&jobs_table())
            .unwrap();
        assert_eq!(rs.scalar_f64("users"), Some(2.0)); // alice, bob
    }

    #[test]
    fn weighted_avg() {
        // cpu_hours weighted by wall_hours:
        // (10*2 + 30*6 + 5*0.5 + 15*40) / (2+6+0.5+40)
        let rs = Query::new()
            .aggregate(Aggregate::weighted_avg("cpu_hours", "wall_hours", "w"))
            .run(&jobs_table())
            .unwrap();
        let expect = (10.0 * 2.0 + 30.0 * 6.0 + 5.0 * 0.5 + 15.0 * 40.0) / 48.5;
        assert!((rs.scalar_f64("w").unwrap() - expect).abs() < 1e-9);
    }

    #[test]
    fn order_desc_with_limit_selects_top_n() {
        let rs = Query::new()
            .group_by_column("resource")
            .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"))
            .order(OrderBy::ColumnDesc("total".into()))
            .limit(1)
            .run(&jobs_table())
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Str("comet".into()));
    }

    #[test]
    fn unknown_columns_error() {
        let t = jobs_table();
        assert!(Query::new()
            .aggregate(Aggregate::of(AggFn::Sum, "nope", "x"))
            .run(&t)
            .is_err());
        assert!(Query::new()
            .group_by_column("nope")
            .aggregate(Aggregate::count("n"))
            .run(&t)
            .is_err());
        assert!(Query::new()
            .filter(Predicate::Eq("nope".into(), Value::Null))
            .aggregate(Aggregate::count("n"))
            .run(&t)
            .is_err());
    }

    #[test]
    fn no_aggregates_is_invalid() {
        assert!(matches!(
            Query::new().run(&jobs_table()),
            Err(WarehouseError::InvalidQuery(_))
        ));
    }

    #[test]
    fn order_by_unknown_output_column_errors() {
        let err = Query::new()
            .aggregate(Aggregate::count("n"))
            .order(OrderBy::ColumnDesc("missing".into()))
            .run(&jobs_table())
            .unwrap_err();
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn empty_table_yields_empty_grouped_result() {
        let t = Table::new(
            SchemaBuilder::new("empty")
                .required("k", ColumnType::Str)
                .required("v", ColumnType::Float)
                .build()
                .unwrap(),
        );
        let rs = Query::new()
            .group_by_column("k")
            .aggregate(Aggregate::of(AggFn::Sum, "v", "s"))
            .run(&t)
            .unwrap();
        assert!(rs.is_empty());
    }

    #[test]
    fn ne_and_in_and_prefix_predicates() {
        let t = jobs_table();
        let rs = Query::new()
            .filter(Predicate::Ne("user".into(), "alice".into()))
            .aggregate(Aggregate::count("n"))
            .run(&t)
            .unwrap();
        // bob only: NULL user is excluded by Ne.
        assert_eq!(rs.scalar_f64("n"), Some(1.0));

        let rs = Query::new()
            .filter(Predicate::In(
                "resource".into(),
                vec!["comet".into(), "gordon".into()],
            ))
            .aggregate(Aggregate::count("n"))
            .run(&t)
            .unwrap();
        assert_eq!(rs.scalar_f64("n"), Some(2.0));

        let rs = Query::new()
            .filter(Predicate::StrPrefix("resource".into(), "stam".into()))
            .aggregate(Aggregate::count("n"))
            .run(&t)
            .unwrap();
        assert_eq!(rs.scalar_f64("n"), Some(2.0));
    }

    #[test]
    fn fold_partial_matches_single_pass_recompute() {
        let t = jobs_table();
        let query = Query::new()
            .group_by_column("resource")
            .aggregate(Aggregate::count("jobs"))
            .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"))
            .aggregate(Aggregate::of(AggFn::Avg, "wall_hours", "avg_wall"))
            .aggregate(Aggregate::of(AggFn::CountDistinct, "user", "users"));
        let rows = t.rows().unwrap();
        for split in 0..=rows.len() {
            let mut partial = PartialAggregation::default();
            query
                .fold_partial(t.schema(), &mut partial, &rows[..split])
                .unwrap();
            query
                .fold_partial(t.schema(), &mut partial, &rows[split..])
                .unwrap();
            let folded = query.finalize_partials(t.schema(), partial).unwrap();
            assert_eq!(folded, query.run(&t).unwrap(), "split at {split}");
        }
    }

    #[test]
    fn range_predicate_unbounded_edges() {
        let t = jobs_table();
        let rs = Query::new()
            .filter(Predicate::Range {
                column: "cpu_hours".into(),
                min: Some(10.0),
                max: None,
            })
            .aggregate(Aggregate::count("n"))
            .run(&t)
            .unwrap();
        assert_eq!(rs.scalar_f64("n"), Some(3.0));
        let rs = Query::new()
            .filter(Predicate::Range {
                column: "cpu_hours".into(),
                min: None,
                max: Some(10.0),
            })
            .aggregate(Aggregate::count("n"))
            .run(&t)
            .unwrap();
        assert_eq!(rs.scalar_f64("n"), Some(1.0));
    }
}

//! The warehouse binary log.
//!
//! Federation in the paper is built on binlog replication: "Tungsten reads
//! binary logs on the XDMoD instance databases, copying their tables into
//! new, uniquely named schemas ... on the XDMoD federation hub's database"
//! (§II-C1). This module provides that binary log: every mutation applied
//! to a [`crate::database::Database`] is framed, checksummed, and appended
//! here, and replicators tail it from a saved [`LogPosition`].
//!
//! # Wire format
//!
//! Each record is:
//!
//! ```text
//! +---------+---------+---------+------------------+---------+
//! | len u32 | epoch   | seqno   | payload (len-16B)| crc u32 |
//! |         | u32     | u64     |                  |         |
//! +---------+---------+---------+------------------+---------+
//! ```
//!
//! `len` counts everything after itself (epoch..crc). The CRC covers
//! epoch, seqno, and payload. Integers are little-endian. The payload is a
//! tag byte followed by tag-specific fields; see [`EventPayload`].

use crate::checksum::crc32;
use crate::error::{Result, WarehouseError};
use crate::schema::{ColumnDef, TableSchema};
use crate::value::{ColumnType, Row, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A position in a binlog: `(epoch, seqno)` lexicographic.
///
/// `epoch` increments when a log is truncated/regenerated (e.g. a satellite
/// database rebuilt from the hub, §II-E4); `seqno` increments per record.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LogPosition {
    /// Log generation.
    pub epoch: u32,
    /// Record sequence number within the generation (first record is 1).
    pub seqno: u64,
}

impl LogPosition {
    /// The position before any record of generation 0.
    pub const START: LogPosition = LogPosition { epoch: 0, seqno: 0 };
}

impl fmt::Display for LogPosition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.epoch, self.seqno)
    }
}

/// A logged mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum EventPayload {
    /// A schema (namespace) was created.
    CreateSchema {
        /// Schema name.
        schema: String,
    },
    /// A table was created inside a schema.
    CreateTable {
        /// Schema name.
        schema: String,
        /// Full table definition.
        def: TableSchema,
    },
    /// A batch of rows was inserted into a table.
    InsertBatch {
        /// Schema name.
        schema: String,
        /// Table name.
        table: String,
        /// The inserted rows, already schema-validated.
        rows: Vec<Row>,
    },
    /// A table's rows were deleted (used by re-aggregation).
    Truncate {
        /// Schema name.
        schema: String,
        /// Table name.
        table: String,
    },
}

impl EventPayload {
    /// Schema this event touches.
    pub fn schema(&self) -> &str {
        match self {
            EventPayload::CreateSchema { schema }
            | EventPayload::CreateTable { schema, .. }
            | EventPayload::InsertBatch { schema, .. }
            | EventPayload::Truncate { schema, .. } => schema,
        }
    }

    /// Table this event touches, if any.
    pub fn table(&self) -> Option<&str> {
        match self {
            EventPayload::CreateSchema { .. } => None,
            EventPayload::CreateTable { def, .. } => Some(&def.name),
            EventPayload::InsertBatch { table, .. } | EventPayload::Truncate { table, .. } => {
                Some(table)
            }
        }
    }

    /// Return a copy with the schema renamed — the Tungsten "rename the
    /// data schema during transfer" feature the federation hub relies on.
    pub fn with_schema(&self, new_schema: &str) -> EventPayload {
        let mut clone = self.clone();
        match &mut clone {
            EventPayload::CreateSchema { schema }
            | EventPayload::CreateTable { schema, .. }
            | EventPayload::InsertBatch { schema, .. }
            | EventPayload::Truncate { schema, .. } => {
                *schema = new_schema.to_owned();
            }
        }
        clone
    }
}

/// A decoded binlog record: position plus payload.
#[derive(Debug, Clone, PartialEq)]
pub struct BinlogEvent {
    /// Where in the log this record sits.
    pub position: LogPosition,
    /// The mutation.
    pub payload: EventPayload,
}

// ---------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------

const TAG_CREATE_SCHEMA: u8 = 1;
const TAG_CREATE_TABLE: u8 = 2;
const TAG_INSERT_BATCH: u8 = 3;
const TAG_TRUNCATE: u8 = 4;

const VTAG_NULL: u8 = 0;
const VTAG_INT: u8 = 1;
const VTAG_FLOAT: u8 = 2;
const VTAG_STR: u8 = 3;
const VTAG_TIME: u8 = 4;
const VTAG_BOOL: u8 = 5;

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(WarehouseError::CorruptBinlog("short string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(WarehouseError::CorruptBinlog("short string body".into()));
    }
    let bytes = buf.split_to(len);
    String::from_utf8(bytes.to_vec())
        .map_err(|_| WarehouseError::CorruptBinlog("invalid utf8".into()))
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(VTAG_NULL),
        Value::Int(i) => {
            buf.put_u8(VTAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(VTAG_FLOAT);
            buf.put_f64_le(*f);
        }
        Value::Str(s) => {
            buf.put_u8(VTAG_STR);
            put_str(buf, s);
        }
        Value::Time(t) => {
            buf.put_u8(VTAG_TIME);
            buf.put_i64_le(*t);
        }
        Value::Bool(b) => {
            buf.put_u8(VTAG_BOOL);
            buf.put_u8(u8::from(*b));
        }
    }
}

fn get_value(buf: &mut Bytes) -> Result<Value> {
    if !buf.has_remaining() {
        return Err(WarehouseError::CorruptBinlog("missing value tag".into()));
    }
    let tag = buf.get_u8();
    let need = |buf: &Bytes, n: usize, what: &str| -> Result<()> {
        if buf.remaining() < n {
            Err(WarehouseError::CorruptBinlog(format!("short {what}")))
        } else {
            Ok(())
        }
    };
    match tag {
        VTAG_NULL => Ok(Value::Null),
        VTAG_INT => {
            need(buf, 8, "int")?;
            Ok(Value::Int(buf.get_i64_le()))
        }
        VTAG_FLOAT => {
            need(buf, 8, "float")?;
            Ok(Value::Float(buf.get_f64_le()))
        }
        VTAG_STR => Ok(Value::Str(get_str(buf)?)),
        VTAG_TIME => {
            need(buf, 8, "time")?;
            Ok(Value::Time(buf.get_i64_le()))
        }
        VTAG_BOOL => {
            need(buf, 1, "bool")?;
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        other => Err(WarehouseError::CorruptBinlog(format!(
            "unknown value tag {other}"
        ))),
    }
}

fn column_type_code(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Int => 0,
        ColumnType::Float => 1,
        ColumnType::Str => 2,
        ColumnType::Time => 3,
        ColumnType::Bool => 4,
    }
}

fn column_type_from_code(code: u8) -> Result<ColumnType> {
    Ok(match code {
        0 => ColumnType::Int,
        1 => ColumnType::Float,
        2 => ColumnType::Str,
        3 => ColumnType::Time,
        4 => ColumnType::Bool,
        other => {
            return Err(WarehouseError::CorruptBinlog(format!(
                "unknown column type code {other}"
            )))
        }
    })
}

fn put_table_schema(buf: &mut BytesMut, def: &TableSchema) {
    put_str(buf, &def.name);
    buf.put_u32_le(def.columns.len() as u32);
    for c in &def.columns {
        put_str(buf, &c.name);
        buf.put_u8(column_type_code(c.ty));
        buf.put_u8(u8::from(c.nullable));
    }
}

fn get_table_schema(buf: &mut Bytes) -> Result<TableSchema> {
    let name = get_str(buf)?;
    if buf.remaining() < 4 {
        return Err(WarehouseError::CorruptBinlog("short column count".into()));
    }
    let n = buf.get_u32_le() as usize;
    let mut columns = Vec::with_capacity(n);
    for _ in 0..n {
        let cname = get_str(buf)?;
        if buf.remaining() < 2 {
            return Err(WarehouseError::CorruptBinlog("short column def".into()));
        }
        let ty = column_type_from_code(buf.get_u8())?;
        let nullable = buf.get_u8() != 0;
        columns.push(ColumnDef {
            name: cname,
            ty,
            nullable,
        });
    }
    TableSchema::new(&name, columns)
        .map_err(|e| WarehouseError::CorruptBinlog(format!("bad schema in log: {e}")))
}

/// Encode a payload to bytes (without framing).
pub fn encode_payload(payload: &EventPayload) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    match payload {
        EventPayload::CreateSchema { schema } => {
            buf.put_u8(TAG_CREATE_SCHEMA);
            put_str(&mut buf, schema);
        }
        EventPayload::CreateTable { schema, def } => {
            buf.put_u8(TAG_CREATE_TABLE);
            put_str(&mut buf, schema);
            put_table_schema(&mut buf, def);
        }
        EventPayload::InsertBatch {
            schema,
            table,
            rows,
        } => {
            buf.put_u8(TAG_INSERT_BATCH);
            put_str(&mut buf, schema);
            put_str(&mut buf, table);
            buf.put_u32_le(rows.len() as u32);
            for row in rows {
                buf.put_u32_le(row.len() as u32);
                for v in row {
                    put_value(&mut buf, v);
                }
            }
        }
        EventPayload::Truncate { schema, table } => {
            buf.put_u8(TAG_TRUNCATE);
            put_str(&mut buf, schema);
            put_str(&mut buf, table);
        }
    }
    buf.freeze()
}

/// Decode a payload from bytes (without framing).
pub fn decode_payload(mut buf: Bytes) -> Result<EventPayload> {
    if !buf.has_remaining() {
        return Err(WarehouseError::CorruptBinlog("empty payload".into()));
    }
    let tag = buf.get_u8();
    let payload = match tag {
        TAG_CREATE_SCHEMA => EventPayload::CreateSchema {
            schema: get_str(&mut buf)?,
        },
        TAG_CREATE_TABLE => {
            let schema = get_str(&mut buf)?;
            let def = get_table_schema(&mut buf)?;
            EventPayload::CreateTable { schema, def }
        }
        TAG_INSERT_BATCH => {
            let schema = get_str(&mut buf)?;
            let table = get_str(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(WarehouseError::CorruptBinlog("short row count".into()));
            }
            let n = buf.get_u32_le() as usize;
            let mut rows = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                if buf.remaining() < 4 {
                    return Err(WarehouseError::CorruptBinlog("short row arity".into()));
                }
                let arity = buf.get_u32_le() as usize;
                let mut row = Vec::with_capacity(arity.min(1 << 16));
                for _ in 0..arity {
                    row.push(get_value(&mut buf)?);
                }
                rows.push(row);
            }
            EventPayload::InsertBatch {
                schema,
                table,
                rows,
            }
        }
        TAG_TRUNCATE => {
            let schema = get_str(&mut buf)?;
            let table = get_str(&mut buf)?;
            EventPayload::Truncate { schema, table }
        }
        other => {
            return Err(WarehouseError::CorruptBinlog(format!(
                "unknown event tag {other}"
            )))
        }
    };
    if buf.has_remaining() {
        return Err(WarehouseError::CorruptBinlog(format!(
            "{} trailing bytes after payload",
            buf.remaining()
        )));
    }
    Ok(payload)
}

/// An append-only binary log with framed, checksummed records.
///
/// The log may be *prefix-compacted*: once a snapshot covers every record
/// up to some seqno, [`Binlog::compact_before`] drops those frames and
/// `base_seqno` records the horizon. Reads below the horizon return
/// [`WarehouseError::CompactedAway`] so consumers resume from snapshot +
/// tail instead of replaying history that no longer exists.
#[derive(Debug, Default)]
pub struct Binlog {
    /// Current generation.
    epoch: u32,
    /// Sequence number of the last appended record (0 = none).
    last_seqno: u64,
    /// Highest seqno removed by prefix compaction (0 = nothing removed).
    /// Retained records are `base_seqno + 1 ..= last_seqno`.
    base_seqno: u64,
    /// Raw framed bytes of the retained suffix of the current generation.
    bytes: BytesMut,
    /// Byte offset of each retained record, indexed by
    /// `seqno - base_seqno - 1`.
    offsets: Vec<usize>,
}

impl Binlog {
    /// Empty log at generation 0.
    pub fn new() -> Self {
        Binlog::default()
    }

    /// Position of the last appended record (or `(epoch, 0)` if empty).
    pub fn position(&self) -> LogPosition {
        LogPosition {
            epoch: self.epoch,
            seqno: self.last_seqno,
        }
    }

    /// Number of records in the current generation.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True if no records have been appended in this generation.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Total framed size in bytes of the retained records.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Highest seqno removed by prefix compaction (0 = full history kept).
    pub fn base_seqno(&self) -> u64 {
        self.base_seqno
    }

    /// Frame the payload that *would* be appended next, without mutating
    /// the log. This is the durability seam: a storage backend persists
    /// the returned frame first, then [`Binlog::push_frame`] admits it to
    /// the in-memory log — write-ahead ordering, so a crash between the
    /// two never leaves the in-memory state ahead of disk.
    pub fn encode_next(&self, payload: &EventPayload) -> (LogPosition, Bytes) {
        let pos = LogPosition {
            epoch: self.epoch,
            seqno: self.last_seqno + 1,
        };
        let body = encode_payload(payload);
        let mut framed = BytesMut::with_capacity(body.len() + 20);
        framed.put_u32_le((body.len() + 16) as u32); // epoch+seqno+payload+crc
        framed.put_u32_le(pos.epoch);
        framed.put_u64_le(pos.seqno);
        framed.put_slice(&body);
        let crc = {
            // CRC covers epoch, seqno, payload (bytes after the length).
            let covered = &framed[4..];
            crc32(covered)
        };
        framed.put_u32_le(crc);
        (pos, framed.freeze())
    }

    /// Admit a frame produced by [`Binlog::encode_next`] to the in-memory
    /// log. Must be called with frames in encode order.
    pub fn push_frame(&mut self, frame: &[u8]) {
        self.offsets.push(self.bytes.len());
        self.bytes.extend_from_slice(frame);
        self.last_seqno += 1;
    }

    /// Append a payload; returns its position. Equivalent to
    /// [`Binlog::encode_next`] + [`Binlog::push_frame`] with no
    /// durability step in between (the in-memory backend's path).
    pub fn append(&mut self, payload: &EventPayload) -> LogPosition {
        let (pos, frame) = self.encode_next(payload);
        self.push_frame(&frame);
        pos
    }

    /// Start a new generation, discarding all records. Used when a
    /// database is regenerated (e.g. restored from the federation hub).
    pub fn rotate_epoch(&mut self) {
        self.epoch += 1;
        self.last_seqno = 0;
        self.base_seqno = 0;
        self.bytes.clear();
        self.offsets.clear();
    }

    /// Rebuild the log from recovered state: a generation number, the
    /// compaction horizon implied by the snapshot the tail follows, and
    /// the raw bytes of the already-validated tail frames (concatenated,
    /// starting at `base_seqno + 1`). Used by the disk backend's recovery
    /// path after it has scanned segments and truncated any torn tail.
    pub fn restore_frames(&mut self, epoch: u32, base_seqno: u64, raw: &[u8]) -> Result<usize> {
        let mut offsets = Vec::new();
        let mut cursor = 0usize;
        let mut expect = base_seqno + 1;
        let mut buf = Bytes::copy_from_slice(raw);
        while buf.has_remaining() {
            let before = buf.remaining();
            let event = decode_framed(&mut buf)?;
            if event.position.epoch != epoch || event.position.seqno != expect {
                return Err(WarehouseError::CorruptBinlog(format!(
                    "recovered frame at {} where {}:{expect} was expected",
                    event.position, epoch
                )));
            }
            offsets.push(cursor);
            cursor += before - buf.remaining();
            expect += 1;
        }
        self.epoch = epoch;
        self.base_seqno = base_seqno;
        self.last_seqno = base_seqno + offsets.len() as u64;
        self.bytes = BytesMut::from(&raw[..cursor]);
        self.offsets = offsets;
        Ok(self.offsets.len())
    }

    /// Drop every retained record with `seqno <= upto` — they are covered
    /// by a snapshot and no longer needed for replay. The horizon only
    /// moves forward; `upto` past the head is clamped. Returns what was
    /// removed.
    pub fn compact_before(&mut self, upto: u64) -> PrefixCompaction {
        let upto = upto.min(self.last_seqno);
        if upto <= self.base_seqno {
            return PrefixCompaction::default();
        }
        let drop_records = (upto - self.base_seqno) as usize;
        let cut = if drop_records < self.offsets.len() {
            self.offsets[drop_records]
        } else {
            self.bytes.len()
        };
        let kept = self.bytes.split_off(cut);
        let dropped_bytes = self.bytes.len();
        self.bytes = kept;
        self.offsets.drain(..drop_records);
        for offset in &mut self.offsets {
            *offset -= cut;
        }
        self.base_seqno = upto;
        PrefixCompaction {
            dropped_records: drop_records,
            dropped_bytes,
        }
    }

    /// Decode and return every record strictly after `after`.
    ///
    /// If `after.epoch` predates the current generation the entire log is
    /// returned (the consumer must resynchronize from scratch); positions
    /// from a *future* epoch yield an error; positions below the
    /// compaction horizon yield [`WarehouseError::CompactedAway`].
    pub fn read_after(&self, after: LogPosition) -> Result<Vec<BinlogEvent>> {
        let start_seqno = self.replay_start(after)?;
        let mut out = Vec::new();
        for seqno in (start_seqno + 1)..=self.last_seqno {
            out.push(self.record_at(seqno)?);
        }
        Ok(out)
    }

    /// Decode every record strictly after `after` that touches
    /// `schema.table` — the delta-fold read path: a per-table cursor
    /// advances over exactly the records an incremental aggregation must
    /// fold, skipping mutations of other tables.
    ///
    /// Epoch and compaction semantics match [`Binlog::read_after`]: an
    /// older-epoch cursor replays the whole log, a future-epoch cursor is
    /// an error, and a cursor below the compaction horizon yields
    /// [`WarehouseError::CompactedAway`] — the caller must fall back to a
    /// full rebuild from the live table.
    pub fn read_table_after(
        &self,
        after: LogPosition,
        schema: &str,
        table: &str,
    ) -> Result<Vec<BinlogEvent>> {
        let start_seqno = self.replay_start(after)?;
        let mut out = Vec::new();
        for seqno in (start_seqno + 1)..=self.last_seqno {
            let ev = self.record_at(seqno)?;
            if ev.payload.schema() == schema && ev.payload.table() == Some(table) {
                out.push(ev);
            }
        }
        Ok(out)
    }

    /// Resolve `after` to the seqno replay starts from (exclusive),
    /// rejecting future epochs and compacted-away ranges.
    fn replay_start(&self, after: LogPosition) -> Result<u64> {
        if after.epoch > self.epoch {
            return Err(WarehouseError::CorruptBinlog(format!(
                "position {after} is from a future epoch (log at {})",
                self.epoch
            )));
        }
        let start_seqno = if after.epoch < self.epoch {
            0
        } else {
            after.seqno
        };
        if start_seqno < self.base_seqno {
            return Err(WarehouseError::CompactedAway {
                horizon: LogPosition {
                    epoch: self.epoch,
                    seqno: self.base_seqno,
                },
            });
        }
        Ok(start_seqno)
    }

    /// Decode the record with sequence number `seqno` (1-based).
    pub fn record_at(&self, seqno: u64) -> Result<BinlogEvent> {
        if seqno != 0 && seqno <= self.base_seqno {
            return Err(WarehouseError::CompactedAway {
                horizon: LogPosition {
                    epoch: self.epoch,
                    seqno: self.base_seqno,
                },
            });
        }
        let idx = (seqno as usize)
            .checked_sub(self.base_seqno as usize + 1)
            .filter(|i| *i < self.offsets.len())
            .ok_or_else(|| WarehouseError::CorruptBinlog(format!("no record {seqno}")))?;
        let offset = self.offsets[idx];
        // After physical tail damage an offset can point past the end of
        // the raw log; that is corruption to report, not a slice panic.
        if offset >= self.bytes.len() {
            return Err(WarehouseError::CorruptBinlog(format!(
                "record {seqno} offset {offset} beyond log end ({} bytes)",
                self.bytes.len()
            )));
        }
        let mut slice = Bytes::copy_from_slice(&self.bytes[offset..]);
        decode_framed(&mut slice)
    }

    /// Flip one byte of the raw log (XOR `0xA5`) — simulated disk
    /// corruption, used by the chaos harness. Returns `false` when the
    /// index is out of range (no-op).
    pub fn corrupt_byte(&mut self, index: usize) -> bool {
        match self.bytes.get_mut(index) {
            Some(byte) => {
                *byte ^= 0xA5;
                true
            }
            None => false,
        }
    }

    /// Flip a byte inside the last frame (tail corruption after a dirty
    /// shutdown). Returns `false` when the log is empty.
    pub fn corrupt_tail_byte(&mut self) -> bool {
        if self.bytes.is_empty() {
            return false;
        }
        let index = self.bytes.len() - 1; // a CRC byte of the last frame
        self.corrupt_byte(index)
    }

    /// Chop up to `n` raw bytes off the end of the log — a torn write /
    /// crash mid-append. Offsets and seqnos are deliberately *not*
    /// adjusted (the damage is physical); [`Binlog::repair_tail`]
    /// restores crash consistency. Returns the number of bytes removed.
    pub fn truncate_tail_bytes(&mut self, n: usize) -> usize {
        let removed = n.min(self.bytes.len());
        let keep = self.bytes.len() - removed;
        self.bytes.truncate(keep);
        removed
    }

    /// Validate the log front-to-back and truncate it at the first
    /// invalid frame (bad length, CRC mismatch, undecodable payload, or
    /// a partial frame after a torn write), restoring crash consistency:
    /// every record *before* the damage survives, everything from the
    /// damaged frame on is dropped, and new appends resume from the last
    /// valid seqno. A clean log is untouched.
    pub fn repair_tail(&mut self) -> TailRepair {
        let mut valid_offsets = Vec::with_capacity(self.offsets.len());
        let mut cursor = 0usize;
        while cursor < self.bytes.len() {
            let mut slice = Bytes::copy_from_slice(&self.bytes[cursor..]);
            let before = slice.len();
            match decode_framed(&mut slice) {
                Ok(_) => {
                    valid_offsets.push(cursor);
                    cursor += before - slice.len();
                }
                Err(_) => break,
            }
        }
        let repair = TailRepair {
            dropped_records: self.offsets.len().saturating_sub(valid_offsets.len()),
            dropped_bytes: self.bytes.len() - cursor,
        };
        if !repair.is_clean() {
            self.bytes.truncate(cursor);
            self.last_seqno = self.base_seqno + valid_offsets.len() as u64;
            self.offsets = valid_offsets;
        }
        repair
    }

    /// Export the raw framed bytes of records after `after` — this is what
    /// "loose" federation ships as files (§II-C2).
    pub fn export_after(&self, after: LogPosition) -> Result<Bytes> {
        let start_seqno = self.replay_start(after)?;
        if start_seqno >= self.last_seqno {
            return Ok(Bytes::new());
        }
        let offset = self.offsets[(start_seqno - self.base_seqno) as usize];
        Ok(Bytes::copy_from_slice(&self.bytes[offset..]))
    }
}

/// What [`Binlog::compact_before`] removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefixCompaction {
    /// Records dropped from the front of the log.
    pub dropped_records: usize,
    /// Raw bytes those records occupied.
    pub dropped_bytes: usize,
}

impl PrefixCompaction {
    /// True when nothing was removed (horizon already at or past `upto`).
    pub fn is_noop(&self) -> bool {
        self.dropped_records == 0 && self.dropped_bytes == 0
    }
}

/// What [`Binlog::repair_tail`] removed to restore crash consistency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TailRepair {
    /// Records dropped (the damaged frame and everything after it).
    pub dropped_records: usize,
    /// Raw bytes truncated off the log.
    pub dropped_bytes: usize,
}

impl TailRepair {
    /// True when the log was already consistent and nothing was dropped.
    pub fn is_clean(&self) -> bool {
        self.dropped_records == 0 && self.dropped_bytes == 0
    }
}

impl fmt::Display for TailRepair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dropped {} record(s) / {} byte(s)",
            self.dropped_records, self.dropped_bytes
        )
    }
}

/// Decode one framed record from the front of `buf`, advancing it.
pub fn decode_framed(buf: &mut Bytes) -> Result<BinlogEvent> {
    if buf.remaining() < 4 {
        return Err(WarehouseError::CorruptBinlog("short frame length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if len < 16 || buf.remaining() < len {
        return Err(WarehouseError::CorruptBinlog(format!(
            "bad frame length {len}"
        )));
    }
    let frame = buf.split_to(len);
    let covered = &frame[..len - 4];
    let stored_crc = u32::from_le_bytes([
        frame[len - 4],
        frame[len - 3],
        frame[len - 2],
        frame[len - 1],
    ]);
    if crc32(covered) != stored_crc {
        return Err(WarehouseError::CorruptBinlog("crc mismatch".into()));
    }
    let mut body = frame.slice(..len - 4);
    let epoch = body.get_u32_le();
    let seqno = body.get_u64_le();
    let payload = decode_payload(body)?;
    Ok(BinlogEvent {
        position: LogPosition { epoch, seqno },
        payload,
    })
}

/// Decode every framed record in `buf` (e.g. a shipped loose-federation
/// file).
pub fn decode_stream(mut buf: Bytes) -> Result<Vec<BinlogEvent>> {
    let mut out = Vec::new();
    while buf.has_remaining() {
        out.push(decode_framed(&mut buf)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;

    fn sample_schema() -> TableSchema {
        SchemaBuilder::new("jobfact")
            .required("resource", ColumnType::Str)
            .required("cpu_hours", ColumnType::Float)
            .nullable("queue", ColumnType::Str)
            .build()
            .unwrap()
    }

    fn sample_insert() -> EventPayload {
        EventPayload::InsertBatch {
            schema: "xdmod_x".into(),
            table: "jobfact".into(),
            rows: vec![
                vec![Value::Str("comet".into()), Value::Float(12.5), Value::Null],
                vec![
                    Value::Str("stampede".into()),
                    Value::Float(0.25),
                    Value::Str("normal".into()),
                ],
            ],
        }
    }

    #[test]
    fn payload_round_trip_all_variants() {
        let payloads = vec![
            EventPayload::CreateSchema {
                schema: "xdmod_y".into(),
            },
            EventPayload::CreateTable {
                schema: "xdmod_y".into(),
                def: sample_schema(),
            },
            sample_insert(),
            EventPayload::Truncate {
                schema: "xdmod_y".into(),
                table: "jobfact".into(),
            },
        ];
        for p in payloads {
            let enc = encode_payload(&p);
            let dec = decode_payload(enc).unwrap();
            assert_eq!(dec, p);
        }
    }

    #[test]
    fn append_and_read_after() {
        let mut log = Binlog::new();
        assert!(log.is_empty());
        let p1 = log.append(&EventPayload::CreateSchema { schema: "s".into() });
        let p2 = log.append(&sample_insert());
        assert_eq!(p1.seqno, 1);
        assert_eq!(p2.seqno, 2);
        assert_eq!(log.position(), p2);

        let all = log.read_after(LogPosition::START).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].position, p1);

        let tail = log.read_after(p1).unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].position, p2);

        let none = log.read_after(p2).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn read_table_after_filters_to_one_table() {
        let mut log = Binlog::new();
        log.append(&EventPayload::CreateSchema { schema: "s".into() });
        let cursor = log.position();
        log.append(&sample_insert()); // xdmod_x.jobfact
        log.append(&EventPayload::InsertBatch {
            schema: "xdmod_x".into(),
            table: "other".into(),
            rows: vec![],
        });
        log.append(&EventPayload::InsertBatch {
            schema: "xdmod_y".into(),
            table: "jobfact".into(),
            rows: vec![],
        });
        log.append(&EventPayload::Truncate {
            schema: "xdmod_x".into(),
            table: "jobfact".into(),
        });

        let events = log.read_table_after(cursor, "xdmod_x", "jobfact").unwrap();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0].payload,
            EventPayload::InsertBatch { .. }
        ));
        assert!(matches!(events[1].payload, EventPayload::Truncate { .. }));
        // Nothing after the head.
        assert!(log
            .read_table_after(log.position(), "xdmod_x", "jobfact")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn read_table_after_respects_compaction_horizon() {
        let mut log = Binlog::new();
        let early = log.append(&sample_insert());
        log.append(&sample_insert());
        log.append(&sample_insert());
        log.compact_before(2);
        assert!(matches!(
            log.read_table_after(LogPosition::START, "xdmod_x", "jobfact"),
            Err(WarehouseError::CompactedAway { .. })
        ));
        assert!(matches!(
            log.read_table_after(early, "xdmod_x", "jobfact"),
            Err(WarehouseError::CompactedAway { .. })
        ));
        // A cursor at or past the horizon still reads the tail.
        let horizon = LogPosition { epoch: 0, seqno: 2 };
        assert_eq!(
            log.read_table_after(horizon, "xdmod_x", "jobfact")
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn epoch_rotation_resets_and_invalidates_positions() {
        let mut log = Binlog::new();
        log.append(&sample_insert());
        let old = log.position();
        log.rotate_epoch();
        assert_eq!(log.position(), LogPosition { epoch: 1, seqno: 0 });
        // Reading from an old-epoch position returns the whole new log.
        log.append(&sample_insert());
        let events = log.read_after(old).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].position.epoch, 1);
        // Future-epoch positions are rejected.
        let future = LogPosition { epoch: 9, seqno: 0 };
        assert!(log.read_after(future).is_err());
    }

    #[test]
    fn export_and_decode_stream() {
        let mut log = Binlog::new();
        log.append(&EventPayload::CreateSchema { schema: "s".into() });
        let mid = log.position();
        log.append(&sample_insert());
        log.append(&sample_insert());

        let full = log.export_after(LogPosition::START).unwrap();
        assert_eq!(decode_stream(full).unwrap().len(), 3);

        let tail = log.export_after(mid).unwrap();
        let events = decode_stream(tail).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].position.seqno, 2);

        assert!(log.export_after(log.position()).unwrap().is_empty());
    }

    #[test]
    fn corruption_is_detected() {
        let mut log = Binlog::new();
        log.append(&sample_insert());
        let mut raw = log.export_after(LogPosition::START).unwrap().to_vec();
        // Flip a byte in the payload region.
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        let err = decode_stream(Bytes::from(raw)).unwrap_err();
        assert!(matches!(err, WarehouseError::CorruptBinlog(_)));
    }

    #[test]
    fn truncated_stream_is_detected() {
        let mut log = Binlog::new();
        log.append(&sample_insert());
        let raw = log.export_after(LogPosition::START).unwrap();
        let cut = raw.slice(..raw.len() - 3);
        assert!(decode_stream(cut).is_err());
    }

    #[test]
    fn with_schema_renames_every_variant() {
        for p in [
            EventPayload::CreateSchema {
                schema: "old".into(),
            },
            EventPayload::CreateTable {
                schema: "old".into(),
                def: sample_schema(),
            },
            EventPayload::Truncate {
                schema: "old".into(),
                table: "t".into(),
            },
        ] {
            assert_eq!(p.with_schema("new").schema(), "new");
        }
    }

    #[test]
    fn record_at_out_of_range() {
        let log = Binlog::new();
        assert!(log.record_at(0).is_err());
        assert!(log.record_at(1).is_err());
    }

    #[test]
    fn repair_tail_is_noop_on_clean_log() {
        let mut log = Binlog::new();
        log.append(&sample_insert());
        log.append(&sample_insert());
        let before = log.position();
        let repair = log.repair_tail();
        assert!(repair.is_clean());
        assert_eq!(log.position(), before);
        assert_eq!(log.read_after(LogPosition::START).unwrap().len(), 2);
    }

    #[test]
    fn repair_tail_recovers_past_corrupt_tail_frame() {
        let mut log = Binlog::new();
        log.append(&EventPayload::CreateSchema { schema: "s".into() });
        log.append(&sample_insert());
        log.append(&sample_insert());
        assert!(log.corrupt_tail_byte());
        // The damaged tail is detected…
        assert!(log.read_after(LogPosition::START).is_err());
        // …and repaired past: the two intact records survive.
        let repair = log.repair_tail();
        assert_eq!(repair.dropped_records, 1);
        assert!(repair.dropped_bytes > 0);
        assert_eq!(log.position(), LogPosition { epoch: 0, seqno: 2 });
        assert_eq!(log.read_after(LogPosition::START).unwrap().len(), 2);
        // Appends resume from the repaired seqno.
        let pos = log.append(&sample_insert());
        assert_eq!(pos.seqno, 3);
        assert_eq!(log.read_after(LogPosition::START).unwrap().len(), 3);
    }

    #[test]
    fn repair_tail_recovers_past_torn_write() {
        let mut log = Binlog::new();
        log.append(&EventPayload::CreateSchema { schema: "s".into() });
        log.append(&sample_insert());
        let removed = log.truncate_tail_bytes(5);
        assert_eq!(removed, 5);
        // record_at on the now-partial tail errors instead of panicking.
        assert!(log.record_at(2).is_err());
        let repair = log.repair_tail();
        assert_eq!(repair.dropped_records, 1);
        assert_eq!(log.position().seqno, 1);
        assert_eq!(log.read_after(LogPosition::START).unwrap().len(), 1);
    }

    #[test]
    fn repair_tail_truncates_from_first_damaged_frame() {
        // Damage in the *middle* frame drops it and everything after —
        // crash-consistent prefix semantics, never a hole.
        let mut log = Binlog::new();
        log.append(&EventPayload::CreateSchema { schema: "s".into() });
        let mid_offset = log.byte_len() + 8; // inside the second frame
        log.append(&sample_insert());
        log.append(&sample_insert());
        assert!(log.corrupt_byte(mid_offset));
        let repair = log.repair_tail();
        assert_eq!(repair.dropped_records, 2);
        assert_eq!(log.position().seqno, 1);
        assert_eq!(log.read_after(LogPosition::START).unwrap().len(), 1);
    }

    #[test]
    fn truncate_everything_then_repair_yields_empty_log() {
        let mut log = Binlog::new();
        log.append(&sample_insert());
        log.truncate_tail_bytes(usize::MAX);
        let repair = log.repair_tail();
        assert_eq!(repair.dropped_records, 1);
        assert!(log.is_empty());
        assert_eq!(log.position(), LogPosition { epoch: 0, seqno: 0 });
        assert!(log.read_after(LogPosition::START).unwrap().is_empty());
    }

    #[test]
    fn encode_next_then_push_frame_matches_append() {
        let mut a = Binlog::new();
        let mut b = Binlog::new();
        for payload in [
            EventPayload::CreateSchema { schema: "s".into() },
            sample_insert(),
        ] {
            let pa = a.append(&payload);
            let (pb, frame) = b.encode_next(&payload);
            // encode_next does not mutate…
            assert_eq!(b.position().seqno + 1, pb.seqno);
            b.push_frame(&frame);
            assert_eq!(pa, pb);
        }
        assert_eq!(
            a.export_after(LogPosition::START).unwrap(),
            b.export_after(LogPosition::START).unwrap()
        );
    }

    #[test]
    fn compact_before_drops_prefix_and_flags_reads_below_horizon() {
        let mut log = Binlog::new();
        for _ in 0..5 {
            log.append(&sample_insert());
        }
        let full_len = log.byte_len();
        let stats = log.compact_before(3);
        assert_eq!(stats.dropped_records, 3);
        assert!(stats.dropped_bytes > 0);
        assert_eq!(log.base_seqno(), 3);
        assert_eq!(log.len(), 2);
        assert_eq!(log.byte_len(), full_len - stats.dropped_bytes);
        assert_eq!(log.position(), LogPosition { epoch: 0, seqno: 5 });
        // The retained tail is readable and correctly numbered.
        let tail = log.read_after(LogPosition { epoch: 0, seqno: 3 }).unwrap();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].position.seqno, 4);
        // Reads below the horizon are refused with a typed error.
        let err = log.read_after(LogPosition::START).unwrap_err();
        assert!(matches!(
            err,
            WarehouseError::CompactedAway {
                horizon: LogPosition { epoch: 0, seqno: 3 }
            }
        ));
        assert!(matches!(
            log.record_at(2).unwrap_err(),
            WarehouseError::CompactedAway { .. }
        ));
        assert!(matches!(
            log.export_after(LogPosition { epoch: 0, seqno: 1 }),
            Err(WarehouseError::CompactedAway { .. })
        ));
        // Appends continue past the horizon; compaction is monotone.
        let pos = log.append(&sample_insert());
        assert_eq!(pos.seqno, 6);
        assert!(log.compact_before(2).is_noop());
        // Compacting to the head empties the retained window but keeps
        // seqno continuity.
        log.compact_before(u64::MAX);
        assert_eq!(log.len(), 0);
        assert_eq!(log.append(&sample_insert()).seqno, 7);
    }

    #[test]
    fn rotate_epoch_resets_compaction_horizon() {
        let mut log = Binlog::new();
        log.append(&sample_insert());
        log.append(&sample_insert());
        log.compact_before(1);
        log.rotate_epoch();
        assert_eq!(log.base_seqno(), 0);
        assert!(log.read_after(LogPosition::START).unwrap().is_empty());
    }

    #[test]
    fn restore_frames_rebuilds_log_from_tail() {
        let mut source = Binlog::new();
        for _ in 0..4 {
            source.append(&sample_insert());
        }
        // Recovery hands the tail after a snapshot at seqno 2.
        let tail = source
            .export_after(LogPosition { epoch: 0, seqno: 2 })
            .unwrap();
        let mut restored = Binlog::new();
        let n = restored.restore_frames(0, 2, &tail).unwrap();
        assert_eq!(n, 2);
        assert_eq!(restored.base_seqno(), 2);
        assert_eq!(restored.position(), LogPosition { epoch: 0, seqno: 4 });
        let events = restored
            .read_after(LogPosition { epoch: 0, seqno: 2 })
            .unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].position.seqno, 3);
        // Appends continue the sequence.
        assert_eq!(restored.append(&sample_insert()).seqno, 5);
        // A tail whose seqnos do not line up with the claimed base is
        // rejected, as is one from the wrong epoch.
        let mut bad = Binlog::new();
        assert!(bad.restore_frames(0, 1, &tail).is_err());
        assert!(bad.restore_frames(3, 2, &tail).is_err());
    }

    #[test]
    fn corrupt_byte_out_of_range_is_noop() {
        let mut log = Binlog::new();
        assert!(!log.corrupt_byte(0));
        assert!(!log.corrupt_tail_byte());
        log.append(&sample_insert());
        assert!(!log.corrupt_byte(log.byte_len()));
    }
}

//! # xdmod-warehouse
//!
//! The data warehouse substrate under every XDMoD instance in this
//! workspace — a from-scratch, embeddable analytic store standing in for
//! the MySQL/MariaDB server that production Open XDMoD uses.
//!
//! It provides exactly the mechanisms the federation paper builds on:
//!
//! - **Named schemas** of typed tables ([`database::Database`]), so the
//!   federation hub can hold "one schema per XDMoD instance".
//! - A **binary log** ([`binlog::Binlog`]) of every mutation, with framed,
//!   CRC-checksummed records and `(epoch, seqno)` positions — the stream a
//!   Tungsten-style replicator tails.
//! - **Materialized aggregation tables** ([`aggregate::AggregationSpec`])
//!   built per calendar period with configurable numeric bins
//!   ([`bins::Bins`]) — XDMoD's "aggregation levels".
//! - A **group-by/filter query engine** ([`query::Query`]) with
//!   rayon-parallel execution, powering every chart and report.
//! - A **partitioned parallel aggregation engine** ([`parallel`]):
//!   day-bucket shards folded on a scoped worker pool, merged in stable
//!   shard order (deterministic for any pool size), fronted by an
//!   invalidation-aware aggregate cache keyed on binlog watermarks.
//! - **Incremental aggregation** ([`delta`]): materialized aggregates
//!   maintained by folding only the binlog records appended since a
//!   per-(table, query) cursor into their day-bucket shards —
//!   byte-identical to a full recompute, with automatic fallback to a
//!   cold rebuild whenever the retained state cannot be trusted
//!   (resync, compaction past the cursor, fact-table rewrite, reshard).
//! - **Snapshots** ([`persist::Snapshot`]) for loose-federation dump
//!   shipping and hub-side backup/restore, content-checksummed against
//!   in-flight damage.
//! - A **durable storage engine** ([`storage::StorageBackend`]): the
//!   database writes ahead to a pluggable backend — in-memory no-op
//!   ([`storage::MemoryBackend`]) or a segmented on-disk WAL
//!   ([`disk::DiskBackend`]) with CRC-framed segment files, crash
//!   recovery that truncates torn tails, and snapshot-triggered binlog
//!   compaction.
//! - A **cold-shard paging engine** ([`resident`]): a working-set
//!   residency manager that bounds the warehouse's memory footprint by
//!   a byte budget, spilling cold day-bucket pages to CRC-framed files
//!   ([`disk::spill`]) with clock/second-chance eviction and
//!   transparent, pin-protected fault-in on the query path.

#![warn(missing_docs)]

pub mod aggregate;
pub mod binlog;
pub mod bins;
pub mod checksum;
pub mod database;
pub mod delta;
pub mod disk;
pub mod error;
pub mod parallel;
pub mod persist;
pub mod query;
pub mod resident;
pub mod schema;
pub mod storage;
pub mod table;
pub mod time;
pub mod value;

pub use aggregate::{AggregationOutputs, AggregationSpec, DimSpec};
pub use binlog::{BinlogEvent, EventPayload, LogPosition, PrefixCompaction, TailRepair};
pub use bins::{Bin, Bins};
pub use database::Database;
pub use delta::{DeltaFoldCache, DeltaOutcome, DeltaReport, FallbackReason};
pub use disk::{DiskBackend, DiskOptions};
pub use error::{Result, WarehouseError};
pub use parallel::{
    run_sharded, AggregateCache, CacheKey, PoolConfig, RebuildTicket, ShardedPartials,
};
pub use persist::Snapshot;
pub use query::{
    AggFn, Aggregate, GroupKey, OrderBy, PartialAggregation, Predicate, Query, ResultSet,
};
pub use resident::{PagingConfig, ResidencyManager, ResidencyStats};
pub use schema::{ColumnDef, RowBuilder, SchemaBuilder, TableSchema};
pub use storage::{CompactionReport, MemoryBackend, Recovery, StorageBackend};
pub use table::{RowsRef, Table};
pub use time::{CivilDate, Period};
pub use value::{ColumnType, Row, Value};

/// A database shared across threads (ingestors, replicators, query
/// frontends). `parking_lot::RwLock` follows the workspace's concurrency
/// guide: many readers (queries, binlog tailers) and one writer (ingest).
pub type SharedDatabase = std::sync::Arc<parking_lot::RwLock<Database>>;

/// Wrap a database for shared use.
pub fn shared(db: Database) -> SharedDatabase {
    std::sync::Arc::new(parking_lot::RwLock::new(db))
}

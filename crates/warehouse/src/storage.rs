//! Pluggable durability backends behind [`crate::database::Database`].
//!
//! The database keeps its authoritative working state in memory (tables +
//! the framed [`crate::binlog::Binlog`]); a [`StorageBackend`] decides what
//! of that state survives a process crash. Two implementations ship:
//!
//! - [`MemoryBackend`] — the historical behaviour: nothing is durable,
//!   every call is a cheap no-op. Recovery always yields an empty store.
//! - [`crate::disk::DiskBackend`] — a segmented append-only on-disk
//!   format: binlog frames land in CRC-checksummed segment files *before*
//!   the in-memory log admits them (write-ahead ordering), periodic
//!   snapshots bound replay time, and snapshot-covered segments are
//!   deleted (compaction).
//!
//! The trait speaks **raw framed bytes**, not decoded events: the frame
//! produced by [`crate::binlog::Binlog::encode_next`] is the unit of
//! durability, so the on-disk record format is byte-identical to the
//! in-memory/replicated one and recovery can hand segments straight back
//! to the binlog.

use crate::binlog::LogPosition;
use crate::error::Result;
use std::fmt;
use xdmod_chaos::FaultInjector;

/// What a call to [`StorageBackend::write_snapshot`] reclaimed, and how
/// far the *in-memory* binlog may safely compact.
///
/// `horizon` is deliberately conservative: the disk backend retains the
/// previous snapshot as well as the one just written, so a torn or
/// bit-flipped latest snapshot can never strand recovery past deleted
/// segments. The safe compaction horizon is therefore the *previous*
/// snapshot's seqno, not the new one's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionReport {
    /// Highest seqno (current epoch) everything — segments and the
    /// in-memory binlog prefix — may be compacted up to, inclusive.
    pub horizon: u64,
    /// Whole segment files deleted.
    pub segments_deleted: u64,
    /// Older snapshot files deleted.
    pub snapshots_deleted: u64,
    /// Bytes of deleted files reclaimed.
    pub bytes_reclaimed: u64,
}

/// Durable state found by [`StorageBackend::recover`].
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// Epoch the durable state belongs to.
    pub epoch: u32,
    /// The newest snapshot that validated, if any: the position its
    /// contents cover, plus its serialized body
    /// ([`crate::persist::Snapshot`] JSON).
    pub snapshot: Option<(LogPosition, Vec<u8>)>,
    /// Seqno the tail frames start after — the snapshot's seqno, or 0
    /// when recovery starts from an empty store.
    pub base_seqno: u64,
    /// Concatenated raw frames `base_seqno + 1 ..`, already CRC- and
    /// continuity-validated; feed to
    /// [`crate::binlog::Binlog::restore_frames`].
    pub tail: Vec<u8>,
    /// Records discarded while truncating torn/corrupt tails (at least
    /// one per damaged region, plus every intact frame stranded after
    /// the damage).
    pub truncated_records: u64,
    /// Raw bytes discarded while truncating torn/corrupt tails.
    pub truncated_bytes: u64,
    /// Snapshot files that failed validation and were skipped.
    pub corrupt_snapshots: u64,
    /// Segment files scanned.
    pub segments_scanned: u64,
}

impl Recovery {
    /// True when recovery had to repair damage (torn tail or corrupt
    /// snapshot) rather than finding a clean shutdown.
    pub fn repaired(&self) -> bool {
        self.truncated_records != 0 || self.truncated_bytes != 0 || self.corrupt_snapshots != 0
    }
}

/// A durability backend. See the module docs for the contract; the key
/// invariant is **write-ahead ordering**: [`StorageBackend::append`] is
/// called *before* the frame is admitted to the in-memory log, and an
/// `Err` from it must leave the durable state a valid prefix (the frame
/// simply never happened).
pub trait StorageBackend: Send + fmt::Debug {
    /// Short stable name for diagnostics and config ("memory", "disk").
    fn name(&self) -> &'static str;

    /// Durably record the frame for `pos`. Must not return `Ok` unless a
    /// crash immediately afterwards would preserve the frame (modulo
    /// injected faults, which exist precisely to violate this silently).
    fn append(&mut self, pos: LogPosition, frame: &[u8]) -> Result<()>;

    /// Durably record a snapshot whose contents cover everything through
    /// `pos`, then reclaim whatever that makes redundant.
    fn write_snapshot(&mut self, pos: LogPosition, snapshot: &[u8]) -> Result<CompactionReport>;

    /// Begin generation `epoch` (restore/rebuild path): durable state of
    /// older generations is dropped.
    fn start_epoch(&mut self, epoch: u32) -> Result<()>;

    /// Scan durable state, repair torn tails, and return what survived.
    /// Must never refuse to start over tail damage — truncate and count
    /// it instead.
    fn recover(&mut self) -> Result<Recovery>;

    /// Flush anything buffered to stable storage.
    fn sync(&mut self) -> Result<()>;

    /// Hand the backend a chaos injector; faults fire at the disk-layer
    /// fault points (`SegmentAppend`, `SnapshotWrite`). Backends without
    /// physical media ignore it.
    fn set_chaos(&mut self, _injector: FaultInjector, _target: String) {}

    /// Detach any chaos injector.
    fn clear_chaos(&mut self) {}
}

/// The historical in-memory story: nothing is durable. All operations
/// succeed without doing anything; recovery finds an empty store. The
/// compaction horizon still advances (trailing the previous snapshot, the
/// same protocol the disk backend uses) so the in-memory binlog prefix is
/// bounded under periodic snapshotting regardless of backend.
#[derive(Debug, Default)]
pub struct MemoryBackend {
    prev_snapshot_seqno: Option<u64>,
}

impl MemoryBackend {
    /// A fresh in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageBackend for MemoryBackend {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn append(&mut self, _pos: LogPosition, _frame: &[u8]) -> Result<()> {
        Ok(())
    }

    fn write_snapshot(&mut self, pos: LogPosition, _snapshot: &[u8]) -> Result<CompactionReport> {
        let horizon = self.prev_snapshot_seqno.unwrap_or(0);
        self.prev_snapshot_seqno = Some(pos.seqno);
        Ok(CompactionReport {
            horizon,
            ..CompactionReport::default()
        })
    }

    fn start_epoch(&mut self, _epoch: u32) -> Result<()> {
        self.prev_snapshot_seqno = None;
        Ok(())
    }

    fn recover(&mut self) -> Result<Recovery> {
        Ok(Recovery::default())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_backend_is_a_noop_with_trailing_horizon() {
        let mut be = MemoryBackend::new();
        assert_eq!(be.name(), "memory");
        let pos = |seqno| LogPosition { epoch: 0, seqno };
        be.append(pos(1), b"frame").unwrap();
        be.sync().unwrap();
        // First snapshot: nothing safe to compact yet.
        let r1 = be.write_snapshot(pos(10), b"{}").unwrap();
        assert_eq!(r1.horizon, 0);
        // Second snapshot: horizon trails to the first.
        let r2 = be.write_snapshot(pos(25), b"{}").unwrap();
        assert_eq!(r2.horizon, 10);
        // Epoch rotation forgets snapshot history.
        be.start_epoch(1).unwrap();
        assert_eq!(be.write_snapshot(pos(3), b"{}").unwrap().horizon, 0);
        // Recovery always finds an empty store.
        let rec = be.recover().unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.tail.is_empty());
        assert!(!rec.repaired());
    }

    #[test]
    fn backend_is_object_safe_and_send() {
        fn assert_send<T: Send>(_t: &T) {}
        let boxed: Box<dyn StorageBackend> = Box::new(MemoryBackend::new());
        assert_send(&boxed);
    }
}

//! The warehouse database: named schemas of tables plus a binary log.
//!
//! One [`Database`] models one XDMoD instance's MySQL server. Satellite
//! instances keep their realm tables in a schema named after the instance;
//! the federation hub holds *one schema per satellite* (the Tungsten
//! rename-on-transfer pattern, §II-C1) plus its own aggregate schemas.

use crate::binlog::{Binlog, BinlogEvent, EventPayload, LogPosition, TailRepair};
use crate::error::{Result, WarehouseError};
use crate::parallel::{self, AggregateCache, CacheKey, PoolConfig, RebuildTicket};
use crate::query::{Query, ResultSet};
use crate::schema::TableSchema;
use crate::table::Table;
use crate::value::Row;
use std::collections::BTreeMap;
use xdmod_chaos::{FaultInjector, FaultKind, FaultPoint};
use xdmod_telemetry::MetricsRegistry;

/// A database: an ordered map of schemas, each an ordered map of tables,
/// with every mutation recorded in an embedded binlog.
#[derive(Debug, Default)]
pub struct Database {
    schemas: BTreeMap<String, BTreeMap<String, Table>>,
    binlog: Binlog,
    /// Disabled by default; [`Database::set_telemetry`] attaches a live
    /// registry (the hub/instance hands its own down at construction).
    telemetry: MetricsRegistry,
    /// Chaos fault injector plus the target label it is consulted under.
    /// `None` (the default) costs one branch per consultation point.
    chaos: Option<(FaultInjector, String)>,
    /// Position of the last binlog record that mutated each table —
    /// the per-table cache-invalidation watermark. Granular so aggregate
    /// rebuilds (which write *other* tables) don't invalidate cached
    /// results over untouched fact tables.
    watermarks: BTreeMap<(String, String), LogPosition>,
    /// Bumped by [`Database::note_external_rebuild`] when table contents
    /// are rewritten outside normal DML accounting (replication resync,
    /// restore). Part of every [`RebuildTicket`].
    rebuild_generation: u64,
    /// Worker/shard sizing for the partitioned aggregation engine.
    pool: PoolConfig,
    /// Invalidation-aware cache over [`Database::query_cached`] results
    /// and materialized aggregates.
    agg_cache: AggregateCache,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Attach a metrics registry. All binlog/query instrumentation becomes
    /// live; with the default (disabled) registry it costs one branch.
    pub fn set_telemetry(&mut self, telemetry: MetricsRegistry) {
        self.telemetry = telemetry;
    }

    /// The registry this database reports into (disabled unless
    /// [`Database::set_telemetry`] was called).
    pub fn telemetry(&self) -> &MetricsRegistry {
        &self.telemetry
    }

    /// Attach a chaos fault injector, consulted on binlog reads
    /// ([`FaultPoint::BinlogRead`]) and replicated-event applies
    /// ([`FaultPoint::Apply`]) under `target` (conventionally the
    /// replication link name). This is the chaos-harness wiring;
    /// production databases leave it unset and pay one branch.
    pub fn set_fault_injector(&mut self, injector: FaultInjector, target: impl Into<String>) {
        self.chaos = Some((injector, target.into()));
    }

    /// Detach any chaos fault injector.
    pub fn clear_fault_injector(&mut self) {
        self.chaos = None;
    }

    /// Consult the chaos injector (if any) at a fault point. Stalls are
    /// served in place; every error kind surfaces as a transient
    /// [`WarehouseError::Io`]. Physical binlog damage kinds are executed
    /// by the replication transport, which holds write access to the
    /// source database — if one reaches a warehouse consultation point
    /// it degrades to a transient I/O failure as well.
    fn injected_fault(&self, point: FaultPoint) -> Result<()> {
        let Some((injector, target)) = &self.chaos else {
            return Ok(());
        };
        match injector.next_fault(point, target) {
            None => Ok(()),
            Some(FaultKind::Stall { millis }) => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
                Ok(())
            }
            Some(kind) => Err(WarehouseError::Io(format!(
                "injected {kind} at {point} ({target})"
            ))),
        }
    }

    /// Append to the binlog, counting appends and framed bytes.
    fn log(&mut self, payload: &EventPayload) -> LogPosition {
        let before = self.binlog.byte_len();
        let pos = self.binlog.append(payload);
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("warehouse_binlog_appends_total", &[])
                .inc();
            self.telemetry
                .counter("warehouse_binlog_bytes_total", &[])
                .add((self.binlog.byte_len() - before) as u64);
        }
        pos
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    /// Create a schema (namespace). Errors if it already exists.
    pub fn create_schema(&mut self, name: &str) -> Result<LogPosition> {
        if self.schemas.contains_key(name) {
            return Err(WarehouseError::AlreadyExists(format!("schema {name}")));
        }
        self.schemas.insert(name.to_owned(), BTreeMap::new());
        Ok(self.log(&EventPayload::CreateSchema {
            schema: name.to_owned(),
        }))
    }

    /// Create a schema if absent; no-op (and no binlog record) otherwise.
    pub fn ensure_schema(&mut self, name: &str) -> Result<()> {
        if !self.schemas.contains_key(name) {
            self.create_schema(name)?;
        }
        Ok(())
    }

    /// Create a table. Errors if the schema is missing or the table exists.
    pub fn create_table(&mut self, schema: &str, def: TableSchema) -> Result<LogPosition> {
        let tables = self
            .schemas
            .get_mut(schema)
            .ok_or_else(|| WarehouseError::UnknownSchema(schema.to_owned()))?;
        if tables.contains_key(&def.name) {
            return Err(WarehouseError::AlreadyExists(format!(
                "table {schema}.{}",
                def.name
            )));
        }
        let event = EventPayload::CreateTable {
            schema: schema.to_owned(),
            def: def.clone(),
        };
        let name = def.name.clone();
        tables.insert(name.clone(), Table::new(def));
        let pos = self.log(&event);
        self.watermarks.insert((schema.to_owned(), name), pos);
        Ok(pos)
    }

    /// Create a table if absent, verifying the definition matches when it
    /// already exists.
    pub fn ensure_table(&mut self, schema: &str, def: TableSchema) -> Result<()> {
        if let Ok(existing) = self.table(schema, &def.name) {
            if *existing.schema() != def {
                return Err(WarehouseError::SchemaMismatch(format!(
                    "table {schema}.{} exists with a different definition",
                    def.name
                )));
            }
            return Ok(());
        }
        self.create_table(schema, def)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    /// Insert a batch of rows, validating against the table schema. The
    /// batch is atomic: either all rows land (and one binlog record is
    /// written) or none do.
    pub fn insert(&mut self, schema: &str, table: &str, rows: Vec<Row>) -> Result<LogPosition> {
        if rows.is_empty() {
            // Nothing to do; return current position without logging an
            // empty batch.
            return Ok(self.binlog.position());
        }
        let t = self.table_mut(schema, table)?;
        let stored = t.insert_batch(rows)?;
        let pos = self.log(&EventPayload::InsertBatch {
            schema: schema.to_owned(),
            table: table.to_owned(),
            rows: stored,
        });
        self.watermarks
            .insert((schema.to_owned(), table.to_owned()), pos);
        Ok(pos)
    }

    /// Delete all rows of a table (used when rebuilding aggregates).
    pub fn truncate(&mut self, schema: &str, table: &str) -> Result<LogPosition> {
        let t = self.table_mut(schema, table)?;
        t.truncate();
        let pos = self.log(&EventPayload::Truncate {
            schema: schema.to_owned(),
            table: table.to_owned(),
        });
        self.watermarks
            .insert((schema.to_owned(), table.to_owned()), pos);
        Ok(pos)
    }

    /// Apply a replicated event to this database.
    ///
    /// This is the *apply* side of Tungsten-style replication: the event
    /// came from another database's binlog (possibly schema-renamed) and
    /// is re-executed here, which also re-logs it — enabling chained
    /// topologies (satellite → hub → backup hub, §II-C4).
    ///
    /// `CreateSchema`/`CreateTable` are idempotent on apply so a restarted
    /// replicator can safely replay from an older position.
    pub fn apply_event(&mut self, payload: &EventPayload) -> Result<()> {
        self.injected_fault(FaultPoint::Apply)?;
        match payload {
            EventPayload::CreateSchema { schema } => {
                self.ensure_schema(schema)?;
            }
            EventPayload::CreateTable { schema, def } => {
                self.ensure_schema(schema)?;
                self.ensure_table(schema, def.clone())?;
            }
            EventPayload::InsertBatch {
                schema,
                table,
                rows,
            } => {
                self.insert(schema, table, rows.clone())?;
            }
            EventPayload::Truncate { schema, table } => {
                self.truncate(schema, table)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Names of all schemas.
    pub fn schema_names(&self) -> Vec<&str> {
        self.schemas.keys().map(String::as_str).collect()
    }

    /// True if the schema exists.
    pub fn has_schema(&self, schema: &str) -> bool {
        self.schemas.contains_key(schema)
    }

    /// Names of all tables in a schema.
    pub fn table_names(&self, schema: &str) -> Result<Vec<&str>> {
        self.schemas
            .get(schema)
            .map(|t| t.keys().map(String::as_str).collect())
            .ok_or_else(|| WarehouseError::UnknownSchema(schema.to_owned()))
    }

    /// Describe every table in a schema: a point-in-time copy of the
    /// table definitions (names, column types, nullability), sorted by
    /// table name. This is the introspection surface the static
    /// pre-flight analyzer (`xdmod-check`) builds its federation model
    /// from — schema-drift and dangling-dimension checks compare these
    /// definitions across satellites without reading any rows.
    pub fn describe_schema(&self, schema: &str) -> Result<Vec<TableSchema>> {
        let tables = self
            .schemas
            .get(schema)
            .ok_or_else(|| WarehouseError::UnknownSchema(schema.to_owned()))?;
        // BTreeMap iteration: already name-sorted.
        Ok(tables.values().map(|t| t.schema().clone()).collect())
    }

    /// Borrow a table.
    pub fn table(&self, schema: &str, table: &str) -> Result<&Table> {
        self.schemas
            .get(schema)
            .ok_or_else(|| WarehouseError::UnknownSchema(schema.to_owned()))?
            .get(table)
            .ok_or_else(|| WarehouseError::UnknownTable {
                schema: schema.to_owned(),
                table: table.to_owned(),
            })
    }

    /// Run a query against one table, timing the execution and counting
    /// rows scanned.
    ///
    /// Equivalent to `query.run(db.table(schema, table)?)` plus the
    /// `warehouse_query_seconds{table=..}` histogram and
    /// `warehouse_query_rows_scanned_total{table=..}` counter. Callers on
    /// hot paths that don't want attribution can keep calling
    /// [`Query::run`] directly.
    pub fn query(&self, schema: &str, table: &str, query: &Query) -> Result<ResultSet> {
        let t = self.table(schema, table)?;
        let span = self
            .telemetry
            .span("warehouse_query_seconds", &[("table", table)]);
        let result = query.run(t);
        span.finish();
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("warehouse_query_rows_scanned_total", &[("table", table)])
                .add(t.len() as u64);
        }
        result
    }

    /// Run a query through the partitioned parallel engine (see
    /// [`crate::parallel::run_sharded`]): day-bucket shards folded on a
    /// scoped worker pool sized by [`Database::set_parallelism`], merged
    /// in stable shard order. Deterministic for any pool size, and
    /// instrumented like [`Database::query`] plus per-shard timings.
    pub fn query_sharded(&self, schema: &str, table: &str, query: &Query) -> Result<ResultSet> {
        let t = self.table(schema, table)?;
        let span = self
            .telemetry
            .span("warehouse_query_seconds", &[("table", table)]);
        let result = parallel::run_sharded(query, t, self.pool, &self.telemetry, table);
        span.finish();
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("warehouse_query_rows_scanned_total", &[("table", table)])
                .add(t.len() as u64);
        }
        result
    }

    /// [`Database::query_sharded`] behind the aggregate cache: a result
    /// computed at the table's current [`RebuildTicket`] is replayed
    /// verbatim until the table is mutated (or an external rebuild bumps
    /// the generation), making repeat report/chart queries after no new
    /// ingest O(1). Counts `warehouse_aggcache_{hits,misses}_total`.
    pub fn query_cached(&self, schema: &str, table: &str, query: &Query) -> Result<ResultSet> {
        let key = CacheKey {
            schema: schema.to_owned(),
            table: table.to_owned(),
            fingerprint: query.fingerprint(),
        };
        let ticket = self.rebuild_ticket(schema, table);
        if let Some(hit) = self.agg_cache.get(&key, ticket) {
            if self.telemetry.is_enabled() {
                self.telemetry
                    .counter("warehouse_aggcache_hits_total", &[("table", table)])
                    .inc();
            }
            return Ok(hit);
        }
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("warehouse_aggcache_misses_total", &[("table", table)])
                .inc();
        }
        let result = self.query_sharded(schema, table, query)?;
        self.agg_cache.put(key, ticket, Some(result.clone()));
        Ok(result)
    }

    /// Configure the aggregation worker pool / shard partition.
    pub fn set_parallelism(&mut self, pool: PoolConfig) {
        self.pool = pool;
    }

    /// Current aggregation pool configuration.
    pub fn parallelism(&self) -> PoolConfig {
        self.pool
    }

    /// Position of the last binlog record that mutated this table, or
    /// `None` if it was never touched (or predates this epoch).
    pub fn table_watermark(&self, schema: &str, table: &str) -> Option<LogPosition> {
        self.watermarks
            .get(&(schema.to_owned(), table.to_owned()))
            .copied()
    }

    /// Current rebuild generation (see [`Database::note_external_rebuild`]).
    pub fn rebuild_generation(&self) -> u64 {
        self.rebuild_generation
    }

    /// Record that table contents were rewritten by an external actor
    /// (replication resync, restore): bumps the rebuild generation so
    /// every outstanding [`RebuildTicket`] and cache entry goes stale.
    /// Returns the new generation.
    pub fn note_external_rebuild(&mut self) -> u64 {
        self.rebuild_generation += 1;
        self.agg_cache.clear();
        self.rebuild_generation
    }

    /// Ticket capturing a table's current data version; validates cache
    /// entries and split compute/apply aggregate rebuilds.
    pub fn rebuild_ticket(&self, schema: &str, table: &str) -> RebuildTicket {
        RebuildTicket {
            watermark: self.table_watermark(schema, table),
            generation: self.rebuild_generation,
        }
    }

    /// The aggregate cache (for direct marking by the materializer).
    pub fn aggregate_cache(&self) -> &AggregateCache {
        &self.agg_cache
    }

    fn table_mut(&mut self, schema: &str, table: &str) -> Result<&mut Table> {
        self.schemas
            .get_mut(schema)
            .ok_or_else(|| WarehouseError::UnknownSchema(schema.to_owned()))?
            .get_mut(table)
            .ok_or_else(|| WarehouseError::UnknownTable {
                schema: schema.to_owned(),
                table: table.to_owned(),
            })
    }

    /// Total row count across every table (diagnostics).
    pub fn total_rows(&self) -> usize {
        self.schemas
            .values()
            .flat_map(|t| t.values())
            .map(Table::len)
            .sum()
    }

    // ------------------------------------------------------------------
    // Binlog access
    // ------------------------------------------------------------------

    /// Current binlog position (what a replicator saves as its watermark).
    pub fn binlog_position(&self) -> LogPosition {
        self.binlog.position()
    }

    /// All binlog records strictly after `after`.
    pub fn binlog_after(&self, after: LogPosition) -> Result<Vec<BinlogEvent>> {
        self.injected_fault(FaultPoint::BinlogRead)?;
        self.binlog.read_after(after)
    }

    /// Flip a byte in the last binlog frame — simulated disk corruption,
    /// executed by the chaos harness. Returns `false` on an empty log.
    pub fn corrupt_binlog_tail_byte(&mut self) -> bool {
        self.binlog.corrupt_tail_byte()
    }

    /// Chop raw bytes off the binlog tail — a simulated torn write.
    /// Returns the number of bytes removed.
    pub fn truncate_binlog_tail(&mut self, bytes: usize) -> usize {
        self.binlog.truncate_tail_bytes(bytes)
    }

    /// Validate the binlog and crash-consistently repair its tail (see
    /// [`Binlog::repair_tail`]): records before the first damaged frame
    /// survive, the damage and everything after it is dropped, and the
    /// repair is counted (`warehouse_binlog_tail_repairs_total`) and
    /// logged (`warehouse.binlog_repaired`) so it is visible on the Ops
    /// dashboard. A clean log is untouched and reports nothing.
    pub fn repair_binlog(&mut self) -> TailRepair {
        let repair = self.binlog.repair_tail();
        if !repair.is_clean() && self.telemetry.is_enabled() {
            self.telemetry
                .counter("warehouse_binlog_tail_repairs_total", &[])
                .inc();
            self.telemetry.event_with(
                "warehouse.binlog_repaired",
                &format!("binlog tail repaired: {repair}"),
                &[
                    ("dropped_records", repair.dropped_records as f64),
                    ("dropped_bytes", repair.dropped_bytes as f64),
                ],
            );
        }
        repair
    }

    /// Raw framed binlog bytes after `after` (loose-federation export).
    pub fn binlog_export(&self, after: LogPosition) -> Result<bytes::Bytes> {
        self.binlog.export_after(after)
    }

    /// Number of records in the current binlog generation.
    pub fn binlog_len(&self) -> usize {
        self.binlog.len()
    }

    /// Wipe all data and start a new binlog generation. Used when a
    /// database is regenerated from the federation hub (backup use case,
    /// §II-E4).
    pub fn reset_for_restore(&mut self) {
        self.schemas.clear();
        self.binlog.rotate_epoch();
        // Every cached result and in-flight rebuild ticket is now void.
        self.watermarks.clear();
        self.rebuild_generation += 1;
        self.agg_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::{ColumnType, Value};

    fn jobfact() -> TableSchema {
        SchemaBuilder::new("jobfact")
            .required("resource", ColumnType::Str)
            .required("cpu_hours", ColumnType::Float)
            .build()
            .unwrap()
    }

    fn populated() -> Database {
        let mut db = Database::new();
        db.create_schema("xdmod_x").unwrap();
        db.create_table("xdmod_x", jobfact()).unwrap();
        db.insert(
            "xdmod_x",
            "jobfact",
            vec![vec![Value::Str("comet".into()), Value::Float(3.0)]],
        )
        .unwrap();
        db
    }

    #[test]
    fn describe_schema_returns_sorted_table_definitions() {
        let mut db = populated();
        db.create_table(
            "xdmod_x",
            SchemaBuilder::new("storagefact")
                .required("filesystem", ColumnType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        let defs = db.describe_schema("xdmod_x").unwrap();
        assert_eq!(
            defs.iter().map(|d| d.name.as_str()).collect::<Vec<_>>(),
            vec!["jobfact", "storagefact"]
        );
        assert_eq!(defs[0].columns[0].name, "resource");
        assert_eq!(defs[0].columns[0].ty, ColumnType::Str);
        assert!(!defs[0].columns[0].nullable);
        assert!(matches!(
            db.describe_schema("ghost"),
            Err(WarehouseError::UnknownSchema(_))
        ));
    }

    #[test]
    fn ddl_and_dml_are_logged_in_order() {
        let db = populated();
        let events = db.binlog_after(LogPosition::START).unwrap();
        assert_eq!(events.len(), 3);
        assert!(matches!(
            events[0].payload,
            EventPayload::CreateSchema { .. }
        ));
        assert!(matches!(
            events[1].payload,
            EventPayload::CreateTable { .. }
        ));
        assert!(matches!(
            events[2].payload,
            EventPayload::InsertBatch { .. }
        ));
    }

    #[test]
    fn duplicate_ddl_rejected() {
        let mut db = populated();
        assert!(matches!(
            db.create_schema("xdmod_x"),
            Err(WarehouseError::AlreadyExists(_))
        ));
        assert!(matches!(
            db.create_table("xdmod_x", jobfact()),
            Err(WarehouseError::AlreadyExists(_))
        ));
    }

    #[test]
    fn ensure_table_checks_definition() {
        let mut db = populated();
        db.ensure_table("xdmod_x", jobfact()).unwrap(); // same def: ok
        let other = SchemaBuilder::new("jobfact")
            .required("resource", ColumnType::Str)
            .build()
            .unwrap();
        assert!(db.ensure_table("xdmod_x", other).is_err());
    }

    #[test]
    fn insert_into_missing_table_errors() {
        let mut db = populated();
        assert!(db.insert("xdmod_x", "nope", vec![vec![]]).is_err());
        assert!(db.insert("nope", "jobfact", vec![vec![]]).is_err());
    }

    #[test]
    fn empty_insert_writes_no_log_record() {
        let mut db = populated();
        let before = db.binlog_len();
        db.insert("xdmod_x", "jobfact", vec![]).unwrap();
        assert_eq!(db.binlog_len(), before);
    }

    #[test]
    fn replaying_binlog_reproduces_database() {
        let src = populated();
        let mut dst = Database::new();
        for ev in src.binlog_after(LogPosition::START).unwrap() {
            dst.apply_event(&ev.payload).unwrap();
        }
        assert_eq!(
            src.table("xdmod_x", "jobfact").unwrap().content_checksum(),
            dst.table("xdmod_x", "jobfact").unwrap().content_checksum()
        );
        // And the destination's own binlog re-logged everything, so a
        // second hop replays identically (chained topology).
        let mut third = Database::new();
        for ev in dst.binlog_after(LogPosition::START).unwrap() {
            third.apply_event(&ev.payload).unwrap();
        }
        assert_eq!(
            src.table("xdmod_x", "jobfact").unwrap().content_checksum(),
            third
                .table("xdmod_x", "jobfact")
                .unwrap()
                .content_checksum()
        );
    }

    #[test]
    fn apply_event_is_idempotent_for_ddl() {
        let mut db = Database::new();
        let ev = EventPayload::CreateSchema {
            schema: "s".into(),
        };
        db.apply_event(&ev).unwrap();
        db.apply_event(&ev).unwrap(); // replay tolerated
        let ev = EventPayload::CreateTable {
            schema: "s".into(),
            def: jobfact(),
        };
        db.apply_event(&ev).unwrap();
        db.apply_event(&ev).unwrap();
        assert_eq!(db.table_names("s").unwrap(), vec!["jobfact"]);
    }

    #[test]
    fn truncate_logs_and_clears() {
        let mut db = populated();
        db.truncate("xdmod_x", "jobfact").unwrap();
        assert!(db.table("xdmod_x", "jobfact").unwrap().is_empty());
        let events = db.binlog_after(LogPosition::START).unwrap();
        assert!(matches!(
            events.last().unwrap().payload,
            EventPayload::Truncate { .. }
        ));
    }

    #[test]
    fn reset_for_restore_rotates_epoch() {
        let mut db = populated();
        let old_pos = db.binlog_position();
        db.reset_for_restore();
        assert!(db.schema_names().is_empty());
        let pos = db.binlog_position();
        assert_eq!(pos.epoch, old_pos.epoch + 1);
        assert_eq!(pos.seqno, 0);
    }

    #[test]
    fn telemetry_counts_binlog_appends_and_query_time() {
        use crate::query::Query;
        use xdmod_telemetry::MetricsRegistry;

        let reg = MetricsRegistry::new();
        let mut db = Database::new();
        db.set_telemetry(reg.clone());
        db.create_schema("xdmod_x").unwrap();
        db.create_table("xdmod_x", jobfact()).unwrap();
        db.insert(
            "xdmod_x",
            "jobfact",
            vec![vec![Value::Str("comet".into()), Value::Float(3.0)]],
        )
        .unwrap();

        let snap = reg.snapshot();
        assert_eq!(snap.counter("warehouse_binlog_appends_total", &[]), Some(3));
        assert!(snap.counter("warehouse_binlog_bytes_total", &[]).unwrap() > 0);

        let rs = db
            .query("xdmod_x", "jobfact", &Query::new())
            .unwrap();
        assert_eq!(rs.len(), 1);
        let snap = reg.snapshot();
        assert_eq!(
            snap.histogram("warehouse_query_seconds", &[("table", "jobfact")])
                .unwrap()
                .count,
            1
        );
        assert_eq!(
            snap.counter(
                "warehouse_query_rows_scanned_total",
                &[("table", "jobfact")]
            ),
            Some(1)
        );
    }

    #[test]
    fn query_cached_hits_until_table_mutates() {
        use crate::query::{AggFn, Aggregate, Query};
        use xdmod_telemetry::MetricsRegistry;

        let reg = MetricsRegistry::new();
        let mut db = populated();
        db.set_telemetry(reg.clone());
        let q = Query::new().aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"));

        let first = db.query_cached("xdmod_x", "jobfact", &q).unwrap();
        let second = db.query_cached("xdmod_x", "jobfact", &q).unwrap();
        assert_eq!(first, second);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("warehouse_aggcache_hits_total", &[("table", "jobfact")]),
            Some(1)
        );
        assert_eq!(
            snap.counter("warehouse_aggcache_misses_total", &[("table", "jobfact")]),
            Some(1)
        );

        // Ingest moves the watermark: next call recomputes.
        db.insert(
            "xdmod_x",
            "jobfact",
            vec![vec![Value::Str("comet".into()), Value::Float(4.0)]],
        )
        .unwrap();
        let third = db.query_cached("xdmod_x", "jobfact", &q).unwrap();
        assert_eq!(third.scalar_f64("total"), Some(7.0));
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("warehouse_aggcache_misses_total", &[("table", "jobfact")]),
            Some(2)
        );
    }

    #[test]
    fn cached_queries_survive_unrelated_table_writes() {
        use crate::query::Query;
        let mut db = populated();
        db.create_table(
            "xdmod_x",
            SchemaBuilder::new("storagefact")
                .required("filesystem", ColumnType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        let q = Query::new().aggregate(crate::query::Aggregate::count("jobs"));
        let ticket = db.rebuild_ticket("xdmod_x", "jobfact");
        db.query_cached("xdmod_x", "jobfact", &q).unwrap();
        // Writing a *different* table leaves the jobfact ticket intact.
        db.insert(
            "xdmod_x",
            "storagefact",
            vec![vec![Value::Str("/scratch".into())]],
        )
        .unwrap();
        assert_eq!(db.rebuild_ticket("xdmod_x", "jobfact"), ticket);
        assert!(db.aggregate_cache().is_fresh(
            &crate::parallel::CacheKey {
                schema: "xdmod_x".into(),
                table: "jobfact".into(),
                fingerprint: q.fingerprint(),
            },
            ticket
        ));
    }

    #[test]
    fn note_external_rebuild_stales_every_ticket() {
        let mut db = populated();
        let ticket = db.rebuild_ticket("xdmod_x", "jobfact");
        let generation = db.note_external_rebuild();
        assert_eq!(generation, 1);
        assert_ne!(db.rebuild_ticket("xdmod_x", "jobfact"), ticket);
        assert!(db.aggregate_cache().is_empty());
    }

    #[test]
    fn sharded_query_matches_rayon_query_path() {
        use crate::parallel::PoolConfig;
        use crate::query::{AggFn, Aggregate, Query};
        let mut db = populated();
        db.set_parallelism(PoolConfig::new(4).with_shards(8));
        let q = Query::new()
            .group_by_column("resource")
            .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"));
        assert_eq!(
            db.query_sharded("xdmod_x", "jobfact", &q).unwrap(),
            db.query("xdmod_x", "jobfact", &q).unwrap()
        );
    }

    #[test]
    fn detached_database_reports_nothing() {
        use crate::query::Query;
        let db = populated();
        assert!(!db.telemetry().is_enabled());
        // Instrumented paths still work with telemetry off.
        db.query("xdmod_x", "jobfact", &Query::new()).unwrap();
        assert_eq!(db.telemetry().prometheus_text(), "");
    }

    #[test]
    fn injected_transient_fault_surfaces_and_clears() {
        use xdmod_chaos::{FaultKind, FaultPlan, FaultPoint, FaultSpec};
        let mut db = populated();
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::BinlogRead,
            FaultKind::Transient,
            &[1],
        ));
        db.set_fault_injector(plan.injector(7), "link-x");
        let err = db.binlog_after(LogPosition::START).unwrap_err();
        assert!(matches!(err, WarehouseError::Io(_)), "got {err}");
        assert!(err.to_string().contains("transient"));
        // Second read (op 2) is past the schedule: succeeds.
        assert_eq!(db.binlog_after(LogPosition::START).unwrap().len(), 3);
        db.clear_fault_injector();
        assert_eq!(db.binlog_after(LogPosition::START).unwrap().len(), 3);
    }

    #[test]
    fn injected_apply_fault_blocks_replicated_event() {
        use xdmod_chaos::{FaultKind, FaultPlan, FaultPoint, FaultSpec};
        let mut db = Database::new();
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::Apply,
            FaultKind::Transient,
            &[1],
        ));
        db.set_fault_injector(plan.injector(7), "link-x");
        let ev = EventPayload::CreateSchema { schema: "s".into() };
        assert!(db.apply_event(&ev).is_err());
        // Retry succeeds and the event lands exactly once.
        db.apply_event(&ev).unwrap();
        assert!(db.has_schema("s"));
    }

    #[test]
    fn repair_binlog_recovers_corrupt_tail_and_reports_telemetry() {
        use xdmod_telemetry::MetricsRegistry;
        let reg = MetricsRegistry::new();
        let mut db = populated();
        db.set_telemetry(reg.clone());
        assert!(db.corrupt_binlog_tail_byte());
        assert!(db.binlog_after(LogPosition::START).is_err());
        let repair = db.repair_binlog();
        assert_eq!(repair.dropped_records, 1);
        // The two intact records are readable again; the table rows are
        // untouched (only the log was damaged).
        assert_eq!(db.binlog_after(LogPosition::START).unwrap().len(), 2);
        assert_eq!(db.total_rows(), 1);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("warehouse_binlog_tail_repairs_total", &[]),
            Some(1)
        );
        assert_eq!(reg.events_of_kind("warehouse.binlog_repaired").len(), 1);
        // Repairing a clean log is a no-op and reports nothing further.
        assert!(db.repair_binlog().is_clean());
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("warehouse_binlog_tail_repairs_total", &[]),
            Some(1)
        );
    }

    #[test]
    fn truncated_binlog_tail_repairs_without_panicking() {
        let mut db = populated();
        let removed = db.truncate_binlog_tail(3);
        assert_eq!(removed, 3);
        assert!(db.binlog_after(LogPosition::START).is_err());
        let repair = db.repair_binlog();
        assert_eq!(repair.dropped_records, 1);
        assert_eq!(db.binlog_after(LogPosition::START).unwrap().len(), 2);
        // New writes resume cleanly after the repair.
        db.insert(
            "xdmod_x",
            "jobfact",
            vec![vec![Value::Str("x".into()), Value::Float(1.0)]],
        )
        .unwrap();
        assert_eq!(db.binlog_after(LogPosition::START).unwrap().len(), 3);
    }

    #[test]
    fn total_rows_counts_all_tables() {
        let mut db = populated();
        db.create_schema("xdmod_y").unwrap();
        db.create_table("xdmod_y", jobfact()).unwrap();
        db.insert(
            "xdmod_y",
            "jobfact",
            vec![
                vec![Value::Str("a".into()), Value::Float(1.0)],
                vec![Value::Str("b".into()), Value::Float(2.0)],
            ],
        )
        .unwrap();
        assert_eq!(db.total_rows(), 3);
    }
}

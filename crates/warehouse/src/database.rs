//! The warehouse database: named schemas of tables plus a binary log.
//!
//! One [`Database`] models one XDMoD instance's MySQL server. Satellite
//! instances keep their realm tables in a schema named after the instance;
//! the federation hub holds *one schema per satellite* (the Tungsten
//! rename-on-transfer pattern, §II-C1) plus its own aggregate schemas.

use crate::binlog::{Binlog, BinlogEvent, EventPayload, LogPosition, TailRepair};
use crate::delta::{DeltaEntry, DeltaFoldCache, DeltaOutcome, DeltaReport, FallbackReason};
use crate::error::{Result, WarehouseError};
use crate::parallel::{self, AggregateCache, CacheKey, PoolConfig, RebuildTicket, ShardedPartials};
use crate::persist::Snapshot;
use crate::query::{Query, ResultSet};
use crate::resident::{PagingConfig, ResidencyManager, ResidencyStats};
use crate::schema::TableSchema;
use crate::storage::{CompactionReport, MemoryBackend, Recovery, StorageBackend};
use crate::table::Table;
use crate::value::Row;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use xdmod_chaos::{FaultInjector, FaultKind, FaultPoint};
use xdmod_telemetry::MetricsRegistry;

/// A database: an ordered map of schemas, each an ordered map of tables,
/// with every mutation recorded in an embedded binlog.
///
/// Durability is delegated to a pluggable [`StorageBackend`] with strict
/// **write-ahead ordering**: every mutator frames its binlog record, hands
/// it to the backend ([`StorageBackend::append`]), and only then admits it
/// to the in-memory log and mutates tables. A crash between the durable
/// append and the in-memory admit loses nothing (recovery replays the
/// frame); a failed append changes nothing.
#[derive(Debug)]
pub struct Database {
    schemas: BTreeMap<String, BTreeMap<String, Table>>,
    binlog: Binlog,
    /// Durability backend. [`MemoryBackend`] (the default) makes every
    /// call a no-op — the historical pure in-memory behaviour.
    backend: Box<dyn StorageBackend>,
    /// Auto-snapshot policy: write a snapshot (and compact) after this
    /// many records since the last snapshot. `None` disables.
    snapshot_every: Option<u64>,
    /// Seqno covered by the most recent snapshot this epoch.
    last_snapshot_seqno: u64,
    /// Disabled by default; [`Database::set_telemetry`] attaches a live
    /// registry (the hub/instance hands its own down at construction).
    telemetry: MetricsRegistry,
    /// Chaos fault injector plus the target label it is consulted under.
    /// `None` (the default) costs one branch per consultation point.
    chaos: Option<(FaultInjector, String)>,
    /// Position of the last binlog record that mutated each table —
    /// the per-table cache-invalidation watermark. Granular so aggregate
    /// rebuilds (which write *other* tables) don't invalidate cached
    /// results over untouched fact tables.
    watermarks: BTreeMap<(String, String), LogPosition>,
    /// Bumped by [`Database::note_external_rebuild`] when table contents
    /// are rewritten outside normal DML accounting (replication resync,
    /// restore). Part of every [`RebuildTicket`].
    rebuild_generation: u64,
    /// Worker/shard sizing for the partitioned aggregation engine.
    pool: PoolConfig,
    /// Invalidation-aware cache over [`Database::query_cached`] results
    /// and materialized aggregates.
    agg_cache: AggregateCache,
    /// Retained per-shard partials for the delta-fold engine
    /// ([`Database::run_delta_fold`]), keyed by (schema, fact table,
    /// query fingerprint) with a per-entry binlog cursor.
    delta: DeltaFoldCache,
    /// When false, materialization bypasses the delta-fold engine and
    /// always rebuilds from the full table (the forced full-rebuild
    /// escape hatch; see [`Database::set_incremental`]).
    incremental: bool,
    /// Cold-shard paging runtime ([`Database::enable_paging`]): `None`
    /// keeps every table fully resident (the historical behaviour).
    paging: Option<PagingRuntime>,
}

/// Live paging state: the shared residency manager plus the config it
/// was built from (kept so [`Database::repair_paging`] can re-enable
/// paging identically after a WAL rebuild).
struct PagingRuntime {
    manager: Arc<ResidencyManager>,
    config: PagingConfig,
}

impl std::fmt::Debug for PagingRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagingRuntime")
            .field("config", &self.config)
            .finish()
    }
}

impl Default for Database {
    fn default() -> Self {
        Database {
            schemas: BTreeMap::new(),
            binlog: Binlog::default(),
            backend: Box::new(MemoryBackend::new()),
            snapshot_every: None,
            last_snapshot_seqno: 0,
            telemetry: MetricsRegistry::default(),
            chaos: None,
            watermarks: BTreeMap::new(),
            rebuild_generation: 0,
            pool: PoolConfig::default(),
            agg_cache: AggregateCache::default(),
            delta: DeltaFoldCache::default(),
            incremental: true,
            paging: None,
        }
    }
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Open a database on a durability backend, running crash recovery.
    ///
    /// The backend scans its durable state ([`StorageBackend::recover`]),
    /// truncating torn or corrupt tails rather than refusing to start; the
    /// surviving snapshot (if any) is restored and the validated binlog
    /// tail is replayed into tables. For a fresh backend this yields an
    /// empty database ready for writes.
    pub fn open(backend: Box<dyn StorageBackend>) -> Result<Database> {
        Database::open_with_telemetry(backend, MetricsRegistry::default())
    }

    /// [`Database::open`] with a live metrics registry attached *before*
    /// recovery, so `warehouse_recovery_ms` and the truncation counters
    /// observe the recovery itself.
    pub fn open_with_telemetry(
        mut backend: Box<dyn StorageBackend>,
        telemetry: MetricsRegistry,
    ) -> Result<Database> {
        let started = Instant::now();
        let rec = backend.recover()?;
        let mut db = Database {
            backend,
            telemetry,
            ..Database::default()
        };
        db.finish_recovery(rec, started)?;
        Ok(db)
    }

    /// Restore recovered durable state into this (empty) database:
    /// snapshot first, then the validated binlog tail, then telemetry.
    fn finish_recovery(&mut self, rec: Recovery, started: Instant) -> Result<()> {
        let mut snapshot_pos = None;
        if let Some((pos, body)) = &rec.snapshot {
            let snap = Snapshot::from_bytes(body)?;
            self.restore_snapshot_unlogged(&snap, *pos)?;
            snapshot_pos = Some(*pos);
            self.last_snapshot_seqno = pos.seqno;
        }
        self.binlog
            .restore_frames(rec.epoch, rec.base_seqno, &rec.tail)?;
        let replay_from = LogPosition {
            epoch: rec.epoch,
            seqno: rec.base_seqno,
        };
        let events = self.binlog.read_after(replay_from)?;
        let replayed = events.len();
        for ev in events {
            self.apply_unlogged(&ev.payload, ev.position)?;
        }
        if self.telemetry.is_enabled() {
            let ms = started.elapsed().as_secs_f64() * 1e3;
            self.telemetry
                .histogram("warehouse_recovery_ms", &[])
                .observe(ms);
            if rec.truncated_records > 0 {
                self.telemetry
                    .counter("warehouse_recovery_truncated_records_total", &[])
                    .add(rec.truncated_records);
            }
            self.telemetry.event_with(
                "warehouse.recovered",
                &format!(
                    "recovered epoch {} to seqno {} ({} backend): snapshot at {}, {} tail records, {} truncated",
                    rec.epoch,
                    self.binlog.position().seqno,
                    self.backend.name(),
                    snapshot_pos.map_or_else(|| "none".to_owned(), |p| p.to_string()),
                    replayed,
                    rec.truncated_records,
                ),
                &[
                    ("tail_records", replayed as f64),
                    ("truncated_records", rec.truncated_records as f64),
                    ("truncated_bytes", rec.truncated_bytes as f64),
                    ("corrupt_snapshots", rec.corrupt_snapshots as f64),
                    ("segments_scanned", rec.segments_scanned as f64),
                ],
            );
        }
        Ok(())
    }

    /// Load snapshot tables directly, bypassing the binlog: the snapshot's
    /// contents are *below* the recovered log's base seqno, so re-logging
    /// them would duplicate history. Watermarks land at the snapshot
    /// position (conservative: every restored table reads as "mutated at
    /// the snapshot point").
    fn restore_snapshot_unlogged(&mut self, snap: &Snapshot, pos: LogPosition) -> Result<()> {
        snap.verify()?;
        let paging = self.paging_hook();
        for (schema, tables) in &snap.schemas {
            let dst = self.schemas.entry(schema.clone()).or_default();
            for (name, table) in tables {
                // Snapshot tables deserialize dense; re-page them when
                // the paging engine is on.
                let mut table = table.clone();
                if let Some((manager, pages)) = &paging {
                    table.enable_paging(manager, *pages);
                }
                dst.insert(name.clone(), table);
                self.watermarks.insert((schema.clone(), name.clone()), pos);
            }
        }
        Ok(())
    }

    /// The residency manager and page count new/restored tables should be
    /// paged with, if paging is enabled. Cloned out so callers can hold
    /// it across mutable borrows of the schema map.
    fn paging_hook(&self) -> Option<(Arc<ResidencyManager>, u32)> {
        self.paging
            .as_ref()
            .map(|p| (p.manager.clone(), p.config.pages_per_table))
    }

    /// Apply a recovered binlog event to tables *without* re-logging it —
    /// the record is already in the restored log. Unknown tables are an
    /// error: a validated, contiguous tail always creates before it
    /// inserts.
    fn apply_unlogged(&mut self, payload: &EventPayload, pos: LogPosition) -> Result<()> {
        match payload {
            EventPayload::CreateSchema { schema } => {
                self.schemas.entry(schema.clone()).or_default();
            }
            EventPayload::CreateTable { schema, def } => {
                let paging = self.paging_hook();
                let tables = self.schemas.entry(schema.clone()).or_default();
                let name = def.name.clone();
                tables.entry(name.clone()).or_insert_with(|| {
                    let mut t = Table::new(def.clone());
                    if let Some((manager, pages)) = &paging {
                        t.enable_paging(manager, *pages);
                    }
                    t
                });
                self.watermarks.insert((schema.clone(), name), pos);
            }
            EventPayload::InsertBatch {
                schema,
                table,
                rows,
            } => {
                self.table_mut(schema, table)?.insert_checked(rows.clone());
                self.watermarks.insert((schema.clone(), table.clone()), pos);
            }
            EventPayload::Truncate { schema, table } => {
                self.table_mut(schema, table)?.truncate();
                self.watermarks.insert((schema.clone(), table.clone()), pos);
            }
        }
        Ok(())
    }

    /// Attach a metrics registry. All binlog/query instrumentation becomes
    /// live; with the default (disabled) registry it costs one branch.
    pub fn set_telemetry(&mut self, telemetry: MetricsRegistry) {
        if let Some(p) = &self.paging {
            p.manager.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    /// The registry this database reports into (disabled unless
    /// [`Database::set_telemetry`] was called).
    pub fn telemetry(&self) -> &MetricsRegistry {
        &self.telemetry
    }

    /// Attach a chaos fault injector, consulted on binlog reads
    /// ([`FaultPoint::BinlogRead`]) and replicated-event applies
    /// ([`FaultPoint::Apply`]) under `target` (conventionally the
    /// replication link name). The injector is also forwarded to the
    /// storage backend, which consults it at the disk-layer points
    /// ([`FaultPoint::SegmentAppend`], [`FaultPoint::SnapshotWrite`]).
    /// This is the chaos-harness wiring; production databases leave it
    /// unset and pay one branch.
    pub fn set_fault_injector(&mut self, injector: FaultInjector, target: impl Into<String>) {
        let target = target.into();
        self.backend.set_chaos(injector.clone(), target.clone());
        if let Some(p) = &self.paging {
            p.manager.set_chaos(injector.clone(), target.clone());
        }
        self.chaos = Some((injector, target));
    }

    /// Detach any chaos fault injector (warehouse and backend layers).
    pub fn clear_fault_injector(&mut self) {
        self.chaos = None;
        self.backend.clear_chaos();
        if let Some(p) = &self.paging {
            p.manager.clear_chaos();
        }
    }

    /// Consult the chaos injector (if any) at a fault point. Stalls are
    /// served in place; every error kind surfaces as a transient
    /// [`WarehouseError::Io`]. Physical binlog damage kinds are executed
    /// by the replication transport, which holds write access to the
    /// source database — if one reaches a warehouse consultation point
    /// it degrades to a transient I/O failure as well.
    fn injected_fault(&self, point: FaultPoint) -> Result<()> {
        let Some((injector, target)) = &self.chaos else {
            return Ok(());
        };
        match injector.next_fault(point, target) {
            None => Ok(()),
            Some(FaultKind::Stall { millis }) => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
                Ok(())
            }
            Some(kind) => Err(WarehouseError::Io(format!(
                "injected {kind} at {point} ({target})"
            ))),
        }
    }

    /// Write-ahead append: frame the record, make it durable through the
    /// storage backend, and only then admit it to the in-memory binlog.
    /// On `Err` nothing changed anywhere — the caller must not have
    /// mutated tables yet (and none of the mutators do).
    fn log(&mut self, payload: &EventPayload) -> Result<LogPosition> {
        let (pos, frame) = self.binlog.encode_next(payload);
        self.backend.append(pos, &frame)?;
        let framed_bytes = frame.len() as u64;
        self.binlog.push_frame(&frame);
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("warehouse_binlog_appends_total", &[])
                .inc();
            self.telemetry
                .counter("warehouse_binlog_bytes_total", &[])
                .add(framed_bytes);
        }
        Ok(pos)
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    /// Create a schema (namespace). Errors if it already exists.
    pub fn create_schema(&mut self, name: &str) -> Result<LogPosition> {
        if self.schemas.contains_key(name) {
            return Err(WarehouseError::AlreadyExists(format!("schema {name}")));
        }
        let pos = self.log(&EventPayload::CreateSchema {
            schema: name.to_owned(),
        })?;
        self.schemas.insert(name.to_owned(), BTreeMap::new());
        Ok(pos)
    }

    /// Create a schema if absent; no-op (and no binlog record) otherwise.
    pub fn ensure_schema(&mut self, name: &str) -> Result<()> {
        if !self.schemas.contains_key(name) {
            self.create_schema(name)?;
        }
        Ok(())
    }

    /// Create a table. Errors if the schema is missing or the table exists.
    pub fn create_table(&mut self, schema: &str, def: TableSchema) -> Result<LogPosition> {
        let tables = self
            .schemas
            .get(schema)
            .ok_or_else(|| WarehouseError::UnknownSchema(schema.to_owned()))?;
        if tables.contains_key(&def.name) {
            return Err(WarehouseError::AlreadyExists(format!(
                "table {schema}.{}",
                def.name
            )));
        }
        let pos = self.log(&EventPayload::CreateTable {
            schema: schema.to_owned(),
            def: def.clone(),
        })?;
        let name = def.name.clone();
        let paging = self.paging_hook();
        let tables = self
            .schemas
            .get_mut(schema)
            .ok_or_else(|| WarehouseError::UnknownSchema(schema.to_owned()))?;
        let mut table = Table::new(def);
        if let Some((manager, pages)) = &paging {
            table.enable_paging(manager, *pages);
        }
        tables.insert(name.clone(), table);
        self.watermarks.insert((schema.to_owned(), name), pos);
        Ok(pos)
    }

    /// Create a table if absent, verifying the definition matches when it
    /// already exists.
    pub fn ensure_table(&mut self, schema: &str, def: TableSchema) -> Result<()> {
        if let Ok(existing) = self.table(schema, &def.name) {
            if *existing.schema() != def {
                return Err(WarehouseError::SchemaMismatch(format!(
                    "table {schema}.{} exists with a different definition",
                    def.name
                )));
            }
            return Ok(());
        }
        self.create_table(schema, def)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    /// Insert a batch of rows, validating against the table schema. The
    /// batch is atomic: either all rows land (and one binlog record is
    /// written) or none do. Validation and coercion happen *before* the
    /// write-ahead append; the table is only mutated after the record is
    /// durable.
    pub fn insert(&mut self, schema: &str, table: &str, rows: Vec<Row>) -> Result<LogPosition> {
        if rows.is_empty() {
            // Nothing to do; return current position without logging an
            // empty batch.
            return Ok(self.binlog.position());
        }
        let checked = self.table(schema, table)?.check_batch(rows)?;
        let payload = EventPayload::InsertBatch {
            schema: schema.to_owned(),
            table: table.to_owned(),
            rows: checked,
        };
        let pos = self.log(&payload)?;
        if let EventPayload::InsertBatch { rows, .. } = payload {
            self.table_mut(schema, table)?.insert_checked(rows);
        }
        self.watermarks
            .insert((schema.to_owned(), table.to_owned()), pos);
        self.maybe_snapshot();
        Ok(pos)
    }

    /// Delete all rows of a table (used when rebuilding aggregates).
    pub fn truncate(&mut self, schema: &str, table: &str) -> Result<LogPosition> {
        self.table(schema, table)?;
        let pos = self.log(&EventPayload::Truncate {
            schema: schema.to_owned(),
            table: table.to_owned(),
        })?;
        self.table_mut(schema, table)?.truncate();
        self.watermarks
            .insert((schema.to_owned(), table.to_owned()), pos);
        self.maybe_snapshot();
        Ok(pos)
    }

    /// Apply a replicated event to this database.
    ///
    /// This is the *apply* side of Tungsten-style replication: the event
    /// came from another database's binlog (possibly schema-renamed) and
    /// is re-executed here, which also re-logs it — enabling chained
    /// topologies (satellite → hub → backup hub, §II-C4).
    ///
    /// `CreateSchema`/`CreateTable` are idempotent on apply so a restarted
    /// replicator can safely replay from an older position.
    pub fn apply_event(&mut self, payload: &EventPayload) -> Result<()> {
        self.injected_fault(FaultPoint::Apply)?;
        match payload {
            EventPayload::CreateSchema { schema } => {
                self.ensure_schema(schema)?;
            }
            EventPayload::CreateTable { schema, def } => {
                self.ensure_schema(schema)?;
                self.ensure_table(schema, def.clone())?;
            }
            EventPayload::InsertBatch {
                schema,
                table,
                rows,
            } => {
                self.insert(schema, table, rows.clone())?;
            }
            EventPayload::Truncate { schema, table } => {
                self.truncate(schema, table)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Names of all schemas.
    pub fn schema_names(&self) -> Vec<&str> {
        self.schemas.keys().map(String::as_str).collect()
    }

    /// True if the schema exists.
    pub fn has_schema(&self, schema: &str) -> bool {
        self.schemas.contains_key(schema)
    }

    /// Names of all tables in a schema.
    pub fn table_names(&self, schema: &str) -> Result<Vec<&str>> {
        self.schemas
            .get(schema)
            .map(|t| t.keys().map(String::as_str).collect())
            .ok_or_else(|| WarehouseError::UnknownSchema(schema.to_owned()))
    }

    /// Describe every table in a schema: a point-in-time copy of the
    /// table definitions (names, column types, nullability), sorted by
    /// table name. This is the introspection surface the static
    /// pre-flight analyzer (`xdmod-check`) builds its federation model
    /// from — schema-drift and dangling-dimension checks compare these
    /// definitions across satellites without reading any rows.
    pub fn describe_schema(&self, schema: &str) -> Result<Vec<TableSchema>> {
        let tables = self
            .schemas
            .get(schema)
            .ok_or_else(|| WarehouseError::UnknownSchema(schema.to_owned()))?;
        // BTreeMap iteration: already name-sorted.
        Ok(tables.values().map(|t| t.schema().clone()).collect())
    }

    /// Borrow a table.
    pub fn table(&self, schema: &str, table: &str) -> Result<&Table> {
        self.schemas
            .get(schema)
            .ok_or_else(|| WarehouseError::UnknownSchema(schema.to_owned()))?
            .get(table)
            .ok_or_else(|| WarehouseError::UnknownTable {
                schema: schema.to_owned(),
                table: table.to_owned(),
            })
    }

    /// Run a query against one table, timing the execution and counting
    /// rows scanned.
    ///
    /// Equivalent to `query.run(db.table(schema, table)?)` plus the
    /// `warehouse_query_seconds{table=..}` histogram and
    /// `warehouse_query_rows_scanned_total{table=..}` counter. Callers on
    /// hot paths that don't want attribution can keep calling
    /// [`Query::run`] directly.
    pub fn query(&self, schema: &str, table: &str, query: &Query) -> Result<ResultSet> {
        let t = self.table(schema, table)?;
        let span = self
            .telemetry
            .span("warehouse_query_seconds", &[("table", table)]);
        let result = query.run(t);
        span.finish();
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("warehouse_query_rows_scanned_total", &[("table", table)])
                .add(t.len() as u64);
        }
        result
    }

    /// Run a query through the partitioned parallel engine (see
    /// [`crate::parallel::run_sharded`]): day-bucket shards folded on a
    /// scoped worker pool sized by [`Database::set_parallelism`], merged
    /// in stable shard order. Deterministic for any pool size, and
    /// instrumented like [`Database::query`] plus per-shard timings.
    pub fn query_sharded(&self, schema: &str, table: &str, query: &Query) -> Result<ResultSet> {
        let t = self.table(schema, table)?;
        let span = self
            .telemetry
            .span("warehouse_query_seconds", &[("table", table)]);
        let result = parallel::run_sharded(query, t, self.pool, &self.telemetry, table);
        span.finish();
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("warehouse_query_rows_scanned_total", &[("table", table)])
                .add(t.len() as u64);
        }
        result
    }

    /// [`Database::query_sharded`] behind the aggregate cache: a result
    /// computed at the table's current [`RebuildTicket`] is replayed
    /// verbatim until the table is mutated (or an external rebuild bumps
    /// the generation), making repeat report/chart queries after no new
    /// ingest O(1). Counts `warehouse_aggcache_{hits,misses}_total`.
    pub fn query_cached(&self, schema: &str, table: &str, query: &Query) -> Result<ResultSet> {
        let key = CacheKey {
            schema: schema.to_owned(),
            table: table.to_owned(),
            fingerprint: query.fingerprint(),
        };
        let ticket = self.rebuild_ticket(schema, table);
        if let Some(hit) = self.agg_cache.get(&key, ticket) {
            if self.telemetry.is_enabled() {
                self.telemetry
                    .counter("warehouse_aggcache_hits_total", &[("table", table)])
                    .inc();
            }
            return Ok(hit);
        }
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("warehouse_aggcache_misses_total", &[("table", table)])
                .inc();
        }
        let result = self.query_sharded(schema, table, query)?;
        self.agg_cache.put(key, ticket, Some(result.clone()));
        Ok(result)
    }

    /// Configure the aggregation worker pool / shard partition.
    pub fn set_parallelism(&mut self, pool: PoolConfig) {
        self.pool = pool;
    }

    /// Current aggregation pool configuration.
    pub fn parallelism(&self) -> PoolConfig {
        self.pool
    }

    /// Position of the last binlog record that mutated this table, or
    /// `None` if it was never touched (or predates this epoch).
    pub fn table_watermark(&self, schema: &str, table: &str) -> Option<LogPosition> {
        self.watermarks
            .get(&(schema.to_owned(), table.to_owned()))
            .copied()
    }

    /// Current rebuild generation (see [`Database::note_external_rebuild`]).
    pub fn rebuild_generation(&self) -> u64 {
        self.rebuild_generation
    }

    /// Record that table contents were rewritten by an external actor
    /// (replication resync, restore): bumps the rebuild generation so
    /// every outstanding [`RebuildTicket`] and cache entry goes stale,
    /// and **drops every delta-fold cursor** — retained partials were
    /// folded from pre-rewrite records and must never be served or
    /// advanced again. Returns the new generation.
    pub fn note_external_rebuild(&mut self) -> u64 {
        self.rebuild_generation += 1;
        self.agg_cache.clear();
        let dropped = self.delta.clear();
        if dropped > 0 && self.telemetry.is_enabled() {
            self.telemetry
                .counter(
                    "warehouse_delta_fallback_rebuilds_total",
                    &[("reason", FallbackReason::ExternalRebuild.label())],
                )
                .add(dropped as u64);
        }
        self.rebuild_generation
    }

    /// Ticket capturing a table's current data version; validates cache
    /// entries and split compute/apply aggregate rebuilds.
    pub fn rebuild_ticket(&self, schema: &str, table: &str) -> RebuildTicket {
        RebuildTicket {
            watermark: self.table_watermark(schema, table),
            generation: self.rebuild_generation,
        }
    }

    /// The aggregate cache (for direct marking by the materializer).
    pub fn aggregate_cache(&self) -> &AggregateCache {
        &self.agg_cache
    }

    // ------------------------------------------------------------------
    // Incremental aggregation: the delta-fold engine
    // ------------------------------------------------------------------

    /// Enable or disable the delta-fold engine. Disabled, the
    /// materializer always rebuilds aggregates from the full fact table
    /// — the operator escape hatch (`"incremental": false` in the
    /// federation config) for ruling incremental maintenance in or out
    /// while diagnosing a discrepancy.
    pub fn set_incremental(&mut self, enabled: bool) {
        self.incremental = enabled;
        if !enabled {
            self.delta.clear();
        }
    }

    /// True when materialization may ride the delta-fold engine.
    pub fn incremental_enabled(&self) -> bool {
        self.incremental
    }

    /// The retained delta-fold state (introspection: entry counts and
    /// cursors; tests prove cursors reset on resync through this).
    pub fn delta_cache(&self) -> &DeltaFoldCache {
        &self.delta
    }

    /// Execute `query` over `schema.table` through the **delta-fold
    /// engine**: reuse the retained per-shard partials for this (table,
    /// query) pair, fold only the binlog records appended since the
    /// retained cursor into their day-bucket shards, and finalize.
    ///
    /// Falls back to a full rebuild — and says so in the returned
    /// [`DeltaReport`] — whenever the retained state cannot be trusted:
    /// the rebuild generation moved (resync/restore), snapshot
    /// compaction outran the cursor ([`WarehouseError::CompactedAway`]),
    /// the fact table itself was truncated or re-created, the shard
    /// geometry changed, or the delta read failed transiently. A cold
    /// start (no retained state) builds the partials from the live table
    /// on the worker pool.
    ///
    /// The result is byte-identical to [`Database::query_sharded`] under
    /// the same pool geometry whenever float inputs are exactly
    /// representable, because each shard folds rows in table order in
    /// both engines and shards merge in ascending order either way.
    ///
    /// `label` attributes the telemetry this emits
    /// (`warehouse_delta_folded_records_total{table=..}`,
    /// `warehouse_delta_dirty_shards_total{table=..}`,
    /// `warehouse_delta_folds_total{table=..}`,
    /// `warehouse_delta_cold_builds_total{table=..}`, and
    /// `warehouse_delta_fallback_rebuilds_total{reason=..}`).
    pub fn run_delta_fold(
        &self,
        schema: &str,
        table: &str,
        query: &Query,
        label: &str,
    ) -> Result<(ResultSet, DeltaReport)> {
        let key = CacheKey {
            schema: schema.to_owned(),
            table: table.to_owned(),
            fingerprint: query.fingerprint(),
        };
        let head = self.binlog.position();
        let generation = self.rebuild_generation;
        let t = self.table(schema, table)?;
        let table_schema = t.schema();
        let shards_now = self.pool.shards().max(1);

        let mut fallback: Option<FallbackReason> = None;
        let retained = match self.delta.take(&key) {
            Some(e) if e.generation != generation => {
                fallback = Some(FallbackReason::ExternalRebuild);
                None
            }
            Some(e) if e.partials.shard_count() != shards_now => {
                fallback = Some(FallbackReason::Resharded);
                None
            }
            other => other,
        };

        if let Some(mut entry) = retained {
            match self.binlog_for_table_after(entry.cursor, schema, table) {
                Ok(events)
                    if events
                        .iter()
                        .all(|e| matches!(e.payload, EventPayload::InsertBatch { .. })) =>
                {
                    let mut folded = 0usize;
                    let mut dirty = 0usize;
                    for ev in &events {
                        if let EventPayload::InsertBatch { rows, .. } = &ev.payload {
                            dirty += entry.partials.fold_batch(query, table_schema, rows)?;
                            folded += rows.len();
                        }
                    }
                    entry.cursor = head;
                    let result = entry.partials.finalize(query, table_schema)?;
                    self.delta.put(key, entry);
                    if self.telemetry.is_enabled() {
                        self.telemetry
                            .counter("warehouse_delta_folds_total", &[("table", label)])
                            .inc();
                        self.telemetry
                            .counter("warehouse_delta_folded_records_total", &[("table", label)])
                            .add(folded as u64);
                        self.telemetry
                            .counter("warehouse_delta_dirty_shards_total", &[("table", label)])
                            .add(dirty as u64);
                    }
                    return Ok((
                        result,
                        DeltaReport {
                            outcome: DeltaOutcome::Incremental,
                            rows_folded: folded,
                            dirty_shards: dirty,
                        },
                    ));
                }
                // A truncate or re-create of the fact table is in the
                // delta: folded state cannot unfold removed rows.
                Ok(_) => fallback = Some(FallbackReason::FactRewrite),
                Err(WarehouseError::CompactedAway { .. }) => {
                    fallback = Some(FallbackReason::CompactedAway);
                }
                Err(WarehouseError::Io(_)) => fallback = Some(FallbackReason::ReadError),
                // Real log damage is not a fallback condition — surface it.
                Err(e) => return Err(e),
            }
        }

        // Cold start or fallback: rebuild the retained state from the
        // live table on the worker pool, then finalize from it. A paged
        // table materializes here (faulting spilled pages in) so the
        // cold build folds rows in exact insertion order — the property
        // the incremental-vs-recompute oracle depends on.
        let rows = t.rows()?;
        let partials = ShardedPartials::build(
            query,
            table_schema,
            &rows,
            self.pool,
            &self.telemetry,
            label,
        )?;
        drop(rows);
        let rows_folded = t.len();
        let result = partials.finalize(query, table_schema)?;
        self.delta.put(
            key,
            DeltaEntry {
                cursor: head,
                generation,
                partials,
            },
        );
        let outcome = match fallback {
            Some(reason) => {
                if self.telemetry.is_enabled() {
                    self.telemetry
                        .counter(
                            "warehouse_delta_fallback_rebuilds_total",
                            &[("reason", reason.label())],
                        )
                        .inc();
                }
                DeltaOutcome::Fallback(reason)
            }
            None => DeltaOutcome::Cold,
        };
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("warehouse_delta_cold_builds_total", &[("table", label)])
                .inc();
        }
        Ok((
            result,
            DeltaReport {
                outcome,
                rows_folded,
                dirty_shards: shards_now,
            },
        ))
    }

    fn table_mut(&mut self, schema: &str, table: &str) -> Result<&mut Table> {
        self.schemas
            .get_mut(schema)
            .ok_or_else(|| WarehouseError::UnknownSchema(schema.to_owned()))?
            .get_mut(table)
            .ok_or_else(|| WarehouseError::UnknownTable {
                schema: schema.to_owned(),
                table: table.to_owned(),
            })
    }

    /// Total row count across every table (diagnostics).
    pub fn total_rows(&self) -> usize {
        self.schemas
            .values()
            .flat_map(|t| t.values())
            .map(Table::len)
            .sum()
    }

    // ------------------------------------------------------------------
    // Binlog access
    // ------------------------------------------------------------------

    /// Current binlog position (what a replicator saves as its watermark).
    pub fn binlog_position(&self) -> LogPosition {
        self.binlog.position()
    }

    /// All binlog records strictly after `after`.
    pub fn binlog_after(&self, after: LogPosition) -> Result<Vec<BinlogEvent>> {
        self.injected_fault(FaultPoint::BinlogRead)?;
        self.binlog.read_after(after)
    }

    /// Binlog records strictly after `after` touching `schema.table` —
    /// the delta the incremental aggregation engine folds. Subject to
    /// the same chaos fault point as [`Database::binlog_after`] and the
    /// same [`WarehouseError::CompactedAway`] horizon check.
    pub fn binlog_for_table_after(
        &self,
        after: LogPosition,
        schema: &str,
        table: &str,
    ) -> Result<Vec<BinlogEvent>> {
        self.injected_fault(FaultPoint::BinlogRead)?;
        self.binlog.read_table_after(after, schema, table)
    }

    /// Flip a byte in the last binlog frame — simulated disk corruption,
    /// executed by the chaos harness. Returns `false` on an empty log.
    pub fn corrupt_binlog_tail_byte(&mut self) -> bool {
        self.binlog.corrupt_tail_byte()
    }

    /// Chop raw bytes off the binlog tail — a simulated torn write.
    /// Returns the number of bytes removed.
    pub fn truncate_binlog_tail(&mut self, bytes: usize) -> usize {
        self.binlog.truncate_tail_bytes(bytes)
    }

    /// Validate the binlog and crash-consistently repair its tail (see
    /// [`Binlog::repair_tail`]): records before the first damaged frame
    /// survive, the damage and everything after it is dropped, and the
    /// repair is counted (`warehouse_binlog_tail_repairs_total`) and
    /// logged (`warehouse.binlog_repaired`) so it is visible on the Ops
    /// dashboard. A clean log is untouched and reports nothing.
    pub fn repair_binlog(&mut self) -> TailRepair {
        let repair = self.binlog.repair_tail();
        if !repair.is_clean() && self.telemetry.is_enabled() {
            self.telemetry
                .counter("warehouse_binlog_tail_repairs_total", &[])
                .inc();
            self.telemetry.event_with(
                "warehouse.binlog_repaired",
                &format!("binlog tail repaired: {repair}"),
                &[
                    ("dropped_records", repair.dropped_records as f64),
                    ("dropped_bytes", repair.dropped_bytes as f64),
                ],
            );
        }
        repair
    }

    /// Raw framed binlog bytes after `after` (loose-federation export).
    pub fn binlog_export(&self, after: LogPosition) -> Result<bytes::Bytes> {
        self.binlog.export_after(after)
    }

    /// Number of records in the current binlog generation.
    pub fn binlog_len(&self) -> usize {
        self.binlog.len()
    }

    /// Wipe all data and start a new binlog generation. Used when a
    /// database is regenerated from the federation hub (backup use case,
    /// §II-E4). The storage backend drops durable state of older
    /// generations ([`StorageBackend::start_epoch`]).
    pub fn reset_for_restore(&mut self) -> Result<()> {
        self.schemas.clear();
        self.binlog.rotate_epoch();
        self.backend.start_epoch(self.binlog.position().epoch)?;
        self.last_snapshot_seqno = 0;
        // Every cached result, in-flight rebuild ticket, and delta-fold
        // cursor is now void.
        self.watermarks.clear();
        self.rebuild_generation += 1;
        self.agg_cache.clear();
        self.delta.clear();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Durability: snapshots and compaction
    // ------------------------------------------------------------------

    /// Short name of the storage backend ("memory", "disk").
    pub fn storage_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Flush anything the backend buffers to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.backend.sync()
    }

    /// Auto-snapshot every `every` records (`None` disables). When the
    /// log grows `every` records past the last snapshot, the next DML
    /// call snapshots and compacts in-line; failures there are recorded
    /// (`warehouse_snapshot_failures_total`) but never fail the ingest
    /// that tripped the policy.
    pub fn set_snapshot_policy(&mut self, every: Option<u64>) {
        self.snapshot_every = every.filter(|e| *e > 0);
    }

    /// Write a snapshot of the full database through the storage backend,
    /// then compact: the backend deletes segments (and older snapshots)
    /// the new snapshot makes redundant, and the in-memory binlog drops
    /// the same prefix. The compaction horizon trails one snapshot behind
    /// (see [`CompactionReport::horizon`]) so a damaged latest snapshot
    /// can never strand recovery.
    pub fn snapshot_now(&mut self) -> Result<CompactionReport> {
        let pos = self.binlog.position();
        let snap = Snapshot::capture(self)?;
        let bytes = snap.to_bytes()?;
        let report = self.backend.write_snapshot(pos, &bytes)?;
        self.last_snapshot_seqno = pos.seqno;
        let pruned = self.binlog.compact_before(report.horizon);
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("warehouse_compactions_total", &[])
                .inc();
            self.telemetry.event_with(
                "warehouse.compacted",
                &format!(
                    "snapshot at {pos}; horizon {}: {} segments deleted, {} log records dropped",
                    report.horizon, report.segments_deleted, pruned.dropped_records,
                ),
                &[
                    ("horizon", report.horizon as f64),
                    ("segments_deleted", report.segments_deleted as f64),
                    ("snapshots_deleted", report.snapshots_deleted as f64),
                    ("bytes_reclaimed", report.bytes_reclaimed as f64),
                    ("log_records_dropped", pruned.dropped_records as f64),
                    ("log_bytes_dropped", pruned.dropped_bytes as f64),
                ],
            );
        }
        Ok(report)
    }

    /// Fire the auto-snapshot policy if due. Failures don't propagate:
    /// the triggering ingest already committed, and the next DML retries.
    fn maybe_snapshot(&mut self) {
        let Some(every) = self.snapshot_every else {
            return;
        };
        let seqno = self.binlog.position().seqno;
        if seqno < self.last_snapshot_seqno.saturating_add(every) {
            return;
        }
        if let Err(err) = self.snapshot_now() {
            if self.telemetry.is_enabled() {
                self.telemetry
                    .counter("warehouse_snapshot_failures_total", &[])
                    .inc();
                self.telemetry.event_with(
                    "warehouse.snapshot_failed",
                    &format!("auto-snapshot at seqno {seqno} failed: {err}"),
                    &[("seqno", seqno as f64)],
                );
            }
        }
    }

    /// Lowest seqno still present in the in-memory binlog's current epoch
    /// (0 when nothing was compacted): reads at or below this are
    /// [`WarehouseError::CompactedAway`] and must resume from a snapshot.
    pub fn compaction_horizon(&self) -> u64 {
        self.binlog.base_seqno()
    }

    // ------------------------------------------------------------------
    // Paging: working-set residency
    // ------------------------------------------------------------------

    /// Enable the cold-shard paging engine: every current and future
    /// table's rows are partitioned into day-bucket pages managed by a
    /// shared [`ResidencyManager`] enforcing `config`'s byte budget —
    /// cold pages spill to CRC-framed files under `config.spill_dir` and
    /// fault back in transparently on the query path.
    ///
    /// Stale spill files in the directory (from a previous process) are
    /// deleted first: spill files are caches keyed by store ids this
    /// process will reuse, and the write-ahead log already holds every
    /// row durably.
    pub fn enable_paging(&mut self, config: PagingConfig) -> Result<()> {
        if let Ok(entries) = std::fs::read_dir(config.spill_path()) {
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().ends_with(".spl") {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        let manager = ResidencyManager::new(&config, self.telemetry.clone());
        if let Some((injector, target)) = &self.chaos {
            manager.set_chaos(injector.clone(), target.clone());
        }
        let pages = config.pages_per_table;
        for tables in self.schemas.values_mut() {
            for table in tables.values_mut() {
                table.enable_paging(&manager, pages);
            }
        }
        self.paging = Some(PagingRuntime { manager, config });
        if self.telemetry.is_enabled() {
            if let Some(p) = &self.paging {
                self.telemetry.event_with(
                    "warehouse.paging_enabled",
                    &format!(
                        "paging enabled: budget {} bytes, {} pages per table",
                        p.config.budget_bytes, p.config.pages_per_table
                    ),
                    &[("budget_bytes", p.config.budget_bytes as f64)],
                );
            }
        }
        Ok(())
    }

    /// True if the paging engine is managing this database's tables.
    pub fn paging_enabled(&self) -> bool {
        self.paging.is_some()
    }

    /// The active paging configuration, if paging is enabled.
    pub fn paging_config(&self) -> Option<&PagingConfig> {
        self.paging.as_ref().map(|p| &p.config)
    }

    /// Replace the working-set byte budget at runtime and immediately
    /// enforce it (shrinking spills cold pages in-line). No-op when
    /// paging is disabled.
    pub fn set_memory_budget(&mut self, bytes: u64) {
        if let Some(p) = &mut self.paging {
            p.config.budget_bytes = bytes;
            p.manager.set_budget(bytes);
        }
    }

    /// Point-in-time residency counters (budget, resident bytes, page
    /// states, fault-in/evict totals), or `None` when paging is off.
    pub fn residency_stats(&self) -> Option<ResidencyStats> {
        self.paging.as_ref().map(|p| p.manager.stats())
    }

    /// True if any paged table has a lost page (its spill file failed
    /// validation) and needs [`Database::repair_paging`].
    pub fn has_lost_pages(&self) -> bool {
        self.schemas
            .values()
            .flat_map(|t| t.values())
            .filter_map(Table::paged_store)
            .any(|s| s.has_lost_pages())
    }

    /// Rebuild every table from the write-ahead log after spill-file
    /// loss, then re-enable paging with the same configuration.
    ///
    /// Spill files are caches: the WAL ordering contract guarantees that
    /// every row of every page — lost or not — was durably appended
    /// before it was admitted to memory, so a full backend recovery
    /// (snapshot restore plus validated tail replay) reproduces the
    /// exact logical state with zero data loss. Requires a durable
    /// backend; with [`MemoryBackend`] there is no log to rebuild from.
    pub fn repair_paging(&mut self) -> Result<()> {
        let Some(runtime) = self.paging.take() else {
            return Ok(());
        };
        let config = runtime.config.clone();
        if self.backend.name() == "memory" {
            // Put the runtime back: the caller's tables are still
            // servable except for their lost pages.
            self.paging = Some(runtime);
            return Err(WarehouseError::Io(
                "repair_paging requires a durable storage backend".to_owned(),
            ));
        }
        drop(runtime);
        let started = Instant::now();
        // Dropping the tables drops their paged stores, which delete
        // their spill files — nothing stale survives the rebuild.
        self.schemas.clear();
        self.watermarks.clear();
        self.agg_cache.clear();
        self.delta.clear();
        self.rebuild_generation += 1;
        self.binlog = Binlog::default();
        self.last_snapshot_seqno = 0;
        let rec = self.backend.recover()?;
        self.finish_recovery(rec, started)?;
        self.enable_paging(config)?;
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("warehouse_paging_repairs_total", &[])
                .inc();
            self.telemetry.event_with(
                "warehouse.paging_repaired",
                &format!(
                    "paged tables rebuilt from the log: {} rows restored",
                    self.total_rows()
                ),
                &[("rows", self.total_rows() as f64)],
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::{ColumnType, Value};

    fn jobfact() -> TableSchema {
        SchemaBuilder::new("jobfact")
            .required("resource", ColumnType::Str)
            .required("cpu_hours", ColumnType::Float)
            .build()
            .unwrap()
    }

    fn populated() -> Database {
        let mut db = Database::new();
        db.create_schema("xdmod_x").unwrap();
        db.create_table("xdmod_x", jobfact()).unwrap();
        db.insert(
            "xdmod_x",
            "jobfact",
            vec![vec![Value::Str("comet".into()), Value::Float(3.0)]],
        )
        .unwrap();
        db
    }

    #[test]
    fn describe_schema_returns_sorted_table_definitions() {
        let mut db = populated();
        db.create_table(
            "xdmod_x",
            SchemaBuilder::new("storagefact")
                .required("filesystem", ColumnType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        let defs = db.describe_schema("xdmod_x").unwrap();
        assert_eq!(
            defs.iter().map(|d| d.name.as_str()).collect::<Vec<_>>(),
            vec!["jobfact", "storagefact"]
        );
        assert_eq!(defs[0].columns[0].name, "resource");
        assert_eq!(defs[0].columns[0].ty, ColumnType::Str);
        assert!(!defs[0].columns[0].nullable);
        assert!(matches!(
            db.describe_schema("ghost"),
            Err(WarehouseError::UnknownSchema(_))
        ));
    }

    #[test]
    fn ddl_and_dml_are_logged_in_order() {
        let db = populated();
        let events = db.binlog_after(LogPosition::START).unwrap();
        assert_eq!(events.len(), 3);
        assert!(matches!(
            events[0].payload,
            EventPayload::CreateSchema { .. }
        ));
        assert!(matches!(
            events[1].payload,
            EventPayload::CreateTable { .. }
        ));
        assert!(matches!(
            events[2].payload,
            EventPayload::InsertBatch { .. }
        ));
    }

    #[test]
    fn duplicate_ddl_rejected() {
        let mut db = populated();
        assert!(matches!(
            db.create_schema("xdmod_x"),
            Err(WarehouseError::AlreadyExists(_))
        ));
        assert!(matches!(
            db.create_table("xdmod_x", jobfact()),
            Err(WarehouseError::AlreadyExists(_))
        ));
    }

    #[test]
    fn ensure_table_checks_definition() {
        let mut db = populated();
        db.ensure_table("xdmod_x", jobfact()).unwrap(); // same def: ok
        let other = SchemaBuilder::new("jobfact")
            .required("resource", ColumnType::Str)
            .build()
            .unwrap();
        assert!(db.ensure_table("xdmod_x", other).is_err());
    }

    #[test]
    fn insert_into_missing_table_errors() {
        let mut db = populated();
        assert!(db.insert("xdmod_x", "nope", vec![vec![]]).is_err());
        assert!(db.insert("nope", "jobfact", vec![vec![]]).is_err());
    }

    #[test]
    fn empty_insert_writes_no_log_record() {
        let mut db = populated();
        let before = db.binlog_len();
        db.insert("xdmod_x", "jobfact", vec![]).unwrap();
        assert_eq!(db.binlog_len(), before);
    }

    #[test]
    fn replaying_binlog_reproduces_database() {
        let src = populated();
        let mut dst = Database::new();
        for ev in src.binlog_after(LogPosition::START).unwrap() {
            dst.apply_event(&ev.payload).unwrap();
        }
        assert_eq!(
            src.table("xdmod_x", "jobfact").unwrap().content_checksum(),
            dst.table("xdmod_x", "jobfact").unwrap().content_checksum()
        );
        // And the destination's own binlog re-logged everything, so a
        // second hop replays identically (chained topology).
        let mut third = Database::new();
        for ev in dst.binlog_after(LogPosition::START).unwrap() {
            third.apply_event(&ev.payload).unwrap();
        }
        assert_eq!(
            src.table("xdmod_x", "jobfact").unwrap().content_checksum(),
            third
                .table("xdmod_x", "jobfact")
                .unwrap()
                .content_checksum()
        );
    }

    #[test]
    fn apply_event_is_idempotent_for_ddl() {
        let mut db = Database::new();
        let ev = EventPayload::CreateSchema { schema: "s".into() };
        db.apply_event(&ev).unwrap();
        db.apply_event(&ev).unwrap(); // replay tolerated
        let ev = EventPayload::CreateTable {
            schema: "s".into(),
            def: jobfact(),
        };
        db.apply_event(&ev).unwrap();
        db.apply_event(&ev).unwrap();
        assert_eq!(db.table_names("s").unwrap(), vec!["jobfact"]);
    }

    #[test]
    fn truncate_logs_and_clears() {
        let mut db = populated();
        db.truncate("xdmod_x", "jobfact").unwrap();
        assert!(db.table("xdmod_x", "jobfact").unwrap().is_empty());
        let events = db.binlog_after(LogPosition::START).unwrap();
        assert!(matches!(
            events.last().unwrap().payload,
            EventPayload::Truncate { .. }
        ));
    }

    #[test]
    fn reset_for_restore_rotates_epoch() {
        let mut db = populated();
        let old_pos = db.binlog_position();
        db.reset_for_restore().unwrap();
        assert!(db.schema_names().is_empty());
        let pos = db.binlog_position();
        assert_eq!(pos.epoch, old_pos.epoch + 1);
        assert_eq!(pos.seqno, 0);
    }

    #[test]
    fn telemetry_counts_binlog_appends_and_query_time() {
        use crate::query::Query;
        use xdmod_telemetry::MetricsRegistry;

        let reg = MetricsRegistry::new();
        let mut db = Database::new();
        db.set_telemetry(reg.clone());
        db.create_schema("xdmod_x").unwrap();
        db.create_table("xdmod_x", jobfact()).unwrap();
        db.insert(
            "xdmod_x",
            "jobfact",
            vec![vec![Value::Str("comet".into()), Value::Float(3.0)]],
        )
        .unwrap();

        let snap = reg.snapshot();
        assert_eq!(snap.counter("warehouse_binlog_appends_total", &[]), Some(3));
        assert!(snap.counter("warehouse_binlog_bytes_total", &[]).unwrap() > 0);

        let rs = db.query("xdmod_x", "jobfact", &Query::new()).unwrap();
        assert_eq!(rs.len(), 1);
        let snap = reg.snapshot();
        assert_eq!(
            snap.histogram("warehouse_query_seconds", &[("table", "jobfact")])
                .unwrap()
                .count,
            1
        );
        assert_eq!(
            snap.counter(
                "warehouse_query_rows_scanned_total",
                &[("table", "jobfact")]
            ),
            Some(1)
        );
    }

    #[test]
    fn query_cached_hits_until_table_mutates() {
        use crate::query::{AggFn, Aggregate, Query};
        use xdmod_telemetry::MetricsRegistry;

        let reg = MetricsRegistry::new();
        let mut db = populated();
        db.set_telemetry(reg.clone());
        let q = Query::new().aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"));

        let first = db.query_cached("xdmod_x", "jobfact", &q).unwrap();
        let second = db.query_cached("xdmod_x", "jobfact", &q).unwrap();
        assert_eq!(first, second);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("warehouse_aggcache_hits_total", &[("table", "jobfact")]),
            Some(1)
        );
        assert_eq!(
            snap.counter("warehouse_aggcache_misses_total", &[("table", "jobfact")]),
            Some(1)
        );

        // Ingest moves the watermark: next call recomputes.
        db.insert(
            "xdmod_x",
            "jobfact",
            vec![vec![Value::Str("comet".into()), Value::Float(4.0)]],
        )
        .unwrap();
        let third = db.query_cached("xdmod_x", "jobfact", &q).unwrap();
        assert_eq!(third.scalar_f64("total"), Some(7.0));
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("warehouse_aggcache_misses_total", &[("table", "jobfact")]),
            Some(2)
        );
    }

    #[test]
    fn cached_queries_survive_unrelated_table_writes() {
        use crate::query::Query;
        let mut db = populated();
        db.create_table(
            "xdmod_x",
            SchemaBuilder::new("storagefact")
                .required("filesystem", ColumnType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        let q = Query::new().aggregate(crate::query::Aggregate::count("jobs"));
        let ticket = db.rebuild_ticket("xdmod_x", "jobfact");
        db.query_cached("xdmod_x", "jobfact", &q).unwrap();
        // Writing a *different* table leaves the jobfact ticket intact.
        db.insert(
            "xdmod_x",
            "storagefact",
            vec![vec![Value::Str("/scratch".into())]],
        )
        .unwrap();
        assert_eq!(db.rebuild_ticket("xdmod_x", "jobfact"), ticket);
        assert!(db.aggregate_cache().is_fresh(
            &crate::parallel::CacheKey {
                schema: "xdmod_x".into(),
                table: "jobfact".into(),
                fingerprint: q.fingerprint(),
            },
            ticket
        ));
    }

    #[test]
    fn note_external_rebuild_stales_every_ticket() {
        let mut db = populated();
        let ticket = db.rebuild_ticket("xdmod_x", "jobfact");
        let generation = db.note_external_rebuild();
        assert_eq!(generation, 1);
        assert_ne!(db.rebuild_ticket("xdmod_x", "jobfact"), ticket);
        assert!(db.aggregate_cache().is_empty());
    }

    #[test]
    fn sharded_query_matches_rayon_query_path() {
        use crate::parallel::PoolConfig;
        use crate::query::{AggFn, Aggregate, Query};
        let mut db = populated();
        db.set_parallelism(PoolConfig::new(4).with_shards(8));
        let q = Query::new()
            .group_by_column("resource")
            .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"));
        assert_eq!(
            db.query_sharded("xdmod_x", "jobfact", &q).unwrap(),
            db.query("xdmod_x", "jobfact", &q).unwrap()
        );
    }

    #[test]
    fn detached_database_reports_nothing() {
        use crate::query::Query;
        let db = populated();
        assert!(!db.telemetry().is_enabled());
        // Instrumented paths still work with telemetry off.
        db.query("xdmod_x", "jobfact", &Query::new()).unwrap();
        assert_eq!(db.telemetry().prometheus_text(), "");
    }

    #[test]
    fn injected_transient_fault_surfaces_and_clears() {
        use xdmod_chaos::{FaultKind, FaultPlan, FaultPoint, FaultSpec};
        let mut db = populated();
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::BinlogRead,
            FaultKind::Transient,
            &[1],
        ));
        db.set_fault_injector(plan.injector(7), "link-x");
        let err = db.binlog_after(LogPosition::START).unwrap_err();
        assert!(matches!(err, WarehouseError::Io(_)), "got {err}");
        assert!(err.to_string().contains("transient"));
        // Second read (op 2) is past the schedule: succeeds.
        assert_eq!(db.binlog_after(LogPosition::START).unwrap().len(), 3);
        db.clear_fault_injector();
        assert_eq!(db.binlog_after(LogPosition::START).unwrap().len(), 3);
    }

    #[test]
    fn injected_apply_fault_blocks_replicated_event() {
        use xdmod_chaos::{FaultKind, FaultPlan, FaultPoint, FaultSpec};
        let mut db = Database::new();
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::Apply,
            FaultKind::Transient,
            &[1],
        ));
        db.set_fault_injector(plan.injector(7), "link-x");
        let ev = EventPayload::CreateSchema { schema: "s".into() };
        assert!(db.apply_event(&ev).is_err());
        // Retry succeeds and the event lands exactly once.
        db.apply_event(&ev).unwrap();
        assert!(db.has_schema("s"));
    }

    #[test]
    fn repair_binlog_recovers_corrupt_tail_and_reports_telemetry() {
        use xdmod_telemetry::MetricsRegistry;
        let reg = MetricsRegistry::new();
        let mut db = populated();
        db.set_telemetry(reg.clone());
        assert!(db.corrupt_binlog_tail_byte());
        assert!(db.binlog_after(LogPosition::START).is_err());
        let repair = db.repair_binlog();
        assert_eq!(repair.dropped_records, 1);
        // The two intact records are readable again; the table rows are
        // untouched (only the log was damaged).
        assert_eq!(db.binlog_after(LogPosition::START).unwrap().len(), 2);
        assert_eq!(db.total_rows(), 1);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("warehouse_binlog_tail_repairs_total", &[]),
            Some(1)
        );
        assert_eq!(reg.events_of_kind("warehouse.binlog_repaired").len(), 1);
        // Repairing a clean log is a no-op and reports nothing further.
        assert!(db.repair_binlog().is_clean());
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("warehouse_binlog_tail_repairs_total", &[]),
            Some(1)
        );
    }

    #[test]
    fn truncated_binlog_tail_repairs_without_panicking() {
        let mut db = populated();
        let removed = db.truncate_binlog_tail(3);
        assert_eq!(removed, 3);
        assert!(db.binlog_after(LogPosition::START).is_err());
        let repair = db.repair_binlog();
        assert_eq!(repair.dropped_records, 1);
        assert_eq!(db.binlog_after(LogPosition::START).unwrap().len(), 2);
        // New writes resume cleanly after the repair.
        db.insert(
            "xdmod_x",
            "jobfact",
            vec![vec![Value::Str("x".into()), Value::Float(1.0)]],
        )
        .unwrap();
        assert_eq!(db.binlog_after(LogPosition::START).unwrap().len(), 3);
    }

    /// A backend that fails every append after the first `ok` calls —
    /// exercises write-ahead ordering (nothing may mutate on a failed
    /// durable append).
    #[derive(Debug)]
    struct FailingBackend {
        ok: u64,
        appends: u64,
    }

    impl crate::storage::StorageBackend for FailingBackend {
        fn name(&self) -> &'static str {
            "failing"
        }
        fn append(&mut self, _pos: LogPosition, _frame: &[u8]) -> Result<()> {
            self.appends += 1;
            if self.appends > self.ok {
                return Err(WarehouseError::Io("injected append failure".into()));
            }
            Ok(())
        }
        fn write_snapshot(
            &mut self,
            _pos: LogPosition,
            _snapshot: &[u8],
        ) -> Result<crate::storage::CompactionReport> {
            Ok(crate::storage::CompactionReport::default())
        }
        fn start_epoch(&mut self, _epoch: u32) -> Result<()> {
            Ok(())
        }
        fn recover(&mut self) -> Result<crate::storage::Recovery> {
            Ok(crate::storage::Recovery::default())
        }
        fn sync(&mut self) -> Result<()> {
            Ok(())
        }
    }

    fn disk_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "xdw-db-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn failed_durable_append_changes_nothing() {
        // Allow the 3 setup records through, then fail everything.
        let mut db = Database::open(Box::new(FailingBackend { ok: 3, appends: 0 })).unwrap();
        db.create_schema("xdmod_x").unwrap();
        db.create_table("xdmod_x", jobfact()).unwrap();
        db.insert(
            "xdmod_x",
            "jobfact",
            vec![vec![Value::Str("comet".into()), Value::Float(3.0)]],
        )
        .unwrap();
        let pos = db.binlog_position();
        let rows = db.table("xdmod_x", "jobfact").unwrap().len();

        // Every mutator now fails at the durable append — and must leave
        // tables, binlog, and watermarks exactly as they were.
        assert!(matches!(
            db.insert(
                "xdmod_x",
                "jobfact",
                vec![vec![Value::Str("gordon".into()), Value::Float(1.0)]],
            ),
            Err(WarehouseError::Io(_))
        ));
        assert!(matches!(
            db.truncate("xdmod_x", "jobfact"),
            Err(WarehouseError::Io(_))
        ));
        assert!(matches!(
            db.create_schema("xdmod_y"),
            Err(WarehouseError::Io(_))
        ));
        assert!(matches!(
            db.create_table(
                "xdmod_x",
                SchemaBuilder::new("other")
                    .required("x", ColumnType::Str)
                    .build()
                    .unwrap()
            ),
            Err(WarehouseError::Io(_))
        ));
        assert_eq!(db.binlog_position(), pos);
        assert_eq!(db.table("xdmod_x", "jobfact").unwrap().len(), rows);
        assert!(!db.has_schema("xdmod_y"));
        assert_eq!(db.binlog_after(LogPosition::START).unwrap().len(), 3);
    }

    #[test]
    fn snapshot_policy_compacts_in_memory_binlog() {
        let mut db = populated(); // 3 records in
        db.set_snapshot_policy(Some(2));
        // Records 4..: each insert may trip the policy. With the trailing
        // horizon, compaction starts on the *second* snapshot.
        for i in 0..6 {
            db.insert(
                "xdmod_x",
                "jobfact",
                vec![vec![Value::Str(format!("r{i}")), Value::Float(1.0)]],
            )
            .unwrap();
        }
        assert!(db.compaction_horizon() > 0, "prefix should have compacted");
        assert!(db.binlog_len() < 9);
        // Reads from before the horizon are a typed error, not silence.
        let err = db.binlog_after(LogPosition::START).unwrap_err();
        assert!(
            matches!(err, WarehouseError::CompactedAway { .. }),
            "got {err}"
        );
        // Reads from the horizon onward still work.
        let horizon = LogPosition {
            epoch: db.binlog_position().epoch,
            seqno: db.compaction_horizon(),
        };
        db.binlog_after(horizon).unwrap();
        // All 7 rows are in the table regardless of log compaction.
        assert_eq!(db.table("xdmod_x", "jobfact").unwrap().len(), 7);
    }

    #[test]
    fn disk_backed_database_survives_reopen() {
        use crate::disk::{DiskBackend, DiskOptions};
        let dir = disk_dir("reopen");
        let opts = || DiskOptions::new(&dir).fsync(false);
        let checksum_before;
        {
            let mut db = Database::open(Box::new(DiskBackend::open(opts()).unwrap())).unwrap();
            db.create_schema("xdmod_x").unwrap();
            db.create_table("xdmod_x", jobfact()).unwrap();
            for i in 0..10 {
                db.insert(
                    "xdmod_x",
                    "jobfact",
                    vec![vec![Value::Str(format!("res-{i}")), Value::Float(i as f64)]],
                )
                .unwrap();
            }
            checksum_before = db.table("xdmod_x", "jobfact").unwrap().content_checksum();
            // No clean shutdown beyond Drop's best-effort sync.
        }
        let db = Database::open(Box::new(DiskBackend::open(opts()).unwrap())).unwrap();
        assert_eq!(db.storage_name(), "disk");
        assert_eq!(
            db.table("xdmod_x", "jobfact").unwrap().content_checksum(),
            checksum_before
        );
        assert_eq!(db.binlog_after(LogPosition::START).unwrap().len(), 12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_backed_database_recovers_via_snapshot_and_tail() {
        use crate::disk::{DiskBackend, DiskOptions};
        use xdmod_telemetry::MetricsRegistry;
        let dir = disk_dir("snaptail");
        let opts = || DiskOptions::new(&dir).fsync(false).segment_max_bytes(256);
        let checksum_before;
        let horizon;
        {
            let mut db = Database::open(Box::new(DiskBackend::open(opts()).unwrap())).unwrap();
            db.set_snapshot_policy(Some(3));
            db.create_schema("xdmod_x").unwrap();
            db.create_table("xdmod_x", jobfact()).unwrap();
            for i in 0..12 {
                db.insert(
                    "xdmod_x",
                    "jobfact",
                    vec![vec![Value::Str(format!("res-{i}")), Value::Float(i as f64)]],
                )
                .unwrap();
            }
            assert!(db.compaction_horizon() > 0);
            horizon = db.compaction_horizon();
            checksum_before = db.table("xdmod_x", "jobfact").unwrap().content_checksum();
        }
        let reg = MetricsRegistry::new();
        let mut db = Database::open_with_telemetry(
            Box::new(DiskBackend::open(opts()).unwrap()),
            reg.clone(),
        )
        .unwrap();
        assert_eq!(
            db.table("xdmod_x", "jobfact").unwrap().content_checksum(),
            checksum_before
        );
        // Recovery resumes from the newest snapshot, so the horizon is at
        // least as far along as the pre-crash one.
        assert!(db.compaction_horizon() >= horizon);
        assert!(matches!(
            db.binlog_after(LogPosition::START),
            Err(WarehouseError::CompactedAway { .. })
        ));
        let snap = reg.snapshot();
        assert_eq!(
            snap.histogram("warehouse_recovery_ms", &[])
                .map(|h| h.count),
            Some(1)
        );
        // Clean recovery: nothing was truncated.
        assert_eq!(
            snap.counter("warehouse_recovery_truncated_records_total", &[]),
            None
        );
        // Writes resume seamlessly after recovery.
        db.insert(
            "xdmod_x",
            "jobfact",
            vec![vec![Value::Str("post".into()), Value::Float(1.0)]],
        )
        .unwrap();
        assert_eq!(db.table("xdmod_x", "jobfact").unwrap().len(), 13);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manual_snapshot_reports_compaction_telemetry() {
        use xdmod_telemetry::MetricsRegistry;
        let reg = MetricsRegistry::new();
        let mut db = populated();
        db.set_telemetry(reg.clone());
        db.snapshot_now().unwrap();
        db.insert(
            "xdmod_x",
            "jobfact",
            vec![vec![Value::Str("more".into()), Value::Float(2.0)]],
        )
        .unwrap();
        db.snapshot_now().unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("warehouse_compactions_total", &[]), Some(2));
        assert_eq!(reg.events_of_kind("warehouse.compacted").len(), 2);
        // Second snapshot's horizon = first snapshot's seqno: prefix gone.
        assert_eq!(db.compaction_horizon(), 3);
    }

    #[test]
    fn total_rows_counts_all_tables() {
        let mut db = populated();
        db.create_schema("xdmod_y").unwrap();
        db.create_table("xdmod_y", jobfact()).unwrap();
        db.insert(
            "xdmod_y",
            "jobfact",
            vec![
                vec![Value::Str("a".into()), Value::Float(1.0)],
                vec![Value::Str("b".into()), Value::Float(2.0)],
            ],
        )
        .unwrap();
        assert_eq!(db.total_rows(), 3);
    }

    // ------------------------------------------------------------------
    // Delta-fold engine
    // ------------------------------------------------------------------

    fn delta_db() -> Database {
        let mut db = Database::new();
        db.set_parallelism(crate::parallel::PoolConfig::new(2).with_shards(4));
        db.create_schema("xdmod_x").unwrap();
        db.create_table(
            "xdmod_x",
            SchemaBuilder::new("jobfact")
                .required("resource", ColumnType::Str)
                .required("cpu_hours", ColumnType::Float)
                .nullable("end_time", ColumnType::Time)
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    fn delta_rows(seed: u64, n: usize) -> Vec<crate::value::Row> {
        (0..n)
            .map(|i| {
                let k = seed.wrapping_mul(31).wrapping_add(i as u64);
                let resource = if k % 3 == 0 { "comet" } else { "rush" };
                let time = if k % 11 == 0 {
                    Value::Null
                } else {
                    Value::Time(86_400 * ((k % 9) as i64) + (k % 7_000) as i64)
                };
                vec![
                    Value::Str(resource.into()),
                    Value::Float(((k % 257) as f64) / 64.0),
                    time,
                ]
            })
            .collect()
    }

    fn delta_query() -> Query {
        use crate::query::{AggFn, Aggregate};
        use crate::time::Period;
        Query::new()
            .group_by_column("resource")
            .group_by_period("end_time", Period::Day)
            .aggregate(Aggregate::count("jobs"))
            .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"))
            .aggregate(Aggregate::of(AggFn::Avg, "cpu_hours", "avg"))
    }

    #[test]
    fn delta_fold_matches_full_recompute_across_ingest() {
        let mut db = delta_db();
        let q = delta_query();
        db.insert("xdmod_x", "jobfact", delta_rows(1, 40)).unwrap();

        let (rs, report) = db.run_delta_fold("xdmod_x", "jobfact", &q, "agg").unwrap();
        assert_eq!(report.outcome, DeltaOutcome::Cold);
        assert_eq!(report.rows_folded, 40);
        assert_eq!(rs, db.query_sharded("xdmod_x", "jobfact", &q).unwrap());

        for (step, batch) in [1usize, 7, 16].into_iter().enumerate() {
            db.insert("xdmod_x", "jobfact", delta_rows(step as u64 + 2, batch))
                .unwrap();
            let (rs, report) = db.run_delta_fold("xdmod_x", "jobfact", &q, "agg").unwrap();
            assert!(report.is_incremental(), "step {step}: {:?}", report.outcome);
            assert_eq!(report.rows_folded, batch, "step {step}");
            assert!(report.dirty_shards <= db.parallelism().shards());
            assert_eq!(
                rs,
                db.query_sharded("xdmod_x", "jobfact", &q).unwrap(),
                "step {step}"
            );
        }
        // Cursor tracks the log head once folded through.
        let key = CacheKey {
            schema: "xdmod_x".into(),
            table: "jobfact".into(),
            fingerprint: q.fingerprint(),
        };
        assert_eq!(db.delta_cache().cursor_of(&key), Some(db.binlog_position()));
        // No new records: a fold is incremental with nothing to do.
        let (_, report) = db.run_delta_fold("xdmod_x", "jobfact", &q, "agg").unwrap();
        assert!(report.is_incremental());
        assert_eq!(report.rows_folded, 0);
        assert_eq!(report.dirty_shards, 0);
    }

    #[test]
    fn external_rebuild_resets_delta_cursors_and_counts_fallbacks() {
        use xdmod_telemetry::MetricsRegistry;
        let reg = MetricsRegistry::new();
        let mut db = delta_db();
        db.set_telemetry(reg.clone());
        let q = delta_query();
        db.insert("xdmod_x", "jobfact", delta_rows(3, 24)).unwrap();
        db.run_delta_fold("xdmod_x", "jobfact", &q, "agg").unwrap();
        assert_eq!(db.delta_cache().len(), 1);

        // A resync/restore rewrites tables outside DML accounting: every
        // retained cursor must die with it, counted as a fallback.
        db.note_external_rebuild();
        assert!(db.delta_cache().is_empty());
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter(
                "warehouse_delta_fallback_rebuilds_total",
                &[("reason", "external-rebuild")]
            ),
            Some(1)
        );
        // The next pass rebuilds cold and still matches a recompute.
        let (rs, report) = db.run_delta_fold("xdmod_x", "jobfact", &q, "agg").unwrap();
        assert_eq!(report.outcome, DeltaOutcome::Cold);
        assert_eq!(rs, db.query_sharded("xdmod_x", "jobfact", &q).unwrap());
    }

    #[test]
    fn stale_generation_entry_is_discarded_not_served() {
        // Belt and braces: an entry *held out* across a generation bump
        // (the mid-fold resync race) is rejected on put-back... this
        // test drives the read-side guard by reinserting a pre-bump
        // entry and watching run_delta_fold refuse to advance it.
        let mut db = delta_db();
        let q = delta_query();
        db.insert("xdmod_x", "jobfact", delta_rows(5, 12)).unwrap();
        db.run_delta_fold("xdmod_x", "jobfact", &q, "agg").unwrap();
        let key = CacheKey {
            schema: "xdmod_x".into(),
            table: "jobfact".into(),
            fingerprint: q.fingerprint(),
        };
        let stale = db.delta_cache().take(&key).expect("retained entry");
        db.note_external_rebuild();
        db.delta_cache().put(key, stale);

        let (rs, report) = db.run_delta_fold("xdmod_x", "jobfact", &q, "agg").unwrap();
        assert_eq!(
            report.fallback_reason(),
            Some(FallbackReason::ExternalRebuild)
        );
        assert_eq!(rs, db.query_sharded("xdmod_x", "jobfact", &q).unwrap());
    }

    #[test]
    fn compaction_outrunning_the_cursor_forces_full_rebuild() {
        use xdmod_telemetry::MetricsRegistry;
        let reg = MetricsRegistry::new();
        let mut db = delta_db();
        db.set_telemetry(reg.clone());
        let q = delta_query();
        db.insert("xdmod_x", "jobfact", delta_rows(8, 20)).unwrap();
        db.run_delta_fold("xdmod_x", "jobfact", &q, "agg").unwrap();

        // More ingest, then snapshots compact the log past the cursor
        // (the horizon trails one snapshot behind, so two are needed).
        db.insert("xdmod_x", "jobfact", delta_rows(9, 10)).unwrap();
        db.snapshot_now().unwrap();
        db.insert("xdmod_x", "jobfact", delta_rows(9, 3)).unwrap();
        db.snapshot_now().unwrap();
        assert!(db.compaction_horizon() > 3, "cursor seqno 3 must be gone");

        let (rs, report) = db.run_delta_fold("xdmod_x", "jobfact", &q, "agg").unwrap();
        assert_eq!(
            report.fallback_reason(),
            Some(FallbackReason::CompactedAway)
        );
        assert_eq!(report.rows_folded, 33);
        assert_eq!(rs, db.query_sharded("xdmod_x", "jobfact", &q).unwrap());
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter(
                "warehouse_delta_fallback_rebuilds_total",
                &[("reason", "compacted")]
            ),
            Some(1)
        );
        // The rebuilt entry folds incrementally again.
        db.insert("xdmod_x", "jobfact", delta_rows(10, 5)).unwrap();
        let (_, report) = db.run_delta_fold("xdmod_x", "jobfact", &q, "agg").unwrap();
        assert!(report.is_incremental());
    }

    #[test]
    fn fact_truncate_in_the_delta_forces_full_rebuild() {
        let mut db = delta_db();
        let q = delta_query();
        db.insert("xdmod_x", "jobfact", delta_rows(11, 16)).unwrap();
        db.run_delta_fold("xdmod_x", "jobfact", &q, "agg").unwrap();

        db.truncate("xdmod_x", "jobfact").unwrap();
        db.insert("xdmod_x", "jobfact", delta_rows(12, 6)).unwrap();

        let (rs, report) = db.run_delta_fold("xdmod_x", "jobfact", &q, "agg").unwrap();
        assert_eq!(report.fallback_reason(), Some(FallbackReason::FactRewrite));
        assert_eq!(report.rows_folded, 6);
        assert_eq!(rs, db.query_sharded("xdmod_x", "jobfact", &q).unwrap());
    }

    #[test]
    fn reshard_forces_full_rebuild_under_the_new_geometry() {
        let mut db = delta_db();
        let q = delta_query();
        db.insert("xdmod_x", "jobfact", delta_rows(13, 32)).unwrap();
        db.run_delta_fold("xdmod_x", "jobfact", &q, "agg").unwrap();

        db.set_parallelism(crate::parallel::PoolConfig::new(3).with_shards(7));
        let (rs, report) = db.run_delta_fold("xdmod_x", "jobfact", &q, "agg").unwrap();
        assert_eq!(report.fallback_reason(), Some(FallbackReason::Resharded));
        assert_eq!(report.dirty_shards, 7);
        assert_eq!(rs, db.query_sharded("xdmod_x", "jobfact", &q).unwrap());
    }

    #[test]
    fn transient_delta_read_fault_falls_back_instead_of_failing() {
        use xdmod_chaos::{FaultKind, FaultPlan, FaultPoint, FaultSpec};
        let mut db = delta_db();
        let q = delta_query();
        db.insert("xdmod_x", "jobfact", delta_rows(14, 18)).unwrap();
        db.run_delta_fold("xdmod_x", "jobfact", &q, "agg").unwrap();
        db.insert("xdmod_x", "jobfact", delta_rows(15, 4)).unwrap();

        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::BinlogRead,
            FaultKind::Transient,
            &[1],
        ));
        db.set_fault_injector(plan.injector(7), "link-x");
        let (rs, report) = db.run_delta_fold("xdmod_x", "jobfact", &q, "agg").unwrap();
        assert_eq!(report.fallback_reason(), Some(FallbackReason::ReadError));
        db.clear_fault_injector();
        assert_eq!(rs, db.query_sharded("xdmod_x", "jobfact", &q).unwrap());
    }

    #[test]
    fn disabling_incremental_drops_retained_state() {
        let mut db = delta_db();
        let q = delta_query();
        assert!(db.incremental_enabled());
        db.insert("xdmod_x", "jobfact", delta_rows(16, 8)).unwrap();
        db.run_delta_fold("xdmod_x", "jobfact", &q, "agg").unwrap();
        assert_eq!(db.delta_cache().len(), 1);
        db.set_incremental(false);
        assert!(!db.incremental_enabled());
        assert!(db.delta_cache().is_empty());
    }

    #[test]
    fn delta_fold_telemetry_accounts_folded_rows_and_dirty_shards() {
        use xdmod_telemetry::MetricsRegistry;
        let reg = MetricsRegistry::new();
        let mut db = delta_db();
        db.set_telemetry(reg.clone());
        let q = delta_query();
        db.insert("xdmod_x", "jobfact", delta_rows(17, 20)).unwrap();
        db.run_delta_fold("xdmod_x", "jobfact", &q, "agg").unwrap();
        db.insert("xdmod_x", "jobfact", delta_rows(18, 9)).unwrap();
        let (_, report) = db.run_delta_fold("xdmod_x", "jobfact", &q, "agg").unwrap();
        assert!(report.is_incremental());

        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("warehouse_delta_cold_builds_total", &[("table", "agg")]),
            Some(1)
        );
        assert_eq!(
            snap.counter("warehouse_delta_folds_total", &[("table", "agg")]),
            Some(1)
        );
        assert_eq!(
            snap.counter("warehouse_delta_folded_records_total", &[("table", "agg")]),
            Some(9)
        );
        assert_eq!(
            snap.counter("warehouse_delta_dirty_shards_total", &[("table", "agg")]),
            Some(report.dirty_shards as u64)
        );
    }
}

//! Typed cell values stored in warehouse tables.
//!
//! XDMoD's data warehouse holds heterogeneous fact rows (job accounting
//! records, storage samples, VM lifecycle intervals). [`Value`] is the
//! dynamically-typed cell used by every table, binlog record, and query
//! result in this workspace.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
    /// Timestamp as seconds since the Unix epoch (UTC).
    Time,
    /// Boolean flag.
    Bool,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Str => "str",
            ColumnType::Time => "time",
            ColumnType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A dynamically-typed table cell.
///
/// `Null` is permitted in any column; all other variants must match the
/// column's declared [`ColumnType`].
///
/// # Equality and hashing
///
/// `Value` implements `Eq`/`Hash` so it can serve as a group-by key.
/// Floats are compared and hashed **by bit pattern**: `NaN == NaN` holds
/// and `-0.0 != 0.0`. This is the right semantics for grouping (identical
/// cells land in the same bucket) even though it differs from IEEE `==`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Absent / unknown.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Seconds since the Unix epoch (UTC).
    Time(i64),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The [`ColumnType`] this value inhabits, or `None` for `Null`.
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ColumnType::Int),
            Value::Float(_) => Some(ColumnType::Float),
            Value::Str(_) => Some(ColumnType::Str),
            Value::Time(_) => Some(ColumnType::Time),
            Value::Bool(_) => Some(ColumnType::Bool),
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, used by aggregates and binned dimensions.
    ///
    /// `Int`, `Float`, `Time`, and `Bool` (as 0/1) are numeric; `Str` and
    /// `Null` are not.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Time(t) => Some(*t as f64),
            Value::Bool(b) => Some(u8::from(*b) as f64),
            Value::Null | Value::Str(_) => None,
        }
    }

    /// Integer view, narrowing floats by truncation.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            Value::Time(t) => Some(*t),
            Value::Bool(b) => Some(i64::from(*b)),
            Value::Null | Value::Str(_) => None,
        }
    }

    /// String view (only `Str` values).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Timestamp view (only `Time` values).
    pub fn as_time(&self) -> Option<i64> {
        match self {
            Value::Time(t) => Some(*t),
            _ => None,
        }
    }

    /// Whether this value may be stored in a column of type `ty`.
    ///
    /// `Null` is storable anywhere; `Int` widens into `Float` columns and
    /// into `Time` columns (accounting logs often carry epoch integers).
    pub fn conforms_to(&self, ty: ColumnType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), ColumnType::Int)
                | (Value::Int(_), ColumnType::Float)
                | (Value::Int(_), ColumnType::Time)
                | (Value::Float(_), ColumnType::Float)
                | (Value::Str(_), ColumnType::Str)
                | (Value::Time(_), ColumnType::Time)
                | (Value::Bool(_), ColumnType::Bool)
        )
    }

    /// Coerce to exactly `ty` where [`conforms_to`](Self::conforms_to)
    /// allows it, so stored rows are canonical.
    pub fn coerce(self, ty: ColumnType) -> Option<Value> {
        match (self, ty) {
            (Value::Null, _) => Some(Value::Null),
            (Value::Int(i), ColumnType::Int) => Some(Value::Int(i)),
            (Value::Int(i), ColumnType::Float) => Some(Value::Float(i as f64)),
            (Value::Int(i), ColumnType::Time) => Some(Value::Time(i)),
            (v @ Value::Float(_), ColumnType::Float) => Some(v),
            (v @ Value::Str(_), ColumnType::Str) => Some(v),
            (v @ Value::Time(_), ColumnType::Time) => Some(v),
            (v @ Value::Bool(_), ColumnType::Bool) => Some(v),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Time(a), Value::Time(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Time(t) => t.hash(state),
            Value::Bool(b) => b.hash(state),
        }
    }
}

impl PartialOrd for Value {
    /// A total order across same-typed values; `Null` sorts first; values
    /// of different types are ordered by type tag (stable, arbitrary).
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 3,
                Value::Time(_) => 4,
                Value::Str(_) => 5,
            }
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Time(a), Value::Time(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Null, Value::Null) => Ordering::Equal,
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
            Value::Time(t) => write!(f, "@{t}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A table row: one [`Value`] per column, in schema order.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn float_equality_is_bitwise() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(Value::Float(1.5), Value::Float(1.5));
    }

    #[test]
    fn equal_values_hash_equal() {
        let pairs = [
            (Value::Int(7), Value::Int(7)),
            (Value::Float(2.25), Value::Float(2.25)),
            (Value::Str("abc".into()), Value::Str("abc".into())),
            (Value::Time(1_500_000_000), Value::Time(1_500_000_000)),
            (Value::Bool(true), Value::Bool(true)),
            (Value::Null, Value::Null),
        ];
        for (a, b) in pairs {
            assert_eq!(a, b);
            assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn int_and_time_do_not_collide() {
        // Same payload, different variants must be unequal (discriminant
        // participates in Eq and Hash).
        assert_ne!(Value::Int(5), Value::Time(5));
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
        assert_eq!(Value::Float(2.9).as_i64(), Some(2));
    }

    #[test]
    fn conformance_and_coercion() {
        assert!(Value::Int(1).conforms_to(ColumnType::Float));
        assert!(Value::Int(1).conforms_to(ColumnType::Time));
        assert!(!Value::Float(1.0).conforms_to(ColumnType::Int));
        assert!(Value::Null.conforms_to(ColumnType::Str));
        assert_eq!(
            Value::Int(4).coerce(ColumnType::Float),
            Some(Value::Float(4.0))
        );
        assert_eq!(Value::Int(4).coerce(ColumnType::Time), Some(Value::Time(4)));
        assert_eq!(Value::Str("s".into()).coerce(ColumnType::Int), None);
    }

    #[test]
    fn ordering_is_total_within_type() {
        let mut v = vec![Value::Int(3), Value::Int(1), Value::Int(2)];
        v.sort();
        assert_eq!(v, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Float(f64::NEG_INFINITY) < Value::Float(0.0));
    }

    #[test]
    fn display_round_trips_readably() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-9).to_string(), "-9");
        assert_eq!(Value::Str("comet".into()).to_string(), "comet");
        assert_eq!(Value::Time(100).to_string(), "@100");
    }

    #[test]
    fn serde_round_trip() {
        let vals = vec![
            Value::Null,
            Value::Int(42),
            Value::Float(6.25),
            Value::Str("gpfs".into()),
            Value::Time(1_483_228_800),
            Value::Bool(false),
        ];
        let json = serde_json::to_string(&vals).unwrap();
        let back: Vec<Value> = serde_json::from_str(&json).unwrap();
        assert_eq!(vals, back);
    }
}

//! CRC-framed per-page spill files for the cold-shard paging engine.
//!
//! One file per spilled page, named `<store-id>-<page>-<gen>.spl` inside
//! the paging spill directory. The format rides the PR 8 snapshot
//! framing: a fixed CRC'd header followed by a checksummed JSON body.
//!
//! ```text
//! +----------+----------+--------+--------+-----------+----------+----------+---------+------+
//! | magic 8B | store id | page   | gen    | row count | body len | body crc | hdr crc | body |
//! |"XDWSPL1\0"| u64 LE  | u32 LE | u64 LE | u64 LE    | u64 LE   | u32 LE   | u32 LE  | JSON |
//! +----------+----------+--------+--------+-----------+----------+----------+---------+------+
//! ```
//!
//! The body is the page's `Vec<(u64, Row)>` — rows tagged with their
//! insertion sequence number so fault-in restores the exact stored
//! order. Every read validates magic, header CRC, the identity fields
//! (store id / page / generation), and the body length and CRC; any
//! mismatch means the page is *lost*, never silently wrong.
//!
//! Spill files are caches, not the source of truth: every row they hold
//! is also durable in the write-ahead log, so a lost page is repaired by
//! replaying the log ([`crate::database::Database::repair_paging`]).
//!
//! The chaos fault points [`FaultPoint::SpillWrite`] and
//! [`FaultPoint::SpillRead`] fire here, mirroring the segment/snapshot
//! points: `Transient`/`LinkDown` fail the call loudly (the page simply
//! stays resident or stays spilled and the operation retries), while
//! `CorruptTailByte`, `TruncateTail`, and `DropFsync` succeed *silently*
//! with damaged or vanished bytes — the latent corruption the fault-in
//! validation and WAL-rebuild fallback are soak-tested against.

use crate::checksum::crc32;
use crate::error::{Result, WarehouseError};
use crate::value::Row;
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use xdmod_chaos::{FaultInjector, FaultKind, FaultPoint};

/// Magic prefix of a spill file.
pub const SPILL_MAGIC: [u8; 8] = *b"XDWSPL1\0";
/// Spill header length: magic + store id + page + gen + rows + body len +
/// body crc + header crc.
pub const SPILL_HEADER_LEN: usize = 8 + 8 + 4 + 8 + 8 + 8 + 4 + 4;

/// Identity and location of one written spill file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillMeta {
    /// Path the page was spilled to.
    pub path: PathBuf,
    /// Store the page belongs to.
    pub store_id: u64,
    /// Page index within the store.
    pub page: u32,
    /// Spill generation (bumped per write so stale files never validate).
    pub gen: u64,
    /// Rows in the body.
    pub rows: u64,
}

fn u32_le(data: &[u8]) -> u32 {
    u32::from_le_bytes([data[0], data[1], data[2], data[3]])
}

fn u64_le(data: &[u8]) -> u64 {
    u64::from_le_bytes([
        data[0], data[1], data[2], data[3], data[4], data[5], data[6], data[7],
    ])
}

/// File name of a spill file.
pub fn spill_file_name(store_id: u64, page: u32, gen: u64) -> String {
    format!("{store_id:016x}-{page:04}-{gen:08}.spl")
}

fn encode_header(
    store_id: u64,
    page: u32,
    gen: u64,
    rows: u64,
    body_len: u64,
    body_crc: u32,
) -> [u8; SPILL_HEADER_LEN] {
    let mut out = [0u8; SPILL_HEADER_LEN];
    out[..8].copy_from_slice(&SPILL_MAGIC);
    out[8..16].copy_from_slice(&store_id.to_le_bytes());
    out[16..20].copy_from_slice(&page.to_le_bytes());
    out[20..28].copy_from_slice(&gen.to_le_bytes());
    out[28..36].copy_from_slice(&rows.to_le_bytes());
    out[36..44].copy_from_slice(&body_len.to_le_bytes());
    out[44..48].copy_from_slice(&body_crc.to_le_bytes());
    let crc = crc32(&out[..48]);
    out[48..52].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Parsed spill header; `None` if short, wrong magic, or CRC-damaged.
fn parse_header(data: &[u8]) -> Option<(u64, u32, u64, u64, u64, u32)> {
    if data.len() < SPILL_HEADER_LEN || data[..8] != SPILL_MAGIC {
        return None;
    }
    if crc32(&data[..48]) != u32_le(&data[48..52]) {
        return None;
    }
    Some((
        u64_le(&data[8..16]),
        u32_le(&data[16..20]),
        u64_le(&data[20..28]),
        u64_le(&data[28..36]),
        u64_le(&data[36..44]),
        u32_le(&data[44..48]),
    ))
}

fn io_err(what: &str, err: std::io::Error) -> WarehouseError {
    WarehouseError::Io(format!("{what}: {err}"))
}

fn consult(chaos: Option<&(FaultInjector, String)>, point: FaultPoint) -> Option<FaultKind> {
    chaos.and_then(|(inj, target)| inj.next_fault(point, target))
}

/// Spill a page's rows to `dir`, returning the file's identity. Consults
/// [`FaultPoint::SpillWrite`]: transient kinds fail loudly (the caller
/// keeps the page resident), silent-damage kinds report success while
/// leaving a corrupt, torn, or missing file behind.
pub fn write_page(
    dir: &Path,
    fsync: bool,
    chaos: Option<&(FaultInjector, String)>,
    store_id: u64,
    page: u32,
    gen: u64,
    rows: &[(u64, Row)],
) -> Result<SpillMeta> {
    let fault = consult(chaos, FaultPoint::SpillWrite);
    match fault {
        Some(FaultKind::Transient) => {
            return Err(WarehouseError::Io(
                "injected: transient spill write failure".into(),
            ));
        }
        Some(FaultKind::LinkDown) => {
            return Err(WarehouseError::Io("injected: spill storage offline".into()));
        }
        Some(FaultKind::Stall { millis }) => {
            std::thread::sleep(std::time::Duration::from_millis(millis));
        }
        _ => {}
    }
    fs::create_dir_all(dir).map_err(|e| io_err("create spill dir", e))?;
    let body = serde_json::to_vec(rows)
        .map_err(|e| WarehouseError::Io(format!("encode spill body: {e}")))?;
    let mut bytes = Vec::with_capacity(SPILL_HEADER_LEN + body.len());
    bytes.extend_from_slice(&encode_header(
        store_id,
        page,
        gen,
        rows.len() as u64,
        body.len() as u64,
        crc32(&body),
    ));
    bytes.extend_from_slice(&body);
    match fault {
        Some(FaultKind::CorruptTailByte) => {
            // Flip a body byte: header parses, body CRC fails at fault-in.
            let idx = SPILL_HEADER_LEN + body.len() / 2;
            if idx < bytes.len() {
                bytes[idx] ^= 0xA5;
            }
        }
        Some(FaultKind::TruncateTail { bytes: cut }) => {
            let keep = bytes.len().saturating_sub(cut.max(1) as usize);
            bytes.truncate(keep);
        }
        _ => {}
    }
    let path = dir.join(spill_file_name(store_id, page, gen));
    if fault == Some(FaultKind::DropFsync) {
        // The write "succeeds" but the file never reaches the platter —
        // fault-in finds nothing and declares the page lost.
        return Ok(SpillMeta {
            path,
            store_id,
            page,
            gen,
            rows: rows.len() as u64,
        });
    }
    let mut file = File::create(&path).map_err(|e| io_err("create spill file", e))?;
    file.write_all(&bytes)
        .map_err(|e| io_err("write spill file", e))?;
    if fsync {
        file.sync_data().map_err(|e| io_err("sync spill file", e))?;
    }
    Ok(SpillMeta {
        path,
        store_id,
        page,
        gen,
        rows: rows.len() as u64,
    })
}

/// Read a spilled page back, validating the full frame against the
/// recorded identity. Consults [`FaultPoint::SpillRead`]: transient
/// kinds fail loudly and retriably (the page stays spilled); corruption
/// kinds damage the read buffer (a bad sector) so validation fails and
/// the page is declared lost. A validation failure returns
/// [`WarehouseError::SpillLost`] — corrupt spill data is never served.
pub fn read_page(
    meta: &SpillMeta,
    table: &str,
    chaos: Option<&(FaultInjector, String)>,
) -> Result<Vec<(u64, Row)>> {
    let fault = consult(chaos, FaultPoint::SpillRead);
    match fault {
        Some(FaultKind::Transient) => {
            return Err(WarehouseError::Io(
                "injected: transient spill read failure".into(),
            ));
        }
        Some(FaultKind::LinkDown) => {
            return Err(WarehouseError::Io("injected: spill storage offline".into()));
        }
        Some(FaultKind::Stall { millis }) => {
            std::thread::sleep(std::time::Duration::from_millis(millis));
        }
        _ => {}
    }
    let lost = || WarehouseError::SpillLost {
        table: table.to_owned(),
        page: meta.page,
    };
    let mut data = fs::read(&meta.path).map_err(|_| lost())?;
    match fault {
        Some(FaultKind::CorruptTailByte) => {
            let idx = data.len() / 2;
            if idx < data.len() {
                data[idx] ^= 0xA5;
            }
        }
        Some(FaultKind::TruncateTail { bytes: cut }) => {
            let keep = data.len().saturating_sub(cut.max(1) as usize);
            data.truncate(keep);
        }
        _ => {}
    }
    let (store_id, page, gen, rows, body_len, body_crc) = parse_header(&data).ok_or_else(lost)?;
    if store_id != meta.store_id || page != meta.page || gen != meta.gen || rows != meta.rows {
        return Err(lost());
    }
    let body = &data[SPILL_HEADER_LEN..];
    if body.len() as u64 != body_len || crc32(body) != body_crc {
        return Err(lost());
    }
    let decoded: Vec<(u64, Row)> = serde_json::from_slice(body).map_err(|_| lost())?;
    if decoded.len() as u64 != rows {
        return Err(lost());
    }
    Ok(decoded)
}

/// Best-effort removal of a spill file (eviction superseded it, the page
/// was truncated, or its store is being dropped). Removal failures are
/// ignored: a stale file can never validate against a newer generation.
pub fn remove(meta: &SpillMeta) {
    let _ = fs::remove_file(&meta.path);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use xdmod_chaos::{FaultPlan, FaultSpec};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("xdmod-spill-{}-{tag}-{n}", std::process::id()))
    }

    fn rows() -> Vec<(u64, Row)> {
        (0..8)
            .map(|i| {
                (
                    i,
                    vec![
                        Value::Str(format!("res-{i}")),
                        Value::Float(i as f64 / 64.0),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn round_trip_preserves_rows_and_order() {
        let dir = temp_dir("roundtrip");
        let rows = rows();
        let meta = write_page(&dir, false, None, 7, 3, 1, &rows).unwrap();
        assert_eq!(meta.rows, 8);
        assert_eq!(read_page(&meta, "jobfact", None).unwrap(), rows);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn identity_mismatch_is_lost_not_served() {
        let dir = temp_dir("identity");
        let rows = rows();
        let meta = write_page(&dir, false, None, 7, 3, 1, &rows).unwrap();
        // A stale meta (older generation) must never read the newer file.
        let stale = SpillMeta { gen: 0, ..meta };
        assert!(matches!(
            read_page(&stale, "jobfact", None),
            Err(WarehouseError::SpillLost { page: 3, .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_and_truncation_are_detected() {
        let dir = temp_dir("damage");
        let rows = rows();
        let meta = write_page(&dir, false, None, 1, 0, 1, &rows).unwrap();
        let clean = fs::read(&meta.path).unwrap();
        // Flip one body byte.
        let mut bad = clean.clone();
        let idx = SPILL_HEADER_LEN + 5;
        bad[idx] ^= 0x01;
        fs::write(&meta.path, &bad).unwrap();
        assert!(matches!(
            read_page(&meta, "jobfact", None),
            Err(WarehouseError::SpillLost { .. })
        ));
        // Torn tail.
        fs::write(&meta.path, &clean[..clean.len() - 3]).unwrap();
        assert!(matches!(
            read_page(&meta, "jobfact", None),
            Err(WarehouseError::SpillLost { .. })
        ));
        // Missing file.
        fs::remove_file(&meta.path).unwrap();
        assert!(matches!(
            read_page(&meta, "jobfact", None),
            Err(WarehouseError::SpillLost { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_silent_write_damage_surfaces_at_fault_in() {
        for kind in [
            FaultKind::CorruptTailByte,
            FaultKind::TruncateTail { bytes: 9 },
            FaultKind::DropFsync,
        ] {
            let dir = temp_dir("chaos-write");
            let plan = FaultPlan::new().with(FaultSpec::at_ops(FaultPoint::SpillWrite, kind, &[1]));
            let chaos = (plan.injector(1), "paging".to_owned());
            let rows = rows();
            // The write reports success...
            let meta = write_page(&dir, false, Some(&chaos), 2, 1, 1, &rows).unwrap();
            // ...but the page is lost, not wrong, at fault-in.
            assert!(
                matches!(
                    read_page(&meta, "jobfact", None),
                    Err(WarehouseError::SpillLost { .. })
                ),
                "{kind:?}"
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn chaos_transient_write_fails_loudly_and_retry_succeeds() {
        let dir = temp_dir("chaos-transient");
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::SpillWrite,
            FaultKind::Transient,
            &[1],
        ));
        let chaos = (plan.injector(1), "paging".to_owned());
        let rows = rows();
        assert!(matches!(
            write_page(&dir, false, Some(&chaos), 2, 1, 1, &rows),
            Err(WarehouseError::Io(_))
        ));
        let meta = write_page(&dir, false, Some(&chaos), 2, 1, 2, &rows).unwrap();
        assert_eq!(read_page(&meta, "jobfact", None).unwrap(), rows);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_transient_read_is_retriable() {
        let dir = temp_dir("chaos-read");
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::SpillRead,
            FaultKind::Transient,
            &[1],
        ));
        let chaos = (plan.injector(1), "paging".to_owned());
        let rows = rows();
        let meta = write_page(&dir, false, None, 9, 2, 4, &rows).unwrap();
        assert!(matches!(
            read_page(&meta, "jobfact", Some(&chaos)),
            Err(WarehouseError::Io(_))
        ));
        // The file is intact; the retry faults in clean.
        assert_eq!(read_page(&meta, "jobfact", Some(&chaos)).unwrap(), rows);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_read_corruption_declares_the_page_lost() {
        let dir = temp_dir("chaos-read-corrupt");
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::SpillRead,
            FaultKind::CorruptTailByte,
            &[1],
        ));
        let chaos = (plan.injector(1), "paging".to_owned());
        let rows = rows();
        let meta = write_page(&dir, false, None, 9, 2, 4, &rows).unwrap();
        assert!(matches!(
            read_page(&meta, "jobfact", Some(&chaos)),
            Err(WarehouseError::SpillLost { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Segmented append-only on-disk storage backend.
//!
//! Layout (one directory per database):
//!
//! ```text
//! storage-dir/
//!   seg-0000000000-00000000000000000001.wal   ← binlog frames 1..=N₁
//!   seg-0000000000-00000000000000000N₁+1.wal  ← frames N₁+1..  (active)
//!   snap-0000000000-00000000000000000042.snap ← snapshot through seqno 42
//!   ...
//! ```
//!
//! **Write path.** [`DiskBackend::append`] receives the exact frame the
//! in-memory binlog is about to admit and writes it to the active segment
//! *first* (write-ahead ordering), rotating to a new segment past
//! [`DiskOptions::segment_max_bytes`]. Every write is optionally fsynced.
//!
//! **Snapshots & compaction.** [`DiskBackend::write_snapshot`] lands the
//! serialized snapshot via write-temp → fsync → rename, then reclaims:
//! the backend always retains the **two** newest snapshots and deletes
//! segments fully covered by the *older* of the pair. That way a torn or
//! bit-flipped newest snapshot can never strand recovery past deleted
//! segments — the previous snapshot plus the still-present segments after
//! it reconstruct the same state. The returned
//! [`CompactionReport::horizon`] tells the database how far the in-memory
//! binlog prefix may compact (the same conservative horizon).
//!
//! **Recovery.** [`DiskBackend::recover`] picks the newest snapshot whose
//! header and body CRCs validate (falling back to older ones, counting
//! the corrupt), then walks the segment chain from the snapshot's
//! coverage point, CRC- and continuity-checking every frame. The first
//! torn or corrupt frame truncates its segment file at that point and
//! strands everything after it — recovery *repairs and reports*, it never
//! refuses to start. The surviving tail is handed back as raw frames for
//! [`crate::binlog::Binlog::restore_frames`].
//!
//! **Chaos.** The injected fault points [`FaultPoint::SegmentAppend`] and
//! [`FaultPoint::SnapshotWrite`] fire here: `Transient`/`LinkDown` fail
//! the call loudly, while `CorruptTailByte`, `TruncateTail`, and
//! `DropFsync` succeed *silently* with damaged or vanished on-disk bytes
//! — exactly what a crash mid-write leaves behind — so the recovery path
//! is soak-tested deterministically.

pub mod format;
pub mod spill;

use crate::binlog::LogPosition;
use crate::checksum::crc32;
use crate::error::{Result, WarehouseError};
use crate::storage::{CompactionReport, Recovery, StorageBackend};
use format::{
    encode_segment_header, encode_snapshot_header, parse_segment_header, parse_segment_name,
    parse_snapshot_header, parse_snapshot_name, scan_frames, segment_file_name, snapshot_file_name,
    SEG_HEADER_LEN, SNAP_HEADER_LEN,
};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use xdmod_chaos::{FaultInjector, FaultKind, FaultPoint};

/// Tuning for a [`DiskBackend`].
#[derive(Debug, Clone)]
pub struct DiskOptions {
    /// Directory holding segment and snapshot files (created on open).
    pub dir: PathBuf,
    /// Rotate the active segment once its size reaches this many bytes.
    pub segment_max_bytes: u64,
    /// fsync after every append and snapshot write. Disable only for
    /// tests/bulk loads that accept losing the tail on power failure.
    pub fsync: bool,
}

impl DiskOptions {
    /// Defaults: 1 MiB segments, fsync on.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_max_bytes: 1 << 20,
            fsync: true,
        }
    }

    /// Set the segment rotation threshold.
    pub fn segment_max_bytes(mut self, bytes: u64) -> Self {
        self.segment_max_bytes = bytes.max(SEG_HEADER_LEN as u64 + 1);
        self
    }

    /// Enable or disable per-write fsync.
    pub fn fsync(mut self, on: bool) -> Self {
        self.fsync = on;
        self
    }
}

/// One segment file the backend knows about (the last one is active).
#[derive(Debug)]
struct Segment {
    /// Seqno of the last frame written to it (== its header base when
    /// empty).
    last: u64,
    /// Tracked byte length (rotation accounting; silent chaos damage may
    /// make the physical file shorter).
    len: u64,
    path: PathBuf,
}

/// A snapshot file the backend knows about.
#[derive(Debug)]
struct SnapFile {
    seqno: u64,
    len: u64,
    path: PathBuf,
}

/// The segmented on-disk backend. See the module docs for the format and
/// protocols.
#[derive(Debug)]
pub struct DiskBackend {
    opts: DiskOptions,
    epoch: u32,
    last_seqno: u64,
    segments: Vec<Segment>,
    active_file: Option<File>,
    /// Retained snapshots of the current epoch, ascending by seqno.
    snapshots: Vec<SnapFile>,
    /// Set by [`StorageBackend::recover`] / [`StorageBackend::start_epoch`];
    /// appends before then are refused.
    ready: bool,
    chaos: Option<(FaultInjector, String)>,
}

fn io_err(what: &str, err: std::io::Error) -> WarehouseError {
    WarehouseError::Io(format!("{what}: {err}"))
}

impl DiskBackend {
    /// Open (creating the directory if needed). The backend is inert
    /// until [`StorageBackend::recover`] scans the durable state.
    pub fn open(opts: DiskOptions) -> Result<DiskBackend> {
        fs::create_dir_all(&opts.dir).map_err(|e| io_err("create storage dir", e))?;
        Ok(DiskBackend {
            opts,
            epoch: 0,
            last_seqno: 0,
            segments: Vec::new(),
            active_file: None,
            snapshots: Vec::new(),
            ready: false,
            chaos: None,
        })
    }

    /// The storage directory.
    pub fn dir(&self) -> &Path {
        &self.opts.dir
    }

    fn consult(&self, point: FaultPoint) -> Option<FaultKind> {
        self.chaos
            .as_ref()
            .and_then(|(inj, target)| inj.next_fault(point, target))
    }

    fn create_segment(&mut self, base: u64) -> Result<()> {
        // Seal the previous active segment before abandoning its handle.
        self.sync_active()?;
        let path = self.opts.dir.join(segment_file_name(self.epoch, base));
        // A stale same-name leftover (e.g. from an interrupted restore)
        // must not prefix the new segment; appends go to a fresh file.
        let _ = fs::remove_file(&path);
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("create segment", e))?;
        let header = encode_segment_header(self.epoch, base);
        file.write_all(&header)
            .map_err(|e| io_err("write segment header", e))?;
        if self.opts.fsync {
            file.sync_data().map_err(|e| io_err("sync segment", e))?;
        }
        self.segments.push(Segment {
            last: base,
            len: SEG_HEADER_LEN as u64,
            path,
        });
        self.active_file = Some(file);
        Ok(())
    }

    fn sync_active(&mut self) -> Result<()> {
        if let Some(file) = &self.active_file {
            file.sync_data().map_err(|e| io_err("sync segment", e))?;
        }
        Ok(())
    }

    fn active_len(&self) -> u64 {
        self.segments.last().map_or(0, |s| s.len)
    }

    /// Remove every durable file in the directory (restore/rebuild path).
    fn wipe(&mut self) -> Result<()> {
        self.active_file = None;
        self.segments.clear();
        self.snapshots.clear();
        for entry in fs::read_dir(&self.opts.dir).map_err(|e| io_err("list storage dir", e))? {
            let entry = entry.map_err(|e| io_err("list storage dir", e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if parse_segment_name(&name).is_some()
                || parse_snapshot_name(&name).is_some()
                || name.ends_with(".tmp")
            {
                fs::remove_file(entry.path()).map_err(|e| io_err("remove stale file", e))?;
            }
        }
        Ok(())
    }

    /// Count the valid frames and content bytes of a stranded segment
    /// (used for the recovery report), then delete it.
    fn discard_stranded(seg_path: &Path, epoch: u32, base: u64, rec: &mut Recovery) {
        if let Ok(data) = fs::read(seg_path) {
            if data.len() > SEG_HEADER_LEN {
                let scan = scan_frames(&data[SEG_HEADER_LEN..], epoch, base);
                rec.truncated_records += scan.frames.len() as u64;
                if scan.damaged {
                    rec.truncated_records += 1;
                }
                rec.truncated_bytes += (data.len() - SEG_HEADER_LEN) as u64;
            }
        }
        let _ = fs::remove_file(seg_path);
    }
}

impl StorageBackend for DiskBackend {
    fn name(&self) -> &'static str {
        "disk"
    }

    fn append(&mut self, pos: LogPosition, frame: &[u8]) -> Result<()> {
        if !self.ready {
            return Err(WarehouseError::Io(
                "disk backend used before recovery".into(),
            ));
        }
        if pos.epoch != self.epoch || pos.seqno != self.last_seqno + 1 {
            return Err(WarehouseError::Io(format!(
                "append at {pos} out of order (backend at {}:{})",
                self.epoch, self.last_seqno
            )));
        }
        if self.active_len() >= self.opts.segment_max_bytes {
            self.create_segment(self.last_seqno)?;
        }
        let fault = self.consult(FaultPoint::SegmentAppend);
        match fault {
            Some(FaultKind::Transient) => {
                return Err(WarehouseError::Io(
                    "injected: transient segment write failure".into(),
                ));
            }
            Some(FaultKind::LinkDown) => {
                return Err(WarehouseError::Io("injected: storage offline".into()));
            }
            Some(FaultKind::Stall { millis }) => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
            _ => {}
        }
        let file = self
            .active_file
            .as_mut()
            .ok_or_else(|| WarehouseError::Io("no active segment".into()))?;
        // Silent-damage faults model a crash mid-write: the caller sees
        // success, the disk does not. Recovery must repair these.
        match fault {
            Some(FaultKind::CorruptTailByte) => {
                let mut damaged = frame.to_vec();
                let mid = damaged.len() / 2;
                damaged[mid] ^= 0xA5;
                file.write_all(&damaged)
                    .map_err(|e| io_err("write frame", e))?;
            }
            Some(FaultKind::TruncateTail { bytes }) => {
                file.write_all(frame)
                    .map_err(|e| io_err("write frame", e))?;
                let cut = (bytes.max(1)).min(frame.len() as u64 - 1);
                let physical = file
                    .metadata()
                    .map_err(|e| io_err("stat segment", e))?
                    .len();
                file.set_len(physical - cut)
                    .map_err(|e| io_err("tear frame", e))?;
            }
            Some(FaultKind::DropFsync) => {
                let before = file
                    .metadata()
                    .map_err(|e| io_err("stat segment", e))?
                    .len();
                file.write_all(frame)
                    .map_err(|e| io_err("write frame", e))?;
                file.set_len(before).map_err(|e| io_err("drop fsync", e))?;
            }
            _ => {
                file.write_all(frame)
                    .map_err(|e| io_err("write frame", e))?;
                if self.opts.fsync {
                    file.sync_data().map_err(|e| io_err("sync frame", e))?;
                }
            }
        }
        if let Some(seg) = self.segments.last_mut() {
            seg.len += frame.len() as u64;
            seg.last = pos.seqno;
        }
        self.last_seqno = pos.seqno;
        Ok(())
    }

    fn write_snapshot(&mut self, pos: LogPosition, snapshot: &[u8]) -> Result<CompactionReport> {
        if !self.ready {
            return Err(WarehouseError::Io(
                "disk backend used before recovery".into(),
            ));
        }
        if pos.epoch != self.epoch {
            return Err(WarehouseError::Io(format!(
                "snapshot at {pos} from wrong epoch (backend at {})",
                self.epoch
            )));
        }
        if self.snapshots.last().is_some_and(|s| pos.seqno <= s.seqno) {
            return Ok(CompactionReport::default());
        }
        let fault = self.consult(FaultPoint::SnapshotWrite);
        match fault {
            Some(FaultKind::Transient) => {
                return Err(WarehouseError::Io(
                    "injected: transient snapshot write failure".into(),
                ));
            }
            Some(FaultKind::LinkDown) => {
                return Err(WarehouseError::Io("injected: storage offline".into()));
            }
            Some(FaultKind::Stall { millis }) => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
            _ => {}
        }
        // Make everything the snapshot covers durable before the snapshot
        // itself claims to cover it.
        self.sync_active()?;
        let final_path = self
            .opts
            .dir
            .join(snapshot_file_name(self.epoch, pos.seqno));
        let mut bytes = Vec::with_capacity(SNAP_HEADER_LEN + snapshot.len());
        bytes.extend_from_slice(&encode_snapshot_header(
            self.epoch,
            pos.seqno,
            snapshot.len() as u64,
            crc32(snapshot),
        ));
        bytes.extend_from_slice(snapshot);
        match fault {
            Some(FaultKind::CorruptTailByte) => {
                // Flip a body byte: header parses, body CRC fails.
                let idx = SNAP_HEADER_LEN + snapshot.len() / 2;
                if idx < bytes.len() {
                    bytes[idx] ^= 0xA5;
                }
            }
            Some(FaultKind::TruncateTail { bytes: cut }) => {
                let keep = bytes.len().saturating_sub(cut.max(1) as usize);
                bytes.truncate(keep);
            }
            _ => {}
        }
        if fault != Some(FaultKind::DropFsync) {
            // write-temp → fsync → rename, so a crash mid-write leaves no
            // half snapshot under the final name.
            let tmp = final_path.with_extension("snap.tmp");
            let mut file = File::create(&tmp).map_err(|e| io_err("create snapshot", e))?;
            file.write_all(&bytes)
                .map_err(|e| io_err("write snapshot", e))?;
            if self.opts.fsync {
                file.sync_data().map_err(|e| io_err("sync snapshot", e))?;
            }
            drop(file);
            fs::rename(&tmp, &final_path).map_err(|e| io_err("publish snapshot", e))?;
            if self.opts.fsync {
                if let Ok(dir) = File::open(&self.opts.dir) {
                    let _ = dir.sync_all();
                }
            }
        }
        // The backend believes the write succeeded even when a silent
        // fault damaged it — that is the fault's point.
        self.snapshots.push(SnapFile {
            seqno: pos.seqno,
            len: bytes.len() as u64,
            path: final_path,
        });
        // Compact up to the *previous* snapshot: with the two newest
        // snapshots retained, one damaged snapshot never strands recovery.
        let horizon = if self.snapshots.len() >= 2 {
            self.snapshots[self.snapshots.len() - 2].seqno
        } else {
            0
        };
        let mut report = CompactionReport {
            horizon,
            ..CompactionReport::default()
        };
        while self.snapshots.len() > 2 {
            let old = self.snapshots.remove(0);
            report.snapshots_deleted += 1;
            report.bytes_reclaimed += old.len;
            let _ = fs::remove_file(&old.path);
        }
        while self.segments.len() > 1 && self.segments[0].last <= horizon {
            let old = self.segments.remove(0);
            report.segments_deleted += 1;
            report.bytes_reclaimed += old.len;
            let _ = fs::remove_file(&old.path);
        }
        Ok(report)
    }

    fn start_epoch(&mut self, epoch: u32) -> Result<()> {
        self.wipe()?;
        self.epoch = epoch;
        self.last_seqno = 0;
        self.create_segment(0)?;
        self.ready = true;
        Ok(())
    }

    fn recover(&mut self) -> Result<Recovery> {
        let mut rec = Recovery::default();
        self.active_file = None;
        self.segments.clear();
        self.snapshots.clear();

        // Inventory the directory.
        let mut seg_files: Vec<(u32, u64, PathBuf, u64)> = Vec::new(); // (epoch, header base, path, len)
        let mut snap_files: Vec<(u32, u64, PathBuf, u64)> = Vec::new(); // (epoch, seqno, path, len)
        for entry in fs::read_dir(&self.opts.dir).map_err(|e| io_err("list storage dir", e))? {
            let entry = entry.map_err(|e| io_err("list storage dir", e))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            let len = entry.metadata().map(|m| m.len()).unwrap_or(0);
            if name.ends_with(".tmp") {
                // A crash mid-snapshot-write: never published, never valid.
                let _ = fs::remove_file(&path);
                continue;
            }
            if parse_segment_name(&name).is_some() {
                let mut header = [0u8; SEG_HEADER_LEN];
                let ok = File::open(&path)
                    .and_then(|mut f| f.read_exact(&mut header))
                    .is_ok();
                match parse_segment_header(&header).filter(|_| ok) {
                    Some((epoch, base)) => seg_files.push((epoch, base, path, len)),
                    None => {
                        // Torn segment header: the file never held a valid
                        // frame — repair by deletion.
                        rec.truncated_bytes += len;
                        rec.truncated_records += u64::from(len > 0);
                        let _ = fs::remove_file(&path);
                    }
                }
            } else if let Some((epoch, seqno)) = parse_snapshot_name(&name) {
                snap_files.push((epoch, seqno, path, len));
            }
        }

        // Pick the newest snapshot that fully validates.
        snap_files.sort_by_key(|(epoch, seqno, _, _)| (*epoch, *seqno));
        let mut best_snap: Option<(u32, u64, PathBuf, Vec<u8>)> = None;
        for (epoch, seqno, path, _) in snap_files.iter().rev() {
            let data = fs::read(path).unwrap_or_default();
            let valid = parse_snapshot_header(&data).is_some_and(|h| {
                let body = &data[SNAP_HEADER_LEN..];
                h.epoch == *epoch
                    && h.seqno == *seqno
                    && h.body_len == body.len() as u64
                    && h.body_crc == crc32(body)
            });
            if valid {
                best_snap = Some((
                    *epoch,
                    *seqno,
                    path.clone(),
                    data[SNAP_HEADER_LEN..].to_vec(),
                ));
                break;
            }
            rec.corrupt_snapshots += 1;
            let _ = fs::remove_file(path);
        }

        // The newest generation on disk wins; older-generation leftovers
        // from an interrupted restore are stale and removed.
        let target_epoch = seg_files
            .iter()
            .map(|(e, ..)| *e)
            .chain(best_snap.iter().map(|(e, ..)| *e))
            .max()
            .unwrap_or(0);
        seg_files.retain(|(epoch, _, path, _)| {
            let keep = *epoch == target_epoch;
            if !keep {
                let _ = fs::remove_file(path);
            }
            keep
        });
        snap_files.retain(|(epoch, _, path, _)| {
            let keep = *epoch == target_epoch;
            if !keep {
                let _ = fs::remove_file(path);
            }
            keep
        });
        let snap = best_snap.filter(|(epoch, ..)| *epoch == target_epoch);
        let base = snap.as_ref().map_or(0, |(_, seqno, ..)| *seqno);

        // Walk the segment chain from the snapshot's coverage point.
        seg_files.sort_by_key(|(_, seg_base, ..)| *seg_base);
        rec.segments_scanned = seg_files.len() as u64;
        // Segments entirely before the anchor are covered by the snapshot
        // and need no validation; the chain is anchored at the last
        // segment that starts at or before `base`.
        let anchor = seg_files
            .iter()
            .rposition(|(_, seg_base, ..)| *seg_base <= base);
        let mut tail: Vec<u8> = Vec::new();
        let mut chain_last: u64 = base;
        let mut broken = false;
        let mut surviving: Vec<Segment> = Vec::new();
        for (idx, (_, seg_base, path, _)) in seg_files.iter().enumerate() {
            let before_anchor = anchor.is_some_and(|a| idx < a);
            if before_anchor {
                // Fully covered by the snapshot; retained only until the
                // next compaction pass.
                surviving.push(Segment {
                    last: *seg_base,
                    len: fs::metadata(path).map(|m| m.len()).unwrap_or(0),
                    path: path.clone(),
                });
                continue;
            }
            let is_anchor = anchor == Some(idx);
            if broken || anchor.is_none() || (!is_anchor && *seg_base != chain_last) {
                // Stranded past damage, a chain gap, or (with no anchor)
                // segments that start after the snapshot's coverage.
                Self::discard_stranded(path, target_epoch, *seg_base, &mut rec);
                broken = true;
                continue;
            }
            let data = fs::read(path).map_err(|e| io_err("read segment", e))?;
            let content = data.get(SEG_HEADER_LEN..).unwrap_or(&[]);
            let scan = scan_frames(content, target_epoch, *seg_base);
            for frame in &scan.frames {
                if frame.seqno > base {
                    tail.extend_from_slice(&content[frame.start..frame.start + frame.len]);
                }
            }
            chain_last = scan.last_seqno(*seg_base);
            let valid_file_len = (SEG_HEADER_LEN + scan.valid_len) as u64;
            if scan.damaged {
                // Physically truncate the torn tail so the file is a
                // clean prefix from here on.
                rec.truncated_records += 1;
                rec.truncated_bytes += (content.len() - scan.valid_len) as u64;
                let file = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| io_err("open segment for repair", e))?;
                file.set_len(valid_file_len)
                    .map_err(|e| io_err("truncate torn tail", e))?;
                broken = true;
            }
            surviving.push(Segment {
                last: chain_last,
                len: valid_file_len,
                path: path.clone(),
            });
        }

        self.epoch = target_epoch;
        self.last_seqno = chain_last.max(base);
        if chain_last < base {
            // Damage (or missing segments) below the snapshot's coverage:
            // the snapshot alone carries the durable state. Clear the
            // segment chain and restart it at the snapshot point so the
            // chain invariant holds for the next recovery.
            tail.clear();
            for seg in surviving.drain(..) {
                let _ = fs::remove_file(&seg.path);
            }
            self.segments = Vec::new();
            self.create_segment(self.last_seqno)?;
        } else if let Some(active) = surviving.last() {
            let file = OpenOptions::new()
                .append(true)
                .open(&active.path)
                .map_err(|e| io_err("reopen active segment", e))?;
            self.active_file = Some(file);
            self.segments = surviving;
        } else {
            self.segments = Vec::new();
            self.create_segment(self.last_seqno)?;
        }
        self.snapshots = snap_files
            .iter()
            .filter(|(_, _, path, _)| path.exists())
            .map(|(_, seqno, path, len)| SnapFile {
                seqno: *seqno,
                len: *len,
                path: path.clone(),
            })
            .collect();
        self.ready = true;

        rec.epoch = target_epoch;
        rec.base_seqno = base;
        rec.snapshot = snap.map(|(epoch, seqno, _, body)| (LogPosition { epoch, seqno }, body));
        rec.tail = tail;
        Ok(rec)
    }

    fn sync(&mut self) -> Result<()> {
        self.sync_active()
    }

    fn set_chaos(&mut self, injector: FaultInjector, target: String) {
        self.chaos = Some((injector, target));
    }

    fn clear_chaos(&mut self) {
        self.chaos = None;
    }
}

impl Drop for DiskBackend {
    fn drop(&mut self) {
        if let Some(file) = &self.active_file {
            let _ = file.sync_data();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use xdmod_chaos::{FaultPlan, FaultSpec};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("xdmod-disk-{}-{tag}-{n}", std::process::id()))
    }

    fn frame(epoch: u32, seqno: u64, payload: &[u8]) -> Vec<u8> {
        let body_len = 12 + payload.len() + 4;
        let mut out = Vec::with_capacity(4 + body_len);
        out.extend_from_slice(&(body_len as u32).to_le_bytes());
        out.extend_from_slice(&epoch.to_le_bytes());
        out.extend_from_slice(&seqno.to_le_bytes());
        out.extend_from_slice(payload);
        let crc = crc32(&out[4..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn pos(seqno: u64) -> LogPosition {
        LogPosition { epoch: 0, seqno }
    }

    fn fresh(dir: &Path) -> DiskBackend {
        let mut be = DiskBackend::open(DiskOptions::new(dir).fsync(false)).unwrap();
        let rec = be.recover().unwrap();
        assert!(rec.tail.is_empty());
        be
    }

    /// Append frames 1..=n with payload derived from the seqno; returns
    /// the concatenated frames for oracle comparison.
    fn drive(be: &mut DiskBackend, from: u64, to: u64) -> Vec<u8> {
        let mut all = Vec::new();
        for seqno in from..=to {
            let f = frame(0, seqno, format!("record-{seqno}").as_bytes());
            be.append(pos(seqno), &f).unwrap();
            all.extend_from_slice(&f);
        }
        all
    }

    #[test]
    fn clean_round_trip_recovers_every_frame() {
        let dir = temp_dir("clean");
        let mut be = fresh(&dir);
        let written = drive(&mut be, 1, 20);
        drop(be);

        let mut be = DiskBackend::open(DiskOptions::new(&dir).fsync(false)).unwrap();
        let rec = be.recover().unwrap();
        assert_eq!(rec.epoch, 0);
        assert_eq!(rec.base_seqno, 0);
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.tail, written);
        assert!(!rec.repaired());
        // Appends continue the chain after recovery.
        let f = frame(0, 21, b"more");
        be.append(pos(21), &f).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_rotation_spreads_frames_across_files_and_chains_back() {
        let dir = temp_dir("rotate");
        let mut be =
            DiskBackend::open(DiskOptions::new(&dir).fsync(false).segment_max_bytes(128)).unwrap();
        be.recover().unwrap();
        let written = drive(&mut be, 1, 30);
        assert!(
            be.segments.len() > 2,
            "expected rotation, got {} segments",
            be.segments.len()
        );
        drop(be);

        let mut be = DiskBackend::open(DiskOptions::new(&dir).fsync(false)).unwrap();
        let rec = be.recover().unwrap();
        assert_eq!(rec.tail, written);
        assert_eq!(rec.segments_scanned, be.segments.len() as u64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_is_truncated_to_durable_prefix() {
        let dir = temp_dir("torn");
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::SegmentAppend,
            FaultKind::TruncateTail { bytes: 7 },
            &[10],
        ));
        let mut be = fresh(&dir);
        be.set_chaos(plan.injector(1), "wal".into());
        let written = drive(&mut be, 1, 12);
        drop(be);

        let mut be = DiskBackend::open(DiskOptions::new(&dir).fsync(false)).unwrap();
        let rec = be.recover().unwrap();
        // Frames 10..12 are gone: 10 was torn, 11 and 12 follow the tear.
        let frame_len = frame(0, 1, b"record-1").len();
        assert_eq!(rec.tail.len(), 9 * frame_len);
        assert_eq!(rec.tail, written[..9 * frame_len]);
        assert!(rec.repaired());
        assert!(rec.truncated_records >= 1);
        assert!(rec.truncated_bytes > 0);
        // Recovery resumes appends from the durable head.
        let f = frame(0, 10, b"after-crash");
        be.append(pos(10), &f).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropped_fsync_loses_only_the_unsynced_record() {
        let dir = temp_dir("dropfsync");
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::SegmentAppend,
            FaultKind::DropFsync,
            &[5],
        ));
        let mut be = fresh(&dir);
        be.set_chaos(plan.injector(1), "wal".into());
        let written = drive(&mut be, 1, 8);
        drop(be);

        let mut be = DiskBackend::open(DiskOptions::new(&dir).fsync(false)).unwrap();
        let rec = be.recover().unwrap();
        // Record 5 vanished cleanly; 6..8 follow the hole and are
        // stranded by the continuity check. Prefix = 1..4.
        let frame_len = frame(0, 1, b"record-1").len();
        assert_eq!(rec.tail, written[..4 * frame_len]);
        assert_eq!(be.last_seqno, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_detected_and_truncated() {
        let dir = temp_dir("bitflip");
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::SegmentAppend,
            FaultKind::CorruptTailByte,
            &[3],
        ));
        let mut be = fresh(&dir);
        be.set_chaos(plan.injector(1), "wal".into());
        let written = drive(&mut be, 1, 6);
        drop(be);

        let mut be = DiskBackend::open(DiskOptions::new(&dir).fsync(false)).unwrap();
        let rec = be.recover().unwrap();
        let frame_len = frame(0, 1, b"record-1").len();
        assert_eq!(rec.tail, written[..2 * frame_len]);
        assert!(rec.truncated_records >= 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_fault_fails_loudly_without_advancing() {
        let dir = temp_dir("transient");
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::SegmentAppend,
            FaultKind::Transient,
            &[2],
        ));
        let mut be = fresh(&dir);
        be.set_chaos(plan.injector(1), "wal".into());
        let f1 = frame(0, 1, b"one");
        be.append(pos(1), &f1).unwrap();
        let f2 = frame(0, 2, b"two");
        assert!(matches!(be.append(pos(2), &f2), Err(WarehouseError::Io(_))));
        // The retry (same seqno) succeeds: the failed write left no trace.
        be.append(pos(2), &f2).unwrap();
        drop(be);
        let mut be = DiskBackend::open(DiskOptions::new(&dir).fsync(false)).unwrap();
        let rec = be.recover().unwrap();
        assert_eq!(rec.tail, [f1, f2].concat());
        assert!(!rec.repaired());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_compaction_deletes_covered_segments_and_recovery_uses_snapshot() {
        let dir = temp_dir("compact");
        let mut be =
            DiskBackend::open(DiskOptions::new(&dir).fsync(false).segment_max_bytes(96)).unwrap();
        be.recover().unwrap();
        drive(&mut be, 1, 10);
        let r1 = be.write_snapshot(pos(10), b"snapshot-at-10").unwrap();
        assert_eq!(r1.horizon, 0); // first snapshot: nothing reclaimable yet
        assert_eq!(r1.segments_deleted, 0);
        let mut tail_frames = drive(&mut be, 11, 20);
        let r2 = be.write_snapshot(pos(20), b"snapshot-at-20").unwrap();
        assert_eq!(r2.horizon, 10); // trails the previous snapshot
        assert!(
            r2.segments_deleted > 0,
            "covered segments should be deleted"
        );
        assert!(r2.bytes_reclaimed > 0);
        tail_frames.extend_from_slice(&drive(&mut be, 21, 23));
        drop(be);

        let mut be = DiskBackend::open(DiskOptions::new(&dir).fsync(false)).unwrap();
        let rec = be.recover().unwrap();
        let (snap_pos, body) = rec.snapshot.expect("snapshot should validate");
        assert_eq!(snap_pos, pos(20));
        assert_eq!(body, b"snapshot-at-20");
        assert_eq!(rec.base_seqno, 20);
        // The tail holds only frames past the snapshot.
        let frame_len = frame(0, 21, b"record-21").len();
        assert_eq!(rec.tail.len(), 3 * frame_len);
        assert_eq!(rec.tail, tail_frames[tail_frames.len() - 3 * frame_len..]);
        assert_eq!(be.last_seqno, 23);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_previous() {
        let dir = temp_dir("snapfall");
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::SnapshotWrite,
            FaultKind::CorruptTailByte,
            &[2],
        ));
        let mut be =
            DiskBackend::open(DiskOptions::new(&dir).fsync(false).segment_max_bytes(96)).unwrap();
        be.recover().unwrap();
        be.set_chaos(plan.injector(7), "wal".into());
        drive(&mut be, 1, 10);
        be.write_snapshot(pos(10), b"good-snapshot").unwrap();
        drive(&mut be, 11, 20);
        // This snapshot is silently bit-flipped on disk.
        be.write_snapshot(pos(20), b"doomed-snapshot").unwrap();
        drive(&mut be, 21, 24);
        drop(be);

        let mut be = DiskBackend::open(DiskOptions::new(&dir).fsync(false)).unwrap();
        let rec = be.recover().unwrap();
        assert_eq!(rec.corrupt_snapshots, 1);
        let (snap_pos, body) = rec.snapshot.expect("previous snapshot survives");
        assert_eq!(snap_pos, pos(10));
        assert_eq!(body, b"good-snapshot");
        // Segments after seqno 10 were retained (compaction horizon
        // trails), so the full tail 11..24 replays.
        let events: Vec<u64> = {
            let scan = scan_frames(&rec.tail, 0, 10);
            assert!(!scan.damaged);
            scan.frames.iter().map(|f| f.seqno).collect()
        };
        assert_eq!(events, (11..=24).collect::<Vec<_>>());
        assert_eq!(be.last_seqno, 24);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropped_snapshot_fsync_falls_back_to_previous() {
        let dir = temp_dir("snapdrop");
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::SnapshotWrite,
            FaultKind::DropFsync,
            &[2],
        ));
        let mut be = fresh(&dir);
        be.set_chaos(plan.injector(7), "wal".into());
        drive(&mut be, 1, 5);
        be.write_snapshot(pos(5), b"first").unwrap();
        drive(&mut be, 6, 9);
        be.write_snapshot(pos(9), b"vanishes").unwrap();
        drop(be);

        let mut be = DiskBackend::open(DiskOptions::new(&dir).fsync(false)).unwrap();
        let rec = be.recover().unwrap();
        let (snap_pos, body) = rec.snapshot.expect("previous snapshot survives");
        assert_eq!(snap_pos, pos(5));
        assert_eq!(body, b"first");
        let scan = scan_frames(&rec.tail, 0, 5);
        assert_eq!(scan.frames.len(), 4);
        assert_eq!(be.last_seqno, 9);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn start_epoch_wipes_previous_generation() {
        let dir = temp_dir("epoch");
        let mut be = fresh(&dir);
        drive(&mut be, 1, 5);
        be.write_snapshot(pos(5), b"old-gen").unwrap();
        be.start_epoch(1).unwrap();
        let f = frame(1, 1, b"new-gen");
        be.append(LogPosition { epoch: 1, seqno: 1 }, &f).unwrap();
        drop(be);

        let mut be = DiskBackend::open(DiskOptions::new(&dir).fsync(false)).unwrap();
        let rec = be.recover().unwrap();
        assert_eq!(rec.epoch, 1);
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.tail, f);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_order_append_is_refused_not_panicking() {
        let dir = temp_dir("order");
        let mut be = fresh(&dir);
        let f = frame(0, 5, b"skip");
        assert!(be.append(pos(5), &f).is_err());
        let wrong_epoch = frame(3, 1, b"epoch");
        assert!(be
            .append(LogPosition { epoch: 3, seqno: 1 }, &wrong_epoch)
            .is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_before_recover_is_refused() {
        let dir = temp_dir("notready");
        let mut be = DiskBackend::open(DiskOptions::new(&dir).fsync(false)).unwrap();
        let f = frame(0, 1, b"x");
        assert!(be.append(pos(1), &f).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_files_and_tmp_leftovers_are_tolerated() {
        let dir = temp_dir("foreign");
        let mut be = fresh(&dir);
        let written = drive(&mut be, 1, 3);
        drop(be);
        fs::write(dir.join("README.txt"), b"not ours").unwrap();
        fs::write(
            dir.join("snap-0000000000-00000000000000000099.snap.tmp"),
            b"half",
        )
        .unwrap();

        let mut be = DiskBackend::open(DiskOptions::new(&dir).fsync(false)).unwrap();
        let rec = be.recover().unwrap();
        assert_eq!(rec.tail, written);
        assert!(dir.join("README.txt").exists());
        assert!(!dir
            .join("snap-0000000000-00000000000000000099.snap.tmp")
            .exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn double_crash_recovery_is_idempotent() {
        let dir = temp_dir("double");
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::SegmentAppend,
            FaultKind::TruncateTail { bytes: 3 },
            &[4],
        ));
        let mut be = fresh(&dir);
        be.set_chaos(plan.injector(1), "wal".into());
        let written = drive(&mut be, 1, 6);
        drop(be);

        let recover_once = |dir: &Path| {
            let mut be = DiskBackend::open(DiskOptions::new(dir).fsync(false)).unwrap();
            be.recover().unwrap()
        };
        let first = recover_once(&dir);
        let second = recover_once(&dir);
        assert_eq!(first.tail, second.tail);
        let frame_len = frame(0, 1, b"record-1").len();
        assert_eq!(second.tail, written[..3 * frame_len]);
        // The second pass found an already-repaired log.
        assert!(!second.repaired());
        let _ = fs::remove_dir_all(&dir);
    }
}

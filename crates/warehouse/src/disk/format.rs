//! On-disk file formats for the segmented storage backend.
//!
//! Two file types live in the storage directory:
//!
//! **Segment files** (`seg-<epoch>-<first-seqno>.wal`) carry binlog
//! frames, byte-identical to the in-memory/replicated frame format, after
//! a fixed header:
//!
//! ```text
//! +----------+---------+--------+---------+------------------------+
//! | magic 8B | epoch   | base   | hdr crc | frame | frame | ...    |
//! |"XDWSEG1\0"| u32 LE | u64 LE | u32 LE  |  (binlog wire format)  |
//! +----------+---------+--------+---------+------------------------+
//! ```
//!
//! `base` is the seqno of the last record *before* this segment; its
//! first frame is `base + 1`. Segments chain: the next segment's `base`
//! equals this segment's last frame seqno.
//!
//! **Snapshot files** (`snap-<epoch>-<seqno>.snap`) carry a serialized
//! [`crate::persist::Snapshot`] body after a fixed header:
//!
//! ```text
//! +----------+-------+--------+----------+----------+---------+------+
//! | magic 8B | epoch | seqno  | body len | body crc | hdr crc | body |
//! |"XDWSNAP1"| u32   | u64    | u64 LE   | u32 LE   | u32 LE  | JSON |
//! +----------+-------+--------+----------+----------+---------+------+
//! ```
//!
//! Every header ends with a CRC-32 over the bytes before it, so a torn
//! header is indistinguishable from garbage and simply skipped or
//! truncated by recovery. All integers are little-endian.

use crate::checksum::crc32;

/// Magic prefix of a segment file.
pub const SEG_MAGIC: [u8; 8] = *b"XDWSEG1\0";
/// Magic prefix of a snapshot file.
pub const SNAP_MAGIC: [u8; 8] = *b"XDWSNAP1";
/// Segment header length: magic + epoch + base + crc.
pub const SEG_HEADER_LEN: usize = 8 + 4 + 8 + 4;
/// Snapshot header length: magic + epoch + seqno + body_len + body_crc + crc.
pub const SNAP_HEADER_LEN: usize = 8 + 4 + 8 + 8 + 4 + 4;
/// Smallest possible binlog frame: 4B length prefix + 16B
/// (epoch + seqno + crc) with an empty payload — anything shorter is torn.
const FRAME_MIN_BODY: usize = 16;

fn u32_le(data: &[u8]) -> u32 {
    u32::from_le_bytes([data[0], data[1], data[2], data[3]])
}

fn u64_le(data: &[u8]) -> u64 {
    u64::from_le_bytes([
        data[0], data[1], data[2], data[3], data[4], data[5], data[6], data[7],
    ])
}

/// Build a segment header for a segment whose first frame is `base + 1`.
pub fn encode_segment_header(epoch: u32, base: u64) -> [u8; SEG_HEADER_LEN] {
    let mut out = [0u8; SEG_HEADER_LEN];
    out[..8].copy_from_slice(&SEG_MAGIC);
    out[8..12].copy_from_slice(&epoch.to_le_bytes());
    out[12..20].copy_from_slice(&base.to_le_bytes());
    let crc = crc32(&out[..20]);
    out[20..24].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Parse and validate a segment header; `None` if short, wrong magic, or
/// CRC-damaged.
pub fn parse_segment_header(data: &[u8]) -> Option<(u32, u64)> {
    if data.len() < SEG_HEADER_LEN || data[..8] != SEG_MAGIC {
        return None;
    }
    if crc32(&data[..20]) != u32_le(&data[20..24]) {
        return None;
    }
    Some((u32_le(&data[8..12]), u64_le(&data[12..20])))
}

/// Build a snapshot header for a body of `body_len` bytes with checksum
/// `body_crc`, covering state through `(epoch, seqno)`.
pub fn encode_snapshot_header(
    epoch: u32,
    seqno: u64,
    body_len: u64,
    body_crc: u32,
) -> [u8; SNAP_HEADER_LEN] {
    let mut out = [0u8; SNAP_HEADER_LEN];
    out[..8].copy_from_slice(&SNAP_MAGIC);
    out[8..12].copy_from_slice(&epoch.to_le_bytes());
    out[12..20].copy_from_slice(&seqno.to_le_bytes());
    out[20..28].copy_from_slice(&body_len.to_le_bytes());
    out[28..32].copy_from_slice(&body_crc.to_le_bytes());
    let crc = crc32(&out[..32]);
    out[32..36].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Parsed snapshot header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapHeader {
    /// Generation the snapshot belongs to.
    pub epoch: u32,
    /// Last seqno the snapshot's contents cover.
    pub seqno: u64,
    /// Expected body length in bytes.
    pub body_len: u64,
    /// Expected CRC-32 of the body.
    pub body_crc: u32,
}

/// Parse and validate a snapshot header; `None` if short, wrong magic, or
/// CRC-damaged. The *body* is validated separately against
/// `body_len`/`body_crc`.
pub fn parse_snapshot_header(data: &[u8]) -> Option<SnapHeader> {
    if data.len() < SNAP_HEADER_LEN || data[..8] != SNAP_MAGIC {
        return None;
    }
    if crc32(&data[..32]) != u32_le(&data[32..36]) {
        return None;
    }
    Some(SnapHeader {
        epoch: u32_le(&data[8..12]),
        seqno: u64_le(&data[12..20]),
        body_len: u64_le(&data[20..28]),
        body_crc: u32_le(&data[28..32]),
    })
}

/// File name of the segment whose first frame is `base + 1`. Zero-padded
/// so lexicographic order is numeric order.
pub fn segment_file_name(epoch: u32, base: u64) -> String {
    format!("seg-{epoch:010}-{:020}.wal", base + 1)
}

/// File name of the snapshot covering through `seqno`.
pub fn snapshot_file_name(epoch: u32, seqno: u64) -> String {
    format!("snap-{epoch:010}-{seqno:020}.snap")
}

/// Parse `seg-<epoch>-<first>.wal` → `(epoch, first_seqno)`.
pub fn parse_segment_name(name: &str) -> Option<(u32, u64)> {
    parse_name(name, "seg-", ".wal")
}

/// Parse `snap-<epoch>-<seqno>.snap` → `(epoch, seqno)`.
pub fn parse_snapshot_name(name: &str) -> Option<(u32, u64)> {
    parse_name(name, "snap-", ".snap")
}

fn parse_name(name: &str, prefix: &str, suffix: &str) -> Option<(u32, u64)> {
    let middle = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    let (epoch, seqno) = middle.split_once('-')?;
    Some((epoch.parse().ok()?, seqno.parse().ok()?))
}

/// One validated frame located inside a scanned byte region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// The frame's record seqno.
    pub seqno: u64,
    /// Byte offset of the frame (including its length prefix).
    pub start: usize,
    /// Total frame length in bytes (including the length prefix).
    pub len: usize,
}

/// Result of [`scan_frames`]: the longest valid prefix of a frame region.
#[derive(Debug, Clone, Default)]
pub struct FrameScan {
    /// Bytes of contiguous valid frames from the start of the region.
    pub valid_len: usize,
    /// Every valid frame, in order.
    pub frames: Vec<FrameInfo>,
    /// True when the region held bytes beyond the valid prefix (a torn or
    /// corrupt tail).
    pub damaged: bool,
}

impl FrameScan {
    /// Seqno of the last valid frame, or `base` if none survived.
    pub fn last_seqno(&self, base: u64) -> u64 {
        self.frames.last().map_or(base, |f| f.seqno)
    }
}

/// Scan a region of concatenated binlog frames that must begin at
/// `base + 1` in `epoch` and stay contiguous. Stops at the first frame
/// that is short, fails its CRC, carries the wrong epoch, or breaks seqno
/// continuity — everything before the stop point is the valid prefix.
pub fn scan_frames(data: &[u8], epoch: u32, base: u64) -> FrameScan {
    let mut scan = FrameScan::default();
    let mut cursor = 0usize;
    let mut expect = base + 1;
    while cursor < data.len() {
        let rest = &data[cursor..];
        if rest.len() < 4 {
            break;
        }
        let body_len = u32_le(&rest[..4]) as usize;
        if body_len < FRAME_MIN_BODY || rest.len() < 4 + body_len {
            break;
        }
        let covered = &rest[4..4 + body_len - 4];
        let stored_crc = u32_le(&rest[4 + body_len - 4..4 + body_len]);
        if crc32(covered) != stored_crc {
            break;
        }
        let frame_epoch = u32_le(&rest[4..8]);
        let seqno = u64_le(&rest[8..16]);
        if frame_epoch != epoch || seqno != expect {
            break;
        }
        scan.frames.push(FrameInfo {
            seqno,
            start: cursor,
            len: 4 + body_len,
        });
        cursor += 4 + body_len;
        expect += 1;
    }
    scan.valid_len = cursor;
    scan.damaged = cursor < data.len();
    scan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(epoch: u32, seqno: u64, payload: &[u8]) -> Vec<u8> {
        let body_len = 12 + payload.len() + 4;
        let mut out = Vec::with_capacity(4 + body_len);
        out.extend_from_slice(&(body_len as u32).to_le_bytes());
        out.extend_from_slice(&epoch.to_le_bytes());
        out.extend_from_slice(&seqno.to_le_bytes());
        out.extend_from_slice(payload);
        let crc = crc32(&out[4..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    #[test]
    fn segment_header_round_trip_and_damage() {
        let hdr = encode_segment_header(3, 99);
        assert_eq!(parse_segment_header(&hdr), Some((3, 99)));
        let mut bad = hdr;
        bad[13] ^= 0xA5;
        assert_eq!(parse_segment_header(&bad), None);
        assert_eq!(parse_segment_header(&hdr[..10]), None);
        let mut wrong_magic = hdr;
        wrong_magic[0] = b'Z';
        assert_eq!(parse_segment_header(&wrong_magic), None);
    }

    #[test]
    fn snapshot_header_round_trip_and_damage() {
        let hdr = encode_snapshot_header(2, 500, 1234, 0xDEAD_BEEF);
        assert_eq!(
            parse_snapshot_header(&hdr),
            Some(SnapHeader {
                epoch: 2,
                seqno: 500,
                body_len: 1234,
                body_crc: 0xDEAD_BEEF,
            })
        );
        let mut bad = hdr;
        bad[20] ^= 1;
        assert_eq!(parse_snapshot_header(&bad), None);
    }

    #[test]
    fn file_names_round_trip_and_sort_numerically() {
        let name = segment_file_name(1, 41);
        assert_eq!(parse_segment_name(&name), Some((1, 42)));
        let snap = snapshot_file_name(1, 42);
        assert_eq!(parse_snapshot_name(&snap), Some((1, 42)));
        assert_eq!(parse_segment_name("seg-junk.wal"), None);
        assert_eq!(parse_segment_name("other.txt"), None);
        assert_eq!(parse_snapshot_name(&name), None);
        // Zero padding makes lexicographic order numeric.
        assert!(segment_file_name(0, 9) < segment_file_name(0, 10));
        assert!(segment_file_name(0, 99) < segment_file_name(0, 100));
    }

    #[test]
    fn scan_accepts_contiguous_frames_and_stops_at_damage() {
        let mut region = Vec::new();
        for seqno in 6..=8 {
            region.extend_from_slice(&frame(0, seqno, b"payload"));
        }
        let clean = scan_frames(&region, 0, 5);
        assert_eq!(clean.frames.len(), 3);
        assert!(!clean.damaged);
        assert_eq!(clean.valid_len, region.len());
        assert_eq!(clean.last_seqno(5), 8);

        // Torn tail: partial last frame.
        let torn = &region[..region.len() - 3];
        let scan = scan_frames(torn, 0, 5);
        assert_eq!(scan.frames.len(), 2);
        assert!(scan.damaged);
        assert_eq!(scan.last_seqno(5), 7);

        // Bit flip inside the middle frame stops the scan there.
        let mut flipped = region.clone();
        let mid = clean.frames[1].start + 10;
        flipped[mid] ^= 0xFF;
        let scan = scan_frames(&flipped, 0, 5);
        assert_eq!(scan.frames.len(), 1);
        assert!(scan.damaged);

        // Wrong epoch or a seqno gap is a continuity break, not a panic.
        assert_eq!(scan_frames(&region, 1, 5).frames.len(), 0);
        assert_eq!(scan_frames(&region, 0, 4).frames.len(), 0);

        // Empty region is clean.
        let empty = scan_frames(&[], 0, 0);
        assert!(!empty.damaged);
        assert_eq!(empty.last_seqno(0), 0);
    }
}

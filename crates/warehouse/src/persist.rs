//! Database snapshots (dump/load).
//!
//! "Loose" federation ships **database dumps** to the hub instead of a
//! live binlog stream (§II-C2), and the backup use case (§II-E4)
//! regenerates a satellite database from the hub's copy. Both are built on
//! these snapshots: a serializable image of every schema, table, and row.

use crate::checksum::crc32;
use crate::database::Database;
use crate::error::{Result, WarehouseError};
use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A serializable image of (part of) a database.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// Snapshot format version, for forward compatibility.
    pub version: u32,
    /// Checksum over every schema name, table name, and table's row
    /// content, computed at capture time. A dump whose JSON still parses
    /// but whose values were altered in flight (bit rot, torn copy,
    /// tampering) fails [`Snapshot::verify`] with
    /// [`WarehouseError::CorruptSnapshot`] instead of being restored.
    /// Version-1 dumps predate the field; `default` keeps them parseable
    /// (they then fail verification explicitly, not mysteriously).
    #[serde(default)]
    pub content_checksum: u64,
    /// Schema name → table name → full table (schema + rows).
    pub schemas: BTreeMap<String, BTreeMap<String, Table>>,
}

/// Current snapshot format version (2 added `content_checksum`).
pub const SNAPSHOT_VERSION: u32 = 2;

/// Fold a deterministic content checksum over a snapshot's table map:
/// schema and table names are CRC-mixed in iteration (= sorted) order,
/// each table contributes its order-independent
/// [`Table::content_checksum`].
fn checksum_schemas(schemas: &BTreeMap<String, BTreeMap<String, Table>>) -> u64 {
    let mut acc: u64 = 0xD6E8_FEB8_6659_FD93;
    for (schema, tables) in schemas {
        acc = acc
            .rotate_left(13)
            .wrapping_add(crc32(schema.as_bytes()) as u64);
        for (name, table) in tables {
            acc = acc
                .rotate_left(13)
                .wrapping_add(crc32(name.as_bytes()) as u64);
            acc = acc.rotate_left(7) ^ table.content_checksum();
        }
    }
    acc
}

impl Snapshot {
    /// Capture every schema of the database.
    pub fn capture(db: &Database) -> Result<Snapshot> {
        let names: Vec<String> = db.schema_names().iter().map(|s| s.to_string()).collect();
        Snapshot::capture_schemas(db, &names)
    }

    /// Capture only the named schemas (loose federation typically ships a
    /// single instance schema).
    pub fn capture_schemas(db: &Database, schema_names: &[String]) -> Result<Snapshot> {
        let mut schemas = BTreeMap::new();
        for name in schema_names {
            let mut tables = BTreeMap::new();
            for t in db.table_names(name)? {
                tables.insert(t.to_owned(), db.table(name, t)?.clone());
            }
            schemas.insert(name.clone(), tables);
        }
        Ok(Snapshot {
            version: SNAPSHOT_VERSION,
            content_checksum: checksum_schemas(&schemas),
            schemas,
        })
    }

    /// Recompute the content checksum and compare it to the captured one.
    /// Called on every parse and apply; a mismatch means the dump file
    /// was damaged after capture and must not be restored.
    pub fn verify(&self) -> Result<()> {
        let actual = checksum_schemas(&self.schemas);
        if actual != self.content_checksum {
            return Err(WarehouseError::CorruptSnapshot(format!(
                "content checksum mismatch: dump claims {:#018x}, tables hash to {actual:#018x}",
                self.content_checksum
            )));
        }
        Ok(())
    }

    /// Apply the snapshot into `db`, creating schemas/tables as needed and
    /// **appending** all rows. Errors if a target table exists with a
    /// different definition, or if the content checksum does not match.
    pub fn apply(&self, db: &mut Database) -> Result<()> {
        if self.version != SNAPSHOT_VERSION {
            return Err(WarehouseError::Snapshot(format!(
                "unsupported snapshot version {}",
                self.version
            )));
        }
        self.verify()?;
        for (schema, tables) in &self.schemas {
            db.ensure_schema(schema)?;
            for table in tables.values() {
                db.ensure_table(schema, table.schema().clone())?;
                db.insert(schema, table.name(), table.rows()?.into_vec())?;
            }
        }
        Ok(())
    }

    /// Replace the entire contents of `db` with this snapshot, rotating
    /// the binlog epoch — the "regenerate a member instance from the hub"
    /// restore path.
    pub fn restore_into(&self, db: &mut Database) -> Result<()> {
        db.reset_for_restore()?;
        self.apply(db)
    }

    /// Serialize to JSON bytes (the shipped dump file).
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        serde_json::to_vec(self).map_err(|e| WarehouseError::Snapshot(e.to_string()))
    }

    /// Parse a dump file and verify its content checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot> {
        let snap: Snapshot =
            serde_json::from_slice(bytes).map_err(|e| WarehouseError::Snapshot(e.to_string()))?;
        snap.verify()?;
        Ok(snap)
    }

    /// Rename the single schema in this snapshot (loose-federation
    /// equivalent of Tungsten's rename-on-transfer). Errors unless the
    /// snapshot holds exactly one schema.
    pub fn into_renamed(mut self, new_schema: &str) -> Result<Snapshot> {
        if self.schemas.len() != 1 {
            return Err(WarehouseError::Snapshot(format!(
                "rename requires exactly one schema, snapshot has {}",
                self.schemas.len()
            )));
        }
        let (_, tables) = self.schemas.pop_first().expect("len checked"); // xc-allow: len == 1 checked above
        self.schemas.insert(new_schema.to_owned(), tables);
        // Schema names are part of the content checksum; re-seal.
        self.content_checksum = checksum_schemas(&self.schemas);
        Ok(self)
    }

    /// Total rows in the snapshot.
    pub fn total_rows(&self) -> usize {
        self.schemas
            .values()
            .flat_map(|t| t.values())
            .map(Table::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::{ColumnType, Value};

    fn populated() -> Database {
        let mut db = Database::new();
        for schema in ["xdmod_x", "xdmod_y"] {
            db.create_schema(schema).unwrap();
            db.create_table(
                schema,
                SchemaBuilder::new("jobfact")
                    .required("resource", ColumnType::Str)
                    .required("cpu_hours", ColumnType::Float)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            db.insert(
                schema,
                "jobfact",
                vec![vec![Value::Str(format!("res-{schema}")), Value::Float(1.0)]],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn dump_and_restore_round_trip() {
        let src = populated();
        let snap = Snapshot::capture(&src).unwrap();
        let bytes = snap.to_bytes().unwrap();
        let parsed = Snapshot::from_bytes(&bytes).unwrap();

        let mut dst = Database::new();
        parsed.restore_into(&mut dst).unwrap();
        for schema in ["xdmod_x", "xdmod_y"] {
            assert_eq!(
                src.table(schema, "jobfact").unwrap().content_checksum(),
                dst.table(schema, "jobfact").unwrap().content_checksum()
            );
        }
    }

    #[test]
    fn capture_subset_of_schemas() {
        let src = populated();
        let snap = Snapshot::capture_schemas(&src, &["xdmod_x".to_owned()]).unwrap();
        assert_eq!(snap.schemas.len(), 1);
        assert_eq!(snap.total_rows(), 1);
    }

    #[test]
    fn capture_unknown_schema_errors() {
        let src = populated();
        assert!(Snapshot::capture_schemas(&src, &["nope".to_owned()]).is_err());
    }

    #[test]
    fn apply_appends_rows() {
        let src = populated();
        let snap = Snapshot::capture_schemas(&src, &["xdmod_x".to_owned()]).unwrap();
        let mut dst = Database::new();
        snap.apply(&mut dst).unwrap();
        snap.apply(&mut dst).unwrap(); // loose-federation double-ship
        assert_eq!(dst.table("xdmod_x", "jobfact").unwrap().len(), 2);
    }

    #[test]
    fn restore_rotates_epoch_and_replaces() {
        let mut db = populated();
        let snap = Snapshot::capture_schemas(&db, &["xdmod_x".to_owned()]).unwrap();
        let epoch_before = db.binlog_position().epoch;
        snap.restore_into(&mut db).unwrap();
        assert_eq!(db.binlog_position().epoch, epoch_before + 1);
        assert_eq!(db.schema_names(), vec!["xdmod_x"]); // xdmod_y gone
    }

    #[test]
    fn rename_single_schema() {
        let src = populated();
        let snap = Snapshot::capture_schemas(&src, &["xdmod_x".to_owned()])
            .unwrap()
            .into_renamed("hub_x")
            .unwrap();
        assert!(snap.schemas.contains_key("hub_x"));

        let full = Snapshot::capture(&src).unwrap();
        assert!(full.into_renamed("hub").is_err()); // two schemas
    }

    #[test]
    fn tampered_checksum_rejected_on_parse_and_apply() {
        let src = populated();
        let mut snap = Snapshot::capture(&src).unwrap();
        snap.verify().unwrap();
        snap.content_checksum ^= 1;
        assert!(matches!(
            snap.verify(),
            Err(WarehouseError::CorruptSnapshot(_))
        ));
        let bytes = snap.to_bytes().unwrap();
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(WarehouseError::CorruptSnapshot(_))
        ));
        let mut dst = Database::new();
        assert!(matches!(
            snap.apply(&mut dst),
            Err(WarehouseError::CorruptSnapshot(_))
        ));
        assert!(dst.schema_names().is_empty());
    }

    #[test]
    fn tampered_row_value_rejected() {
        let src = populated();
        let snap = Snapshot::capture(&src).unwrap();
        let json = String::from_utf8(snap.to_bytes().unwrap()).unwrap();
        // Alter a stored value without disturbing JSON structure.
        let tampered = json.replace("res-xdmod_x", "res-evil_xxx");
        assert_ne!(json, tampered, "fixture value not found");
        assert!(matches!(
            Snapshot::from_bytes(tampered.as_bytes()),
            Err(WarehouseError::CorruptSnapshot(_))
        ));
    }

    #[test]
    fn rename_reseals_checksum() {
        let src = populated();
        let snap = Snapshot::capture_schemas(&src, &["xdmod_x".to_owned()])
            .unwrap()
            .into_renamed("hub_x")
            .unwrap();
        snap.verify().unwrap();
        // Round-trips through bytes (which re-verifies).
        Snapshot::from_bytes(&snap.to_bytes().unwrap()).unwrap();
    }

    #[test]
    fn version_mismatch_rejected() {
        let src = populated();
        let mut snap = Snapshot::capture(&src).unwrap();
        snap.version = 99;
        let mut dst = Database::new();
        assert!(matches!(
            snap.apply(&mut dst),
            Err(WarehouseError::Snapshot(_))
        ));
    }
}

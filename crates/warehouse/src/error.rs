//! Error types for the warehouse crate.

use crate::binlog::LogPosition;
use std::fmt;

/// Errors raised by warehouse operations.
///
/// The warehouse is the substrate under every XDMoD instance, so these
/// errors surface through ingestion, aggregation, replication, and
/// federated queries alike.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarehouseError {
    /// A schema (namespace) was referenced that does not exist.
    UnknownSchema(String),
    /// A table was referenced that does not exist within its schema.
    UnknownTable {
        /// Schema that was searched.
        schema: String,
        /// Missing table name.
        table: String,
    },
    /// A column was referenced that does not exist within its table.
    UnknownColumn {
        /// Table that was searched.
        table: String,
        /// Missing column name.
        column: String,
    },
    /// An attempt to create a schema or table that already exists.
    AlreadyExists(String),
    /// A row's arity or column types do not match the table schema.
    SchemaMismatch(String),
    /// A binlog record failed checksum or framing validation.
    CorruptBinlog(String),
    /// An I/O failure reading the binlog or applying an event. By
    /// contract transient — a retry may succeed — unlike
    /// [`WarehouseError::CorruptBinlog`], which requires a tail repair.
    /// In this in-memory warehouse these originate from the chaos fault
    /// injector; a disk-backed implementation would raise them for real.
    Io(String),
    /// A query was structurally invalid (e.g. aggregate over a string column).
    InvalidQuery(String),
    /// A snapshot could not be serialized or deserialized.
    Snapshot(String),
    /// A snapshot decoded cleanly but its content checksum did not match
    /// the tables it claims to carry — the dump file is damaged and must
    /// not be restored.
    CorruptSnapshot(String),
    /// A calendar computation received an out-of-range field (e.g. month 13).
    InvalidTime(String),
    /// The requested binlog range was removed by snapshot-triggered
    /// compaction. The reader must resume from a snapshot at or after
    /// `horizon` plus the remaining tail instead of replaying the full log.
    CompactedAway {
        /// First position still present in the log (exclusive lower bound
        /// of readable records): records with `seqno <= horizon.seqno` in
        /// `horizon.epoch` are gone.
        horizon: LogPosition,
    },
    /// A spilled page's file was corrupt or missing at fault-in time.
    /// The rows themselves are still durable in the write-ahead log —
    /// the caller must rebuild via
    /// [`crate::database::Database::repair_paging`]; the paging engine
    /// never serves rows that failed their spill-file checksum.
    SpillLost {
        /// Table whose page was lost.
        table: String,
        /// Page index within the table.
        page: u32,
    },
}

impl fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarehouseError::UnknownSchema(s) => write!(f, "unknown schema: {s}"),
            WarehouseError::UnknownTable { schema, table } => {
                write!(f, "unknown table: {schema}.{table}")
            }
            WarehouseError::UnknownColumn { table, column } => {
                write!(f, "unknown column {column} in table {table}")
            }
            WarehouseError::AlreadyExists(s) => write!(f, "already exists: {s}"),
            WarehouseError::SchemaMismatch(s) => write!(f, "schema mismatch: {s}"),
            WarehouseError::CorruptBinlog(s) => write!(f, "corrupt binlog: {s}"),
            WarehouseError::Io(s) => write!(f, "i/o error: {s}"),
            WarehouseError::InvalidQuery(s) => write!(f, "invalid query: {s}"),
            WarehouseError::Snapshot(s) => write!(f, "snapshot error: {s}"),
            WarehouseError::CorruptSnapshot(s) => write!(f, "corrupt snapshot: {s}"),
            WarehouseError::InvalidTime(s) => write!(f, "invalid time: {s}"),
            WarehouseError::CompactedAway { horizon } => {
                write!(f, "records at or before {horizon} were compacted away")
            }
            WarehouseError::SpillLost { table, page } => {
                write!(
                    f,
                    "spilled page {page} of table '{table}' is corrupt or missing; \
                     rebuild it from the log (repair_paging)"
                )
            }
        }
    }
}

impl std::error::Error for WarehouseError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, WarehouseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = WarehouseError::UnknownTable {
            schema: "xdmod_x".into(),
            table: "jobfact".into(),
        };
        assert_eq!(e.to_string(), "unknown table: xdmod_x.jobfact");
        let e = WarehouseError::UnknownColumn {
            table: "jobfact".into(),
            column: "nope".into(),
        };
        assert!(e.to_string().contains("nope"));
        assert!(e.to_string().contains("jobfact"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&WarehouseError::UnknownSchema("s".into()));
    }
}

//! Parallel partitioned aggregation: day-bucket sharding, a scoped
//! worker pool, deterministic shard-order merging, and an
//! invalidation-aware aggregate cache.
//!
//! The engine partitions a fact table's rows into shards — by calendar
//! day bucket when the query names a time column, round-robin otherwise —
//! folds each shard into a [`PartialAggregation`]-style group map on a
//! pool of `std::thread::scope` workers, and merges the partials in
//! ascending shard order. Workers only *race for shards*, never for
//! merge position, so the result is identical for any worker count:
//! `run_sharded` with one worker is the serial reference the
//! differential oracle compares against.
//!
//! The cache keys results by (schema, table, query fingerprint) and
//! stamps each entry with a [`RebuildTicket`] — the source table's
//! binlog watermark plus the database's rebuild generation. An entry is
//! served only while both still match, so any ingest into the table (or
//! an external rebuild such as a replication resync) invalidates it
//! implicitly.

use crate::binlog::LogPosition;
use crate::error::{Result, WarehouseError};
use crate::query::{AggPlan, Groups, PartialAggregation, Query, ResultSet};
use crate::schema::TableSchema;
use crate::table::Table;
use crate::time::Period;
use crate::value::Row;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use xdmod_telemetry::MetricsRegistry;

/// Sizing of the aggregation worker pool and the shard partition.
///
/// Zero means "auto": workers default to `available_parallelism`, shards
/// default to the (resolved) worker count. Shards beyond the worker
/// count queue on the pool; workers beyond the shard count idle — the
/// pre-flight analyzer flags that misconfiguration as `XC0011`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    workers: usize,
    shards: usize,
}

impl PoolConfig {
    /// Fully automatic sizing (the default).
    pub fn auto() -> Self {
        PoolConfig {
            workers: 0,
            shards: 0,
        }
    }

    /// Pool with an explicit worker count (0 = auto).
    pub fn new(workers: usize) -> Self {
        PoolConfig { workers, shards: 0 }
    }

    /// Single-worker pool: the serial reference execution.
    pub fn serial() -> Self {
        PoolConfig::new(1)
    }

    /// Override the shard count (0 = one shard per worker).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Effective worker count: configured, else `available_parallelism`.
    pub fn workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        }
    }

    /// Effective shard count: configured, else the worker count.
    pub fn shards(&self) -> usize {
        if self.shards == 0 {
            self.workers()
        } else {
            self.shards
        }
    }

    /// Raw configured worker count (0 = auto), for introspection.
    pub fn configured_workers(&self) -> usize {
        self.workers
    }

    /// Raw configured shard count (0 = auto), for introspection.
    pub fn configured_shards(&self) -> usize {
        self.shards
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig::auto()
    }
}

/// Shard assignment for one row: stable under any pool size.
fn shard_of(row: &Row, time_idx: Option<usize>, index: usize, shards: usize) -> usize {
    match time_idx {
        Some(idx) => match row[idx].as_i64() {
            // Same-day rows land on the same shard, so period groups are
            // built from few partials; NULL times collect on shard 0.
            Some(t) => Period::Day.bucket_of(t).rem_euclid(shards as i64) as usize,
            None => 0,
        },
        None => index % shards,
    }
}

/// Execute a query with the partitioned engine: shard, fold each shard
/// on the worker pool, merge partials in ascending shard order, finish.
///
/// `label` attributes the per-shard timing histogram
/// (`warehouse_shard_aggregation_seconds{table=..}`) and the
/// pool-saturation gauge (`warehouse_aggpool_saturation`).
pub fn run_sharded(
    query: &Query,
    table: &Table,
    pool: PoolConfig,
    telemetry: &MetricsRegistry,
    label: &str,
) -> Result<ResultSet> {
    let plan = AggPlan::resolve(query, table.schema())?;
    let time_idx = query
        .shard_hint()
        .and_then(|c| table.schema().column_index(c).ok());
    if table.is_paged() {
        // Paged tables fold one page at a time — pin, fault in, route
        // the page's rows to their day-bucket shards, release — so the
        // scan stays inside the residency budget plus one pinned page.
        // Shard routing uses the row's insertion sequence, matching the
        // dense path's enumeration index.
        let n_shards = pool.shards().max(1);
        let mut per_shard: Vec<Groups> = vec![Groups::new(); n_shards];
        table.scan_pages(&mut |rows| {
            let span = telemetry.span("warehouse_shard_aggregation_seconds", &[("table", label)]);
            for (seq, row) in rows {
                let s = shard_of(row, time_idx, *seq as usize, n_shards);
                plan.fold_row(&mut per_shard[s], row);
            }
            span.finish();
            Ok(())
        })?;
        let mut merged = Groups::new();
        for groups in per_shard {
            AggPlan::merge_groups(&mut merged, groups);
        }
        return plan.finish(merged);
    }
    let rows = table.rows()?;
    let per_shard = fold_shards_pooled(&plan, &rows, time_idx, pool, telemetry, label)?;

    // Deterministic merge: ascending shard order, independent of which
    // worker folded which shard.
    let mut merged = Groups::new();
    for groups in per_shard {
        AggPlan::merge_groups(&mut merged, groups);
    }
    plan.finish(merged)
}

/// Partition `rows` into day-bucket shards and fold each shard on the
/// worker pool, returning per-shard group maps in ascending shard order.
/// Within a shard rows fold in table order, so the per-shard accumulator
/// state is bitwise identical to a serial fold of that shard — the
/// property that lets [`ShardedPartials`] retain the result and continue
/// folding deltas into it later.
fn fold_shards_pooled(
    plan: &AggPlan<'_>,
    rows: &[Row],
    time_idx: Option<usize>,
    pool: PoolConfig,
    telemetry: &MetricsRegistry,
    label: &str,
) -> Result<Vec<Groups>> {
    let n_shards = pool.shards().max(1);
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
    for (i, row) in rows.iter().enumerate() {
        shards[shard_of(row, time_idx, i, n_shards)].push(i);
    }

    let workers = pool.workers().clamp(1, n_shards);
    if telemetry.is_enabled() {
        // Fraction of the configured pool that shard count keeps busy;
        // < 1.0 means wasted workers (the XC0011 condition at runtime).
        telemetry
            .gauge("warehouse_aggpool_saturation", &[])
            .set(workers as f64 / pool.workers().max(1) as f64);
    }

    let fold_shard = |shard: &[usize]| -> Groups {
        let span = telemetry.span("warehouse_shard_aggregation_seconds", &[("table", label)]);
        let mut groups = Groups::new();
        for &ri in shard {
            plan.fold_row(&mut groups, &rows[ri]);
        }
        span.finish();
        groups
    };

    let mut partials: Vec<(usize, Groups)> = Vec::with_capacity(n_shards);
    if workers == 1 {
        for (i, shard) in shards.iter().enumerate() {
            partials.push((i, fold_shard(shard)));
        }
    } else {
        let next = AtomicUsize::new(0);
        let joined: Result<Vec<Vec<(usize, Groups)>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n_shards {
                                break;
                            }
                            done.push((i, fold_shard(&shards[i])));
                        }
                        done
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .map_err(|_| WarehouseError::Io("aggregation worker panicked".to_owned()))
                })
                .collect()
        });
        for worker_out in joined? {
            partials.extend(worker_out);
        }
    }

    partials.sort_by_key(|(i, _)| *i);
    Ok(partials.into_iter().map(|(_, groups)| groups).collect())
}

/// Retained per-shard partial state for one query over one fact table —
/// the delta-fold engine's working set.
///
/// A cold [`ShardedPartials::build`] folds every live row on the worker
/// pool, leaving each shard exactly the accumulator state a serial fold
/// of that shard would produce. [`ShardedPartials::fold_batch`] then
/// routes appended rows to the same day-bucket shards and continues each
/// shard's accumulator sequence in arrival order, so finalizing after
/// any number of delta folds yields the same bytes as a full recompute
/// over the grown table (exactly for counts/min/max/distinct; for float
/// sums because the per-shard addition *sequence* matches, not merely
/// the operand set). Only shards that receive delta rows are touched —
/// quiet shards carry their state forward untouched.
#[derive(Debug, Clone, Default)]
pub struct ShardedPartials {
    partials: Vec<PartialAggregation>,
    rows_folded: usize,
}

impl ShardedPartials {
    /// Empty state partitioned into `shards` day-bucket shards (clamped
    /// to at least one).
    pub fn new(shards: usize) -> Self {
        ShardedPartials {
            partials: vec![PartialAggregation::default(); shards.max(1)],
            rows_folded: 0,
        }
    }

    /// Cold build: fold every row of a table on the worker pool. The
    /// resulting per-shard state is bitwise identical to what
    /// [`run_sharded`] folds internally for the same pool geometry.
    pub fn build(
        query: &Query,
        schema: &TableSchema,
        rows: &[Row],
        pool: PoolConfig,
        telemetry: &MetricsRegistry,
        label: &str,
    ) -> Result<Self> {
        let plan = AggPlan::resolve(query, schema)?;
        let time_idx = query.shard_hint().and_then(|c| schema.column_index(c).ok());
        let per_shard = fold_shards_pooled(&plan, rows, time_idx, pool, telemetry, label)?;
        Ok(ShardedPartials {
            partials: per_shard
                .into_iter()
                .map(PartialAggregation::from_groups)
                .collect(),
            rows_folded: rows.len(),
        })
    }

    /// Number of shards the state is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.partials.len()
    }

    /// Total rows folded so far (cold build plus every delta batch);
    /// keeps round-robin routing stable for queries with no time column.
    pub fn rows_folded(&self) -> usize {
        self.rows_folded
    }

    /// Fold a batch of rows appended to the fact table since the last
    /// fold, routing each to its day-bucket shard. Returns the number of
    /// distinct shards dirtied by this batch.
    pub fn fold_batch(
        &mut self,
        query: &Query,
        schema: &TableSchema,
        rows: &[Row],
    ) -> Result<usize> {
        let plan = AggPlan::resolve(query, schema)?;
        let time_idx = query.shard_hint().and_then(|c| schema.column_index(c).ok());
        let n = self.partials.len();
        let mut dirty = vec![false; n];
        for (i, row) in rows.iter().enumerate() {
            let s = shard_of(row, time_idx, self.rows_folded + i, n);
            self.partials[s].fold_row_with(&plan, row);
            dirty[s] = true;
        }
        self.rows_folded += rows.len();
        Ok(dirty.into_iter().filter(|d| *d).count())
    }

    /// Finalize: merge shard clones in ascending shard order and finish.
    /// The retained state is untouched, ready for the next delta.
    pub fn finalize(&self, query: &Query, schema: &TableSchema) -> Result<ResultSet> {
        let plan = AggPlan::resolve(query, schema)?;
        let mut merged = Groups::new();
        for partial in &self.partials {
            AggPlan::merge_groups(&mut merged, partial.groups_clone());
        }
        plan.finish(merged)
    }
}

/// Identity of a cached aggregate result: which table was read and what
/// was asked of it. Paired with a [`RebuildTicket`] stating *which data*
/// answered.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Schema of the source table.
    pub schema: String,
    /// Source table (for materializations: the output table).
    pub table: String,
    /// [`Query::fingerprint`] of the query that produced the result.
    pub fingerprint: u64,
}

/// Snapshot of a table's data version: its binlog watermark (position of
/// its last mutation) and the database's rebuild generation. A cache
/// entry or in-flight rebuild is valid only while both still match —
/// ingest moves the watermark; external rebuilds (replication resync,
/// restore) bump the generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RebuildTicket {
    /// Position of the last binlog record that touched the table
    /// (`None` until its first mutation is recorded).
    pub watermark: Option<LogPosition>,
    /// [`crate::database::Database::rebuild_generation`] at issue time.
    pub generation: u64,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    ticket: RebuildTicket,
    /// `Some` for query results; `None` marks "materialized tables are
    /// current" without retaining rows.
    result: Option<ResultSet>,
}

/// Invalidation-aware aggregate cache. Entries never expire by time —
/// they are superseded on store and ignored once their ticket goes
/// stale, so the cache can only serve results identical to a fresh
/// recompute.
#[derive(Debug, Default)]
pub struct AggregateCache {
    entries: Mutex<HashMap<CacheKey, CacheEntry>>,
}

impl AggregateCache {
    /// Empty cache.
    pub fn new() -> Self {
        AggregateCache::default()
    }

    /// Cached result for `key`, if present and still at `current`.
    pub fn get(&self, key: &CacheKey, current: RebuildTicket) -> Option<ResultSet> {
        let entries = self.entries.lock();
        entries
            .get(key)
            .filter(|e| e.ticket == current)
            .and_then(|e| e.result.clone())
    }

    /// True if `key` is marked fresh at `current` (used to skip
    /// re-materialization; the entry may carry no result rows).
    pub fn is_fresh(&self, key: &CacheKey, current: RebuildTicket) -> bool {
        let entries = self.entries.lock();
        entries.get(key).is_some_and(|e| e.ticket == current)
    }

    /// Store (or supersede) an entry.
    pub fn put(&self, key: CacheKey, ticket: RebuildTicket, result: Option<ResultSet>) {
        self.entries
            .lock()
            .insert(key, CacheEntry { ticket, result });
    }

    /// Drop every entry touching `schema` (used on destructive schema
    /// operations that bypass watermark tracking).
    pub fn invalidate_schema(&self, schema: &str) {
        self.entries.lock().retain(|k, _| k.schema != schema);
    }

    /// Drop everything.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }

    /// Number of entries (fresh or stale).
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{AggFn, Aggregate};
    use crate::schema::SchemaBuilder;
    use crate::time::CivilDate;
    use crate::value::{ColumnType, Value};

    fn facts(n: usize) -> Table {
        let mut t = Table::new(
            SchemaBuilder::new("jobfact")
                .required("resource", ColumnType::Str)
                .required("cpu_hours", ColumnType::Float)
                .required("end_time", ColumnType::Time)
                .build()
                .unwrap(),
        );
        let base = CivilDate::new(2017, 1, 1).to_epoch();
        t.insert_batch(
            (0..n)
                .map(|i| {
                    vec![
                        Value::Str(if i % 3 == 0 { "comet" } else { "gordon" }.into()),
                        Value::Float(i as f64 / 64.0),
                        Value::Time(base + (i as i64 % 40) * 86_400),
                    ]
                })
                .collect(),
        )
        .unwrap();
        t
    }

    fn q() -> Query {
        Query::new()
            .group_by_column("resource")
            .group_by_period("end_time", Period::Month)
            .aggregate(Aggregate::count("jobs"))
            .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"))
            .aggregate(Aggregate::of(AggFn::Avg, "cpu_hours", "avg"))
    }

    #[test]
    fn sharded_matches_serial_and_rayon_for_any_pool() {
        let t = facts(500);
        let reg = MetricsRegistry::disabled();
        let reference = q().run(&t).unwrap();
        for (w, s) in [(1, 1), (1, 7), (2, 2), (3, 8), (8, 3), (16, 16)] {
            let pool = PoolConfig::new(w).with_shards(s);
            let rs = run_sharded(&q(), &t, pool, &reg, "jobfact").unwrap();
            assert_eq!(rs, reference, "workers={w} shards={s}");
        }
    }

    #[test]
    fn round_robin_sharding_when_no_time_hint() {
        let t = facts(101);
        let reg = MetricsRegistry::disabled();
        let query = Query::new()
            .group_by_column("resource")
            .aggregate(Aggregate::of(AggFn::Max, "cpu_hours", "peak"));
        let reference = query.run(&t).unwrap();
        let pool = PoolConfig::new(4).with_shards(5);
        assert_eq!(
            run_sharded(&query, &t, pool, &reg, "jobfact").unwrap(),
            reference
        );
    }

    #[test]
    fn empty_table_keeps_sql_one_row_semantics() {
        let t = Table::new(
            SchemaBuilder::new("empty")
                .required("v", ColumnType::Float)
                .build()
                .unwrap(),
        );
        let reg = MetricsRegistry::disabled();
        let query = Query::new().aggregate(Aggregate::count("n"));
        let rs = run_sharded(&query, &t, PoolConfig::new(4), &reg, "empty").unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.scalar_f64("n"), Some(0.0));
    }

    #[test]
    fn per_shard_timings_and_saturation_are_reported() {
        let t = facts(64);
        let reg = MetricsRegistry::new();
        let pool = PoolConfig::new(8).with_shards(4);
        run_sharded(&q(), &t, pool, &reg, "jobfact").unwrap();
        let snap = reg.snapshot();
        let hist = snap
            .histogram(
                "warehouse_shard_aggregation_seconds",
                &[("table", "jobfact")],
            )
            .expect("per-shard histogram");
        assert_eq!(hist.count, 4);
        // 8 workers over 4 shards: half the pool is wasted.
        assert_eq!(snap.gauge("warehouse_aggpool_saturation", &[]), Some(0.5));
    }

    #[test]
    fn cache_serves_only_matching_tickets() {
        let cache = AggregateCache::new();
        let key = CacheKey {
            schema: "s".into(),
            table: "t".into(),
            fingerprint: 7,
        };
        let t0 = RebuildTicket {
            watermark: Some(LogPosition { epoch: 0, seqno: 3 }),
            generation: 0,
        };
        let rs = ResultSet {
            columns: vec!["n".into()],
            rows: vec![vec![Value::Int(1)]],
        };
        cache.put(key.clone(), t0, Some(rs.clone()));
        assert_eq!(cache.get(&key, t0), Some(rs));
        // Ingest moved the watermark: stale.
        let t1 = RebuildTicket {
            watermark: Some(LogPosition { epoch: 0, seqno: 4 }),
            ..t0
        };
        assert_eq!(cache.get(&key, t1), None);
        // External rebuild bumped the generation: stale.
        let t2 = RebuildTicket {
            generation: 1,
            ..t0
        };
        assert_eq!(cache.get(&key, t2), None);
        assert!(cache.is_fresh(&key, t0));
        cache.invalidate_schema("s");
        assert!(!cache.is_fresh(&key, t0));
        assert!(cache.is_empty());
    }

    #[test]
    fn sharded_partials_cold_build_matches_run_sharded() {
        let t = facts(300);
        let reg = MetricsRegistry::disabled();
        let pool = PoolConfig::new(3).with_shards(8);
        let reference = run_sharded(&q(), &t, pool, &reg, "jobfact").unwrap();
        let partials =
            ShardedPartials::build(&q(), t.schema(), &t.rows().unwrap(), pool, &reg, "jobfact")
                .unwrap();
        assert_eq!(partials.shard_count(), 8);
        assert_eq!(partials.rows_folded(), 300);
        assert_eq!(partials.finalize(&q(), t.schema()).unwrap(), reference);
    }

    #[test]
    fn delta_folds_match_full_recompute_at_every_step() {
        let reg = MetricsRegistry::disabled();
        let pool = PoolConfig::new(2).with_shards(5);
        let full = facts(256);
        let rows = full.rows().unwrap();

        // Cold-build over a prefix, then fold the rest in uneven batches,
        // checking against a from-scratch recompute after every batch.
        let mut grown = facts(64);
        let mut partials = ShardedPartials::build(
            &q(),
            grown.schema(),
            &grown.rows().unwrap(),
            pool,
            &reg,
            "jobfact",
        )
        .unwrap();
        let mut upto = 64;
        for batch in [1usize, 7, 40, 88] {
            let delta: Vec<_> = rows[upto..upto + batch].to_vec();
            grown.insert_batch(delta.clone()).unwrap();
            let dirty = partials.fold_batch(&q(), grown.schema(), &delta).unwrap();
            assert!(dirty >= 1 && dirty <= 5.min(batch));
            upto += batch;
            let recompute = run_sharded(&q(), &grown, pool, &reg, "jobfact").unwrap();
            assert_eq!(
                partials.finalize(&q(), grown.schema()).unwrap(),
                recompute,
                "after growing to {upto} rows"
            );
        }
        assert_eq!(partials.rows_folded(), 256);
    }

    #[test]
    fn empty_delta_batch_dirties_nothing() {
        let t = facts(32);
        let reg = MetricsRegistry::disabled();
        let mut partials = ShardedPartials::build(
            &q(),
            t.schema(),
            &t.rows().unwrap(),
            PoolConfig::serial(),
            &reg,
            "jobfact",
        )
        .unwrap();
        let before = partials.finalize(&q(), t.schema()).unwrap();
        assert_eq!(partials.fold_batch(&q(), t.schema(), &[]).unwrap(), 0);
        assert_eq!(partials.finalize(&q(), t.schema()).unwrap(), before);
    }

    #[test]
    fn pool_config_resolution() {
        assert!(PoolConfig::auto().workers() >= 1);
        assert_eq!(PoolConfig::auto().workers(), PoolConfig::auto().shards());
        let p = PoolConfig::new(3).with_shards(12);
        assert_eq!((p.workers(), p.shards()), (3, 12));
        assert_eq!((p.configured_workers(), p.configured_shards()), (3, 12));
        assert_eq!(PoolConfig::serial().workers(), 1);
    }
}

//! Civil-calendar helpers over Unix timestamps.
//!
//! XDMoD aggregates facts by day, month, quarter, and year ("aggregation
//! periods"). The warehouse carries timestamps as epoch seconds; this
//! module provides the proleptic-Gregorian conversions needed to bin them,
//! using Howard Hinnant's `days_from_civil` algorithm. All arithmetic is
//! UTC; XDMoD instances are assumed to normalize to UTC at ingest time.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Seconds per day.
pub const SECS_PER_DAY: i64 = 86_400;

/// A civil (year, month, day) date, UTC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CivilDate {
    /// Gregorian year (may be negative, proleptic).
    pub year: i32,
    /// Month, 1-12.
    pub month: u8,
    /// Day of month, 1-31.
    pub day: u8,
}

impl CivilDate {
    /// Construct a date; panics on out-of-range month/day (programmer error).
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day out of range: {year}-{month}-{day}"
        );
        CivilDate { year, month, day }
    }

    /// Days since the Unix epoch (1970-01-01 is day 0).
    pub fn to_days(self) -> i64 {
        days_from_civil(self.year, self.month, self.day)
    }

    /// Epoch seconds at 00:00:00 UTC of this date.
    pub fn to_epoch(self) -> i64 {
        self.to_days() * SECS_PER_DAY
    }

    /// The date `n` days later (or earlier for negative `n`).
    pub fn plus_days(self, n: i64) -> Self {
        civil_from_days(self.to_days() + n)
    }

    /// Quarter of the year, 1-4.
    pub fn quarter(self) -> u8 {
        (self.month - 1) / 3 + 1
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// True for Gregorian leap years.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in `month` of `year`.
///
/// Out-of-range months (0, 13, ...) yield 0 rather than panicking: every
/// validation site compares `day <= days_in_month(..)`, so a bad month
/// makes *all* days invalid — the parse or constructor rejects the input
/// instead of tearing the process down on untrusted data. Use
/// [`checked_days_in_month`] when the caller wants the error surfaced.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Like [`days_in_month`] but returns an error for out-of-range months.
pub fn checked_days_in_month(year: i32, month: u8) -> Result<u8, crate::error::WarehouseError> {
    if (1..=12).contains(&month) {
        Ok(days_in_month(year, month))
    } else {
        Err(crate::error::WarehouseError::InvalidTime(format!(
            "month out of range: {month}"
        )))
    }
}

/// Days since 1970-01-01 for a civil date (Hinnant's algorithm).
pub fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m as i32 + 9) % 12); // [0, 11], Mar=0
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01 (inverse of [`days_from_civil`]).
pub fn civil_from_days(z: i64) -> CivilDate {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    CivilDate {
        year: (y + i64::from(m <= 2)) as i32,
        month: m,
        day: d,
    }
}

/// Civil date of an epoch timestamp (UTC midnight flooring).
pub fn date_of_epoch(epoch_secs: i64) -> CivilDate {
    civil_from_days(epoch_secs.div_euclid(SECS_PER_DAY))
}

/// Aggregation periods XDMoD materializes ("every day, aggregation
/// processes run against newly ingested data ... binning numeric data in
/// aggregation tables", paper §II-C3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Period {
    /// Calendar day.
    Day,
    /// Calendar month.
    Month,
    /// Calendar quarter.
    Quarter,
    /// Calendar year.
    Year,
}

impl Period {
    /// All periods, smallest to largest.
    pub const ALL: [Period; 4] = [Period::Day, Period::Month, Period::Quarter, Period::Year];

    /// Lowercase identifier used in aggregate-table names
    /// (e.g. `jobfact_by_month`).
    pub fn ident(self) -> &'static str {
        match self {
            Period::Day => "day",
            Period::Month => "month",
            Period::Quarter => "quarter",
            Period::Year => "year",
        }
    }

    /// The canonical bucket id of `epoch_secs` under this period.
    ///
    /// Bucket ids are dense, ordered integers: days since epoch for `Day`,
    /// `year*12+month0` for `Month`, `year*4+quarter0` for `Quarter`, and
    /// the year itself for `Year`.
    pub fn bucket_of(self, epoch_secs: i64) -> i64 {
        let date = date_of_epoch(epoch_secs);
        match self {
            Period::Day => epoch_secs.div_euclid(SECS_PER_DAY),
            Period::Month => i64::from(date.year) * 12 + i64::from(date.month - 1),
            Period::Quarter => i64::from(date.year) * 4 + i64::from(date.quarter() - 1),
            Period::Year => i64::from(date.year),
        }
    }

    /// Epoch seconds of the inclusive start of bucket `id`.
    pub fn bucket_start(self, id: i64) -> i64 {
        match self {
            Period::Day => id * SECS_PER_DAY,
            Period::Month => {
                let year = id.div_euclid(12) as i32;
                let month = (id.rem_euclid(12) + 1) as u8;
                CivilDate::new(year, month, 1).to_epoch()
            }
            Period::Quarter => {
                let year = id.div_euclid(4) as i32;
                let month = (id.rem_euclid(4) * 3 + 1) as u8;
                CivilDate::new(year, month, 1).to_epoch()
            }
            Period::Year => CivilDate::new(id as i32, 1, 1).to_epoch(),
        }
    }

    /// Epoch seconds of the exclusive end of bucket `id`.
    pub fn bucket_end(self, id: i64) -> i64 {
        match self {
            Period::Day => (id + 1) * SECS_PER_DAY,
            Period::Month | Period::Quarter | Period::Year => self.bucket_start(id + 1),
        }
    }

    /// Human label of bucket `id`, e.g. `2017-03`, `2017Q2`, `2017`.
    pub fn bucket_label(self, id: i64) -> String {
        match self {
            Period::Day => date_of_epoch(self.bucket_start(id)).to_string(),
            Period::Month => {
                let year = id.div_euclid(12);
                let month = id.rem_euclid(12) + 1;
                format!("{year:04}-{month:02}")
            }
            Period::Quarter => {
                let year = id.div_euclid(4);
                let q = id.rem_euclid(4) + 1;
                format!("{year:04}Q{q}")
            }
            Period::Year => format!("{id:04}"),
        }
    }
}

/// Parse an ISO-8601-style UTC datetime `YYYY-MM-DDTHH:MM:SS` (the format
/// SLURM's `sacct` emits) into epoch seconds. Returns `None` on malformed
/// input or out-of-range fields.
pub fn parse_iso_datetime(s: &str) -> Option<i64> {
    let bytes = s.as_bytes();
    if bytes.len() != 19
        || bytes[4] != b'-'
        || bytes[7] != b'-'
        || bytes[10] != b'T'
        || bytes[13] != b':'
        || bytes[16] != b':'
    {
        return None;
    }
    let num = |range: std::ops::Range<usize>| -> Option<i64> {
        let part = &s[range];
        if part.bytes().all(|b| b.is_ascii_digit()) {
            part.parse().ok()
        } else {
            None
        }
    };
    let year = num(0..4)? as i32;
    let month = num(5..7)?;
    let day = num(8..10)?;
    let hour = num(11..13)?;
    let min = num(14..16)?;
    let sec = num(17..19)?;
    if !(1..=12).contains(&month) {
        return None;
    }
    let month = month as u8;
    if day < 1 || day > i64::from(days_in_month(year, month)) {
        return None;
    }
    if hour > 23 || min > 59 || sec > 59 {
        return None;
    }
    let days = days_from_civil(year, month, day as u8);
    Some(days * SECS_PER_DAY + hour * 3600 + min * 60 + sec)
}

/// Format epoch seconds as `YYYY-MM-DDTHH:MM:SS` UTC (inverse of
/// [`parse_iso_datetime`]).
pub fn format_iso_datetime(epoch_secs: i64) -> String {
    let date = date_of_epoch(epoch_secs);
    let tod = epoch_secs.rem_euclid(SECS_PER_DAY);
    format!(
        "{date}T{:02}:{:02}:{:02}",
        tod / 3600,
        (tod % 3600) / 60,
        tod % 60
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iso_parse_known_value() {
        assert_eq!(
            parse_iso_datetime("2017-01-01T00:00:00"),
            Some(1_483_228_800)
        );
        assert_eq!(
            parse_iso_datetime("2017-06-15T12:30:45"),
            Some(CivilDate::new(2017, 6, 15).to_epoch() + 12 * 3600 + 30 * 60 + 45)
        );
    }

    #[test]
    fn iso_parse_rejects_malformed() {
        for bad in [
            "2017-01-01",
            "2017/01/01T00:00:00",
            "2017-13-01T00:00:00",
            "2017-02-30T00:00:00",
            "2017-01-01T24:00:00",
            "2017-01-01T00:60:00",
            "2017-01-01T00:00:0x",
            "",
        ] {
            assert_eq!(parse_iso_datetime(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn iso_round_trip() {
        for t in [0, 1_483_228_800, 1_500_000_123, -86_400] {
            assert_eq!(parse_iso_datetime(&format_iso_datetime(t)), Some(t));
        }
    }

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), CivilDate::new(1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // 2017-01-01 00:00:00 UTC = 1483228800.
        assert_eq!(CivilDate::new(2017, 1, 1).to_epoch(), 1_483_228_800);
        // 2000-03-01 follows the century leap day.
        assert_eq!(
            civil_from_days(days_from_civil(2000, 2, 29) + 1),
            CivilDate::new(2000, 3, 1)
        );
    }

    #[test]
    fn round_trip_across_decades() {
        for days in (-20_000..40_000).step_by(37) {
            let d = civil_from_days(days);
            assert_eq!(d.to_days(), days, "round trip failed at {d}");
        }
    }

    #[test]
    fn out_of_range_month_is_rejected_not_panicking() {
        // days_in_month saturates to 0 days, so no day validates.
        assert_eq!(days_in_month(2017, 0), 0);
        assert_eq!(days_in_month(2017, 13), 0);
        assert_eq!(days_in_month(2017, 255), 0);
        // The checked variant surfaces the error.
        assert!(matches!(
            checked_days_in_month(2017, 13),
            Err(crate::error::WarehouseError::InvalidTime(_))
        ));
        assert_eq!(checked_days_in_month(2016, 2), Ok(29));
        // Parsing a datetime with a bad month still cleanly returns None
        // (month is range-checked before the day lookup).
        assert_eq!(parse_iso_datetime("2017-00-01T00:00:00"), None);
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2016));
        assert!(!is_leap_year(2017));
        assert_eq!(days_in_month(2016, 2), 29);
        assert_eq!(days_in_month(2017, 2), 28);
    }

    #[test]
    fn month_buckets_cover_2017() {
        let jan = CivilDate::new(2017, 1, 15).to_epoch();
        let dec = CivilDate::new(2017, 12, 31).to_epoch();
        let b_jan = Period::Month.bucket_of(jan);
        let b_dec = Period::Month.bucket_of(dec);
        assert_eq!(b_dec - b_jan, 11);
        assert_eq!(Period::Month.bucket_label(b_jan), "2017-01");
        assert_eq!(Period::Month.bucket_label(b_dec), "2017-12");
    }

    #[test]
    fn bucket_start_end_bracket_timestamps() {
        let t = CivilDate::new(2017, 6, 17).to_epoch() + 12_345;
        for p in Period::ALL {
            let b = p.bucket_of(t);
            assert!(p.bucket_start(b) <= t, "{p:?} start");
            assert!(t < p.bucket_end(b), "{p:?} end");
            // Bucket ids are monotone in time.
            assert!(p.bucket_of(p.bucket_end(b)) == b + 1 || p.bucket_of(p.bucket_end(b)) > b);
        }
    }

    #[test]
    fn quarter_boundaries() {
        assert_eq!(CivilDate::new(2017, 3, 31).quarter(), 1);
        assert_eq!(CivilDate::new(2017, 4, 1).quarter(), 2);
        let q = Period::Quarter.bucket_of(CivilDate::new(2017, 7, 1).to_epoch());
        assert_eq!(Period::Quarter.bucket_label(q), "2017Q3");
    }

    #[test]
    fn negative_epochs_floor_correctly() {
        // 1969-12-31 23:59:59 is the day before the epoch.
        assert_eq!(date_of_epoch(-1), CivilDate::new(1969, 12, 31));
        assert_eq!(Period::Day.bucket_of(-1), -1);
    }

    #[test]
    fn plus_days_wraps_months_and_years() {
        let d = CivilDate::new(2016, 12, 31).plus_days(1);
        assert_eq!(d, CivilDate::new(2017, 1, 1));
        let d = CivilDate::new(2016, 2, 28).plus_days(1);
        assert_eq!(d, CivilDate::new(2016, 2, 29));
    }
}

//! Cold-shard paging: the working-set residency manager.
//!
//! PR 8 made the warehouse durable; this module makes it *larger than
//! RAM*. Each paged table's rows are partitioned into day-bucket pages
//! (the PR 4 shard geometry). A process-wide [`ResidencyManager`]
//! enforces a byte budget over every page's in-memory footprint with a
//! clock / second-chance sweep: cold pages are spilled to CRC-framed
//! per-page files ([`crate::disk::spill`]) and transparently faulted
//! back in when a scan touches them.
//!
//! Residency state machine, per page:
//!
//! ```text
//!             evict (clock hand, unpinned, 2nd chance spent)
//!   Resident ------------------------------------------------> Spilled
//!      ^                                                          |
//!      |        fault-in (scan touches page; frame validates)     |
//!      +----------------------------------------------------------+
//!      ^                                                          |
//!      |   repair_paging (WAL replay)      frame corrupt/missing  v
//!      +---------------------------------------------------------Lost
//! ```
//!
//! `Faulting` is not a stored state: a fault-in happens *under the
//! page's mutex*, so concurrent scanners block on the lock and observe
//! either `Spilled` (and fault in themselves) or `Resident` — never a
//! half-read page.
//!
//! Three invariants carry the correctness argument:
//!
//! 1. **Pins.** A scan pins its page before touching it and the clock
//!    hand skips pinned pages, so an in-flight aggregation can never
//!    have its rows evicted underneath it. Serial scans pin one page at
//!    a time, hence resident bytes are bounded by *budget + one pinned
//!    page* even mid-query.
//! 2. **Spill files are caches.** Every row in a spill file is also in
//!    the write-ahead log (the database appends durably *before*
//!    mutating tables), so a corrupt or vanished spill file degrades the
//!    page to `Lost` and surfaces [`WarehouseError::SpillLost`] — wrong
//!    rows are never served, and
//!    [`crate::database::Database::repair_paging`] rebuilds losslessly.
//! 3. **Insertion never blocks on IO.** Inserts into a spilled page land
//!    in an in-memory *tail* (counted against the budget) and merge with
//!    the spilled body at the next fault-in; sequence numbers keep the
//!    merge order-exact. This keeps [`crate::table::Table::insert_checked`]
//!    infallible, which the WAL ordering contract requires.

use crate::binlog::{encode_payload, EventPayload};
use crate::checksum::crc32;
use crate::disk::spill::{self, SpillMeta};
use crate::error::{Result, WarehouseError};
use crate::schema::TableSchema;
use crate::time::Period;
use crate::value::{ColumnType, Row, Value};
use parking_lot::Mutex;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use xdmod_chaos::FaultInjector;
use xdmod_telemetry::MetricsRegistry;

/// Seed of the order-independent content checksum (shared with the dense
/// path in `table.rs`).
const CHECKSUM_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Folded into a lost page's checksum piece so replication consistency
/// checks report MISMATCH (and resync self-heals) instead of vouching
/// for rows we can no longer read.
const LOST_MARKER: u64 = 0x4C4F_5354_5041_4745; // "LOSTPAGE"

/// Configuration of the paging engine (the `storage.paging` stanza).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PagingConfig {
    /// Working-set budget in bytes. Resident bytes are held at or below
    /// this, except for at most one pinned page per in-flight scan.
    pub budget_bytes: u64,
    /// Pages per table (day buckets are folded onto this many pages).
    pub pages_per_table: u32,
    /// Directory spill files live in (a `spill/` subdirectory is used).
    pub spill_dir: PathBuf,
    /// Whether spill writes fsync before eviction completes.
    pub fsync: bool,
}

impl PagingConfig {
    /// Defaults: 256 MiB budget, 8 pages per table, no fsync.
    pub fn new(spill_dir: impl Into<PathBuf>) -> Self {
        PagingConfig {
            budget_bytes: 256 * 1024 * 1024,
            pages_per_table: 8,
            spill_dir: spill_dir.into(),
            fsync: false,
        }
    }

    /// Set the working-set byte budget.
    pub fn budget_bytes(mut self, bytes: u64) -> Self {
        self.budget_bytes = bytes;
        self
    }

    /// Set the page count per table.
    pub fn pages_per_table(mut self, pages: u32) -> Self {
        self.pages_per_table = pages.max(1);
        self
    }

    /// Set whether spill files are fsynced.
    pub fn fsync(mut self, yes: bool) -> Self {
        self.fsync = yes;
        self
    }

    /// The actual directory spill files are written to.
    pub fn spill_path(&self) -> PathBuf {
        self.spill_dir.join("spill")
    }
}

/// Point-in-time residency counters, surfaced through
/// [`crate::database::Database::residency_stats`] and the hub's
/// `ops_report`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct ResidencyStats {
    /// Configured working-set budget in bytes.
    pub budget_bytes: u64,
    /// Bytes currently resident (page bodies plus spilled-page tails).
    pub resident_bytes: u64,
    /// Pages whose rows are fully in memory.
    pub resident_pages: u64,
    /// Pages whose body lives in a spill file.
    pub spilled_pages: u64,
    /// Pages whose spill file failed validation (rebuild required).
    pub lost_pages: u64,
    /// Lifetime count of pages faulted back in.
    pub fault_ins: u64,
    /// Lifetime count of pages evicted to disk.
    pub evictions: u64,
    /// Lifetime count of spill files written.
    pub spill_writes: u64,
    /// Lifetime count of page pin acquisitions.
    pub pin_events: u64,
}

/// Deterministic approximation of a row's in-memory footprint: the enum
/// cells, string heap bytes, and per-row bookkeeping (sequence tag and
/// vec header). Used for budget accounting, not allocation.
pub fn approx_row_bytes(row: &Row) -> u64 {
    let mut bytes = (std::mem::size_of::<Value>() * row.len() + std::mem::size_of::<Row>()) as u64;
    for v in row {
        if let Value::Str(s) = v {
            bytes += s.len() as u64;
        }
    }
    bytes + 16
}

/// The checksum contribution of one row — the same per-row term the
/// dense `content_checksum` computes, maintained incrementally here so a
/// paged table's checksum never needs to fault anything in.
fn row_piece(row: &Row) -> u64 {
    let payload = EventPayload::InsertBatch {
        schema: String::new(),
        table: String::new(),
        rows: vec![row.clone()],
    };
    let digest = crc32(&encode_payload(&payload)) as u64;
    let spread = digest.wrapping_mul(0x0100_0000_01B3);
    spread ^ digest.rotate_left(17)
}

/// Storage state of one page.
enum PageState {
    /// All rows in memory, tagged with their insertion sequence.
    Resident {
        /// Rows with their global insertion sequence numbers.
        rows: Vec<(u64, Row)>,
        /// Approximate in-memory bytes of `rows`.
        bytes: u64,
        /// Sum of per-row checksum pieces.
        piece: u64,
    },
    /// Body on disk; later inserts staged in the in-memory tail.
    Spilled {
        /// Identity of the spill file holding the body.
        meta: SpillMeta,
        /// Approximate bytes the body will occupy once faulted in.
        bytes: u64,
        /// Checksum pieces of body + tail.
        piece: u64,
        /// Rows inserted since the spill (seqs all above the body's).
        tail: Vec<(u64, Row)>,
        /// Approximate in-memory bytes of the tail.
        tail_bytes: u64,
    },
    /// The spill file failed validation; only the tail survives in
    /// memory. Scans error with [`WarehouseError::SpillLost`] until a
    /// WAL rebuild replaces the store.
    Lost {
        /// Rows lost with the body.
        lost_rows: u64,
        /// Checksum pieces of (unreadable) body + tail.
        piece: u64,
        /// Rows inserted after the loss was discovered.
        tail: Vec<(u64, Row)>,
        /// Approximate in-memory bytes of the tail.
        tail_bytes: u64,
    },
}

/// One page of a paged table: a slot the clock hand sweeps over.
pub struct PageSlot {
    store_id: u64,
    page: u32,
    state: Mutex<PageState>,
    /// Scans in flight over this page; the clock hand skips pinned slots.
    pins: AtomicU32,
    /// Second-chance bit: set on every touch, cleared by the clock hand.
    referenced: AtomicBool,
    /// Spill generation, bumped per write so stale files never validate.
    gen: AtomicU64,
}

impl PageSlot {
    fn in_memory_bytes(state: &PageState) -> u64 {
        match state {
            PageState::Resident { bytes, .. } => *bytes,
            PageState::Spilled { tail_bytes, .. } | PageState::Lost { tail_bytes, .. } => {
                *tail_bytes
            }
        }
    }
}

/// Process-wide working-set accountant: owns the byte budget, the clock
/// ring of page slots, the spill directory, and the paging telemetry.
pub struct ResidencyManager {
    budget: AtomicU64,
    resident: AtomicU64,
    ring: Mutex<ClockRing>,
    dir: PathBuf,
    fsync: bool,
    next_store_id: AtomicU64,
    chaos: Mutex<Option<(FaultInjector, String)>>,
    telemetry: Mutex<MetricsRegistry>,
    fault_ins: AtomicU64,
    evictions: AtomicU64,
    spill_writes: AtomicU64,
    lost: AtomicU64,
    pin_events: AtomicU64,
}

struct ClockRing {
    slots: Vec<Weak<PageSlot>>,
    hand: usize,
}

impl ResidencyManager {
    /// A manager enforcing `config`'s budget over `config.spill_path()`.
    pub fn new(config: &PagingConfig, telemetry: MetricsRegistry) -> Arc<Self> {
        Arc::new(ResidencyManager {
            budget: AtomicU64::new(config.budget_bytes),
            resident: AtomicU64::new(0),
            ring: Mutex::new(ClockRing {
                slots: Vec::new(),
                hand: 0,
            }),
            dir: config.spill_path(),
            fsync: config.fsync,
            next_store_id: AtomicU64::new(1),
            chaos: Mutex::new(None),
            telemetry: Mutex::new(telemetry),
            fault_ins: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            spill_writes: AtomicU64::new(0),
            lost: AtomicU64::new(0),
            pin_events: AtomicU64::new(0),
        })
    }

    /// Replace the working-set budget and immediately enforce it.
    pub fn set_budget(&self, bytes: u64) {
        self.budget.store(bytes, Ordering::SeqCst);
        self.enforce();
    }

    /// The configured budget in bytes.
    pub fn budget(&self) -> u64 {
        self.budget.load(Ordering::SeqCst)
    }

    /// Bytes currently resident across every paged store.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::SeqCst)
    }

    /// Route spill-file chaos through this injector (the database's
    /// fault injector forwards here).
    pub fn set_chaos(&self, injector: FaultInjector, target: String) {
        *self.chaos.lock() = Some((injector, target));
    }

    /// Stop injecting spill faults.
    pub fn clear_chaos(&self) {
        *self.chaos.lock() = None;
    }

    /// Swap the telemetry registry paging metrics are recorded to.
    pub fn set_telemetry(&self, telemetry: MetricsRegistry) {
        *self.telemetry.lock() = telemetry;
    }

    fn chaos_pair(&self) -> Option<(FaultInjector, String)> {
        self.chaos.lock().clone()
    }

    fn telemetry_clone(&self) -> MetricsRegistry {
        self.telemetry.lock().clone()
    }

    fn note_resident_add(&self, bytes: u64) {
        self.resident.fetch_add(bytes, Ordering::SeqCst);
        self.publish_gauge();
    }

    fn note_resident_sub(&self, bytes: u64) {
        // Saturating: accounting drift must never wrap the gauge.
        let mut cur = self.resident.load(Ordering::SeqCst);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .resident
                .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        self.publish_gauge();
    }

    fn publish_gauge(&self) {
        let reg = self.telemetry_clone();
        if reg.is_enabled() {
            reg.gauge("warehouse_resident_bytes", &[])
                .set(self.resident.load(Ordering::SeqCst) as f64);
        }
    }

    fn register_slot(&self, slot: &Arc<PageSlot>) {
        let mut ring = self.ring.lock();
        ring.slots.push(Arc::downgrade(slot));
    }

    /// Point-in-time residency counters. Walks every live slot; pages
    /// mid-scan are counted from whichever state the walk observes.
    pub fn stats(&self) -> ResidencyStats {
        let slots: Vec<Arc<PageSlot>> = {
            let mut ring = self.ring.lock();
            ring.slots.retain(|w| w.strong_count() > 0);
            ring.hand = if ring.slots.is_empty() {
                0
            } else {
                ring.hand % ring.slots.len()
            };
            ring.slots.iter().filter_map(Weak::upgrade).collect()
        };
        let mut stats = ResidencyStats {
            budget_bytes: self.budget(),
            resident_bytes: self.resident_bytes(),
            fault_ins: self.fault_ins.load(Ordering::SeqCst),
            evictions: self.evictions.load(Ordering::SeqCst),
            spill_writes: self.spill_writes.load(Ordering::SeqCst),
            pin_events: self.pin_events.load(Ordering::SeqCst),
            ..ResidencyStats::default()
        };
        for slot in slots {
            match &*slot.state.lock() {
                PageState::Resident { .. } => stats.resident_pages += 1,
                PageState::Spilled { .. } => stats.spilled_pages += 1,
                PageState::Lost { .. } => stats.lost_pages += 1,
            }
        }
        stats
    }

    /// Clock / second-chance eviction: spill cold pages until resident
    /// bytes fit the budget or a full sweep finds only pinned, locked,
    /// referenced, or already-cold pages. The latter terminates scans
    /// with at most one pinned page over budget.
    pub fn enforce(&self) {
        let mut fruitless = 0usize;
        loop {
            if self.resident_bytes() <= self.budget() {
                return;
            }
            let (slot, ring_len) = {
                let mut ring = self.ring.lock();
                ring.slots.retain(|w| w.strong_count() > 0);
                let len = ring.slots.len();
                if len == 0 {
                    return;
                }
                ring.hand %= len;
                let slot = ring.slots[ring.hand].upgrade();
                ring.hand = (ring.hand + 1) % len;
                (slot, len)
            };
            // Two revolutions with no eviction: every page kept its second
            // chance or is pinned/locked/cold — nothing more to free.
            if fruitless > ring_len * 2 {
                return;
            }
            let Some(slot) = slot else {
                fruitless += 1;
                continue;
            };
            if slot.pins.load(Ordering::SeqCst) > 0 {
                fruitless += 1;
                continue;
            }
            if slot.referenced.swap(false, Ordering::SeqCst) {
                fruitless += 1;
                continue;
            }
            let Some(mut state) = slot.state.try_lock() else {
                fruitless += 1;
                continue;
            };
            let chaos = self.chaos_pair();
            let evicted = match &mut *state {
                PageState::Resident { rows, bytes, piece } if !rows.is_empty() => {
                    let gen = slot.gen.fetch_add(1, Ordering::SeqCst) + 1;
                    match spill::write_page(
                        &self.dir,
                        self.fsync,
                        chaos.as_ref(),
                        slot.store_id,
                        slot.page,
                        gen,
                        rows,
                    ) {
                        Ok(meta) => {
                            let freed = *bytes;
                            let piece = *piece;
                            *state = PageState::Spilled {
                                meta,
                                bytes: freed,
                                piece,
                                tail: Vec::new(),
                                tail_bytes: 0,
                            };
                            Some(freed)
                        }
                        // Loud spill failure (e.g. injected transient):
                        // the page stays resident; try other victims.
                        Err(_) => None,
                    }
                }
                // A spilled page whose tail accumulated staged inserts:
                // merge body + tail into a fresh spill file so the staged
                // bytes stop counting against the budget. Tail sequence
                // numbers always exceed the body's, so concatenation
                // preserves insertion order.
                PageState::Spilled {
                    meta,
                    bytes,
                    piece,
                    tail,
                    tail_bytes,
                } if !tail.is_empty() => {
                    // The table name only labels the (discarded) error.
                    match spill::read_page(meta, "", chaos.as_ref()) {
                        Ok(mut merged) => {
                            merged.extend(tail.iter().cloned());
                            let gen = slot.gen.fetch_add(1, Ordering::SeqCst) + 1;
                            match spill::write_page(
                                &self.dir,
                                self.fsync,
                                chaos.as_ref(),
                                slot.store_id,
                                slot.page,
                                gen,
                                &merged,
                            ) {
                                Ok(new_meta) => {
                                    let old = meta.clone();
                                    let freed = *tail_bytes;
                                    *state = PageState::Spilled {
                                        meta: new_meta,
                                        bytes: bytes.saturating_add(freed),
                                        piece: *piece,
                                        tail: Vec::new(),
                                        tail_bytes: 0,
                                    };
                                    spill::remove(&old);
                                    Some(freed)
                                }
                                Err(_) => None,
                            }
                        }
                        // Unreadable body (fault injection or damage):
                        // the tail can't be merged without losing rows;
                        // the scan path will settle the page's fate.
                        Err(_) => None,
                    }
                }
                _ => None,
            };
            drop(state);
            match evicted {
                Some(freed) => {
                    self.note_resident_sub(freed);
                    self.evictions.fetch_add(1, Ordering::SeqCst);
                    self.spill_writes.fetch_add(1, Ordering::SeqCst);
                    let reg = self.telemetry_clone();
                    if reg.is_enabled() {
                        reg.counter("warehouse_page_evictions_total", &[]).inc();
                        reg.counter("warehouse_page_spill_writes_total", &[]).inc();
                    }
                    fruitless = 0;
                }
                None => {
                    fruitless += 1;
                }
            }
        }
    }
}

/// Paged row storage for one table: a fixed vector of page slots routed
/// by day bucket, sharing a [`ResidencyManager`].
pub struct PagedStore {
    table: String,
    store_id: u64,
    time_idx: Option<usize>,
    page_count: u32,
    slots: Vec<Arc<PageSlot>>,
    next_seq: AtomicU64,
    total_rows: AtomicU64,
    manager: Arc<ResidencyManager>,
}

impl std::fmt::Debug for PagedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedStore")
            .field("table", &self.table)
            .field("store_id", &self.store_id)
            .field("pages", &self.page_count)
            .field("rows", &self.total_rows.load(Ordering::SeqCst))
            .finish()
    }
}

impl PagedStore {
    /// An empty paged store for `schema`, with `pages` slots. Routing
    /// uses the schema's first `Time` column (day buckets); tables
    /// without one stripe rows round-robin by insertion sequence.
    pub fn new(manager: Arc<ResidencyManager>, schema: &TableSchema, pages: u32) -> Arc<Self> {
        let page_count = pages.max(1);
        let store_id = manager.next_store_id.fetch_add(1, Ordering::SeqCst);
        let time_idx = schema.columns.iter().position(|c| c.ty == ColumnType::Time);
        let slots: Vec<Arc<PageSlot>> = (0..page_count)
            .map(|page| {
                Arc::new(PageSlot {
                    store_id,
                    page,
                    state: Mutex::new(PageState::Resident {
                        rows: Vec::new(),
                        bytes: 0,
                        piece: 0,
                    }),
                    pins: AtomicU32::new(0),
                    referenced: AtomicBool::new(false),
                    gen: AtomicU64::new(0),
                })
            })
            .collect();
        for slot in &slots {
            manager.register_slot(slot);
        }
        Arc::new(PagedStore {
            table: schema.name.clone(),
            store_id,
            time_idx,
            page_count,
            slots,
            next_seq: AtomicU64::new(0),
            total_rows: AtomicU64::new(0),
            manager,
        })
    }

    /// Convert existing dense rows into a paged store (in-memory only;
    /// the manager's next `enforce` spills whatever exceeds the budget).
    pub fn from_rows(
        manager: Arc<ResidencyManager>,
        schema: &TableSchema,
        rows: Vec<Row>,
        pages: u32,
    ) -> Arc<Self> {
        let store = PagedStore::new(manager, schema, pages);
        store.insert(rows);
        store
    }

    /// The table this store backs.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The shared residency manager.
    pub fn manager(&self) -> &Arc<ResidencyManager> {
        &self.manager
    }

    /// Number of pages.
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// Total rows across all pages (resident, spilled, and lost alike).
    pub fn len(&self) -> usize {
        self.total_rows.load(Ordering::SeqCst) as usize
    }

    /// True if the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn page_of(&self, row: &Row, seq: u64) -> usize {
        match self.time_idx {
            // Mirrors `parallel::shard_of`: same-day rows share a page,
            // NULL times collect on page 0.
            Some(idx) => match row.get(idx).and_then(Value::as_i64) {
                Some(t) => Period::Day
                    .bucket_of(t)
                    .rem_euclid(i64::from(self.page_count)) as usize,
                None => 0,
            },
            None => (seq % u64::from(self.page_count)) as usize,
        }
    }

    /// Append already-validated rows. Infallible by design: rows landing
    /// on a spilled or lost page are staged in its in-memory tail, so
    /// the WAL ordering contract (durable append, then mutation that
    /// cannot fail) holds for paged tables too.
    pub fn insert(&self, rows: Vec<Row>) {
        if rows.is_empty() {
            return;
        }
        let mut added = 0u64;
        for row in rows {
            let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
            let page = self.page_of(&row, seq);
            let piece_add = row_piece(&row);
            let row_bytes = approx_row_bytes(&row);
            let slot = &self.slots[page];
            slot.referenced.store(true, Ordering::SeqCst);
            let mut state = slot.state.lock();
            match &mut *state {
                PageState::Resident { rows, bytes, piece } => {
                    rows.push((seq, row));
                    *bytes += row_bytes;
                    *piece = piece.wrapping_add(piece_add);
                }
                PageState::Spilled {
                    tail,
                    tail_bytes,
                    piece,
                    ..
                }
                | PageState::Lost {
                    tail,
                    tail_bytes,
                    piece,
                    ..
                } => {
                    tail.push((seq, row));
                    *tail_bytes += row_bytes;
                    *piece = piece.wrapping_add(piece_add);
                }
            }
            drop(state);
            added += row_bytes;
            self.total_rows.fetch_add(1, Ordering::SeqCst);
        }
        self.manager.note_resident_add(added);
        self.manager.enforce();
    }

    /// Drop all rows, delete this store's spill files, and reset the
    /// sequence counter. Used by `truncate` and by replication resync,
    /// which rewrites tables wholesale — stale spill files must never
    /// survive a rewrite.
    pub fn truncate(&self) {
        let mut freed = 0u64;
        for slot in &self.slots {
            let mut state = slot.state.lock();
            freed += PageSlot::in_memory_bytes(&state);
            if let PageState::Spilled { meta, .. } = &*state {
                spill::remove(meta);
            }
            *state = PageState::Resident {
                rows: Vec::new(),
                bytes: 0,
                piece: 0,
            };
        }
        self.next_seq.store(0, Ordering::SeqCst);
        self.total_rows.store(0, Ordering::SeqCst);
        self.manager.note_resident_sub(freed);
    }

    /// Order-independent content checksum, identical to the dense
    /// algorithm for the same rows. Pure arithmetic over incrementally
    /// maintained per-page pieces — spilled pages are *not* faulted in.
    /// Lost pages fold [`LOST_MARKER`] so the checksum visibly diverges
    /// and replication consistency checks trigger a healing resync.
    pub fn content_checksum(&self) -> u64 {
        let mut acc = CHECKSUM_SEED ^ self.total_rows.load(Ordering::SeqCst);
        for slot in &self.slots {
            let state = slot.state.lock();
            let piece = match &*state {
                PageState::Resident { piece, .. } | PageState::Spilled { piece, .. } => *piece,
                PageState::Lost { piece, .. } => *piece ^ LOST_MARKER,
            };
            acc = acc.wrapping_add(piece);
        }
        acc
    }

    /// True if any page is `Lost` (a WAL rebuild is needed).
    pub fn has_lost_pages(&self) -> bool {
        self.slots
            .iter()
            .any(|s| matches!(&*s.state.lock(), PageState::Lost { .. }))
    }

    /// Fault the page in if needed and return its rows. Caller holds the
    /// slot's state lock. On success the page is `Resident`.
    fn ensure_resident(&self, slot: &Arc<PageSlot>, state: &mut PageState) -> Result<()> {
        match state {
            PageState::Resident { .. } => Ok(()),
            PageState::Lost { .. } => Err(WarehouseError::SpillLost {
                table: self.table.clone(),
                page: slot.page,
            }),
            PageState::Spilled {
                meta,
                bytes,
                piece,
                tail,
                tail_bytes,
            } => {
                let chaos = self.manager.chaos_pair();
                let reg = self.manager.telemetry_clone();
                let span = reg.span(
                    "warehouse_page_faultin_seconds",
                    &[("table", self.table.as_str())],
                );
                match spill::read_page(meta, &self.table, chaos.as_ref()) {
                    Ok(mut rows) => {
                        span.finish();
                        spill::remove(meta);
                        // Tail seqs all postdate the spilled body's, so
                        // appending preserves global sequence order.
                        rows.append(tail);
                        let body_bytes = *bytes;
                        let total_bytes = body_bytes + *tail_bytes;
                        *state = PageState::Resident {
                            rows,
                            bytes: total_bytes,
                            piece: *piece,
                        };
                        self.manager.note_resident_add(body_bytes);
                        self.manager.fault_ins.fetch_add(1, Ordering::SeqCst);
                        if reg.is_enabled() {
                            reg.counter("warehouse_page_faultins_total", &[]).inc();
                        }
                        Ok(())
                    }
                    Err(WarehouseError::SpillLost { table, page }) => {
                        span.finish();
                        let lost_rows = meta.rows;
                        let piece = *piece;
                        let tail = std::mem::take(tail);
                        let tail_bytes = *tail_bytes;
                        spill::remove(meta);
                        *state = PageState::Lost {
                            lost_rows,
                            piece,
                            tail,
                            tail_bytes,
                        };
                        self.manager.lost.fetch_add(1, Ordering::SeqCst);
                        if reg.is_enabled() {
                            reg.counter("warehouse_page_spill_lost_total", &[]).inc();
                        }
                        Err(WarehouseError::SpillLost { table, page })
                    }
                    // Loud transient failure: the page stays Spilled and
                    // the file intact — a retry can fault it in.
                    Err(e) => {
                        span.finish();
                        Err(e)
                    }
                }
            }
        }
    }

    /// Scan pages in page order, faulting each in on demand and calling
    /// `f` with its `(sequence, row)` pairs. The page is pinned and its
    /// lock held for the duration of its callback, so eviction can never
    /// pull rows out from under the fold; the budget is re-enforced
    /// after each page, so a full scan keeps at most *budget + one
    /// pinned page* resident.
    pub fn scan_pages(&self, f: &mut dyn FnMut(&[(u64, Row)]) -> Result<()>) -> Result<()> {
        for slot in &self.slots {
            slot.pins.fetch_add(1, Ordering::SeqCst);
            self.manager.pin_events.fetch_add(1, Ordering::SeqCst);
            slot.referenced.store(true, Ordering::SeqCst);
            let reg = self.manager.telemetry_clone();
            if reg.is_enabled() {
                reg.counter("warehouse_page_pins_total", &[]).inc();
            }
            let result = (|| {
                let mut state = slot.state.lock();
                self.ensure_resident(slot, &mut state)?;
                match &*state {
                    PageState::Resident { rows, .. } => f(rows),
                    // ensure_resident returned Ok, so the page is Resident.
                    _ => Err(WarehouseError::SpillLost {
                        table: self.table.clone(),
                        page: slot.page,
                    }),
                }
            })();
            slot.pins.fetch_sub(1, Ordering::SeqCst);
            result?;
            self.manager.enforce();
        }
        Ok(())
    }

    /// Materialize every row in insertion order (the unbounded path used
    /// by snapshots, replication dumps, and whole-table reads). Faults
    /// in all pages; resident bytes may exceed the budget for the
    /// duration of the returned vector's life.
    pub fn materialize(&self) -> Result<Vec<Row>> {
        let mut tagged: Vec<(u64, Row)> = Vec::with_capacity(self.len());
        self.scan_pages(&mut |rows| {
            tagged.extend_from_slice(rows);
            Ok(())
        })?;
        tagged.sort_unstable_by_key(|(seq, _)| *seq);
        Ok(tagged.into_iter().map(|(_, row)| row).collect())
    }
}

impl Drop for PagedStore {
    fn drop(&mut self) {
        // Spill files are caches keyed by a store id that is never
        // reused; delete them so a dropped table (restore, resync,
        // shutdown) leaves nothing stale behind.
        let mut freed = 0u64;
        for slot in &self.slots {
            let state = slot.state.lock();
            freed += PageSlot::in_memory_bytes(&state);
            if let PageState::Spilled { meta, .. } = &*state {
                spill::remove(meta);
            }
        }
        self.manager.note_resident_sub(freed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use std::sync::atomic::AtomicUsize;

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn temp_cfg(tag: &str) -> PagingConfig {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("xdmod-resident-{}-{tag}-{n}", std::process::id()));
        PagingConfig::new(dir)
    }

    fn schema() -> TableSchema {
        SchemaBuilder::new("jobfact")
            .required("resource", ColumnType::Str)
            .required("end_time", ColumnType::Time)
            .required("cpu_hours", ColumnType::Float)
            .build()
            .unwrap()
    }

    fn row(res: &str, day: i64, hours: f64) -> Row {
        vec![
            Value::Str(res.into()),
            Value::Time(day * 86_400 + 3600),
            Value::Float(hours),
        ]
    }

    fn sample_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| row(&format!("res-{}", i % 3), i as i64 % 11, i as f64 / 4.0))
            .collect()
    }

    fn cleanup(cfg: &PagingConfig) {
        let _ = std::fs::remove_dir_all(&cfg.spill_dir);
    }

    #[test]
    fn insert_scan_materialize_round_trip() {
        let cfg = temp_cfg("roundtrip");
        let mgr = ResidencyManager::new(&cfg, MetricsRegistry::disabled());
        let rows = sample_rows(40);
        let store = PagedStore::from_rows(mgr, &schema(), rows.clone(), 4);
        assert_eq!(store.len(), 40);
        assert_eq!(store.materialize().unwrap(), rows);
        cleanup(&cfg);
    }

    #[test]
    fn eviction_bounds_resident_bytes_and_fault_in_restores() {
        let cfg = temp_cfg("evict").budget_bytes(1);
        let mgr = ResidencyManager::new(&cfg, MetricsRegistry::disabled());
        let rows = sample_rows(60);
        let store = PagedStore::from_rows(mgr.clone(), &schema(), rows.clone(), 6);
        // A 1-byte budget forces everything out.
        assert_eq!(mgr.resident_bytes(), 0, "all pages should spill");
        let stats = mgr.stats();
        assert_eq!(stats.resident_pages + stats.spilled_pages, 6);
        assert!(stats.spilled_pages >= 5);
        assert!(stats.evictions >= stats.spilled_pages);
        // Rows come back intact, in insertion order.
        assert_eq!(store.materialize().unwrap(), rows);
        assert!(mgr.stats().fault_ins >= 5);
        cleanup(&cfg);
    }

    #[test]
    fn checksum_matches_dense_twin_through_spill_cycles() {
        let cfg = temp_cfg("checksum").budget_bytes(1);
        let mgr = ResidencyManager::new(&cfg, MetricsRegistry::disabled());
        let rows = sample_rows(30);
        let mut dense = crate::table::Table::new(schema());
        dense.insert_checked(rows.clone());
        let store = PagedStore::from_rows(mgr, &schema(), rows, 3);
        assert_eq!(store.content_checksum(), dense.content_checksum());
        // Faulting in and re-spilling must not disturb the checksum.
        store.materialize().unwrap();
        assert_eq!(store.content_checksum(), dense.content_checksum());
        cleanup(&cfg);
    }

    #[test]
    fn inserts_into_spilled_pages_stage_in_tail_and_merge_in_order() {
        let cfg = temp_cfg("tail").budget_bytes(1);
        let mgr = ResidencyManager::new(&cfg, MetricsRegistry::disabled());
        let first = sample_rows(20);
        let store = PagedStore::from_rows(mgr.clone(), &schema(), first.clone(), 4);
        assert!(mgr.stats().spilled_pages > 0);
        // These land in spilled pages' tails without any fault-in.
        let fault_ins_before = mgr.stats().fault_ins;
        let second = sample_rows(10);
        store.insert(second.clone());
        assert_eq!(mgr.stats().fault_ins, fault_ins_before);
        let mut expect = first;
        expect.extend(second);
        assert_eq!(store.materialize().unwrap(), expect);
        cleanup(&cfg);
    }

    #[test]
    fn staged_tails_are_merge_evicted_to_keep_the_budget() {
        let cfg = temp_cfg("tailmerge").budget_bytes(1);
        let mgr = ResidencyManager::new(&cfg, MetricsRegistry::disabled());
        let mut expect = sample_rows(12);
        let store = PagedStore::from_rows(mgr.clone(), &schema(), expect.clone(), 3);
        assert!(mgr.stats().spilled_pages > 0);
        // Repeated inserts land in spilled pages' tails; enforce must
        // merge the staged rows into fresh spill files so tail bytes
        // never accumulate past the budget.
        for _ in 0..5 {
            let batch = sample_rows(8);
            store.insert(batch.clone());
            expect.extend(batch);
            assert_eq!(
                mgr.resident_bytes(),
                0,
                "staged tails must be merge-evicted back under the budget"
            );
        }
        assert_eq!(store.len(), expect.len() as u64);
        assert_eq!(store.materialize().unwrap(), expect);
        // The dense twin still agrees through all the merge cycles.
        let mut dense = crate::table::Table::new(schema());
        dense.insert_batch(expect).unwrap();
        assert_eq!(store.content_checksum(), dense.content_checksum());
        cleanup(&cfg);
    }

    #[test]
    fn truncate_resets_rows_checksum_and_spill_files() {
        let cfg = temp_cfg("truncate").budget_bytes(1);
        let mgr = ResidencyManager::new(&cfg, MetricsRegistry::disabled());
        let store = PagedStore::from_rows(mgr.clone(), &schema(), sample_rows(25), 5);
        store.truncate();
        assert_eq!(store.len(), 0);
        assert_eq!(mgr.resident_bytes(), 0);
        assert_eq!(
            store.content_checksum(),
            crate::table::Table::new(schema()).content_checksum()
        );
        assert!(store.materialize().unwrap().is_empty());
        // No spill files left behind.
        let leftover = std::fs::read_dir(cfg.spill_path())
            .map(|d| d.count())
            .unwrap_or(0);
        assert_eq!(leftover, 0);
        cleanup(&cfg);
    }

    #[test]
    fn drop_removes_spill_files_and_releases_budget() {
        let cfg = temp_cfg("drop").budget_bytes(1);
        let mgr = ResidencyManager::new(&cfg, MetricsRegistry::disabled());
        let store = PagedStore::from_rows(mgr.clone(), &schema(), sample_rows(25), 5);
        assert!(mgr.stats().spilled_pages > 0);
        drop(store);
        assert_eq!(mgr.resident_bytes(), 0);
        let leftover = std::fs::read_dir(cfg.spill_path())
            .map(|d| d.count())
            .unwrap_or(0);
        assert_eq!(leftover, 0);
        cleanup(&cfg);
    }

    #[test]
    fn raising_the_budget_stops_eviction() {
        let cfg = temp_cfg("budget").budget_bytes(1 << 30);
        let mgr = ResidencyManager::new(&cfg, MetricsRegistry::disabled());
        let store = PagedStore::from_rows(mgr.clone(), &schema(), sample_rows(40), 4);
        assert_eq!(mgr.stats().spilled_pages, 0);
        // Shrink: pages spill. Re-raise: they stay spilled until touched.
        mgr.set_budget(1);
        assert!(mgr.stats().spilled_pages > 0);
        mgr.set_budget(1 << 30);
        store.materialize().unwrap();
        assert_eq!(mgr.stats().spilled_pages, 0);
        cleanup(&cfg);
    }

    #[test]
    fn corrupt_spill_file_is_lost_not_wrong() {
        let cfg = temp_cfg("lost").budget_bytes(1);
        let mgr = ResidencyManager::new(&cfg, MetricsRegistry::disabled());
        let store = PagedStore::from_rows(mgr.clone(), &schema(), sample_rows(20), 2);
        assert!(mgr.stats().spilled_pages > 0);
        // Damage every spill file on disk.
        for entry in std::fs::read_dir(cfg.spill_path()).unwrap() {
            let path = entry.unwrap().path();
            let mut data = std::fs::read(&path).unwrap();
            let mid = data.len() / 2;
            data[mid] ^= 0xFF;
            std::fs::write(&path, &data).unwrap();
        }
        let err = store.materialize().unwrap_err();
        assert!(matches!(err, WarehouseError::SpillLost { .. }), "{err}");
        assert!(store.has_lost_pages());
        assert!(mgr.stats().lost_pages > 0);
        // The checksum diverges from the healthy twin, so replication
        // consistency checks see MISMATCH and resync heals the table.
        let mut dense = crate::table::Table::new(schema());
        dense.insert_checked(sample_rows(20));
        assert_ne!(store.content_checksum(), dense.content_checksum());
        cleanup(&cfg);
    }

    #[test]
    fn no_time_column_stripes_by_sequence() {
        let cfg = temp_cfg("notime");
        let mgr = ResidencyManager::new(&cfg, MetricsRegistry::disabled());
        let schema = SchemaBuilder::new("dim")
            .required("name", ColumnType::Str)
            .build()
            .unwrap();
        let rows: Vec<Row> = (0..10).map(|i| vec![Value::Str(format!("n{i}"))]).collect();
        let store = PagedStore::from_rows(mgr, &schema, rows.clone(), 3);
        assert_eq!(store.materialize().unwrap(), rows);
        cleanup(&cfg);
    }
}

//! Table schemas and column definitions.

use crate::error::{Result, WarehouseError};
use crate::value::{ColumnType, Row, Value};
use serde::{Deserialize, Serialize};

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (unique within the table, case-sensitive).
    pub name: String,
    /// Static type of the column.
    pub ty: ColumnType,
    /// Whether `Null` values are accepted.
    pub nullable: bool,
}

impl ColumnDef {
    /// A non-nullable column.
    pub fn required(name: &str, ty: ColumnType) -> Self {
        ColumnDef {
            name: name.to_owned(),
            ty,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: &str, ty: ColumnType) -> Self {
        ColumnDef {
            name: name.to_owned(),
            ty,
            nullable: true,
        }
    }
}

/// Schema of a table: an ordered list of column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name (unique within its schema/namespace).
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Build a schema, validating that column names are unique.
    pub fn new(name: &str, columns: Vec<ColumnDef>) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(WarehouseError::SchemaMismatch(format!(
                    "duplicate column {} in table {}",
                    c.name, name
                )));
            }
        }
        Ok(TableSchema {
            name: name.to_owned(),
            columns,
        })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn column_index(&self, column: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == column)
            .ok_or_else(|| WarehouseError::UnknownColumn {
                table: self.name.clone(),
                column: column.to_owned(),
            })
    }

    /// The definition of a column by name.
    pub fn column(&self, column: &str) -> Result<&ColumnDef> {
        self.column_index(column).map(|i| &self.columns[i])
    }

    /// Validate a row against this schema and coerce its values into
    /// canonical column types (e.g. `Int` literals into `Float` columns).
    pub fn check_row(&self, row: Row) -> Result<Row> {
        if row.len() != self.arity() {
            return Err(WarehouseError::SchemaMismatch(format!(
                "table {} expects {} columns, row has {}",
                self.name,
                self.arity(),
                row.len()
            )));
        }
        let mut out = Vec::with_capacity(row.len());
        for (value, col) in row.into_iter().zip(&self.columns) {
            if value.is_null() && !col.nullable {
                return Err(WarehouseError::SchemaMismatch(format!(
                    "column {}.{} is not nullable",
                    self.name, col.name
                )));
            }
            match value.coerce(col.ty) {
                Some(v) => out.push(v),
                None => {
                    return Err(WarehouseError::SchemaMismatch(format!(
                        "column {}.{} expects {}, got incompatible value",
                        self.name, col.name, col.ty
                    )))
                }
            }
        }
        Ok(out)
    }
}

/// Convenience builder for fact-table schemas.
///
/// ```
/// use xdmod_warehouse::schema::SchemaBuilder;
/// use xdmod_warehouse::value::ColumnType;
///
/// let schema = SchemaBuilder::new("jobfact")
///     .required("resource", ColumnType::Str)
///     .required("end_time", ColumnType::Time)
///     .nullable("gpu_count", ColumnType::Int)
///     .build()
///     .unwrap();
/// assert_eq!(schema.arity(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    name: String,
    columns: Vec<ColumnDef>,
}

impl SchemaBuilder {
    /// Start a schema for table `name`.
    pub fn new(name: &str) -> Self {
        SchemaBuilder {
            name: name.to_owned(),
            columns: Vec::new(),
        }
    }

    /// Append a non-nullable column.
    pub fn required(mut self, name: &str, ty: ColumnType) -> Self {
        self.columns.push(ColumnDef::required(name, ty));
        self
    }

    /// Append a nullable column.
    pub fn nullable(mut self, name: &str, ty: ColumnType) -> Self {
        self.columns.push(ColumnDef::nullable(name, ty));
        self
    }

    /// Finish, validating uniqueness of column names.
    pub fn build(self) -> Result<TableSchema> {
        TableSchema::new(&self.name, self.columns)
    }
}

/// Helper to assemble rows against a schema by column name, so call sites
/// don't depend on column order.
#[derive(Debug)]
pub struct RowBuilder<'a> {
    schema: &'a TableSchema,
    values: Vec<Value>,
}

impl<'a> RowBuilder<'a> {
    /// Start a row for `schema`, pre-filled with `Null`s.
    pub fn new(schema: &'a TableSchema) -> Self {
        RowBuilder {
            schema,
            values: vec![Value::Null; schema.arity()],
        }
    }

    /// Set a column by name.
    pub fn set(mut self, column: &str, value: impl Into<Value>) -> Result<Self> {
        let idx = self.schema.column_index(column)?;
        self.values[idx] = value.into();
        Ok(self)
    }

    /// Finish, validating the row against the schema.
    pub fn build(self) -> Result<Row> {
        self.schema.check_row(self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        SchemaBuilder::new("jobfact")
            .required("resource", ColumnType::Str)
            .required("cpu_hours", ColumnType::Float)
            .required("end_time", ColumnType::Time)
            .nullable("queue", ColumnType::Str)
            .build()
            .unwrap()
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = SchemaBuilder::new("t")
            .required("a", ColumnType::Int)
            .required("a", ColumnType::Int)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate column a"));
    }

    #[test]
    fn column_lookup() {
        let s = schema();
        assert_eq!(s.column_index("cpu_hours").unwrap(), 1);
        assert!(matches!(
            s.column_index("nope"),
            Err(WarehouseError::UnknownColumn { .. })
        ));
        assert!(s.column("queue").unwrap().nullable);
    }

    #[test]
    fn check_row_validates_arity() {
        let s = schema();
        let err = s.check_row(vec![Value::Str("comet".into())]).unwrap_err();
        assert!(err.to_string().contains("expects 4 columns"));
    }

    #[test]
    fn check_row_validates_nullability() {
        let s = schema();
        let err = s
            .check_row(vec![
                Value::Null,
                Value::Float(1.0),
                Value::Time(0),
                Value::Null,
            ])
            .unwrap_err();
        assert!(err.to_string().contains("not nullable"));
    }

    #[test]
    fn check_row_coerces_ints() {
        let s = schema();
        let row = s
            .check_row(vec![
                Value::Str("comet".into()),
                Value::Int(10),
                Value::Int(1_483_228_800),
                Value::Null,
            ])
            .unwrap();
        assert_eq!(row[1], Value::Float(10.0));
        assert_eq!(row[2], Value::Time(1_483_228_800));
    }

    #[test]
    fn check_row_rejects_type_mismatch() {
        let s = schema();
        let err = s
            .check_row(vec![
                Value::Int(1),
                Value::Float(1.0),
                Value::Time(0),
                Value::Null,
            ])
            .unwrap_err();
        assert!(err.to_string().contains("resource"));
    }

    #[test]
    fn row_builder_by_name() {
        let s = schema();
        let row = RowBuilder::new(&s)
            .set("end_time", Value::Time(7))
            .unwrap()
            .set("resource", "stampede2")
            .unwrap()
            .set("cpu_hours", 3.5)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(row[0], Value::Str("stampede2".into()));
        assert_eq!(row[3], Value::Null);
    }

    #[test]
    fn row_builder_unknown_column_errors() {
        let s = schema();
        assert!(RowBuilder::new(&s).set("bogus", 1i64).is_err());
    }
}

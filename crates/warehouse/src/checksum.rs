//! CRC-32 checksums (from scratch) for binlog framing and table
//! consistency verification.
//!
//! Replication in the paper is trusted to copy satellite data to the hub
//! byte-for-byte ("the federation hub does not alter the raw, replicated
//! data"). We verify that property with table checksums, and protect
//! binlog records in transit with per-record CRCs, just as MySQL binlogs
//! carry `BINLOG_CHECKSUM_ALG_CRC32`.

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

/// Lazily-built lookup table for the reflected polynomial.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        t
    })
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ t[idx];
        }
    }

    /// Final digest.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"federated xdmod replication stream";
        let mut c = Crc32::new();
        for chunk in data.chunks(5) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn sensitivity_to_single_bit() {
        let a = crc32(b"jobfact row 0001");
        let b = crc32(b"jobfact row 0000");
        assert_ne!(a, b);
    }
}

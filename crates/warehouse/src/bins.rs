//! Generic numeric binning.
//!
//! XDMoD "pre-bins raw dimension data" into configurable **aggregation
//! levels** (§II-C3, Table I): job wall time, job size, CPU user value,
//! peak memory, VM memory size, and so on are all grouped through bins
//! like `1-60 seconds` or `4-8 GB`. This module provides the neutral bin
//! machinery; `xdmod-realms` layers the JSON-configured aggregation-level
//! catalogs on top of it.

use serde::{Deserialize, Serialize};

/// A half-open bin `[lo, hi)` with a display label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bin {
    /// Human-readable label, e.g. `"1-5 hours"`.
    pub label: String,
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge.
    pub hi: f64,
}

impl Bin {
    /// Construct a bin; panics if `lo >= hi` (programmer/config error is
    /// surfaced by [`Bins::new`] instead when loading configs).
    pub fn new(label: &str, lo: f64, hi: f64) -> Self {
        Bin {
            label: label.to_owned(),
            lo,
            hi,
        }
    }

    /// Whether `v` falls inside `[lo, hi)`.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v < self.hi
    }
}

/// Label assigned to values that fall outside every configured bin.
pub const OTHER_BIN_LABEL: &str = "other";

/// An ordered, non-overlapping set of bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bins {
    bins: Vec<Bin>,
}

impl Bins {
    /// Build a bin set. Bins are sorted by lower edge; returns an error
    /// string if any bin is empty (`lo >= hi`) or any two bins overlap.
    pub fn new(mut bins: Vec<Bin>) -> Result<Self, String> {
        bins.sort_by(|a, b| a.lo.total_cmp(&b.lo));
        for b in &bins {
            if b.lo >= b.hi {
                return Err(format!("bin '{}' is empty: [{}, {})", b.label, b.lo, b.hi));
            }
        }
        for pair in bins.windows(2) {
            if pair[1].lo < pair[0].hi {
                return Err(format!(
                    "bins '{}' and '{}' overlap",
                    pair[0].label, pair[1].label
                ));
            }
        }
        Ok(Bins { bins })
    }

    /// The bins in ascending order.
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// Number of bins (excluding the implicit `other`).
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True if no bins are configured.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Index of the bin containing `v`, if any (binary search).
    pub fn index_of(&self, v: f64) -> Option<usize> {
        if v.is_nan() {
            return None;
        }
        let idx = self.bins.partition_point(|b| b.lo <= v);
        if idx == 0 {
            return None;
        }
        let candidate = idx - 1;
        self.bins[candidate].contains(v).then_some(candidate)
    }

    /// Label of the bin containing `v`, or [`OTHER_BIN_LABEL`].
    pub fn label_of(&self, v: f64) -> &str {
        match self.index_of(v) {
            Some(i) => &self.bins[i].label,
            None => OTHER_BIN_LABEL,
        }
    }

    /// All labels in bin order, followed by `other`.
    pub fn labels(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.bins.iter().map(|b| b.label.as_str()).collect();
        out.push(OTHER_BIN_LABEL);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Instance-A wall-time levels from Table I, in hours.
    fn instance_a_bins() -> Bins {
        Bins::new(vec![
            Bin::new("1-60 seconds", 1.0 / 3600.0, 60.0 / 3600.0),
            Bin::new("1-60 minutes", 60.0 / 3600.0, 1.0),
            Bin::new("1-5 hours", 1.0, 5.0),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_inside_and_outside() {
        let bins = instance_a_bins();
        assert_eq!(bins.label_of(30.0 / 3600.0), "1-60 seconds");
        assert_eq!(bins.label_of(0.5), "1-60 minutes");
        assert_eq!(bins.label_of(3.0), "1-5 hours");
        assert_eq!(bins.label_of(10.0), OTHER_BIN_LABEL); // beyond the 5h limit
        assert_eq!(bins.label_of(0.0), OTHER_BIN_LABEL); // below 1 second
    }

    #[test]
    fn edges_are_half_open() {
        let bins = Bins::new(vec![Bin::new("a", 0.0, 1.0), Bin::new("b", 1.0, 2.0)]).unwrap();
        assert_eq!(bins.label_of(1.0), "b");
        assert_eq!(bins.label_of(2.0), OTHER_BIN_LABEL);
        assert_eq!(bins.label_of(0.0), "a");
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let bins = Bins::new(vec![Bin::new("hi", 5.0, 10.0), Bin::new("lo", 0.0, 5.0)]).unwrap();
        assert_eq!(bins.bins()[0].label, "lo");
    }

    #[test]
    fn overlap_rejected() {
        let err = Bins::new(vec![Bin::new("a", 0.0, 2.0), Bin::new("b", 1.0, 3.0)]).unwrap_err();
        assert!(err.contains("overlap"));
    }

    #[test]
    fn empty_bin_rejected() {
        assert!(Bins::new(vec![Bin::new("a", 2.0, 2.0)]).is_err());
        assert!(Bins::new(vec![Bin::new("a", 3.0, 1.0)]).is_err());
    }

    #[test]
    fn gaps_map_to_other() {
        let bins = Bins::new(vec![Bin::new("a", 0.0, 1.0), Bin::new("b", 5.0, 6.0)]).unwrap();
        assert_eq!(bins.label_of(3.0), OTHER_BIN_LABEL);
    }

    #[test]
    fn nan_maps_to_other() {
        assert_eq!(instance_a_bins().label_of(f64::NAN), OTHER_BIN_LABEL);
    }

    #[test]
    fn labels_include_other() {
        let bins = instance_a_bins();
        let labels = bins.labels();
        assert_eq!(
            labels,
            vec!["1-60 seconds", "1-60 minutes", "1-5 hours", "other"]
        );
    }
}
